"""CACTI-lite: analytical SRAM area / power / delay estimates.

CACTI-4.0 is a large circuit-level tool; the paper consumes only a handful
of its outputs (1 MB bank area and power, access time).  This module anchors
those outputs to the paper's Table 2 values at 65 nm and provides the
scaling structure (with size and process node) that the heterogeneous-die
analysis of Section 4 needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.itrs import (
    TECH_NODES,
    dynamic_power_ratio,
    leakage_power_ratio,
    relative_gate_delay,
)

__all__ = ["CactiModel", "BankEstimate"]

_ANCHOR_NM = 65
_ANCHOR_BANK_BYTES = 1024 * 1024
# Table 2 of the paper: a 1 MB L2 bank at 65 nm.
_ANCHOR_AREA_MM2 = 5.0
_ANCHOR_DYNAMIC_W_PER_ACCESS = 0.732
_ANCHOR_STATIC_W = 0.376
_ANCHOR_ACCESS_CYCLES = 6  # at 2 GHz (Section 3.1 NUCA methodology)

# Area scales non-ideally and differently for SRAM and logic (the paper
# cites [10]).  SRAM cell area shrinks less than ideally; random logic
# tracks the full feature-size square.  With these exponents the upper die
# that holds the checker plus nine 1 MB banks at 65 nm holds the (larger)
# checker plus five banks at 90 nm, matching Section 4, and the 90 nm
# checker's power density drops (23.7 W over 9.6 mm² = 2.5 W/mm² versus
# 14.5 W over 5 mm² = 2.9 W/mm²) — the source of the paper's temperature
# reduction.
_SRAM_AREA_EXPONENT = 1.66
LOGIC_AREA_EXPONENT = 2.0


def logic_area_scale(old_nm: int, new_nm: int = _ANCHOR_NM) -> float:
    """Area multiplier for random logic implemented at an older node."""
    return (old_nm / new_nm) ** LOGIC_AREA_EXPONENT


@dataclass(frozen=True)
class BankEstimate:
    """Area/power/delay estimate for one SRAM bank."""

    size_bytes: int
    tech_nm: int
    area_mm2: float
    dynamic_power_w_per_access: float
    static_power_w: float
    access_cycles: int


class CactiModel:
    """Anchored analytical SRAM model.

    Example::

        model = CactiModel()
        bank65 = model.estimate_bank(1 << 20, 65)   # Table 2 values
        bank90 = model.estimate_bank(1 << 20, 90)   # older-process bank
    """

    def __init__(
        self,
        anchor_area_mm2: float = _ANCHOR_AREA_MM2,
        anchor_dynamic_w: float = _ANCHOR_DYNAMIC_W_PER_ACCESS,
        anchor_static_w: float = _ANCHOR_STATIC_W,
    ):
        self._anchor_area = anchor_area_mm2
        self._anchor_dynamic = anchor_dynamic_w
        self._anchor_static = anchor_static_w

    def estimate_bank(
        self, size_bytes: int = _ANCHOR_BANK_BYTES, tech_nm: int = _ANCHOR_NM
    ) -> BankEstimate:
        """Estimate one bank of ``size_bytes`` at process ``tech_nm``."""
        if size_bytes <= 0:
            raise ValueError("bank size must be positive")
        if tech_nm not in TECH_NODES:
            raise KeyError(f"no device data for {tech_nm} nm")
        size_ratio = size_bytes / _ANCHOR_BANK_BYTES
        area = (
            self._anchor_area
            * size_ratio
            * self._area_scale(tech_nm)
        )
        # Dynamic energy per access grows sub-linearly with capacity
        # (wordline/bitline lengths grow with sqrt of area).
        dynamic = (
            self._anchor_dynamic
            * size_ratio**0.5
            * dynamic_power_ratio(tech_nm, _ANCHOR_NM)
        )
        static = (
            self._anchor_static
            * size_ratio
            * leakage_power_ratio(tech_nm, _ANCHOR_NM)
        )
        access = self.access_cycles(size_bytes, tech_nm)
        return BankEstimate(
            size_bytes=size_bytes,
            tech_nm=tech_nm,
            area_mm2=area,
            dynamic_power_w_per_access=dynamic,
            static_power_w=static,
            access_cycles=access,
        )

    def access_cycles(
        self, size_bytes: int = _ANCHOR_BANK_BYTES, tech_nm: int = _ANCHOR_NM
    ) -> int:
        """Bank access latency in 2 GHz cycles.

        Only the decoder/sense logic slows at an older node; roughly half
        the access is top-metal wire delay, which is unchanged.  A 90 nm
        bank therefore takes one extra cycle (Section 4).
        """
        size_ratio = size_bytes / _ANCHOR_BANK_BYTES
        logic_scale = 0.5 + 0.5 * relative_gate_delay(tech_nm, _ANCHOR_NM)
        delay = _ANCHOR_ACCESS_CYCLES * size_ratio**0.5 * logic_scale
        return max(1, round(delay))

    def banks_fitting_area(
        self, area_mm2: float, size_bytes: int = _ANCHOR_BANK_BYTES,
        tech_nm: int = _ANCHOR_NM,
    ) -> int:
        """How many banks of the given geometry fit in ``area_mm2``.

        Used by Section 4: the die area that holds nine 1 MB banks at 65 nm
        holds only five at 90 nm.
        """
        bank = self.estimate_bank(size_bytes, tech_nm)
        return int(area_mm2 / bank.area_mm2)

    @staticmethod
    def _area_scale(tech_nm: int) -> float:
        return (tech_nm / _ANCHOR_NM) ** _SRAM_AREA_EXPONENT
