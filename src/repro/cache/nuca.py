"""Non-uniform cache access (NUCA) L2 model (Section 3.1 of the paper).

The L2 is partitioned into 1 MB banks connected by a grid network where each
hop costs four cycles (one link + three router cycles).  Two placement
policies are modelled:

* **distributed sets** — the set index selects a unique bank; the bank holds
  all ways of its sets.  Simple, but every bank is accessed uniformly so the
  average hit latency is governed by the mean hop distance.
* **distributed ways** — each bank holds one way of every set, and a
  centralized tag array next to the L2 controller is consulted first.  Blocks
  gravitate toward the banks closest to the controller, so hot working sets
  see shorter distances (the paper reports < 2% IPC advantage).

Bank hop distances default to per-chip-model values whose averages reproduce
the paper's reported mean L2 hit latencies (18 cycles for ``2d-a``,
22 cycles for ``2d-2a``, ~18 for ``3d-2a``).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import ChipModel, NucaConfig, NucaPolicy
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.obs.metrics import get_registry

__all__ = ["NucaCache", "bank_hops_for_model", "AccessResult"]

# Hop distance from the L2 controller to each bank, per chip model.  The
# first six entries of the 3d-2a list are the lower-die banks (identical to
# 2d-a); the remaining nine sit on the upper die, reached through the
# inter-die via pillar (which adds no full hop), at comparable horizontal
# distances -- this is why the paper finds the 3D L2 no faster on average
# than 2d-a despite 2.5x the capacity.
_BANK_HOPS: dict[ChipModel, list[int]] = {
    ChipModel.TWO_D_A: [2, 2, 3, 3, 4, 4],
    ChipModel.TWO_D_2A: [2, 2, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 6, 6],
    ChipModel.THREE_D_2A: [2, 2, 3, 3, 4, 4, 2, 2, 3, 3, 3, 4, 4, 4, 4],
    ChipModel.THREE_D_CHECKER: [2, 2, 3, 3, 4, 4],
}


def bank_hops_for_model(chip: ChipModel) -> list[int]:
    """Per-bank hop counts from the L2 controller for a chip model."""
    return list(_BANK_HOPS[chip])


class AccessResult:
    """Outcome of one L2 access: hit/miss, latency, and the bank touched."""

    __slots__ = ("hit", "latency_cycles", "bank")

    def __init__(self, hit: bool, latency_cycles: int, bank: int):
        self.hit = hit
        self.latency_cycles = latency_cycles
        self.bank = bank

    def __repr__(self) -> str:
        kind = "hit" if self.hit else "miss"
        return f"AccessResult({kind}, {self.latency_cycles} cyc, bank {self.bank})"


class NucaCache:
    """The NUCA L2: banked tags, grid latency, and both placement policies."""

    def __init__(
        self,
        config: NucaConfig,
        bank_hops: list[int] | None = None,
        memory_latency_cycles: int = 300,
        name: str = "l2",
    ):
        if bank_hops is None:
            bank_hops = [2 + (i % 3) for i in range(config.num_banks)]
        if len(bank_hops) != config.num_banks:
            raise ConfigError(
                f"bank_hops has {len(bank_hops)} entries for "
                f"{config.num_banks} banks"
            )
        self.config = config
        self.bank_hops = list(bank_hops)
        self.memory_latency_cycles = memory_latency_cycles
        self._offset_bits = config.line_bytes.bit_length() - 1
        self.stats = StatGroup(name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._latency = self.stats.running_mean("hit_latency")
        self._bank_accesses = [
            self.stats.counter(f"bank{i}_accesses") for i in range(config.num_banks)
        ]
        self._recent_banks: list[int] = []  # sliding window for contention
        self._conflicts = self.stats.counter("bank_conflicts")

        if config.policy is NucaPolicy.DISTRIBUTED_SETS:
            # Total associativity = num_banks ways (6 MB 6-way / 15 MB
            # 15-way, Table 1); every set lives wholly in one bank.
            self._total_ways = config.num_banks
            self._num_sets = config.total_size_bytes // (
                self._total_ways * config.line_bytes
            )
            self._data_banks = list(range(config.num_banks))
        else:
            # Distributed ways: one bank is replaced by the central tag
            # array (Section 3.1), each remaining bank holds one way.
            if config.num_banks < 2:
                raise ConfigError("distributed-ways needs at least 2 banks")
            self._total_ways = config.num_banks - 1
            self._num_sets = (
                (config.num_banks - 1) * config.bank_size_bytes
            ) // (self._total_ways * config.line_bytes)
            # Data banks sorted by proximity to the controller; the closest
            # position hosts the tag array itself.
            order = sorted(range(config.num_banks), key=lambda i: self.bank_hops[i])
            self._tag_bank = order[0]
            self._data_banks = order[1:]
        # Tag store: per set, list of (line, bank_slot) in LRU order.
        # bank_slot indexes self._data_banks for the ways policy; for the
        # sets policy all ways of a set are in the same bank.  The rows
        # are copy-on-write: ``_owned[s]`` is 0 while row ``s`` still
        # aliases a shared row (the one empty list here, or a memoized
        # preload template's row after :meth:`preload_lines`), and the
        # access paths take a private copy before the first mutation — a
        # simulation touches a tiny fraction of the sets it preloads, so
        # constructing the store and installing a full 15 MB working set
        # each cost one flat list copy.
        self._sets: list[list[tuple[int, int]]] = [[]] * self._num_sets
        self._owned = bytearray(self._num_sets)

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        """Number of L2 sets."""
        return self._num_sets

    @property
    def total_ways(self) -> int:
        """Total associativity."""
        return self._total_ways

    def _line(self, address: int) -> int:
        return address >> self._offset_bits

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    def _bank_latency(self, bank: int) -> int:
        return (
            self.bank_hops[bank] * self.config.hop_cycles
            + self.config.bank_access_cycles
        )

    # ------------------------------------------------------------------
    def access(self, address: int) -> AccessResult:
        """Access the L2; fills on miss.  Returns hit/miss, latency, bank."""
        if self.config.policy is NucaPolicy.DISTRIBUTED_SETS:
            result = self._access_distributed_sets(address)
        else:
            result = self._access_distributed_ways(address)
        if self.config.model_contention:
            # A bank busy with one of the last few accesses queues this one
            # behind it (single-ported banks; the grid pipeline hides
            # anything older than the window).
            queued = self._recent_banks.count(result.bank)
            if queued:
                self._conflicts.increment()
                result = AccessResult(
                    result.hit,
                    result.latency_cycles
                    + queued * self.config.bank_access_cycles,
                    result.bank,
                )
            self._recent_banks.append(result.bank)
            if len(self._recent_banks) > self.config.contention_window:
                del self._recent_banks[0]
        if result.hit:
            self._hits.increment()
            self._latency.add(result.latency_cycles)
        else:
            self._misses.increment()
        self._bank_accesses[result.bank].increment()
        return result

    def _access_distributed_sets(self, address: int) -> AccessResult:
        line = self._line(address)
        set_index = self._set_index(line)
        bank = set_index % self.config.num_banks
        ways = self._sets[set_index]
        if not self._owned[set_index]:
            self._owned[set_index] = 1
            ways = self._sets[set_index] = list(ways)
        latency = self._bank_latency(bank)
        for i, (resident, slot) in enumerate(ways):
            if resident == line:
                del ways[i]
                ways.append((line, slot))
                return AccessResult(True, latency, bank)
        ways.append((line, bank))
        if len(ways) > self._total_ways:
            del ways[0]
        return AccessResult(False, latency + self.memory_latency_cycles, bank)

    def _access_distributed_ways(self, address: int) -> AccessResult:
        line = self._line(address)
        set_index = self._set_index(line)
        ways = self._sets[set_index]
        if not self._owned[set_index]:
            self._owned[set_index] = 1
            ways = self._sets[set_index] = list(ways)
        # Central tag lookup first (2 cycles), then route to the data bank.
        tag_latency = 2
        for i, (resident, slot) in enumerate(ways):
            if resident == line:
                bank = self._data_banks[slot]
                latency = tag_latency + self._bank_latency(bank)
                # Promotion: swap the hit block into the bank closest to
                # the controller (demoting its occupant to the hit slot).
                # This is why the distributed-way policy slightly beats
                # distributed sets for working sets below L2 capacity —
                # re-referenced blocks migrate next to the controller.
                if slot > 0:
                    self._promote(ways, i, slot)
                else:
                    del ways[i]
                    ways.append((line, slot))
                return AccessResult(True, latency, bank)
        # Miss: place in the closest unoccupied slot, else evict LRU and
        # reuse its slot.
        occupied = {slot for (_, slot) in ways}
        free = [s for s in range(len(self._data_banks)) if s not in occupied]
        if free:
            slot = free[0]
        else:
            _, slot = ways.pop(0)
        ways.append((line, slot))
        bank = self._data_banks[slot]
        latency = tag_latency + self._bank_latency(bank)
        return AccessResult(False, latency + self.memory_latency_cycles, bank)

    def preload_plan(self, addresses):
        """The pure install plan for :meth:`preload_lines`, or ``None``.

        Depends only on the address set and this L2's configuration
        (geometry + placement policy) — never on cache state — so callers
        may memoize it per ``(addresses key, config)``.  Returns ``None``
        when the addresses contain duplicate lines.
        """
        lines = np.asarray(addresses) >> self._offset_bits
        if lines.size and (np.diff(np.sort(lines)) == 0).any():
            return None
        set_idx = lines % self._num_sets
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        sorted_lines = lines[order]
        counts = np.bincount(set_idx, minlength=self._num_sets)
        group_start = np.concatenate([[0], np.cumsum(counts)[:-1]])
        position = np.arange(lines.size) - group_start[sorted_sets]
        if self.config.policy is NucaPolicy.DISTRIBUTED_SETS:
            slots = sorted_sets % self.config.num_banks
            banks = set_idx % self.config.num_banks
        else:
            slots = position % self._total_ways
            banks = np.array(self._data_banks, dtype=np.int64)[slots]
        keep = position >= counts[sorted_sets] - self._total_ways
        bank_counts = np.bincount(
            banks, minlength=self.config.num_banks
        ).tolist()
        # The plan is the final per-set LRU state itself (a template the
        # install step copies), so applying a memoized plan costs one
        # list copy per set instead of one append per line.  The kept
        # entries are already grouped by set (stable sort), so the
        # template rows are consecutive slices.
        kept_pairs = list(
            zip(sorted_lines[keep].tolist(), slots[keep].tolist())
        )
        kept_counts = np.bincount(
            sorted_sets[keep], minlength=self._num_sets
        )
        ends = np.cumsum(kept_counts).tolist()
        starts = [0] + ends[:-1]
        template = [kept_pairs[a:b] for a, b in zip(starts, ends)]
        return (template, int(lines.size), bank_counts)

    def preload_lines(self, addresses, plan=None) -> bool:
        """Bulk-install distinct lines into an *empty* L2.

        Vectorized equivalent of looping :meth:`access` over ``addresses``
        (a NumPy integer array): starting empty with distinct lines, every
        access misses, so each set ends up holding its last ``total_ways``
        lines in access order.  Under distributed sets the bank is
        ``set_index % num_banks``; under distributed ways the k-th miss of
        a set lands in slot ``k % total_ways`` (fill ascending, then evict
        the LRU front and reuse its slot).  Returns False when the fast
        path's preconditions do not hold (non-empty cache, duplicate
        lines, or contention modelling, whose sliding bank window the
        batch form does not track) — the caller must then fall back.
        ``plan`` is an optional precomputed (possibly memoized)
        :meth:`preload_plan` for the same addresses and configuration.
        """
        if self.config.model_contention:
            return False
        if any(self._sets):
            return False
        if plan is None:
            plan = self.preload_plan(addresses)
        if plan is None:
            return False
        template, n, bank_counts = plan
        # Alias the (possibly memoized, shared) template rows and let the
        # access paths copy-on-write; only the outer list is private.
        self._sets = list(template)
        self._owned = bytearray(self._num_sets)
        self._misses.increment(n)
        for bank, count in enumerate(bank_counts):
            if count:
                self._bank_accesses[bank].increment(count)
        return True

    def _promote(self, ways: list[tuple[int, int]], index: int, slot: int) -> None:
        line, _ = ways[index]
        del ways[index]
        for j, (other_line, other_slot) in enumerate(ways):
            if other_slot == 0:
                ways[j] = (other_line, slot)
                break
        ways.append((line, 0))

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """L2 hits so far."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """L2 misses so far."""
        return self._misses.value

    @property
    def accesses(self) -> int:
        """Total L2 accesses."""
        return self._hits.value + self._misses.value

    @property
    def average_hit_latency(self) -> float:
        """Mean latency of L2 hits (cycles)."""
        return self._latency.mean

    def resident_lines(self) -> int:
        """Number of lines currently resident (for invariant checks)."""
        return sum(len(ways) for ways in self._sets)

    def bank_access_counts(self) -> list[int]:
        """Per-bank access counts (for the power model)."""
        return [c.value for c in self._bank_accesses]

    def publish_metrics(self) -> None:
        """Add this cache's lifetime totals to the metrics registry.

        Tagged by placement policy so the two NUCA organizations stay
        distinguishable in a merged snapshot.  Called once per
        simulation (the access path itself stays uninstrumented).
        """
        m = get_registry()
        policy = self.config.policy.value
        m.counter(f"nuca.{policy}.hits").inc(self._hits.value)
        m.counter(f"nuca.{policy}.misses").inc(self._misses.value)
        m.counter(f"nuca.{policy}.bank_conflicts").inc(self._conflicts.value)

    def misses_per_10k(self, instructions: int) -> float:
        """L2 misses per 10k committed instructions (Section 3.3 metric)."""
        if instructions <= 0:
            return 0.0
        return self.misses * 10_000.0 / instructions
