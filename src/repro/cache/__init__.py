"""Cache hierarchy: set-associative L1s, NUCA L2, CACTI-lite estimates."""

from repro.cache.cacti import BankEstimate, CactiModel
from repro.cache.nuca import AccessResult, NucaCache, bank_hops_for_model
from repro.cache.sram import SetAssociativeCache

__all__ = [
    "BankEstimate",
    "CactiModel",
    "AccessResult",
    "NucaCache",
    "bank_hops_for_model",
    "SetAssociativeCache",
]
