"""Set-associative cache with true LRU replacement.

Used for the L1 instruction/data caches and as the building block of the
NUCA L2 banks.  The model tracks tags only (the simulator's memory values
are a deterministic function of the address, see
:func:`repro.isa.instruction.load_value_for_address`).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import CacheGeometry
from repro.common.stats import StatGroup

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """A tag-only set-associative cache with LRU replacement.

    ``access`` performs lookup-and-fill in one step (the common case for a
    simple latency model); ``probe``/``fill`` are exposed separately for
    callers that manage placement themselves (the NUCA controller).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self._offset_bits = geometry.line_bytes.bit_length() - 1
        self._num_sets = geometry.num_sets
        # Each set is a list of tags in LRU order (index 0 = LRU).
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        self.stats = StatGroup(name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")

    # -- address helpers ------------------------------------------------
    def set_index(self, address: int) -> int:
        """The set an address maps to."""
        return (address >> self._offset_bits) % self._num_sets

    def tag(self, address: int) -> int:
        """The tag for an address (the full line address, simple and safe)."""
        return address >> self._offset_bits

    # -- operations ------------------------------------------------------
    def access(self, address: int) -> bool:
        """Look up the line; on a miss, fill it.  Returns hit/miss."""
        line = self.tag(address)
        ways = self._sets[self.set_index(address)]
        try:
            ways.remove(line)
        except ValueError:
            self._misses.increment()
            ways.append(line)
            if len(ways) > self.geometry.ways:
                del ways[0]
            return False
        ways.append(line)  # move to MRU
        self._hits.increment()
        return True

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or filling."""
        return self.tag(address) in self._sets[self.set_index(address)]

    def fill(self, address: int) -> int | None:
        """Insert the line; return the evicted line address, if any."""
        line = self.tag(address)
        ways = self._sets[self.set_index(address)]
        if line in ways:
            return None
        ways.append(line)
        if len(ways) > self.geometry.ways:
            victim = ways.pop(0)
            return victim << self._offset_bits
        return None

    def preload_plan(self, addresses):
        """The pure install plan for :meth:`preload_lines`, or ``None``.

        Depends only on the address set and the cache geometry — never on
        cache state — so callers may memoize it per ``(addresses key,
        geometry)``.  Returns ``None`` when the addresses contain duplicate
        lines (the fast path's precondition fails regardless of state).
        """
        lines = np.asarray(addresses) >> self._offset_bits
        if lines.size and (np.diff(np.sort(lines)) == 0).any():
            return None
        set_idx = lines % self._num_sets
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        sorted_lines = lines[order]
        counts = np.bincount(set_idx, minlength=self._num_sets)
        group_start = np.concatenate(
            [[0], np.cumsum(counts)[:-1]]
        )
        position = np.arange(lines.size) - group_start[sorted_sets]
        keep = position >= counts[sorted_sets] - self.geometry.ways
        # The plan is the final per-set LRU state itself (a template the
        # install step copies), so applying a memoized plan costs one
        # list copy per set instead of one append per line.  The kept
        # entries are already grouped by set (stable sort), so the
        # template rows are consecutive slices.
        kept_lines = sorted_lines[keep].tolist()
        kept_counts = np.bincount(
            sorted_sets[keep], minlength=self._num_sets
        )
        ends = np.cumsum(kept_counts).tolist()
        starts = [0] + ends[:-1]
        template = [kept_lines[a:b] for a, b in zip(starts, ends)]
        return (template, int(lines.size))

    def preload_lines(self, addresses, plan=None) -> bool:
        """Bulk-install distinct lines into an *empty* cache.

        Equivalent to calling :meth:`access` on each address in order, but
        computed as one vectorized pass: with an empty cache and distinct
        lines every access misses, so the final LRU state of each set is
        simply its last ``ways`` lines in access order.  Returns False
        (caller must fall back to the loop) when the preconditions do not
        hold.  ``addresses`` is a NumPy integer array; ``plan`` is an
        optional precomputed (possibly memoized) :meth:`preload_plan` for
        the same addresses and geometry.
        """
        if any(self._sets):
            return False
        if plan is None:
            plan = self.preload_plan(addresses)
        if plan is None:
            return False
        template, n = plan
        self._sets = list(map(list, template))
        self._misses.increment(n)
        return True

    def invalidate(self, address: int) -> bool:
        """Remove the line if present; return whether it was present."""
        line = self.tag(address)
        ways = self._sets[self.set_index(address)]
        try:
            ways.remove(line)
            return True
        except ValueError:
            return False

    # -- statistics --------------------------------------------------------
    @property
    def hits(self) -> int:
        """Number of hits so far."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Number of misses so far."""
        return self._misses.value

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self._hits.value + self._misses.value

    @property
    def miss_rate(self) -> float:
        """Miss rate over all accesses (0.0 if never accessed)."""
        total = self.accesses
        return self._misses.value / total if total else 0.0

    def resident_lines(self) -> int:
        """Number of lines currently resident (for invariant checks)."""
        return sum(len(ways) for ways in self._sets)
