"""Operation classes of the synthetic ISA.

The simulator is trace-driven: it does not interpret a real ISA, but every
instruction carries an operation class that determines which functional unit
executes it and with what latency (SimpleScalar-like defaults).
"""

from __future__ import annotations

import enum

__all__ = [
    "OpClass",
    "EXECUTION_LATENCY",
    "FunctionalUnitPool",
    "OP_IALU",
    "OP_IMUL",
    "OP_FALU",
    "OP_FMUL",
    "OP_LOAD",
    "OP_STORE",
    "OP_BRANCH",
    "OP_CODE",
    "OP_BY_CODE",
    "POOL_BY_CODE",
    "EXECUTION_LATENCY_BY_CODE",
]


class OpClass(enum.Enum):
    """Functional classes of instructions."""

    IALU = "ialu"
    IMUL = "imul"
    FALU = "falu"
    FMUL = "fmul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_fp(self) -> bool:
        """True for floating-point operations."""
        return self in (OpClass.FALU, OpClass.FMUL)

    @property
    def writes_register(self) -> bool:
        """True if this class produces a register result."""
        return self not in (OpClass.STORE, OpClass.BRANCH)


# Execution latency in cycles once the instruction issues (memory latency for
# loads is determined by the cache hierarchy, this is the base pipe latency).
EXECUTION_LATENCY: dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 7,
    OpClass.FALU: 4,
    OpClass.FMUL: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

# ---------------------------------------------------------------------
# Canonical integer op codes.  The columnar trace pipeline
# (:mod:`repro.isa.soa`) stores op classes as small ints so NumPy masks
# and Python hot loops avoid enum hashing; the tables below are the one
# place the numbering is defined.  Every table is derived from the
# ``OpClass`` enum itself (definition order is the numbering) so adding
# an op class widens them all — nothing downstream may assume 7.
OP_BY_CODE: tuple[OpClass, ...] = tuple(OpClass)
OP_CODE: dict[OpClass, int] = {op: code for code, op in enumerate(OP_BY_CODE)}

OP_IALU = OP_CODE[OpClass.IALU]
OP_IMUL = OP_CODE[OpClass.IMUL]
OP_FALU = OP_CODE[OpClass.FALU]
OP_FMUL = OP_CODE[OpClass.FMUL]
OP_LOAD = OP_CODE[OpClass.LOAD]
OP_STORE = OP_CODE[OpClass.STORE]
OP_BRANCH = OP_CODE[OpClass.BRANCH]

# Functional-unit pool per op code: loads/stores/branches contend for the
# integer ALU/AGU slots (same collapse as FunctionalUnitPool._pool_for).
# Pool codes index [IALU, IMUL, FALU, FMUL] capacity vectors.
_POOL_INDEX = {OpClass.IALU: 0, OpClass.IMUL: 1, OpClass.FALU: 2, OpClass.FMUL: 3}
POOL_BY_CODE: tuple[int, ...] = tuple(
    _POOL_INDEX.get(op, _POOL_INDEX[OpClass.IALU]) for op in OP_BY_CODE
)

EXECUTION_LATENCY_BY_CODE: tuple[int, ...] = tuple(
    EXECUTION_LATENCY[op] for op in OP_BY_CODE
)


class FunctionalUnitPool:
    """Counts of issue slots per functional-unit type for one cycle.

    A fresh per-cycle budget is obtained with :meth:`new_cycle`; issuing an
    instruction consumes a slot via :meth:`try_issue`.
    """

    def __init__(self, int_alus: int, int_mults: int, fp_alus: int, fp_mults: int):
        self._capacity = {
            OpClass.IALU: int_alus,
            OpClass.IMUL: int_mults,
            OpClass.FALU: fp_alus,
            OpClass.FMUL: fp_mults,
            # Memory and branch ops contend for integer ALU/AGU slots.
            OpClass.LOAD: int_alus,
            OpClass.STORE: int_alus,
            OpClass.BRANCH: int_alus,
        }
        self._available: dict[OpClass, int] = {}
        self.new_cycle()

    def new_cycle(self) -> None:
        """Reset the per-cycle slot budget."""
        # LOAD/STORE/BRANCH share the IALU budget: track it via IALU.
        self._available = {
            OpClass.IALU: self._capacity[OpClass.IALU],
            OpClass.IMUL: self._capacity[OpClass.IMUL],
            OpClass.FALU: self._capacity[OpClass.FALU],
            OpClass.FMUL: self._capacity[OpClass.FMUL],
        }

    def _pool_for(self, op: OpClass) -> OpClass:
        if op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
            return OpClass.IALU
        return op

    def try_issue(self, op: OpClass) -> bool:
        """Consume one slot for ``op`` if available; return success."""
        pool = self._pool_for(op)
        if self._available[pool] > 0:
            self._available[pool] -= 1
            return True
        return False

    def available(self, op: OpClass) -> int:
        """Remaining slots this cycle for ``op``'s pool."""
        return self._available[self._pool_for(op)]
