"""Synthetic ISA: op classes, dynamic instructions, trace generation."""

from repro.isa.instruction import (
    MASK64,
    Instruction,
    compute_result,
    load_value_for_address,
)
from repro.isa.opcodes import EXECUTION_LATENCY, FunctionalUnitPool, OpClass
from repro.isa.soa import TraceArrays
from repro.isa.trace import TraceGenerator, generate_trace

__all__ = [
    "MASK64",
    "Instruction",
    "compute_result",
    "load_value_for_address",
    "EXECUTION_LATENCY",
    "FunctionalUnitPool",
    "OpClass",
    "TraceArrays",
    "TraceGenerator",
    "generate_trace",
]
