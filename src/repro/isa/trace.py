"""Synthetic trace generation from a workload profile.

The generator turns a :class:`~repro.workloads.profiles.WorkloadProfile`
into a deterministic dynamic instruction stream with controlled instruction
mix, dependence distances, branch predictability, and memory footprint.
The same seed always yields the same trace, which RMT simulation relies on
(leading and trailing cores execute the same dynamic stream).

Generation is columnar: each chunk is produced as a
:class:`~repro.isa.soa.TraceArrays` by vectorized NumPy passes, with the
genuinely sequential carries (the recent-destination ring, the pointer
chase, the cold-region streaming pointer, the pc chain) expressed as
prefix-scan kernels.  The original per-instruction loop is retained as
``_generate_chunk_reference`` — the executable specification the
vectorized path is tested bit-identical against.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngFactory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    OP_BRANCH,
    OP_FALU,
    OP_FMUL,
    OP_IALU,
    OP_IMUL,
    OP_LOAD,
    OP_STORE,
    OpClass,
)
from repro.isa.soa import TraceArrays, TraceBatch
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.workloads.profiles import WorkloadProfile

__all__ = ["TraceGenerator", "generate_trace", "generate_arrays_batch"]

# Architectural register allocation: integer dsts rotate through 0..29,
# FP dsts through 32..61.  Registers 30 and 62 act as long-lived "far"
# operands (values produced long ago, always ready).
_INT_DST_REGS = list(range(0, 30))
_FP_DST_REGS = list(range(32, 62))
_INT_FAR_REG = 30
_FP_FAR_REG = 62

# Non-overlapping virtual address regions (byte addresses).
_HOT_BASE = 0x0000_0000
_WARM_BASE = 0x1000_0000
_XL_BASE = 0x2000_0000
_COLD_BASE = 0x4000_0000
_COLD_SPAN = 0x3000_0000  # streaming wraps after ~768 MB

_REGION_HOT, _REGION_WARM, _REGION_XL, _REGION_COLD = 0, 1, 2, 3

_CHUNK = 8192

# The RNG drawing order indexes ops in this (historical) order; the
# table maps those draw indices to canonical op codes.
_DRAW_TO_CODE = np.array(
    [OP_LOAD, OP_STORE, OP_BRANCH, OP_IMUL, OP_FALU, OP_FMUL, OP_IALU],
    dtype=np.int8,
)
_RING_CAP = 64


class TraceGenerator:
    """Deterministic synthetic instruction stream for one benchmark profile.

    Example::

        gen = TraceGenerator(get_profile("mcf"), seed=42)
        arrays = gen.generate_arrays(100_000)   # columnar (fast paths)
        trace = gen.generate(100_000)           # list of Instruction
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0, line_bytes: int = 64):
        self.profile = profile
        self.seed = seed
        self._line_bytes = line_bytes
        rngs = RngFactory(seed).child(f"trace:{profile.name}")
        self._rng = rngs.stream("main")

        # Static branch sites: pc, taken bias, and whether the site is
        # inherently unpredictable ("hard").
        site_rng = rngs.stream("branch-sites")
        # A handful of hot loop branches dominate real programs; keeping the
        # static site count small lets the predictor train within the
        # simulated window the way it would over a SimPoint interval.
        num_sites = max(16, profile.code_bytes // 256)
        self._branch_pcs = (
            site_rng.integers(0, profile.code_bytes // 4, size=num_sites) * 4
        )
        self._branch_bias = np.where(
            site_rng.random(num_sites) < 0.5,
            site_rng.uniform(0.92, 0.995, size=num_sites),
            site_rng.uniform(0.005, 0.08, size=num_sites),
        )
        self._branch_hard = site_rng.random(num_sites) < profile.hard_branch_fraction
        self._branch_targets = (
            site_rng.integers(0, profile.code_bytes // 4, size=num_sites) * 4
        )

        # Mutable stream state.
        self._seq = 0
        self._pc = 0
        self._cold_ptr = 0
        self._recent_dsts: list[int] = []  # ring of recent destination registers
        self._next_int_dst = 0
        self._next_fp_dst = 0
        self._last_load_dst = -1
        self._buffer: TraceArrays = TraceArrays.empty()

    # ------------------------------------------------------------------
    def pretrain_predictor(self, predictor, rounds: int = 40) -> None:
        """Warm a branch predictor as billions of prior instructions would.

        Feeds each static branch site ``rounds`` outcomes drawn from its
        bias so that direction tables and the BTB reflect steady state
        before the measured window begins.  Uses a dedicated RNG stream, so
        it does not perturb trace generation.  Thresholds and outcomes are
        computed in one vectorized pass; the per-site ``update`` order is
        unchanged (row-major over rounds x sites).
        """
        rng = RngFactory(self.seed).child(
            f"trace:{self.profile.name}"
        ).stream("pretrain")
        draws = rng.random((rounds, len(self._branch_pcs)))
        thresholds = np.where(self._branch_hard, 0.5, self._branch_bias)
        outcomes = draws < thresholds[None, :]
        pcs = [int(pc) for pc in self._branch_pcs]
        targets = [int(t) for t in self._branch_targets]
        update = predictor.update
        for row in outcomes.tolist():
            for pc, taken, target in zip(pcs, row, targets):
                update(pc, taken, target)

    def generate_arrays(self, count: int) -> TraceArrays:
        """Generate the next ``count`` instructions as columnar arrays.

        Internally the generator always draws randomness in fixed-size
        batches (buffering the excess), so splitting one ``generate(2n)``
        into two ``generate(n)`` calls yields the identical stream.
        """
        while len(self._buffer) < count:
            # Instrumented per chunk, not per instruction: one registry
            # lookup amortised over _CHUNK generated instructions.
            with span("trace.generate_chunk"):
                chunk = self._generate_chunk(_CHUNK)
            get_registry().counter("trace.instructions_generated").inc(len(chunk))
            self._buffer = TraceArrays.concat([self._buffer, chunk])
        out = self._buffer[:count]
        self._buffer = self._buffer[count:]
        return out

    def generate(self, count: int) -> list[Instruction]:
        """Generate the next ``count`` instructions as a list of
        :class:`Instruction` (thin adapter over :meth:`generate_arrays`)."""
        return self.generate_arrays(count).to_instructions()

    # ------------------------------------------------------------------
    def _draw_chunk(self, count: int):
        """The RNG draw block shared by the vectorized and reference
        paths.  Draw order and shapes are part of the stream contract:
        changing either changes every trace."""
        p = self.profile
        rng = self._rng
        mix = np.array([
            p.frac_load, p.frac_store, p.frac_branch,
            p.frac_imul, p.frac_falu, p.frac_fmul, p.frac_ialu,
        ])
        mix = mix / mix.sum()
        ops = rng.choice(len(_DRAW_TO_CODE), size=count, p=mix)

        # Dependence distances: geometric with the profile's mean.
        dep1 = rng.geometric(1.0 / p.mean_dep_distance, size=count)
        dep2 = rng.geometric(1.0 / p.mean_dep_distance, size=count)
        far1 = rng.random(count) < p.far_operand_fraction
        far2 = rng.random(count) < p.far_operand_fraction

        regions = rng.choice(
            4, size=count, p=[p.p_hot, p.p_warm, p.p_xl, p.p_cold]
        )
        hot_off = rng.integers(0, max(1, p.hot_bytes // 8), size=count) * 8
        # Warm-region reuse is skewed, as in real programs: 70% of accesses
        # touch the hottest quarter of the region.  (This is what lets the
        # distributed-way NUCA policy's migration concentrate hot blocks
        # near the controller, Section 3.1.)
        warm_uniform = rng.integers(0, max(1, p.warm_bytes // 8), size=count) * 8
        warm_hot = rng.integers(0, max(1, p.warm_bytes // 32), size=count) * 8
        warm_off = np.where(rng.random(count) < 0.7, warm_hot, warm_uniform)
        xl_off = rng.integers(0, max(1, p.xl_bytes // 8), size=count) * 8
        site_idx = rng.integers(0, len(self._branch_pcs), size=count)
        branch_draw = rng.random(count)
        chase = rng.random(count) < p.pointer_chase_fraction
        return (ops, dep1, dep2, far1, far2, regions, hot_off, warm_off,
                xl_off, site_idx, branch_draw, chase)

    def _generate_chunk(self, count: int) -> TraceArrays:
        """Vectorized chunk generation (bit-identical to the reference).

        Everything independent is a NumPy pass; the sequential carries are
        scan kernels: destination rotation and the recent-dst ring become
        prefix counts into a shared history array, the pc chain becomes a
        last-branch segmented ramp, and the cold pointer a strided ramp.
        """
        if count <= 0:
            return TraceArrays.empty(seq0=self._seq)
        p = self.profile
        (ops, dep1, dep2, far1, far2, regions, hot_off, warm_off,
         xl_off, site_idx, branch_draw, chase) = self._draw_chunk(count)

        is_load = ops == 0
        is_store = ops == 1
        is_branch = ops == 2
        is_fp = (ops == 4) | (ops == 5)
        is_mem = is_load | is_store
        writes = ~(is_store | is_branch)

        # ---- destination rotation (prefix counts per register file) ----
        dst = np.full(count, -1, dtype=np.int64)
        write_fp = writes & is_fp
        write_int = writes & ~is_fp
        fp_rank = np.cumsum(write_fp)
        int_rank = np.cumsum(write_int)
        n_fp, n_int = len(_FP_DST_REGS), len(_INT_DST_REGS)
        dst[write_fp] = 32 + (self._next_fp_dst + fp_rank[write_fp] - 1) % n_fp
        dst[write_int] = (self._next_int_dst + int_rank[write_int] - 1) % n_int
        self._next_fp_dst = int((self._next_fp_dst + fp_rank[-1]) % n_fp)
        self._next_int_dst = int((self._next_int_dst + int_rank[-1]) % n_int)

        # ---- source resolution via the recent-dst ring ----------------
        # The ring at instruction i is the last (up to 64) destinations of
        # writers before i.  Expressed over `history` (carried ring ++ this
        # chunk's writer dsts in order): ring[-d] == history[L + wb_i - d],
        # valid whenever d <= min(64, L + wb_i).
        carried = np.array(self._recent_dsts, dtype=np.int64)
        carried_len = len(carried)
        history = np.concatenate([carried, dst[writes]])
        writers_before = np.cumsum(writes) - writes
        available = np.minimum(_RING_CAP, carried_len + writers_before)
        far_reg = np.where(is_fp, _FP_FAR_REG, _INT_FAR_REG)

        def resolve(dep, far):
            take = ~far & (dep <= available) & (available > 0)
            if not history.size:
                return far_reg.copy()
            idx = np.where(take, carried_len + writers_before - dep, 0)
            return np.where(take, history[idx], far_reg)

        src1 = resolve(dep1, far1)
        src2 = resolve(dep2, far2)

        # ---- pointer chase: src1 = previous load's destination --------
        load_idx = np.nonzero(is_load)[0]
        if load_idx.size:
            load_dsts = dst[load_idx]
            prev_load = np.concatenate(
                [[self._last_load_dst], load_dsts[:-1]]
            )
            chased = chase[load_idx] & (prev_load >= 0)
            src1[load_idx[chased]] = prev_load[chased]
            self._last_load_dst = int(load_dsts[-1])

        # ---- branch outcomes and the pc chain -------------------------
        code = p.code_bytes
        positions = np.arange(count, dtype=np.int64)
        taken = np.zeros(count, dtype=bool)
        target = np.zeros(count, dtype=np.int64)
        hard = np.zeros(count, dtype=bool)
        branch_idx = np.nonzero(is_branch)[0]
        after_branch = np.zeros(count, dtype=np.int64)
        if branch_idx.size:
            sites = site_idx[branch_idx]
            branch_pc = self._branch_pcs[sites]
            hard_b = self._branch_hard[sites]
            threshold = np.where(hard_b, 0.5, self._branch_bias[sites])
            taken_b = branch_draw[branch_idx] < threshold
            target_b = self._branch_targets[sites]
            taken[branch_idx] = taken_b
            target[branch_idx] = target_b
            hard[branch_idx] = hard_b
            after_branch[branch_idx] = np.where(
                taken_b, target_b, (branch_pc + 4) % code
            )
        # pc ramps forward by 4 (mod code) from the last branch redirect
        # (or the carried pc); branches read their static site pc.
        last_branch = np.maximum.accumulate(
            np.where(is_branch, positions, -1)
        )
        base = np.where(
            last_branch >= 0,
            after_branch[np.maximum(last_branch, 0)],
            self._pc,
        )
        steps = np.where(
            last_branch >= 0, positions - last_branch - 1, positions
        )
        pc = (base + 4 * steps) % code
        if branch_idx.size:
            pc[branch_idx] = branch_pc
            self._pc = int(
                (after_branch[branch_idx[-1]]
                 + 4 * (count - int(branch_idx[-1]) - 1)) % code
            )
        else:
            self._pc = int((self._pc + 4 * count) % code)

        # ---- effective addresses (cold region: strided scan) ----------
        address = np.zeros(count, dtype=np.int64)
        hot_rows = is_mem & (regions == _REGION_HOT)
        warm_rows = is_mem & (regions == _REGION_WARM)
        xl_rows = is_mem & (regions == _REGION_XL)
        address[hot_rows] = _HOT_BASE + hot_off[hot_rows]
        address[warm_rows] = _WARM_BASE + warm_off[warm_rows]
        address[xl_rows] = _XL_BASE + xl_off[xl_rows]
        cold_idx = np.nonzero(is_mem & (regions == _REGION_COLD))[0]
        if cold_idx.size:
            offsets = (
                self._cold_ptr
                + np.arange(cold_idx.size, dtype=np.int64) * self._line_bytes
            ) % _COLD_SPAN
            address[cold_idx] = _COLD_BASE + offsets
            self._cold_ptr = int(
                (self._cold_ptr + cold_idx.size * self._line_bytes)
                % _COLD_SPAN
            )

        # ---- carry the ring and the sequence counter ------------------
        self._recent_dsts = history[-_RING_CAP:].tolist()
        seq0 = self._seq
        self._seq += count

        return TraceArrays(
            op=_DRAW_TO_CODE[ops],
            dst=dst.astype(np.int16),
            src1=src1.astype(np.int16),
            src2=src2.astype(np.int16),
            pc=pc,
            address=address,
            taken=taken,
            target=target,
            hard=hard,
            seq0=seq0,
        )

    # ------------------------------------------------------------------
    def _generate_chunk_reference(self, count: int) -> list[Instruction]:
        """The original per-instruction loop — kept as the executable
        specification of the stream semantics.  Consumes the same RNG
        draws as :meth:`_generate_chunk`; the property tests assert the
        two are bit-identical, and the benchmark harness times this as
        the pre-columnar baseline."""
        p = self.profile
        op_classes = [
            OpClass.LOAD, OpClass.STORE, OpClass.BRANCH,
            OpClass.IMUL, OpClass.FALU, OpClass.FMUL, OpClass.IALU,
        ]
        (ops, dep1, dep2, far1, far2, regions, hot_off, warm_off,
         xl_off, site_idx, branch_draw, chase) = self._draw_chunk(count)

        instrs: list[Instruction] = []
        for i in range(count):
            op = op_classes[ops[i]]
            seq = self._seq
            self._seq += 1

            dst = -1
            if op.writes_register:
                if op.is_fp:
                    dst = _FP_DST_REGS[self._next_fp_dst]
                    self._next_fp_dst = (self._next_fp_dst + 1) % len(_FP_DST_REGS)
                else:
                    dst = _INT_DST_REGS[self._next_int_dst]
                    self._next_int_dst = (self._next_int_dst + 1) % len(_INT_DST_REGS)

            far_reg = _FP_FAR_REG if op.is_fp else _INT_FAR_REG
            src1 = far_reg if far1[i] else self._recent_dst(int(dep1[i]), far_reg)
            src2 = far_reg if far2[i] else self._recent_dst(int(dep2[i]), far_reg)
            address = 0
            taken = False
            target = 0
            hard = False
            pc = self._pc

            if op is OpClass.LOAD and chase[i] and self._last_load_dst >= 0:
                # Pointer chase: the address register is the previous load's
                # destination, serializing the two accesses.
                src1 = self._last_load_dst

            if op.is_memory:
                region = regions[i]
                if region == _REGION_HOT:
                    address = _HOT_BASE + int(hot_off[i])
                elif region == _REGION_WARM:
                    address = _WARM_BASE + int(warm_off[i])
                elif region == _REGION_XL:
                    address = _XL_BASE + int(xl_off[i])
                else:
                    address = _COLD_BASE + self._cold_ptr
                    self._cold_ptr = (
                        self._cold_ptr + self._line_bytes
                    ) % _COLD_SPAN
            elif op is OpClass.BRANCH:
                site = int(site_idx[i])
                pc = int(self._branch_pcs[site])
                hard = bool(self._branch_hard[site])
                threshold = 0.5 if hard else float(self._branch_bias[site])
                taken = bool(branch_draw[i] < threshold)
                target = int(self._branch_targets[site])
                self._pc = target if taken else (pc + 4) % p.code_bytes

            if op is not OpClass.BRANCH:
                self._pc = (self._pc + 4) % p.code_bytes

            instr = Instruction(
                seq=seq, op=op, dst=dst, src1=src1, src2=src2, pc=pc,
                address=address, taken=taken, target=target, hard_branch=hard,
            )
            instrs.append(instr)
            if op is OpClass.LOAD:
                self._last_load_dst = dst
            if dst >= 0:
                self._recent_dsts.append(dst)
                if len(self._recent_dsts) > _RING_CAP:
                    del self._recent_dsts[0]
        return instrs

    def _recent_dst(self, distance: int, fallback: int) -> int:
        """Destination register of the instruction ``distance`` back."""
        if not self._recent_dsts:
            return fallback
        if distance > len(self._recent_dsts):
            return fallback
        return self._recent_dsts[-distance]


def generate_trace(
    profile: WorkloadProfile, count: int, seed: int = 0
) -> list[Instruction]:
    """Convenience: build a generator and produce ``count`` instructions."""
    return TraceGenerator(profile, seed=seed).generate(count)


# ---------------------------------------------------------------------
# Lockstep batched generation: many (benchmark, seed) streams advanced by
# shared 2D kernels.  Every RNG draw stays on its own generator's streams
# (the per-sim draw order is the stream contract), but all scan kernels —
# destination rotation, the recent-dst ring, the pointer chase, the pc
# chain, the cold pointer — run once over stacked ``(num_sims, chunk)``
# arrays instead of once per sim.  Batching at ``_CHUNK`` granularity
# keeps the stacked arrays rectangular: every active sim draws the same
# chunk size, exactly as its solo ``generate_arrays`` would.


def generate_arrays_batch(generators, counts) -> TraceBatch:
    """Generate ``counts[b]`` further instructions of every generator.

    Bit-identical per sim to calling ``generators[b].generate_arrays(
    counts[b])`` — same RNG draw order, same chunk boundaries, same
    buffered remainder — so a generator may freely alternate between the
    solo and batched paths.  Sims that have enough buffered instructions
    drop out of the lockstep passes early.
    """
    generators = list(generators)
    counts = [int(c) for c in counts]
    if len(generators) != len(counts):
        raise ValueError(
            f"{len(generators)} generators but {len(counts)} counts"
        )
    while True:
        active = [
            g for g, c in zip(generators, counts) if len(g._buffer) < c
        ]
        if not active:
            break
        with span("trace.generate_chunk_batch"):
            chunks = _generate_chunk_batch(active, _CHUNK)
        get_registry().counter("trace.instructions_generated").inc(
            sum(len(chunk) for chunk in chunks)
        )
        for g, chunk in zip(active, chunks):
            g._buffer = TraceArrays.concat([g._buffer, chunk])
    outs = []
    for g, c in zip(generators, counts):
        outs.append(g._buffer[:c])
        g._buffer = g._buffer[c:]
    return TraceBatch.from_traces(outs)


def _generate_chunk_batch(gens, count: int) -> list[TraceArrays]:
    """One lockstep chunk across ``gens`` (the 2D mirror of
    :meth:`TraceGenerator._generate_chunk`).

    Draws come from each generator's own RNG streams; the scan kernels
    then run once over the stacked ``(B, count)`` arrays, and the mutable
    per-sim state (dst rotation points, recent-dst ring, last load dst,
    pc, cold pointer, seq) is written back exactly as each solo chunk
    would leave it.
    """
    B = len(gens)
    draws = [g._draw_chunk(count) for g in gens]

    def stack(k):
        return np.stack([d[k] for d in draws])

    ops = stack(0)
    dep1, dep2 = stack(1), stack(2)
    far1, far2 = stack(3), stack(4)
    regions = stack(5)
    hot_off, warm_off, xl_off = stack(6), stack(7), stack(8)
    site_idx = stack(9)
    branch_draw = stack(10)
    chase = stack(11)

    # Per-sim scalar state and profile constants as (B,) / (B, 1) arrays.
    code_b = np.array([g.profile.code_bytes for g in gens],
                      dtype=np.int64)[:, None]
    line_b = np.array([g._line_bytes for g in gens], dtype=np.int64)
    pc0 = np.array([g._pc for g in gens], dtype=np.int64)
    cold0 = np.array([g._cold_ptr for g in gens], dtype=np.int64)
    lld0 = np.array([g._last_load_dst for g in gens], dtype=np.int64)
    nfp0 = np.array([g._next_fp_dst for g in gens], dtype=np.int64)
    nint0 = np.array([g._next_int_dst for g in gens], dtype=np.int64)
    carried_lens = np.array(
        [len(g._recent_dsts) for g in gens], dtype=np.int64
    )

    is_load = ops == 0
    is_store = ops == 1
    is_branch = ops == 2
    is_fp = (ops == 4) | (ops == 5)
    is_mem = is_load | is_store
    writes = ~(is_store | is_branch)

    # ---- destination rotation (prefix counts per register file) ----
    n_fp, n_int = len(_FP_DST_REGS), len(_INT_DST_REGS)
    write_fp = writes & is_fp
    write_int = writes & ~is_fp
    fp_rank = np.cumsum(write_fp, axis=1)
    int_rank = np.cumsum(write_int, axis=1)
    fp_val = 32 + (nfp0[:, None] + fp_rank - 1) % n_fp
    int_val = (nint0[:, None] + int_rank - 1) % n_int
    dst = np.where(write_fp, fp_val, np.where(write_int, int_val, -1))
    new_nfp = (nfp0 + fp_rank[:, -1]) % n_fp
    new_nint = (nint0 + int_rank[:, -1]) % n_int

    # ---- source resolution via the recent-dst ring ----------------
    # Per sim, the 1D history (carried ring ++ this chunk's writer dsts)
    # is laid out right-aligned so the carried ring always *ends* at
    # column _RING_CAP: ring[-d] at row i == history2d[:, _RING_CAP +
    # writers_before - d], whatever each sim's carried length is.
    writers_before = np.cumsum(writes, axis=1) - writes
    history2d = np.zeros((B, _RING_CAP + count), dtype=np.int64)
    for b, g in enumerate(gens):
        if g._recent_dsts:
            history2d[b, _RING_CAP - len(g._recent_dsts):_RING_CAP] = (
                g._recent_dsts
            )
    rows, cols = np.nonzero(writes)
    history2d[rows, _RING_CAP + writers_before[rows, cols]] = dst[rows, cols]
    available = np.minimum(_RING_CAP, carried_lens[:, None] + writers_before)
    far_reg = np.where(is_fp, _FP_FAR_REG, _INT_FAR_REG)

    def resolve(dep, far):
        take = ~far & (dep <= available) & (available > 0)
        idx = np.where(take, _RING_CAP + writers_before - dep, 0)
        vals = np.take_along_axis(history2d, idx, axis=1)
        return np.where(take, vals, far_reg)

    src1 = resolve(dep1, far1)
    src2 = resolve(dep2, far2)

    # ---- pointer chase: src1 = previous load's destination --------
    loads_before = np.cumsum(is_load, axis=1) - is_load
    load_hist = np.full((B, count + 1), -1, dtype=np.int64)
    load_hist[:, 0] = lld0
    rows, cols = np.nonzero(is_load)
    load_hist[rows, 1 + loads_before[rows, cols]] = dst[rows, cols]
    prev_load = np.take_along_axis(load_hist, loads_before, axis=1)
    chased = is_load & chase & (prev_load >= 0)
    src1 = np.where(chased, prev_load, src1)
    any_load = is_load.any(axis=1)
    last_load_col = count - 1 - np.argmax(is_load[:, ::-1], axis=1)
    new_lld = np.where(
        any_load, dst[np.arange(B), last_load_col], lld0
    )

    # ---- branch outcomes and the pc chain -------------------------
    # Static site tables differ in length per sim; pad to the widest
    # (site_idx draws never exceed a sim's own table).
    S = max(len(g._branch_pcs) for g in gens)
    pcs2d = np.zeros((B, S), dtype=np.int64)
    bias2d = np.zeros((B, S), dtype=np.float64)
    hard2d = np.zeros((B, S), dtype=bool)
    tgt2d = np.zeros((B, S), dtype=np.int64)
    for b, g in enumerate(gens):
        L = len(g._branch_pcs)
        pcs2d[b, :L] = g._branch_pcs
        bias2d[b, :L] = g._branch_bias
        hard2d[b, :L] = g._branch_hard
        tgt2d[b, :L] = g._branch_targets
    site_pc = np.take_along_axis(pcs2d, site_idx, axis=1)
    site_hard = np.take_along_axis(hard2d, site_idx, axis=1)
    site_bias = np.take_along_axis(bias2d, site_idx, axis=1)
    site_tgt = np.take_along_axis(tgt2d, site_idx, axis=1)
    threshold = np.where(site_hard, 0.5, site_bias)
    taken_all = branch_draw < threshold
    taken = is_branch & taken_all
    target = np.where(is_branch, site_tgt, 0)
    hard = is_branch & site_hard
    # Where the pc resumes after each (potential) branch row; only branch
    # positions are ever gathered below.
    after_branch = np.where(taken_all, site_tgt, (site_pc + 4) % code_b)

    positions = np.arange(count, dtype=np.int64)
    last_branch = np.maximum.accumulate(
        np.where(is_branch, positions[None, :], -1), axis=1
    )
    ab_at_last = np.take_along_axis(
        after_branch, np.maximum(last_branch, 0), axis=1
    )
    base = np.where(last_branch >= 0, ab_at_last, pc0[:, None])
    steps = np.where(
        last_branch >= 0, positions[None, :] - last_branch - 1,
        positions[None, :],
    )
    pc = (base + 4 * steps) % code_b
    pc = np.where(is_branch, site_pc, pc)
    new_pc = (base[:, -1] + 4 * (steps[:, -1] + 1)) % code_b[:, 0]

    # ---- effective addresses (cold region: strided scan) ----------
    address = np.zeros((B, count), dtype=np.int64)
    address = np.where(
        is_mem & (regions == _REGION_HOT), _HOT_BASE + hot_off, address
    )
    address = np.where(
        is_mem & (regions == _REGION_WARM), _WARM_BASE + warm_off, address
    )
    address = np.where(
        is_mem & (regions == _REGION_XL), _XL_BASE + xl_off, address
    )
    cold_rows = is_mem & (regions == _REGION_COLD)
    cold_rank = np.cumsum(cold_rows, axis=1)
    cold_off = (
        cold0[:, None] + (cold_rank - 1) * line_b[:, None]
    ) % _COLD_SPAN
    address = np.where(cold_rows, _COLD_BASE + cold_off, address)
    new_cold = (cold0 + cold_rank[:, -1] * line_b) % _COLD_SPAN

    # ---- write back per-sim state and slice the batch -------------
    writers_total = writers_before[:, -1] + writes[:, -1]
    out = []
    for b, g in enumerate(gens):
        end = _RING_CAP + int(writers_total[b])
        keep = min(_RING_CAP, int(carried_lens[b]) + int(writers_total[b]))
        g._recent_dsts = history2d[b, end - keep:end].tolist()
        g._next_fp_dst = int(new_nfp[b])
        g._next_int_dst = int(new_nint[b])
        g._last_load_dst = int(new_lld[b])
        g._pc = int(new_pc[b])
        g._cold_ptr = int(new_cold[b])
        seq0 = g._seq
        g._seq += count
        out.append(TraceArrays(
            op=_DRAW_TO_CODE[ops[b]],
            dst=dst[b].astype(np.int16),
            src1=src1[b].astype(np.int16),
            src2=src2[b].astype(np.int16),
            pc=pc[b],
            address=address[b],
            taken=taken[b],
            target=target[b],
            hard=hard[b],
            seq0=seq0,
        ))
    return out
