"""Synthetic trace generation from a workload profile.

The generator turns a :class:`~repro.workloads.profiles.WorkloadProfile`
into a deterministic dynamic instruction stream with controlled instruction
mix, dependence distances, branch predictability, and memory footprint.
The same seed always yields the same trace, which RMT simulation relies on
(leading and trailing cores execute the same dynamic stream).
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngFactory
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.workloads.profiles import WorkloadProfile

__all__ = ["TraceGenerator", "generate_trace"]

# Architectural register allocation: integer dsts rotate through 0..29,
# FP dsts through 32..61.  Registers 30 and 62 act as long-lived "far"
# operands (values produced long ago, always ready).
_INT_DST_REGS = list(range(0, 30))
_FP_DST_REGS = list(range(32, 62))
_INT_FAR_REG = 30
_FP_FAR_REG = 62

# Non-overlapping virtual address regions (byte addresses).
_HOT_BASE = 0x0000_0000
_WARM_BASE = 0x1000_0000
_XL_BASE = 0x2000_0000
_COLD_BASE = 0x4000_0000
_COLD_SPAN = 0x3000_0000  # streaming wraps after ~768 MB

_REGION_HOT, _REGION_WARM, _REGION_XL, _REGION_COLD = 0, 1, 2, 3

_CHUNK = 8192


class TraceGenerator:
    """Deterministic synthetic instruction stream for one benchmark profile.

    Example::

        gen = TraceGenerator(get_profile("mcf"), seed=42)
        trace = gen.generate(100_000)
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0, line_bytes: int = 64):
        self.profile = profile
        self.seed = seed
        self._line_bytes = line_bytes
        rngs = RngFactory(seed).child(f"trace:{profile.name}")
        self._rng = rngs.stream("main")

        # Static branch sites: pc, taken bias, and whether the site is
        # inherently unpredictable ("hard").
        site_rng = rngs.stream("branch-sites")
        # A handful of hot loop branches dominate real programs; keeping the
        # static site count small lets the predictor train within the
        # simulated window the way it would over a SimPoint interval.
        num_sites = max(16, profile.code_bytes // 256)
        self._branch_pcs = (
            site_rng.integers(0, profile.code_bytes // 4, size=num_sites) * 4
        )
        self._branch_bias = np.where(
            site_rng.random(num_sites) < 0.5,
            site_rng.uniform(0.92, 0.995, size=num_sites),
            site_rng.uniform(0.005, 0.08, size=num_sites),
        )
        self._branch_hard = site_rng.random(num_sites) < profile.hard_branch_fraction
        self._branch_targets = (
            site_rng.integers(0, profile.code_bytes // 4, size=num_sites) * 4
        )

        # Mutable stream state.
        self._seq = 0
        self._pc = 0
        self._cold_ptr = 0
        self._recent_dsts: list[int] = []  # ring of recent destination registers
        self._next_int_dst = 0
        self._next_fp_dst = 0
        self._last_load_dst = -1
        self._buffer: list[Instruction] = []

    # ------------------------------------------------------------------
    def pretrain_predictor(self, predictor, rounds: int = 40) -> None:
        """Warm a branch predictor as billions of prior instructions would.

        Feeds each static branch site ``rounds`` outcomes drawn from its
        bias so that direction tables and the BTB reflect steady state
        before the measured window begins.  Uses a dedicated RNG stream, so
        it does not perturb trace generation.
        """
        rng = RngFactory(self.seed).child(
            f"trace:{self.profile.name}"
        ).stream("pretrain")
        draws = rng.random((rounds, len(self._branch_pcs)))
        for r in range(rounds):
            for s in range(len(self._branch_pcs)):
                threshold = 0.5 if self._branch_hard[s] else float(self._branch_bias[s])
                taken = bool(draws[r, s] < threshold)
                predictor.update(
                    int(self._branch_pcs[s]), taken, int(self._branch_targets[s])
                )

    def generate(self, count: int) -> list[Instruction]:
        """Generate the next ``count`` instructions of the stream.

        Internally the generator always draws randomness in fixed-size
        batches (buffering the excess), so splitting one ``generate(2n)``
        into two ``generate(n)`` calls yields the identical stream.
        """
        while len(self._buffer) < count:
            # Instrumented per chunk, not per instruction: one registry
            # lookup amortised over _CHUNK generated instructions.
            with span("trace.generate_chunk"):
                chunk = self._generate_chunk(_CHUNK)
            get_registry().counter("trace.instructions_generated").inc(len(chunk))
            self._buffer.extend(chunk)
        out = self._buffer[:count]
        del self._buffer[:count]
        return out

    # ------------------------------------------------------------------
    def _generate_chunk(self, count: int) -> list[Instruction]:
        p = self.profile
        rng = self._rng

        op_classes = [
            OpClass.LOAD, OpClass.STORE, OpClass.BRANCH,
            OpClass.IMUL, OpClass.FALU, OpClass.FMUL, OpClass.IALU,
        ]
        mix = np.array([
            p.frac_load, p.frac_store, p.frac_branch,
            p.frac_imul, p.frac_falu, p.frac_fmul, p.frac_ialu,
        ])
        mix = mix / mix.sum()
        ops = rng.choice(len(op_classes), size=count, p=mix)

        # Dependence distances: geometric with the profile's mean.
        dep1 = rng.geometric(1.0 / p.mean_dep_distance, size=count)
        dep2 = rng.geometric(1.0 / p.mean_dep_distance, size=count)
        far1 = rng.random(count) < p.far_operand_fraction
        far2 = rng.random(count) < p.far_operand_fraction

        regions = rng.choice(
            4, size=count, p=[p.p_hot, p.p_warm, p.p_xl, p.p_cold]
        )
        hot_off = rng.integers(0, max(1, p.hot_bytes // 8), size=count) * 8
        # Warm-region reuse is skewed, as in real programs: 70% of accesses
        # touch the hottest quarter of the region.  (This is what lets the
        # distributed-way NUCA policy's migration concentrate hot blocks
        # near the controller, Section 3.1.)
        warm_uniform = rng.integers(0, max(1, p.warm_bytes // 8), size=count) * 8
        warm_hot = rng.integers(0, max(1, p.warm_bytes // 32), size=count) * 8
        warm_off = np.where(rng.random(count) < 0.7, warm_hot, warm_uniform)
        xl_off = rng.integers(0, max(1, p.xl_bytes // 8), size=count) * 8
        site_idx = rng.integers(0, len(self._branch_pcs), size=count)
        branch_draw = rng.random(count)
        chase = rng.random(count) < p.pointer_chase_fraction

        instrs: list[Instruction] = []
        for i in range(count):
            op = op_classes[ops[i]]
            seq = self._seq
            self._seq += 1

            dst = -1
            if op.writes_register:
                if op.is_fp:
                    dst = _FP_DST_REGS[self._next_fp_dst]
                    self._next_fp_dst = (self._next_fp_dst + 1) % len(_FP_DST_REGS)
                else:
                    dst = _INT_DST_REGS[self._next_int_dst]
                    self._next_int_dst = (self._next_int_dst + 1) % len(_INT_DST_REGS)

            far_reg = _FP_FAR_REG if op.is_fp else _INT_FAR_REG
            src1 = far_reg if far1[i] else self._recent_dst(int(dep1[i]), far_reg)
            src2 = far_reg if far2[i] else self._recent_dst(int(dep2[i]), far_reg)
            if op is OpClass.BRANCH or op is OpClass.STORE:
                pass  # branches/stores still read both sources
            address = 0
            taken = False
            target = 0
            hard = False
            pc = self._pc

            if op is OpClass.LOAD and chase[i] and self._last_load_dst >= 0:
                # Pointer chase: the address register is the previous load's
                # destination, serializing the two accesses.
                src1 = self._last_load_dst

            if op.is_memory:
                region = regions[i]
                if region == _REGION_HOT:
                    address = _HOT_BASE + int(hot_off[i])
                elif region == _REGION_WARM:
                    address = _WARM_BASE + int(warm_off[i])
                elif region == _REGION_XL:
                    address = _XL_BASE + int(xl_off[i])
                else:
                    address = _COLD_BASE + self._cold_ptr
                    self._cold_ptr = (
                        self._cold_ptr + self._line_bytes
                    ) % _COLD_SPAN
            elif op is OpClass.BRANCH:
                site = int(site_idx[i])
                pc = int(self._branch_pcs[site])
                hard = bool(self._branch_hard[site])
                threshold = 0.5 if hard else float(self._branch_bias[site])
                taken = bool(branch_draw[i] < threshold)
                target = int(self._branch_targets[site])
                self._pc = target if taken else (pc + 4) % p.code_bytes

            if op is not OpClass.BRANCH:
                self._pc = (self._pc + 4) % p.code_bytes

            instr = Instruction(
                seq=seq, op=op, dst=dst, src1=src1, src2=src2, pc=pc,
                address=address, taken=taken, target=target, hard_branch=hard,
            )
            instrs.append(instr)
            if op is OpClass.LOAD:
                self._last_load_dst = dst
            if dst >= 0:
                self._recent_dsts.append(dst)
                if len(self._recent_dsts) > 64:
                    del self._recent_dsts[0]
        return instrs

    def _recent_dst(self, distance: int, fallback: int) -> int:
        """Destination register of the instruction ``distance`` back."""
        if not self._recent_dsts:
            return fallback
        if distance > len(self._recent_dsts):
            return fallback
        return self._recent_dsts[-distance]


def generate_trace(
    profile: WorkloadProfile, count: int, seed: int = 0
) -> list[Instruction]:
    """Convenience: build a generator and produce ``count`` instructions."""
    return TraceGenerator(profile, seed=seed).generate(count)
