"""Columnar (structure-of-arrays) representation of a dynamic trace.

:class:`TraceArrays` holds one NumPy array per instruction field instead
of one :class:`~repro.isa.instruction.Instruction` object per dynamic
instruction.  The hot paths — trace generation, the leading-core batch
scheduler, the RMT co-simulation — operate on these columns directly
(vectorized passes plus tight int-only loops), while object consumers
(fault injection, TMR, tests) materialize rows lazily through
``__getitem__`` / :meth:`to_instructions`.

Columns use the canonical integer op codes of
:data:`repro.isa.opcodes.OP_CODE`; every conversion back to objects goes
through ``.tolist()`` so consumers always see plain Python ints/bools,
never NumPy scalars.

Instances cached by :mod:`repro.common.memo` are frozen (arrays marked
read-only) so shared traces cannot be corrupted by any consumer; slicing
returns views, which keeps prefix reuse free of copies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_BY_CODE, OP_CODE

__all__ = ["TraceArrays", "TraceBatch"]

_COLUMNS = (
    "op", "dst", "src1", "src2", "pc", "address", "taken", "target", "hard",
)


@dataclass
class TraceArrays:
    """One dynamic instruction stream as parallel NumPy columns.

    Attributes:
        op: canonical op codes (:data:`repro.isa.opcodes.OP_CODE`), int8.
        dst: destination register or -1, int16.
        src1, src2: source registers, int16.
        pc: instruction addresses, int64.
        address: effective addresses (0 for non-memory ops), int64.
        taken: branch outcomes (False for non-branches), bool.
        target: branch targets (0 for non-branches), int64.
        hard: hard-branch flags (False for non-branches), bool.
        seq0: sequence number of row 0 in the overall dynamic stream.
    """

    op: np.ndarray
    dst: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    pc: np.ndarray
    address: np.ndarray
    taken: np.ndarray
    target: np.ndarray
    hard: np.ndarray
    seq0: int = 0

    # -- basics ---------------------------------------------------------
    def __post_init__(self):
        n = len(self.op)
        for name in _COLUMNS:
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} rows, "
                    f"expected {n}"
                )

    def __len__(self) -> int:
        return len(self.op)

    def __getitem__(self, index):
        """Row view: an int materializes one :class:`Instruction`, a slice
        returns a (zero-copy) :class:`TraceArrays` view."""
        if isinstance(index, slice):
            start = range(len(self))[index].start if len(self) else 0
            return TraceArrays(
                *(getattr(self, name)[index] for name in _COLUMNS),
                seq0=self.seq0 + start,
            )
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"row {index} out of range for {len(self)} rows")
        return Instruction(
            seq=self.seq0 + i,
            op=OP_BY_CODE[int(self.op[i])],
            dst=int(self.dst[i]),
            src1=int(self.src1[i]),
            src2=int(self.src2[i]),
            pc=int(self.pc[i]),
            address=int(self.address[i]),
            taken=bool(self.taken[i]),
            target=int(self.target[i]),
            hard_branch=bool(self.hard[i]),
        )

    def __iter__(self):
        return iter(self.to_instructions())

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceArrays):
            return NotImplemented
        return self.seq0 == other.seq0 and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in _COLUMNS
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls, seq0: int = 0) -> "TraceArrays":
        """A zero-row trace (the identity for :meth:`concat`)."""
        return cls(
            op=np.empty(0, dtype=np.int8),
            dst=np.empty(0, dtype=np.int16),
            src1=np.empty(0, dtype=np.int16),
            src2=np.empty(0, dtype=np.int16),
            pc=np.empty(0, dtype=np.int64),
            address=np.empty(0, dtype=np.int64),
            taken=np.empty(0, dtype=bool),
            target=np.empty(0, dtype=np.int64),
            hard=np.empty(0, dtype=bool),
            seq0=seq0,
        )

    @classmethod
    def from_instructions(cls, instructions) -> "TraceArrays":
        """Pack a list of :class:`Instruction` into columns (exact inverse
        of :meth:`to_instructions`)."""
        instructions = list(instructions)
        if not instructions:
            return cls.empty()
        return cls(
            op=np.array([OP_CODE[i.op] for i in instructions], dtype=np.int8),
            dst=np.array([i.dst for i in instructions], dtype=np.int16),
            src1=np.array([i.src1 for i in instructions], dtype=np.int16),
            src2=np.array([i.src2 for i in instructions], dtype=np.int16),
            pc=np.array([i.pc for i in instructions], dtype=np.int64),
            address=np.array([i.address for i in instructions], dtype=np.int64),
            taken=np.array([i.taken for i in instructions], dtype=bool),
            target=np.array([i.target for i in instructions], dtype=np.int64),
            hard=np.array(
                [i.hard_branch for i in instructions], dtype=bool
            ),
            seq0=instructions[0].seq,
        )

    @classmethod
    def concat(cls, parts) -> "TraceArrays":
        """Concatenate trace segments (``seq0`` taken from the first)."""
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(
            *(
                np.concatenate([getattr(p, name) for p in parts])
                for name in _COLUMNS
            ),
            seq0=parts[0].seq0,
        )

    # -- conversion -----------------------------------------------------
    def to_instructions(self) -> list[Instruction]:
        """Materialize every row as an :class:`Instruction` (plain Python
        ints/bools — the legacy list-of-objects API)."""
        make = Instruction
        ops = [OP_BY_CODE[c] for c in self.op.tolist()]
        return [
            make(
                seq=seq, op=op, dst=dst, src1=src1, src2=src2, pc=pc,
                address=address, taken=taken, target=target, hard_branch=hard,
            )
            for seq, op, dst, src1, src2, pc, address, taken, target, hard
            in zip(
                range(self.seq0, self.seq0 + len(ops)), ops,
                self.dst.tolist(), self.src1.tolist(), self.src2.tolist(),
                self.pc.tolist(), self.address.tolist(), self.taken.tolist(),
                self.target.tolist(), self.hard.tolist(),
            )
        ]

    # -- sharing --------------------------------------------------------
    def freeze(self) -> "TraceArrays":
        """Mark every column read-only (views inherit the flag); returns
        self for chaining.  Used by the memo cache before sharing."""
        for name in _COLUMNS:
            getattr(self, name).flags.writeable = False
        return self


# dataclass would autogenerate __eq__ element-wise over arrays (ambiguous
# truth value); keep the explicit column-wise comparison defined above.
assert all(f.name in _COLUMNS + ("seq0",) for f in fields(TraceArrays))


# ---------------------------------------------------------------------
@dataclass
class TraceBatch:
    """Many independent dynamic streams stacked along a batch axis.

    Each column is a ``(num_sims, max_len)`` array; sim ``b`` occupies the
    first ``lengths[b]`` entries of row ``b`` (the tail of shorter rows is
    padding and must never be read).  This is the container the lockstep
    batched generator (:func:`repro.isa.trace.generate_arrays_batch`)
    returns: one set of NumPy kernel passes produces every sim's stream,
    and :meth:`sim` hands each consumer a zero-copy row view.
    """

    op: np.ndarray
    dst: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    pc: np.ndarray
    address: np.ndarray
    taken: np.ndarray
    target: np.ndarray
    hard: np.ndarray
    lengths: np.ndarray          # per-sim valid row count, int64
    seq0s: tuple[int, ...] = ()  # per-sim sequence number of row 0

    def __post_init__(self):
        shape = self.op.shape
        for name in _COLUMNS:
            if getattr(self, name).shape != shape:
                raise ValueError(
                    f"column {name!r} has shape {getattr(self, name).shape}, "
                    f"expected {shape}"
                )
        if len(self.lengths) != shape[0]:
            raise ValueError(
                f"{len(self.lengths)} lengths for {shape[0]} sims"
            )
        if not self.seq0s:
            self.seq0s = (0,) * shape[0]

    def __len__(self) -> int:
        """Number of sims in the batch."""
        return self.op.shape[0]

    def sim(self, b: int) -> TraceArrays:
        """Sim ``b``'s stream as a zero-copy :class:`TraceArrays` view."""
        n = int(self.lengths[b])
        return TraceArrays(
            *(getattr(self, name)[b, :n] for name in _COLUMNS),
            seq0=self.seq0s[b],
        )

    def to_traces(self) -> list[TraceArrays]:
        """Every sim's stream (zero-copy views, batch order)."""
        return [self.sim(b) for b in range(len(self))]

    @classmethod
    def from_traces(cls, traces) -> "TraceBatch":
        """Stack per-sim :class:`TraceArrays` into one padded batch."""
        traces = list(traces)
        if not traces:
            raise ValueError("cannot build a TraceBatch from zero traces")
        lengths = np.array([len(t) for t in traces], dtype=np.int64)
        max_len = int(lengths.max())
        columns = {}
        for name in _COLUMNS:
            first = getattr(traces[0], name)
            stacked = np.zeros((len(traces), max_len), dtype=first.dtype)
            for b, trace in enumerate(traces):
                stacked[b, : len(trace)] = getattr(trace, name)
            columns[name] = stacked
        return cls(
            **columns,
            lengths=lengths,
            seq0s=tuple(t.seq0 for t in traces),
        )
