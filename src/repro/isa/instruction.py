"""The dynamic instruction record flowing through the simulators.

Instructions carry concrete 64-bit values so that the RMT checking protocol
is mechanistic: the checker recomputes each result from its (predicted)
operands and compares against the leading core's communicated result.  A
fault that flips a bit anywhere in the datapath therefore produces a real
mismatch rather than a modelled one.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass

__all__ = ["Instruction", "compute_result", "load_value_for_address", "MASK64"]

MASK64 = (1 << 64) - 1

# Integer registers 0..31, floating-point registers 32..63.
NUM_REGISTERS = 64


def load_value_for_address(address: int) -> int:
    """Deterministic synthetic memory contents: a 64-bit mix of the address.

    Acts as the simulated RAM: every observer of the same address sees the
    same value, without storing a byte array for multi-megabyte footprints.
    """
    x = (address * 0x9E3779B97F4A7C15) & MASK64
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & MASK64
    x ^= x >> 32
    return x


def compute_result(op: OpClass, a: int, b: int) -> int:
    """The synthetic ALU: a cheap deterministic function per op class."""
    if op is OpClass.IALU:
        return (a + b) & MASK64
    if op is OpClass.IMUL:
        return (a * (b | 1)) & MASK64
    if op is OpClass.FALU:
        return (a ^ ((b << 1) & MASK64)) & MASK64
    if op is OpClass.FMUL:
        return ((a | 1) * (b ^ 0x5555555555555555)) & MASK64
    if op is OpClass.BRANCH:
        return 0
    raise ValueError(f"compute_result not defined for {op}")


class Instruction:
    """One dynamic instruction of the synthetic trace.

    Attributes:
        seq: position in the dynamic instruction stream (0-based).
        op: operation class.
        dst: destination architectural register, or -1 if none.
        src1, src2: source architectural registers (-1 if unused).
        pc: instruction address (for I-cache and branch predictor indexing).
        address: effective address for loads/stores, else 0.
        taken: branch outcome (branches only).
        target: branch target pc (branches only).
        hard_branch: True if this branch's outcome is inherently
            unpredictable (drawn at random by the trace generator).
    """

    __slots__ = (
        "seq",
        "op",
        "dst",
        "src1",
        "src2",
        "pc",
        "address",
        "taken",
        "target",
        "hard_branch",
    )

    def __init__(
        self,
        seq: int,
        op: OpClass,
        dst: int = -1,
        src1: int = -1,
        src2: int = -1,
        pc: int = 0,
        address: int = 0,
        taken: bool = False,
        target: int = 0,
        hard_branch: bool = False,
    ):
        self.seq = seq
        self.op = op
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.pc = pc
        self.address = address
        self.taken = taken
        self.target = target
        self.hard_branch = hard_branch

    @property
    def is_load(self) -> bool:
        """True for loads."""
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for stores."""
        return self.op is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        """True for branches."""
        return self.op is OpClass.BRANCH

    @property
    def writes_register(self) -> bool:
        """True if the instruction produces a register result."""
        return self.dst >= 0

    def _key(self) -> tuple:
        return (
            self.seq, self.op, self.dst, self.src1, self.src2, self.pc,
            self.address, self.taken, self.target, self.hard_branch,
        )

    def __eq__(self, other) -> bool:
        # Value equality: rows lazily materialized from a columnar trace
        # (repro.isa.soa) compare equal to the eagerly built originals.
        if not isinstance(other, Instruction):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"Instruction(seq={self.seq}, op={self.op.value}, dst={self.dst}, "
            f"srcs=({self.src1},{self.src2}), pc={self.pc:#x})"
        )
