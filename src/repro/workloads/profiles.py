"""Statistical profiles of the 19 SPEC2k programs used by the paper.

The paper drives SimpleScalar with SPEC2k binaries over SimPoint windows; we
cannot ship those, so each benchmark is replaced by a *profile*: instruction
mix, dependency density, branch predictability, and a four-region memory
footprint.  The synthetic trace generated from a profile reproduces the
benchmark's architectural behaviour (IPC, cache miss rates, branch
misprediction rate) to the fidelity the paper's conclusions need — its
results depend only on these aggregate statistics, not on program semantics.

Memory regions:

* ``hot``  — small, L1-resident (L1 hits).
* ``warm`` — larger than L1 but within the 6 MB L2 (L1 misses, L2 hits).
* ``xl``   — 8-14 MB: resident only in the 15 MB configurations.  This is
  what makes the 15 MB cache reduce misses from 1.43 to 1.25 per 10k
  instructions (Section 3.3).
* ``cold`` — streaming, never reused: misses everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

__all__ = ["WorkloadProfile", "SPEC2K_PROFILES", "spec2k_suite", "get_profile"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark.

    Fractions ``frac_*`` describe the instruction mix; whatever is left over
    after loads, stores, branches, multiplies and FP ops is integer ALU work.
    ``mean_dep_distance`` is the mean distance (in dynamic instructions) from
    a consumer to its producer — small values mean long dependence chains and
    low ILP.  ``hard_branch_fraction`` is the fraction of branches whose
    outcome is inherently random (the knob for misprediction rate).
    """

    name: str
    is_fp: bool
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_imul: float = 0.01
    frac_falu: float = 0.0
    frac_fmul: float = 0.0
    mean_dep_distance: float = 6.0
    far_operand_fraction: float = 0.35
    hard_branch_fraction: float = 0.04
    # Fraction of loads whose address depends on the previous load's value
    # (pointer chasing): these serialize cache misses, the signature of
    # memory-bound SPEC programs like mcf and art.
    pointer_chase_fraction: float = 0.0
    hot_bytes: int = 16 * KB
    warm_bytes: int = 1 * MB
    xl_bytes: int = 10 * MB
    p_hot: float = 0.93
    p_warm: float = 0.06
    p_xl: float = 0.0
    p_cold: float = 0.01
    code_bytes: int = 16 * KB
    target_ipc: float = 1.5

    def __post_init__(self) -> None:
        mix = (
            self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_imul
            + self.frac_falu
            + self.frac_fmul
        )
        if mix > 1.0 + 1e-9:
            raise ConfigError(f"{self.name}: instruction mix sums to {mix} > 1")
        regions = self.p_hot + self.p_warm + self.p_xl + self.p_cold
        if abs(regions - 1.0) > 1e-9:
            raise ConfigError(
                f"{self.name}: memory region probabilities sum to {regions}"
            )
        if self.mean_dep_distance < 1.0:
            raise ConfigError(f"{self.name}: mean_dep_distance must be >= 1")

    @property
    def frac_ialu(self) -> float:
        """Integer-ALU fraction (the remainder of the mix)."""
        return 1.0 - (
            self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_imul
            + self.frac_falu
            + self.frac_fmul
        )

    @property
    def frac_memory(self) -> float:
        """Fraction of instructions that access data memory."""
        return self.frac_load + self.frac_store


def _int_profile(name: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, is_fp=False, **kwargs)


def _fp_profile(name: str, **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, is_fp=True, **kwargs)


# The 7 SPECint + 12 SPECfp programs the paper simulates (Figures 5/6).
# Parameters are calibrated so that the simulated IPC on the 2d-a baseline
# roughly matches Figure 6 and the averaged L2 miss statistics match
# Section 3.3 (1.43 -> 1.25 misses per 10k instructions when growing the
# L2 from 6 MB to 15 MB).
SPEC2K_PROFILES: dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        # ---- SPECint ----
        _int_profile(
            "bzip2",
            frac_load=0.26, frac_store=0.09, frac_branch=0.13,
            mean_dep_distance=5.0, pointer_chase_fraction=0.1,
            hard_branch_fraction=0.065,
            hot_bytes=24 * KB, warm_bytes=3 * MB,
            p_hot=0.9353, p_warm=0.0645, p_xl=0.0, p_cold=0.0002,
            target_ipc=1.6,
        ),
        _int_profile(
            "eon",
            frac_load=0.26, frac_store=0.14, frac_branch=0.09,
            frac_falu=0.08, frac_fmul=0.04,
            mean_dep_distance=9.0, hard_branch_fraction=0.015,
            hot_bytes=16 * KB, warm_bytes=256 * KB,
            p_hot=0.9881, p_warm=0.0118, p_xl=0.0, p_cold=0.0001,
            target_ipc=2.3,
        ),
        _int_profile(
            "gap",
            frac_load=0.25, frac_store=0.12, frac_branch=0.08,
            mean_dep_distance=3.5, pointer_chase_fraction=0.35,
            hard_branch_fraction=0.03,
            hot_bytes=24 * KB, warm_bytes=4 * MB,
            p_hot=0.9562, p_warm=0.0435, p_xl=0.0, p_cold=0.0003,
            target_ipc=1.3,
        ),
        _int_profile(
            "gzip",
            frac_load=0.21, frac_store=0.08, frac_branch=0.12,
            mean_dep_distance=6.0, pointer_chase_fraction=0.05,
            hard_branch_fraction=0.05,
            hot_bytes=32 * KB, warm_bytes=2 * MB,
            p_hot=0.9502, p_warm=0.0497, p_xl=0.0, p_cold=0.0001,
            target_ipc=1.8,
        ),
        _int_profile(
            "mcf",
            frac_load=0.31, frac_store=0.09, frac_branch=0.19,
            mean_dep_distance=3.0, pointer_chase_fraction=0.85,
            hard_branch_fraction=0.085,
            hot_bytes=8 * KB, warm_bytes=5 * MB, xl_bytes=12 * MB,
            p_hot=0.7869, p_warm=0.21, p_xl=0.0006, p_cold=0.0025,
            target_ipc=0.45,
        ),
        _int_profile(
            "twolf",
            frac_load=0.24, frac_store=0.07, frac_branch=0.12,
            mean_dep_distance=3.0, pointer_chase_fraction=0.35,
            hard_branch_fraction=0.09,
            hot_bytes=16 * KB, warm_bytes=1 * MB,
            p_hot=0.9203, p_warm=0.0795, p_xl=0.0, p_cold=0.0002,
            target_ipc=1.1,
        ),
        _int_profile(
            "vortex",
            frac_load=0.27, frac_store=0.17, frac_branch=0.10,
            mean_dep_distance=7.5, pointer_chase_fraction=0.05,
            hard_branch_fraction=0.012,
            hot_bytes=24 * KB, warm_bytes=3 * MB,
            p_hot=0.9628, p_warm=0.037, p_xl=0.0, p_cold=0.0002,
            target_ipc=2.0,
        ),
        _int_profile(
            "vpr",
            frac_load=0.28, frac_store=0.11, frac_branch=0.11,
            mean_dep_distance=3.5, pointer_chase_fraction=0.25,
            hard_branch_fraction=0.07,
            hot_bytes=16 * KB, warm_bytes=2 * MB,
            p_hot=0.9304, p_warm=0.0694, p_xl=0.0, p_cold=0.0002,
            target_ipc=1.3,
        ),
        # ---- SPECfp ----
        _fp_profile(
            "ammp",
            frac_load=0.27, frac_store=0.09, frac_branch=0.05,
            frac_falu=0.20, frac_fmul=0.12,
            mean_dep_distance=3.5, pointer_chase_fraction=0.65,
            hard_branch_fraction=0.02,
            hot_bytes=16 * KB, warm_bytes=5 * MB, xl_bytes=10 * MB,
            p_hot=0.9052, p_warm=0.094, p_xl=0.0004, p_cold=0.0004,
            target_ipc=0.8,
        ),
        _fp_profile(
            "applu",
            frac_load=0.29, frac_store=0.08, frac_branch=0.01,
            frac_falu=0.26, frac_fmul=0.17,
            mean_dep_distance=8.0, pointer_chase_fraction=0.2,
            hard_branch_fraction=0.01,
            hot_bytes=32 * KB, warm_bytes=4 * MB,
            p_hot=0.942, p_warm=0.0575, p_xl=0.0, p_cold=0.0005,
            target_ipc=1.3,
        ),
        _fp_profile(
            "apsi",
            frac_load=0.25, frac_store=0.12, frac_branch=0.03,
            frac_falu=0.24, frac_fmul=0.13,
            mean_dep_distance=7.0, pointer_chase_fraction=0.1,
            hard_branch_fraction=0.015,
            hot_bytes=32 * KB, warm_bytes=2 * MB,
            p_hot=0.956, p_warm=0.0438, p_xl=0.0, p_cold=0.0002,
            target_ipc=1.6,
        ),
        _fp_profile(
            "art",
            frac_load=0.28, frac_store=0.07, frac_branch=0.11,
            frac_falu=0.22, frac_fmul=0.10,
            mean_dep_distance=4.0, pointer_chase_fraction=0.65,
            hard_branch_fraction=0.02,
            hot_bytes=8 * KB, warm_bytes=3 * MB, xl_bytes=9 * MB,
            p_hot=0.8337, p_warm=0.165, p_xl=0.0008, p_cold=0.0005,
            target_ipc=0.65,
        ),
        _fp_profile(
            "equake",
            frac_load=0.33, frac_store=0.11, frac_branch=0.06,
            frac_falu=0.20, frac_fmul=0.11,
            mean_dep_distance=5.0, pointer_chase_fraction=0.35,
            hard_branch_fraction=0.02,
            hot_bytes=16 * KB, warm_bytes=4 * MB,
            p_hot=0.9166, p_warm=0.083, p_xl=0.0, p_cold=0.0004,
            target_ipc=1.0,
        ),
        _fp_profile(
            "fma3d",
            frac_load=0.29, frac_store=0.14, frac_branch=0.05,
            frac_falu=0.22, frac_fmul=0.12,
            mean_dep_distance=6.5, pointer_chase_fraction=0.15,
            hard_branch_fraction=0.02,
            hot_bytes=24 * KB, warm_bytes=3 * MB,
            p_hot=0.9412, p_warm=0.0585, p_xl=0.0, p_cold=0.0003,
            target_ipc=1.3,
        ),
        _fp_profile(
            "galgel",
            frac_load=0.28, frac_store=0.06, frac_branch=0.04,
            frac_falu=0.27, frac_fmul=0.15,
            mean_dep_distance=9.0, hard_branch_fraction=0.01,
            hot_bytes=32 * KB, warm_bytes=1 * MB,
            p_hot=0.9754, p_warm=0.0245, p_xl=0.0, p_cold=0.0001,
            target_ipc=2.0,
        ),
        _fp_profile(
            "lucas",
            frac_load=0.24, frac_store=0.10, frac_branch=0.01,
            frac_falu=0.28, frac_fmul=0.18,
            mean_dep_distance=5.0, pointer_chase_fraction=0.2,
            hard_branch_fraction=0.01,
            hot_bytes=16 * KB, warm_bytes=4 * MB,
            p_hot=0.9229, p_warm=0.0765, p_xl=0.0, p_cold=0.0006,
            target_ipc=1.1,
        ),
        _fp_profile(
            "mesa",
            frac_load=0.24, frac_store=0.14, frac_branch=0.08,
            frac_falu=0.14, frac_fmul=0.08,
            mean_dep_distance=9.5, hard_branch_fraction=0.012,
            hot_bytes=32 * KB, warm_bytes=512 * KB,
            p_hot=0.9852, p_warm=0.0147, p_xl=0.0, p_cold=0.0001,
            target_ipc=2.4,
        ),
        _fp_profile(
            "swim",
            frac_load=0.26, frac_store=0.09, frac_branch=0.01,
            frac_falu=0.30, frac_fmul=0.17,
            mean_dep_distance=9.0, pointer_chase_fraction=0.12,
            hard_branch_fraction=0.01,
            hot_bytes=32 * KB, warm_bytes=5 * MB, xl_bytes=12 * MB,
            p_hot=0.9068, p_warm=0.092, p_xl=0.0004, p_cold=0.0008,
            target_ipc=1.2,
        ),
        _fp_profile(
            "wupwise",
            frac_load=0.22, frac_store=0.11, frac_branch=0.04,
            frac_falu=0.25, frac_fmul=0.17,
            mean_dep_distance=8.0, pointer_chase_fraction=0.05,
            hard_branch_fraction=0.012,
            hot_bytes=32 * KB, warm_bytes=2 * MB,
            p_hot=0.961, p_warm=0.0388, p_xl=0.0, p_cold=0.0002,
            target_ipc=1.9,
        ),
    ]
}


def spec2k_suite() -> list[WorkloadProfile]:
    """All 19 profiles in alphabetical order (the paper's figures order)."""
    return [SPEC2K_PROFILES[name] for name in sorted(SPEC2K_PROFILES)]


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by benchmark name."""
    try:
        return SPEC2K_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(SPEC2K_PROFILES)}"
        ) from None
