"""SPEC2k-like workload profiles and suite helpers."""

from repro.workloads.profiles import (
    SPEC2K_PROFILES,
    WorkloadProfile,
    get_profile,
    spec2k_suite,
)

__all__ = [
    "SPEC2K_PROFILES",
    "WorkloadProfile",
    "get_profile",
    "spec2k_suite",
]
