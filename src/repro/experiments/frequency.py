"""Figure 7: the checker's frequency-residency histogram under DFS.

Aggregates the DFS residency of every benchmark's RMT co-simulation into
one histogram of "percentage of intervals at each normalized frequency";
the paper's result is a mode at 0.6x the 2 GHz peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel
from repro.experiments import engine
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    run_sim_task,
)
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = ["Fig7Result", "fig7_frequency_histogram"]


@dataclass
class Fig7Result:
    """Aggregate frequency residency across the suite."""

    fractions: dict[float, float]       # frequency level -> time fraction
    per_benchmark_mean: dict[str, float]
    backpressure_rate: float            # leading commits stalled, per instr

    @property
    def mode(self) -> float:
        """The most common frequency level (paper: 0.6)."""
        return max(self.fractions, key=self.fractions.get)

    @property
    def mean(self) -> float:
        """Residency-weighted mean frequency fraction."""
        total = sum(self.fractions.values())
        return sum(k * v for k, v in self.fractions.items()) / total

    def mean_frequency_hz(self, peak_hz: float = 2.0e9) -> float:
        """Mean absolute checker frequency (Section 4: ~1.26 GHz)."""
        return self.mean * peak_hz


def fig7_frequency_histogram(
    window: SimulationWindow = DEFAULT_WINDOW,
    chip: ChipModel = ChipModel.THREE_D_2A,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    jobs: int | None = None,
) -> Fig7Result:
    """Run the suite through the RMT co-simulation and aggregate DFS state."""
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    tasks = [
        SimTask(kind="rmt", profile=p, chip=chip, window=window, seed=seed)
        for p in benchmarks
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=1,
        label="fig7_frequency_histogram",
    )
    aggregate: dict[float, float] = {}
    per_benchmark: dict[str, float] = {}
    stalls = 0
    instructions = 0
    for profile, result in zip(benchmarks, results):
        for level, fraction in result.frequency_residency.items():
            aggregate[level] = aggregate.get(level, 0.0) + fraction
        per_benchmark[profile.name] = result.mean_frequency_fraction
        stalls += result.backpressure_commits
        instructions += result.leading.instructions
    total = sum(aggregate.values())
    fractions = {k: v / total for k, v in sorted(aggregate.items())}
    return Fig7Result(
        fractions=fractions,
        per_benchmark_mean=per_benchmark,
        backpressure_rate=stalls / max(1, instructions),
    )
