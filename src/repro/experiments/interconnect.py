"""Interconnect experiments: Table 4 and the Section 3.4 analysis."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel
from repro.experiments.thermal import standard_floorplan
from repro.interconnect.buses import intercore_buses, l2_pillar, total_d2d_vias
from repro.interconnect.vias import D2dViaModel
from repro.interconnect.wires import WireBudget, wire_budget

__all__ = [
    "Table4Row",
    "table4_bandwidth",
    "ViaSummary",
    "via_summary",
    "section34_wire_analysis",
]


@dataclass
class Table4Row:
    """One row of Table 4: a bus, its width, its pillar placement."""

    data: str
    width_bits: int
    placement: str


def table4_bandwidth() -> list[Table4Row]:
    """The die-to-die bandwidth requirement table (Table 4)."""
    rows = [
        Table4Row(bus.name, bus.width_bits, bus.via_block)
        for bus in intercore_buses()
    ]
    pillar = l2_pillar()
    rows.append(Table4Row(pillar.name, pillar.width_bits, pillar.via_block))
    return rows


@dataclass
class ViaSummary:
    """Die-to-die via totals (Section 3.4)."""

    num_vias: int
    per_via_power_mw: float
    total_power_mw: float
    total_area_mm2: float


def via_summary() -> ViaSummary:
    """Via count, power and area: 1409 vias, ~15 mW, 0.07 mm²."""
    model = D2dViaModel()
    count = total_d2d_vias()
    return ViaSummary(
        num_vias=count,
        per_via_power_mw=model.via_power_w() * 1e3,
        total_power_mw=model.total_power_w(count) * 1e3,
        total_area_mm2=model.total_area_mm2(count),
    )


def section34_wire_analysis() -> dict[str, WireBudget]:
    """Wire lengths / metal areas / power for the three chip models.

    Paper values: inter-core length 7490 mm (2D) vs 4279 mm (3D); metal
    area 1.57 vs 0.898 mm² (42% saving); L2 metal 2.36 / 5.49 / 4.61 mm²;
    wire power 5.1 / 15.5 / 12.1 W with the checker feed costing 1.8 W.
    """
    return {
        chip.value: wire_budget(standard_floorplan(chip, checker_power_w=7.0))
        for chip in (ChipModel.TWO_D_A, ChipModel.TWO_D_2A, ChipModel.THREE_D_2A)
    }
