"""Shared-cache pressure: why the extra 3D capacity matters for multicore.

Section 3.3 notes the SPEC working sets barely exercise 15 MB, but "the
extra cache space may be more valuable if it is shared by multiple
threads in a large multi-core chip [13]" (Hsu et al.).  This experiment
interleaves the memory streams of several co-running workloads into one
NUCA L2 and measures miss rates at 6 MB vs 15 MB — the multiprogrammed
pressure a single SPEC benchmark cannot create.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.nuca import NucaCache, bank_hops_for_model
from repro.common.config import ChipModel, NucaConfig
from repro.experiments import engine
from repro.isa.opcodes import OP_LOAD, OP_STORE
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = ["SharedCacheResult", "shared_cache_pressure"]

# Address-space offset between co-running threads (they do not share data).
_THREAD_STRIDE = 1 << 36


@dataclass
class SharedCacheResult:
    """Miss statistics of a multiprogrammed mix on one L2 capacity."""

    chip: str
    num_threads: int
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        """L2 miss rate over all threads' accesses."""
        return self.misses / self.accesses if self.accesses else 0.0


def _memory_stream(profile: WorkloadProfile, count: int, seed: int, thread: int):
    generator = TraceGenerator(profile, seed=seed + thread)
    arrays = generator.generate_arrays(count)
    ops = arrays.op
    memory_rows = (ops == OP_LOAD) | (ops == OP_STORE)
    base = thread * _THREAD_STRIDE
    for address in arrays.address[memory_rows].tolist():
        yield address + base


def _preload_thread(cache: NucaCache, profile: WorkloadProfile, thread: int) -> None:
    """Install a thread's resident regions (coldest first, as preload does
    for the single-core runs) so the measurement sees steady state."""
    base = thread * _THREAD_STRIDE
    regions = [
        (0x2000_0000, profile.xl_bytes if profile.p_xl > 0 else 0),
        (0x1000_0000, profile.warm_bytes),
        (0x0000_0000, profile.hot_bytes),
    ]
    for start, size in regions:
        for address in range(start, start + size, 64):
            cache.access(base + address)


def _pressure_point(
    task: tuple[ChipModel, int, tuple[str, ...], int, int],
) -> SharedCacheResult:
    """One (chip, thread-count) cell of the pressure matrix."""
    chip, num_threads, benchmarks, instructions_per_thread, seed = task
    cache = NucaCache(
        NucaConfig(num_banks=chip.l2_banks),
        bank_hops=bank_hops_for_model(chip),
    )
    profiles = [
        get_profile(benchmarks[t % len(benchmarks)])
        for t in range(num_threads)
    ]
    for t, profile in enumerate(profiles):
        _preload_thread(cache, profile, t)
    cache.stats.reset()
    streams = [
        _memory_stream(profile, instructions_per_thread, seed, t)
        for t, profile in enumerate(profiles)
    ]
    accesses = 0
    # Round-robin interleave the threads' memory accesses.
    active = list(streams)
    while active:
        still = []
        for stream in active:
            address = next(stream, None)
            if address is None:
                continue
            cache.access(address)
            accesses += 1
            still.append(stream)
        active = still
    return SharedCacheResult(
        chip=chip.value,
        num_threads=num_threads,
        accesses=accesses,
        misses=cache.misses,
    )


def shared_cache_pressure(
    benchmarks: tuple[str, ...] = ("gzip", "bzip2", "vortex", "gap"),
    instructions_per_thread: int = 40_000,
    seed: int = 42,
    chips: tuple[ChipModel, ...] = (ChipModel.TWO_D_A, ChipModel.TWO_D_2A),
    jobs: int | None = None,
) -> dict[str, list[SharedCacheResult]]:
    """Miss rates of 1..N co-running threads on each L2 capacity.

    Returns, per chip model, a list of results for thread counts 1..N
    (thread i runs ``benchmarks[i % len]``).  The default mix's resident
    working sets sum to ~12 MB at four threads: comfortably inside 15 MB,
    well past 6 MB.  The expected shape: with one
    thread the capacities are equivalent; as threads pile in, the 6 MB
    cache's miss rate rises much faster than the 15 MB one's — the Hsu et
    al. effect the paper cites.
    """
    thread_counts = range(1, len(benchmarks) + 1)
    tasks = [
        (chip, num_threads, tuple(benchmarks), instructions_per_thread, seed)
        for chip in chips
        for num_threads in thread_counts
    ]
    results = engine.parallel_map(
        _pressure_point, tasks, jobs=jobs, chunksize=1,
        label="shared_cache_pressure",
    )
    out: dict[str, list[SharedCacheResult]] = {}
    for (chip, _n, *_rest), row in zip(tasks, results):
        out.setdefault(chip.value, []).append(row)
    return out
