"""Robustness of the thermal conclusions to modelling parameters.

The paper's headline deltas (+4/+7 °C) come out of a thermal model with
package parameters the paper does not fully specify; EXPERIMENTS.md
documents where our calibration sits.  This driver sweeps the calibrated
parameters — sink resistance, grid resolution, package spreading — and
reports how the *deltas* move, demonstrating which conclusions are
robust to the substitution and which are package-sensitive.

Each parameter value is an independent solve, so the sweeps run through
the parallel engine; within one value the three configurations share the
memoized factorisation of their stack geometry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common import memo
from repro.common.config import ChipModel, ThermalConfig
from repro.experiments import engine
from repro.experiments.thermal import standard_floorplan

__all__ = ["SensitivityRow", "sink_resistance_sweep", "grid_resolution_sweep"]


@dataclass
class SensitivityRow:
    """Thermal deltas under one parameter setting."""

    parameter: str
    value: float
    baseline_2da_c: float
    delta_7w_c: float
    delta_15w_c: float


def _deltas(thermal: ThermalConfig) -> tuple[float, float, float]:
    cache = memo.get_cache()
    base = cache.solve_floorplan(
        standard_floorplan(ChipModel.TWO_D_A), thermal
    ).peak_c
    d7 = cache.solve_floorplan(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0), thermal
    ).peak_c - base
    d15 = cache.solve_floorplan(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0), thermal
    ).peak_c - base
    return base, d7, d15


def sink_resistance_sweep(
    values: tuple[float, ...] = (0.75, 1.5, 3.0, 6.0),
    jobs: int | None = None,
) -> list[SensitivityRow]:
    """The one calibrated parameter: convective sink resistance.

    The absolute baseline moves with it; the 3D deltas move far less —
    they are conduction-dominated, which is why calibrating once against
    2d-a is sound.
    """
    configs = [
        dataclasses.replace(
            ThermalConfig(), heatsink_resistance_k_per_w_mm2=value
        )
        for value in values
    ]
    results = engine.parallel_map(
        _deltas, configs, jobs=jobs, chunksize=1, label="sink_resistance_sweep"
    )
    return [
        SensitivityRow("sink_r_k_mm2_per_w", value, base, d7, d15)
        for value, (base, d7, d15) in zip(values, results)
    ]


def grid_resolution_sweep(
    values: tuple[int, ...] = (25, 50, 75),
    jobs: int | None = None,
) -> list[SensitivityRow]:
    """Discretisation check: the 50x50 grid (Table 3) is converged."""
    configs = [
        dataclasses.replace(ThermalConfig(), grid_rows=value, grid_cols=value)
        for value in values
    ]
    results = engine.parallel_map(
        _deltas, configs, jobs=jobs, chunksize=1, label="grid_resolution_sweep"
    )
    return [
        SensitivityRow("grid_resolution", value, base, d7, d15)
        for value, (base, d7, d15) in zip(values, results)
    ]
