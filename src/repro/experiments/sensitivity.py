"""Robustness of the thermal conclusions to modelling parameters.

The paper's headline deltas (+4/+7 °C) come out of a thermal model with
package parameters the paper does not fully specify; EXPERIMENTS.md
documents where our calibration sits.  This driver sweeps the calibrated
parameters — sink resistance, grid resolution, package spreading — and
reports how the *deltas* move, demonstrating which conclusions are
robust to the substitution and which are package-sensitive.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.config import ChipModel, ThermalConfig
from repro.experiments.thermal import standard_floorplan
from repro.thermal.hotspot import ChipThermalModel

__all__ = ["SensitivityRow", "sink_resistance_sweep", "grid_resolution_sweep"]


@dataclass
class SensitivityRow:
    """Thermal deltas under one parameter setting."""

    parameter: str
    value: float
    baseline_2da_c: float
    delta_7w_c: float
    delta_15w_c: float


def _deltas(thermal: ThermalConfig) -> tuple[float, float, float]:
    base = ChipThermalModel(
        standard_floorplan(ChipModel.TWO_D_A), thermal
    ).solve().peak_c
    d7 = ChipThermalModel(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0), thermal
    ).solve().peak_c - base
    d15 = ChipThermalModel(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0), thermal
    ).solve().peak_c - base
    return base, d7, d15


def sink_resistance_sweep(
    values: tuple[float, ...] = (0.75, 1.5, 3.0, 6.0),
) -> list[SensitivityRow]:
    """The one calibrated parameter: convective sink resistance.

    The absolute baseline moves with it; the 3D deltas move far less —
    they are conduction-dominated, which is why calibrating once against
    2d-a is sound.
    """
    rows = []
    for value in values:
        thermal = dataclasses.replace(
            ThermalConfig(), heatsink_resistance_k_per_w_mm2=value
        )
        base, d7, d15 = _deltas(thermal)
        rows.append(SensitivityRow("sink_r_k_mm2_per_w", value, base, d7, d15))
    return rows


def grid_resolution_sweep(
    values: tuple[int, ...] = (25, 50, 75),
) -> list[SensitivityRow]:
    """Discretisation check: the 50x50 grid (Table 3) is converged."""
    rows = []
    for value in values:
        thermal = dataclasses.replace(
            ThermalConfig(), grid_rows=value, grid_cols=value
        )
        base, d7, d15 = _deltas(thermal)
        rows.append(SensitivityRow("grid_resolution", value, base, d7, d15))
    return rows
