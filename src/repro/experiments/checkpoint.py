"""Resumable sweep checkpoints: completed task results persisted as JSONL.

When checkpointing is enabled (:func:`set_checkpoint_dir`, or the CLI's
``--checkpoint`` / ``--resume`` flags), the engine appends one line per
completed task to ``<dir>/<run_id>/<sweep_label>.jsonl`` as the sweep
progresses.  Each line carries the task's key, its position, its wall
time, and the pickled result + metric delta, so an interrupted run —
Ctrl-C, a crash, a power cut — restarts with ``--resume <run_id>`` and
re-executes only the tasks that never finished.

Restoration is **chunk-granular**: a chunk (the engine's worker-placement
unit) is restored only when *every* task in it is checkpointed, and a
partially-completed chunk re-runs whole.  That is what keeps merged
metrics bit-identical across a resume boundary — per-worker memo caches
warm up chunk-by-chunk, so re-running a full chunk reproduces exactly the
hit/miss pattern the uninterrupted run would have produced.

Task keys combine the task's position in the sweep with a hash of its
description (``task_key()`` when the item provides one, ``repr``
otherwise), so a resume with different parameters simply misses the
checkpoint and re-runs — stale results are never resurrected.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigError
from repro.obs import events

__all__ = [
    "set_checkpoint_dir",
    "checkpoint_dir",
    "task_key",
    "SweepCheckpoint",
    "open_sweep",
    "GcReport",
    "gc_checkpoints",
]

_DIR: Path | None = None


def set_checkpoint_dir(path: str | Path | None) -> None:
    """Enable checkpointing under ``path`` (``None`` turns it off)."""
    global _DIR
    _DIR = Path(path) if path is not None else None


def checkpoint_dir() -> Path | None:
    """The active checkpoint root, if checkpointing is enabled."""
    return _DIR


def task_key(item, index: int) -> str:
    """A stable key for one sweep task: position + description hash."""
    describe = getattr(item, "task_key", None)
    body = describe() if callable(describe) else repr(item)
    digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    return f"{index:05d}:{digest}"


def _encode(obj) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class SweepCheckpoint:
    """Append-only JSONL checkpoint for one sweep of one run."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.records: dict[str, dict] = {}
        self.truncated_lines = 0
        torn = False
        if self.path.exists():
            text = self.path.read_text(encoding="utf-8")
            torn = bool(text) and not text.endswith("\n")
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    record["key"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    # A torn line from a hard kill mid-write; everything
                    # before it is intact, the affected task re-runs.
                    self.truncated_lines += 1
                    continue
                self.records[record["key"]] = record
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.truncated_lines:
            events.emit(
                "checkpoint_truncated",
                path=str(self.path),
                skipped_lines=self.truncated_lines,
                restored_records=len(self.records),
            )
        self._fh = self.path.open("a", encoding="utf-8")
        if torn:
            # Seal the torn line so the next append starts fresh.
            self._fh.write("\n")

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def append(self, key: str, index: int, task: str, wall_s: float,
               result, metrics) -> None:
        """Persist one completed task (flushed line-by-line)."""
        record = {
            "key": key,
            "index": index,
            "task": task,
            "wall_s": round(wall_s, 6),
            "result": _encode(result),
            "metrics": _encode(metrics),
        }
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self.records[key] = record

    def restore(self, key: str) -> tuple[object, float, object] | None:
        """The stored ``(result, wall_s, metrics)`` for ``key``, if any.

        A record whose payload does not decode (truncated base64 or
        pickle from a torn write) is treated as missing — the task
        simply re-runs — rather than aborting the resume.
        """
        record = self.records.get(key)
        if record is None:
            return None
        try:
            return (
                _decode(record["result"]),
                float(record["wall_s"]),
                _decode(record["metrics"]),
            )
        except Exception:
            self.records.pop(key, None)
            events.emit(
                "checkpoint_truncated",
                path=str(self.path),
                skipped_lines=1,
                task_key=key,
            )
            return None

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._fh.close()


def open_sweep(label: str, run_id: str) -> SweepCheckpoint | None:
    """The checkpoint for one sweep, or ``None`` when checkpointing is off."""
    if _DIR is None:
        return None
    safe = re.sub(r"[^\w.-]+", "_", label) or "sweep"
    return SweepCheckpoint(_DIR / run_id / f"{safe}.jsonl")


# ---------------------------------------------------------------------
# Retention: checkpoints accumulate one directory per run id and nothing
# ever removed them; ``repro gc`` applies a keep-last-N / max-age policy.


@dataclass
class GcReport:
    """What one retention pass removed (or would remove, under dry-run)."""

    removed: list[str] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    reclaimed_bytes: int = 0
    reclaimed_files: int = 0
    dry_run: bool = False


def _run_mtime(run_dir: Path) -> float:
    """A run's last activity: the newest mtime among its files (appends
    touch the files, not the directory).  Raises ``OSError`` only when
    the run directory itself is unreadable."""
    newest = run_dir.stat().st_mtime
    for path in run_dir.rglob("*"):
        try:
            newest = max(newest, path.stat().st_mtime)
        except OSError:
            continue
    return newest


def _run_size(run_dir: Path) -> tuple[int, int]:
    """Total ``(bytes, file_count)`` under one run directory, skipping
    entries that cannot be stat'ed."""
    total = 0
    count = 0
    try:
        paths = list(run_dir.rglob("*"))
    except OSError:
        return 0, 0
    for path in paths:
        try:
            if path.is_file():
                total += path.stat().st_size
                count += 1
        except OSError:
            continue
    return total, count


def gc_checkpoints(
    root: str | Path,
    keep_last: int | None = None,
    max_age_days: float | None = None,
    dry_run: bool = False,
) -> GcReport:
    """Remove old checkpoint run directories under ``root``.

    A run directory is removed when it falls outside the ``keep_last``
    most recently active runs *or* its last activity is older than
    ``max_age_days`` — at least one knob must be given.  Activity is the
    newest file mtime inside the run, so a long sweep that is still
    appending never looks stale.  With ``dry_run`` nothing is deleted;
    the report lists what a real pass would reclaim, including the byte
    and file counts.  A run directory whose entries cannot be read
    (permissions, races with concurrent deletion) is skipped — listed in
    ``report.skipped`` — instead of aborting the pass.
    """
    if keep_last is None and max_age_days is None:
        raise ConfigError(
            "gc_checkpoints needs a retention policy: keep_last and/or "
            "max_age_days"
        )
    if keep_last is not None and keep_last < 0:
        raise ConfigError(f"keep_last must be >= 0, got {keep_last}")
    if max_age_days is not None and max_age_days < 0:
        raise ConfigError(f"max_age_days must be >= 0, got {max_age_days}")
    report = GcReport(dry_run=dry_run)
    root = Path(root)
    if not root.is_dir():
        return report
    mtimes: dict[str, float] = {}
    runs = []
    for path in sorted(root.iterdir()):
        try:
            if not path.is_dir():
                continue
            mtimes[path.name] = _run_mtime(path)
        except OSError:
            report.skipped.append(path.name)
            continue
        runs.append(path)
    runs.sort(key=lambda path: (-mtimes[path.name], path.name))
    now = time.time()
    for rank, run_dir in enumerate(runs):
        stale = (keep_last is not None and rank >= keep_last) or (
            max_age_days is not None
            and now - mtimes[run_dir.name] > max_age_days * 86400.0
        )
        if not stale:
            report.kept.append(run_dir.name)
            continue
        report.removed.append(run_dir.name)
        size, files = _run_size(run_dir)
        report.reclaimed_bytes += size
        report.reclaimed_files += files
        if not dry_run:
            shutil.rmtree(run_dir, ignore_errors=True)
    return report
