"""Resumable sweep checkpoints: completed task results persisted as JSONL.

When checkpointing is enabled (:func:`set_checkpoint_dir`, or the CLI's
``--checkpoint`` / ``--resume`` flags), the engine appends one line per
completed task to ``<dir>/<run_id>/<sweep_label>.jsonl`` as the sweep
progresses.  Each line carries the task's key, its position, its wall
time, and the pickled result + metric delta, so an interrupted run —
Ctrl-C, a crash, a power cut — restarts with ``--resume <run_id>`` and
re-executes only the tasks that never finished.

Restoration is **chunk-granular**: a chunk (the engine's worker-placement
unit) is restored only when *every* task in it is checkpointed, and a
partially-completed chunk re-runs whole.  That is what keeps merged
metrics bit-identical across a resume boundary — per-worker memo caches
warm up chunk-by-chunk, so re-running a full chunk reproduces exactly the
hit/miss pattern the uninterrupted run would have produced.

Task keys combine the task's position in the sweep with a hash of its
description (``task_key()`` when the item provides one, ``repr``
otherwise), so a resume with different parameters simply misses the
checkpoint and re-runs — stale results are never resurrected.

Durability contract
-------------------
Appends are flushed line-by-line and fsynced on a policy set by the
``REPRO_CKPT_FSYNC`` environment variable:

* unset (default) — fsync at most every 2 seconds of appends; a hard
  kill loses at most the last interval's tasks, never the file;
* a number ``N`` — fsync when ``N`` seconds have passed since the last
  one (``0`` fsyncs every line: maximum durability, slowest);
* ``line``/``always`` — synonym for ``0``;
* ``off``/``never`` — flush only, trust the OS page cache.

A ``kill -9`` at any byte boundary leaves at worst one torn final line,
which restoration skips (the affected chunk re-runs).  When a sweep
completes, :meth:`SweepCheckpoint.finalize` publishes a
``<name>.jsonl.done`` marker via tmp-file + fsync + atomic rename, so
"this checkpoint is the complete record of its sweep" is itself a
crash-consistent fact.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.errors import ConfigError
from repro.obs import events

__all__ = [
    "FSYNC_ENV_VAR",
    "set_checkpoint_dir",
    "checkpoint_dir",
    "task_key",
    "fsync_interval",
    "SweepCheckpoint",
    "open_sweep",
    "scan_sweep",
    "GcReport",
    "gc_checkpoints",
]

_DIR: Path | None = None


def set_checkpoint_dir(path: str | Path | None) -> None:
    """Enable checkpointing under ``path`` (``None`` turns it off)."""
    global _DIR
    _DIR = Path(path) if path is not None else None


def checkpoint_dir() -> Path | None:
    """The active checkpoint root, if checkpointing is enabled."""
    return _DIR


def task_key(item, index: int) -> str:
    """A stable key for one sweep task: position + description hash."""
    describe = getattr(item, "task_key", None)
    body = describe() if callable(describe) else repr(item)
    digest = hashlib.sha256(body.encode()).hexdigest()[:16]
    return f"{index:05d}:{digest}"


FSYNC_ENV_VAR = "REPRO_CKPT_FSYNC"
_DEFAULT_FSYNC_INTERVAL_S = 2.0


def fsync_interval() -> float | None:
    """The checkpoint durability policy from ``REPRO_CKPT_FSYNC``.

    ``None`` means never fsync (flush only), ``0.0`` means fsync every
    appended line, a positive value is the minimum number of seconds
    between fsyncs.  Unset defaults to ``2.0``.
    """
    raw = os.environ.get(FSYNC_ENV_VAR, "").strip().lower()
    if not raw:
        return _DEFAULT_FSYNC_INTERVAL_S
    if raw in ("off", "no", "never", "false"):
        return None
    if raw in ("line", "always", "on", "true"):
        return 0.0
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"{FSYNC_ENV_VAR} must be a number of seconds, 'line', or "
            f"'off', got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(
            f"{FSYNC_ENV_VAR} must be >= 0, got {value}"
        )
    return value


def _done_path(path: Path) -> Path:
    return path.parent / (path.name + ".done")


def _encode(obj) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class SweepCheckpoint:
    """Append-only JSONL checkpoint for one sweep of one run."""

    def __init__(self, path: str | Path, chaos=None):
        self.path = Path(path)
        self.records: dict[str, dict] = {}
        self.quarantined: dict[str, dict] = {}
        self.truncated_lines = 0
        self.finalized = _done_path(self.path).exists()
        torn = False
        if self.path.exists():
            text = self.path.read_text(encoding="utf-8")
            torn = bool(text) and not text.endswith("\n")
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    record["key"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    # A torn line from a hard kill mid-write; everything
                    # before it is intact, the affected task re-runs.
                    self.truncated_lines += 1
                    continue
                if record.get("quarantined"):
                    # Quarantine records carry no payload and are never
                    # restored: a resume gives the task one fresh chance.
                    self.quarantined[record["key"]] = record
                else:
                    self.records[record["key"]] = record
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.truncated_lines:
            events.emit(
                "checkpoint_truncated",
                path=str(self.path),
                skipped_lines=self.truncated_lines,
                restored_records=len(self.records),
            )
        self._fh = self.path.open("a", encoding="utf-8")
        if torn:
            # Seal the torn line so the next append starts fresh.
            self._fh.write("\n")
        self._fsync_interval = fsync_interval()
        self._last_fsync = time.monotonic()
        # Chaos short-write: armed only for files with no prior torn
        # line, and one-shot, so a resumed run converges instead of
        # tearing the same record forever.
        self._chaos = chaos
        self._short_write_armed = (
            chaos is not None
            and getattr(chaos, "short_write_p", 0.0) > 0.0
            and self.truncated_lines == 0
            and not torn
        )
        self._torn_tail = False

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def _write_line(self, record: dict, index: int) -> bool:
        """Append one JSONL record, honouring the fsync policy and the
        chaos ``short-write`` fault.  Returns True when the full line
        (with newline) was written."""
        if self._torn_tail:
            # Seal our own chaos-torn line exactly like __init__ seals a
            # real crash's.
            self._fh.write("\n")
            self._torn_tail = False
        line = json.dumps(record) + "\n"
        if (
            self._short_write_armed
            and self._chaos.short_writes(index)
        ):
            self._short_write_armed = False
            self._torn_tail = True
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            self._maybe_fsync()
            return False
        self._fh.write(line)
        self._fh.flush()
        self._maybe_fsync()
        return True

    def _maybe_fsync(self, force: bool = False) -> None:
        if self._fsync_interval is None:
            return
        now = time.monotonic()
        if (
            force
            or self._fsync_interval == 0.0
            or now - self._last_fsync >= self._fsync_interval
        ):
            os.fsync(self._fh.fileno())
            self._last_fsync = now

    def append(self, key: str, index: int, task: str, wall_s: float,
               result, metrics) -> None:
        """Persist one completed task (flushed and fsynced per policy)."""
        record = {
            "key": key,
            "index": index,
            "task": task,
            "wall_s": round(wall_s, 6),
            "result": _encode(result),
            "metrics": _encode(metrics),
        }
        if self._write_line(record, index):
            self.records[key] = record

    def append_quarantine(self, key: str, index: int, task: str,
                          error: str) -> None:
        """Record a quarantined task: no payload, just the verdict.

        The record documents *why* the slot is empty; restoration never
        returns it, so a later ``--resume`` re-runs the task once more
        on fresh workers.
        """
        record = {
            "key": key,
            "index": index,
            "task": task,
            "quarantined": True,
            "error": error[:500],
        }
        if self._write_line(record, index):
            self.quarantined[key] = record

    def restore(self, key: str) -> tuple[object, float, object] | None:
        """The stored ``(result, wall_s, metrics)`` for ``key``, if any.

        A record whose payload does not decode (truncated base64 or
        pickle from a torn write) is treated as missing — the task
        simply re-runs — rather than aborting the resume.
        """
        record = self.records.get(key)
        if record is None:
            return None
        try:
            return (
                _decode(record["result"]),
                float(record["wall_s"]),
                _decode(record["metrics"]),
            )
        except Exception:
            self.records.pop(key, None)
            events.emit(
                "checkpoint_truncated",
                path=str(self.path),
                skipped_lines=1,
                task_key=key,
            )
            return None

    def finalize(self, tasks: int, failures: int = 0) -> None:
        """Atomically publish a ``<name>.jsonl.done`` completion marker.

        The JSONL itself is fsynced first, then the marker is written to
        a tmp file, fsynced, and renamed into place — a crash at any
        point leaves either no marker (sweep treated as interrupted,
        resumable) or a complete one, never a torn marker.
        """
        self._fh.flush()
        self._maybe_fsync(force=True)
        done = _done_path(self.path)
        tmp = done.parent / (done.name + ".tmp")
        payload = {
            "tasks": tasks,
            "records": len(self.records),
            "quarantined": len(self.quarantined),
            "failures": failures,
            "completed_unix": round(time.time(), 3),
        }
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload) + "\n")
            fh.flush()
            if self._fsync_interval is not None:
                os.fsync(fh.fileno())
        os.replace(tmp, done)
        if self._fsync_interval is not None:
            try:
                dir_fd = os.open(str(done.parent), os.O_RDONLY)
            except OSError:
                pass
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        self.finalized = True

    def close(self) -> None:
        """Flush, fsync per policy, and close the underlying file."""
        try:
            self._fh.flush()
            self._maybe_fsync(force=True)
        except (OSError, ValueError):
            pass
        self._fh.close()


def open_sweep(label: str, run_id: str,
               chaos=None) -> SweepCheckpoint | None:
    """The checkpoint for one sweep, or ``None`` when checkpointing is off."""
    if _DIR is None:
        return None
    safe = re.sub(r"[^\w.-]+", "_", label) or "sweep"
    return SweepCheckpoint(_DIR / run_id / f"{safe}.jsonl", chaos=chaos)


def scan_sweep(path: str | Path) -> dict:
    """A read-only summary of one sweep checkpoint file.

    Unlike constructing :class:`SweepCheckpoint`, scanning opens nothing
    for writing, seals nothing, and decodes no pickled payloads — safe
    to run against a live or dead run's files.  Used by the partial
    report.
    """
    path = Path(path)
    summary = {
        "label": path.stem,
        "path": str(path),
        "tasks_committed": 0,
        "wall_s": 0.0,
        "quarantined": [],
        "truncated_lines": 0,
        "finalized": _done_path(path).exists(),
        "finalize_info": None,
    }
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return summary
    committed: dict[str, float] = {}
    quarantined: dict[str, dict] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            record["key"]
        except (json.JSONDecodeError, TypeError, KeyError):
            summary["truncated_lines"] += 1
            continue
        if record.get("quarantined"):
            quarantined[record["key"]] = {
                "task_key": record["key"],
                "index": record.get("index"),
                "error": record.get("error", ""),
            }
        else:
            committed[record["key"]] = float(record.get("wall_s", 0.0))
    summary["tasks_committed"] = len(committed)
    summary["wall_s"] = round(sum(committed.values()), 6)
    summary["quarantined"] = sorted(
        quarantined.values(), key=lambda q: (q["index"] is None, q["index"])
    )
    if summary["finalized"]:
        try:
            summary["finalize_info"] = json.loads(
                _done_path(path).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            summary["finalize_info"] = None
    return summary


# ---------------------------------------------------------------------
# Retention: checkpoints accumulate one directory per run id and nothing
# ever removed them; ``repro gc`` applies a keep-last-N / max-age policy.


@dataclass
class GcReport:
    """What one retention pass removed (or would remove, under dry-run)."""

    removed: list[str] = field(default_factory=list)
    kept: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    reclaimed_bytes: int = 0
    reclaimed_files: int = 0
    dry_run: bool = False


def _run_mtime(run_dir: Path) -> float:
    """A run's last activity: the newest mtime among its files (appends
    touch the files, not the directory).  Raises ``OSError`` only when
    the run directory itself is unreadable."""
    newest = run_dir.stat().st_mtime
    for path in run_dir.rglob("*"):
        try:
            newest = max(newest, path.stat().st_mtime)
        except OSError:
            continue
    return newest


def _run_size(run_dir: Path) -> tuple[int, int]:
    """Total ``(bytes, file_count)`` under one run directory, skipping
    entries that cannot be stat'ed."""
    total = 0
    count = 0
    try:
        paths = list(run_dir.rglob("*"))
    except OSError:
        return 0, 0
    for path in paths:
        try:
            if path.is_file():
                total += path.stat().st_size
                count += 1
        except OSError:
            continue
    return total, count


def gc_checkpoints(
    root: str | Path,
    keep_last: int | None = None,
    max_age_days: float | None = None,
    dry_run: bool = False,
) -> GcReport:
    """Remove old checkpoint run directories under ``root``.

    A run directory is removed when it falls outside the ``keep_last``
    most recently active runs *or* its last activity is older than
    ``max_age_days`` — at least one knob must be given.  Activity is the
    newest file mtime inside the run, so a long sweep that is still
    appending never looks stale.  With ``dry_run`` nothing is deleted;
    the report lists what a real pass would reclaim, including the byte
    and file counts.  A run directory whose entries cannot be read
    (permissions, races with concurrent deletion) is skipped — listed in
    ``report.skipped`` — instead of aborting the pass.
    """
    if keep_last is None and max_age_days is None:
        raise ConfigError(
            "gc_checkpoints needs a retention policy: keep_last and/or "
            "max_age_days"
        )
    if keep_last is not None and keep_last < 0:
        raise ConfigError(f"keep_last must be >= 0, got {keep_last}")
    if max_age_days is not None and max_age_days < 0:
        raise ConfigError(f"max_age_days must be >= 0, got {max_age_days}")
    report = GcReport(dry_run=dry_run)
    root = Path(root)
    if not root.is_dir():
        return report
    mtimes: dict[str, float] = {}
    runs = []
    for path in sorted(root.iterdir()):
        try:
            if not path.is_dir():
                continue
            mtimes[path.name] = _run_mtime(path)
        except OSError:
            report.skipped.append(path.name)
            continue
        runs.append(path)
    runs.sort(key=lambda path: (-mtimes[path.name], path.name))
    now = time.time()
    for rank, run_dir in enumerate(runs):
        stale = (keep_last is not None and rank >= keep_last) or (
            max_age_days is not None
            and now - mtimes[run_dir.name] > max_age_days * 86400.0
        )
        if not stale:
            report.kept.append(run_dir.name)
            continue
        report.removed.append(run_dir.name)
        size, files = _run_size(run_dir)
        report.reclaimed_bytes += size
        report.reclaimed_files += files
        if not dry_run:
            shutil.rmtree(run_dir, ignore_errors=True)
    return report
