"""Shared experiment plumbing: build and run one benchmark on one chip model.

All experiment drivers (one per table/figure of the paper) funnel through
these helpers so that every result in EXPERIMENTS.md comes from the same
simulation pipeline, whether a sweep runs serially or through the
parallel engine (:mod:`repro.experiments.engine`).  Immutable artifacts —
the generated trace and the pretrained predictor state — come from the
process-local cache in :mod:`repro.common.memo`; mutable state (the
memory hierarchy, queues, DFS controllers) is rebuilt per simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import memo
from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    NucaConfig,
    NucaPolicy,
)
from repro.core.leading import LeadingCoreTiming, LeadingRunResult
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator, RmtTimingResult
from repro.obs.metrics import MetricsSnapshot, get_registry
from repro.obs.tracing import span
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = [
    "SimulationWindow",
    "build_memory",
    "simulate_leading",
    "simulate_rmt",
    "SimTask",
    "run_sim_task",
    "run_sim_task_with_metrics",
    "prime_sim_tasks",
    "run_batch",
    "DEFAULT_WINDOW",
]


@dataclass(frozen=True)
class SimulationWindow:
    """How many instructions to warm up and to measure.

    The paper measures 100M-instruction SimPoint windows; a pure-Python
    simulator measures proportionally smaller windows after explicit cache
    preloading and predictor pre-training, which recover the steady-state
    behaviour the long window would produce.
    """

    warmup: int = 10_000
    measured: int = 40_000

    @property
    def total(self) -> int:
        """Warmup plus measured instruction count."""
        return self.warmup + self.measured


DEFAULT_WINDOW = SimulationWindow()


def build_memory(
    chip: ChipModel,
    leading: LeadingCoreConfig | None = None,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
) -> MemoryHierarchy:
    """The memory hierarchy for one of the paper's chip models."""
    leading = leading or LeadingCoreConfig()
    nuca = NucaConfig(num_banks=chip.l2_banks, policy=policy)
    return MemoryHierarchy(leading, nuca, chip)


def _prepare(
    profile: WorkloadProfile | str,
    chip: ChipModel,
    window: SimulationWindow,
    seed: int,
    policy: NucaPolicy,
    leading: LeadingCoreConfig | None,
):
    if isinstance(profile, str):
        profile = get_profile(profile)
    leading = leading or LeadingCoreConfig()
    # The hierarchy is stateful (tags mutate during the run), so it is
    # rebuilt and re-preloaded for every simulation; the trace and the
    # pretrained predictor are memoized (the predictor as a clone).
    with span("sim.prepare"):
        memory = build_memory(chip, leading, policy)
        memory.preload_profile(profile)
        cache = memo.get_cache()
        with span("sim.predictor"):
            predictor = cache.pretrained_predictor(profile, seed)
        with span("sim.trace"):
            trace = cache.trace_arrays(profile, seed, window.total)
    return profile, leading, memory, predictor, trace


def _publish_sim_metrics(result: LeadingRunResult, memory: MemoryHierarchy) -> None:
    """Push one simulation's leading-core totals into the registry.

    Runs once per simulation so the per-instruction scheduler loop stays
    uninstrumented; the NUCA L2 publishes its own policy-tagged totals.
    """
    m = get_registry()
    m.counter("sim.instructions_retired").inc(result.instructions)
    m.counter("sim.cycles").inc(result.cycles)
    for op, count in result.op_counts.items():
        if count:
            m.counter(f"sim.ops.{op}").inc(count)
    m.counter("l1d.hits").inc(memory.l1d.hits)
    m.counter("l1d.misses").inc(memory.l1d.misses)
    memory.l2.publish_metrics()


def simulate_leading(
    profile: WorkloadProfile | str,
    chip: ChipModel = ChipModel.TWO_D_A,
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    leading: LeadingCoreConfig | None = None,
) -> LeadingRunResult:
    """Run one benchmark's leading core alone (no checker) on ``chip``."""
    profile, leading, memory, predictor, trace = _prepare(
        profile, chip, window, seed, policy, leading
    )
    core = LeadingCoreTiming(leading, memory, predictor)
    with span("sim.leading"):
        result = core.run(trace, warmup=window.warmup)
    _publish_sim_metrics(result, memory)
    return result


def simulate_rmt(
    profile: WorkloadProfile | str,
    chip: ChipModel = ChipModel.THREE_D_2A,
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    leading: LeadingCoreConfig | None = None,
    checker: CheckerCoreConfig | None = None,
    checker_peak_ratio: float = 1.0,
) -> RmtTimingResult:
    """Co-simulate leading + checker for one benchmark on ``chip``.

    The inter-core transfer latency follows the chip model: ~1 cycle over
    3D inter-die vias, ~4 cycles over 2D global wires (Section 3).
    """
    profile, leading, memory, predictor, trace = _prepare(
        profile, chip, window, seed, policy, leading
    )
    checker = checker or CheckerCoreConfig()
    simulator = RmtSimulator(
        leading_config=leading,
        checker_config=checker,
        memory=memory,
        predictor=predictor,
        transfer_latency_cycles=1 if chip.is_3d else 4,
        checker_peak_ratio=checker_peak_ratio,
    )
    with span("sim.rmt"):
        result = simulator.run(trace, warmup=window.warmup)
    _publish_sim_metrics(result.leading, memory)
    return result


# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SimTask:
    """One simulation of a sweep, as a picklable work item.

    The experiment drivers describe their nested loops as flat lists of
    these and hand them to the engine; :func:`run_sim_task` executes one
    in whichever process it lands in.  Every field is hashable/frozen, so
    tasks cross the process boundary cheaply and deterministically.
    """

    kind: str                       # "leading" | "rmt"
    profile: WorkloadProfile
    chip: ChipModel
    window: SimulationWindow
    seed: int = 42
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS
    leading: LeadingCoreConfig | None = None
    checker: CheckerCoreConfig | None = None
    checker_peak_ratio: float = 1.0

    def task_key(self) -> str:
        """A human-readable, stable identity for sweep checkpoints.

        The leading fields name the simulation; the trailing ``repr``
        covers every remaining knob, so any parameter change produces a
        different key and a resumed sweep never reuses a stale result.
        """
        return (
            f"{self.kind}:{self.profile.name}:{self.chip.value}:"
            f"w{self.window.warmup}+{self.window.measured}:s{self.seed}:"
            f"{self.policy.value}:{repr(self)}"
        )


def run_sim_task(task: SimTask) -> LeadingRunResult | RmtTimingResult:
    """Execute one :class:`SimTask` (the engine's worker function)."""
    if task.kind == "leading":
        return simulate_leading(
            task.profile,
            task.chip,
            window=task.window,
            seed=task.seed,
            policy=task.policy,
            leading=task.leading,
        )
    if task.kind == "rmt":
        return simulate_rmt(
            task.profile,
            task.chip,
            window=task.window,
            seed=task.seed,
            policy=task.policy,
            leading=task.leading,
            checker=task.checker,
            checker_peak_ratio=task.checker_peak_ratio,
        )
    raise ValueError(f"unknown simulation kind {task.kind!r}")


def prime_sim_tasks(tasks) -> None:
    """Warm the trace cache for a batch of :class:`SimTask` in lockstep.

    The engine's ``prepare_chunk`` hook for simulation sweeps: collects
    the distinct ``(profile, seed)`` streams a chunk needs (at each
    stream's longest requested window) and generates them through one
    :func:`~repro.isa.trace.generate_arrays_batch` pass, so a chunk
    spanning several benchmarks pays one set of NumPy kernel invocations
    instead of one per stream.  Idempotent — already-long-enough streams
    are skipped — and bit-identical to solo generation, so priming never
    changes a simulation's result.  A batch containing anything other
    than :class:`SimTask` is left alone (the hook is a pure
    optimization).
    """
    tasks = list(tasks)
    if not all(isinstance(task, SimTask) for task in tasks):
        return
    needs: dict[tuple[WorkloadProfile, int], int] = {}
    for task in tasks:
        key = (task.profile, task.seed)
        needs[key] = max(needs.get(key, 0), task.window.total)
    memo.get_cache().prime_trace_batch(
        [(profile, seed, count) for (profile, seed), count in needs.items()]
    )


def run_batch(tasks) -> list[LeadingRunResult | RmtTimingResult]:
    """Run several :class:`SimTask` with batched trace generation.

    Primes every distinct trace stream in one lockstep pass
    (:func:`prime_sim_tasks`), then runs the tasks in order in this
    process.  Results are identical to ``[run_sim_task(t) for t in
    tasks]`` — batching only changes how the shared immutable artifacts
    are produced.  Sweep drivers get the same effect across processes by
    passing ``prepare_chunk=prime_sim_tasks`` to the engine.
    """
    tasks = list(tasks)
    prime_sim_tasks(tasks)
    return [run_sim_task(task) for task in tasks]


def run_sim_task_with_metrics(
    task: SimTask,
) -> tuple[LeadingRunResult | RmtTimingResult, MetricsSnapshot]:
    """Run one task and capture the metrics delta it produced.

    The engine uses this as its worker function so that each task's
    contribution to the registry crosses the process boundary alongside
    its result, letting ``run_sweep`` merge worker metrics into a total
    that is identical however the tasks were partitioned.
    """
    registry = get_registry()
    mark = registry.begin_task()
    result = run_sim_task(task)
    return result, registry.end_task(mark)
