"""Shared experiment plumbing: build and run one benchmark on one chip model.

All experiment drivers (one per table/figure of the paper) funnel through
these helpers so that every result in EXPERIMENTS.md comes from the same
simulation pipeline, whether a sweep runs serially or through the
parallel engine (:mod:`repro.experiments.engine`).  Immutable artifacts —
the generated trace and the pretrained predictor state — come from the
process-local cache in :mod:`repro.common.memo`; mutable state (the
memory hierarchy, queues, DFS controllers) is rebuilt per simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import memo
from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    NucaConfig,
    NucaPolicy,
)
from repro.core.leading import LeadingCoreTiming, LeadingRunResult
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator, RmtTimingResult
from repro.obs.metrics import MetricsSnapshot, get_registry
from repro.obs.tracing import span
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = [
    "SimulationWindow",
    "build_memory",
    "simulate_leading",
    "simulate_rmt",
    "SimTask",
    "SimBatch",
    "run_sim_task",
    "run_sim_task_with_metrics",
    "prime_sim_tasks",
    "run_batch",
    "DEFAULT_WINDOW",
]


@dataclass(frozen=True)
class SimulationWindow:
    """How many instructions to warm up and to measure.

    The paper measures 100M-instruction SimPoint windows; a pure-Python
    simulator measures proportionally smaller windows after explicit cache
    preloading and predictor pre-training, which recover the steady-state
    behaviour the long window would produce.
    """

    warmup: int = 10_000
    measured: int = 40_000

    @property
    def total(self) -> int:
        """Warmup plus measured instruction count."""
        return self.warmup + self.measured


DEFAULT_WINDOW = SimulationWindow()


def build_memory(
    chip: ChipModel,
    leading: LeadingCoreConfig | None = None,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
) -> MemoryHierarchy:
    """The memory hierarchy for one of the paper's chip models."""
    leading = leading or LeadingCoreConfig()
    nuca = NucaConfig(num_banks=chip.l2_banks, policy=policy)
    return MemoryHierarchy(leading, nuca, chip)


def _prepare(
    profile: WorkloadProfile | str,
    chip: ChipModel,
    window: SimulationWindow,
    seed: int,
    policy: NucaPolicy,
    leading: LeadingCoreConfig | None,
):
    if isinstance(profile, str):
        profile = get_profile(profile)
    leading = leading or LeadingCoreConfig()
    # The hierarchy is stateful (tags mutate during the run), so it is
    # rebuilt and re-preloaded for every simulation; the trace, the
    # pretrained predictor (as a shared branch-stream view) and the
    # kernel's trace schedule are memoized.
    with span("sim.prepare"):
        memory = build_memory(chip, leading, policy)
        memory.preload_profile(profile)
        cache = memo.get_cache()
        with span("sim.predictor"):
            predictor = cache.branch_stream_view(profile, seed)
        with span("sim.trace"):
            trace = cache.trace_arrays(profile, seed, window.total)
        with span("sim.schedule"):
            schedule = cache.trace_schedule(
                profile, seed, window.total, leading
            )
    return profile, leading, memory, predictor, trace, schedule


def _publish_sim_metrics(result: LeadingRunResult, memory: MemoryHierarchy) -> None:
    """Push one simulation's leading-core totals into the registry.

    Runs once per simulation so the per-instruction scheduler loop stays
    uninstrumented; the NUCA L2 publishes its own policy-tagged totals.
    """
    m = get_registry()
    m.counter("sim.instructions_retired").inc(result.instructions)
    m.counter("sim.cycles").inc(result.cycles)
    for op, count in result.op_counts.items():
        if count:
            m.counter(f"sim.ops.{op}").inc(count)
    m.counter("l1d.hits").inc(memory.l1d.hits)
    m.counter("l1d.misses").inc(memory.l1d.misses)
    memory.l2.publish_metrics()


def simulate_leading(
    profile: WorkloadProfile | str,
    chip: ChipModel = ChipModel.TWO_D_A,
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    leading: LeadingCoreConfig | None = None,
) -> LeadingRunResult:
    """Run one benchmark's leading core alone (no checker) on ``chip``."""
    profile, leading, memory, predictor, trace, schedule = _prepare(
        profile, chip, window, seed, policy, leading
    )
    core = LeadingCoreTiming(leading, memory, predictor)
    with span("sim.leading"):
        result = core.run(trace, warmup=window.warmup, schedule=schedule)
    _publish_sim_metrics(result, memory)
    return result


def simulate_rmt(
    profile: WorkloadProfile | str,
    chip: ChipModel = ChipModel.THREE_D_2A,
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    leading: LeadingCoreConfig | None = None,
    checker: CheckerCoreConfig | None = None,
    checker_peak_ratio: float = 1.0,
) -> RmtTimingResult:
    """Co-simulate leading + checker for one benchmark on ``chip``.

    The inter-core transfer latency follows the chip model: ~1 cycle over
    3D inter-die vias, ~4 cycles over 2D global wires (Section 3).
    """
    profile, leading, memory, predictor, trace, schedule = _prepare(
        profile, chip, window, seed, policy, leading
    )
    checker = checker or CheckerCoreConfig()
    simulator = RmtSimulator(
        leading_config=leading,
        checker_config=checker,
        memory=memory,
        predictor=predictor,
        transfer_latency_cycles=1 if chip.is_3d else 4,
        checker_peak_ratio=checker_peak_ratio,
    )
    with span("sim.rmt"):
        result = simulator.run(trace, warmup=window.warmup, schedule=schedule)
    _publish_sim_metrics(result.leading, memory)
    return result


# ---------------------------------------------------------------------
@dataclass(frozen=True)
class SimTask:
    """One simulation of a sweep, as a picklable work item.

    The experiment drivers describe their nested loops as flat lists of
    these and hand them to the engine; :func:`run_sim_task` executes one
    in whichever process it lands in.  Every field is hashable/frozen, so
    tasks cross the process boundary cheaply and deterministically.
    """

    kind: str                       # "leading" | "rmt"
    profile: WorkloadProfile
    chip: ChipModel
    window: SimulationWindow
    seed: int = 42
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS
    leading: LeadingCoreConfig | None = None
    checker: CheckerCoreConfig | None = None
    checker_peak_ratio: float = 1.0

    def task_key(self) -> str:
        """A human-readable, stable identity for sweep checkpoints.

        The leading fields name the simulation; the trailing ``repr``
        covers every remaining knob, so any parameter change produces a
        different key and a resumed sweep never reuses a stale result.
        """
        return (
            f"{self.kind}:{self.profile.name}:{self.chip.value}:"
            f"w{self.window.warmup}+{self.window.measured}:s{self.seed}:"
            f"{self.policy.value}:{repr(self)}"
        )


def run_sim_task(task: SimTask) -> LeadingRunResult | RmtTimingResult:
    """Execute one :class:`SimTask` (the engine's worker function)."""
    if task.kind == "leading":
        return simulate_leading(
            task.profile,
            task.chip,
            window=task.window,
            seed=task.seed,
            policy=task.policy,
            leading=task.leading,
        )
    if task.kind == "rmt":
        return simulate_rmt(
            task.profile,
            task.chip,
            window=task.window,
            seed=task.seed,
            policy=task.policy,
            leading=task.leading,
            checker=task.checker,
            checker_peak_ratio=task.checker_peak_ratio,
        )
    raise ValueError(f"unknown simulation kind {task.kind!r}")


def prime_sim_tasks(tasks) -> None:
    """Warm the trace cache for a batch of :class:`SimTask` in lockstep.

    The engine's ``prepare_chunk`` hook for simulation sweeps: collects
    the distinct ``(profile, seed)`` streams a chunk needs (at each
    stream's longest requested window) and generates them through one
    :func:`~repro.isa.trace.generate_arrays_batch` pass, so a chunk
    spanning several benchmarks pays one set of NumPy kernel invocations
    instead of one per stream.  Idempotent — already-long-enough streams
    are skipped — and bit-identical to solo generation, so priming never
    changes a simulation's result.  A batch containing anything other
    than :class:`SimTask` is left alone (the hook is a pure
    optimization).
    """
    tasks = list(tasks)
    if not all(isinstance(task, SimTask) for task in tasks):
        return
    needs: dict[tuple[WorkloadProfile, int], int] = {}
    for task in tasks:
        key = (task.profile, task.seed)
        needs[key] = max(needs.get(key, 0), task.window.total)
    memo.get_cache().prime_trace_batch(
        [(profile, seed, count) for (profile, seed), count in needs.items()]
    )


class SimBatch:
    """K same-stream simulations stepped in lockstep, window by window.

    All member tasks must share ``(profile, seed, window)`` — the same
    trace stream at the same window boundaries.  The batch computes each
    window's simulation-independent prepare products once
    (:func:`~repro.core.leading.prepare_window_statics`) and shares them
    across every member; each member then applies only its own state
    machines (memory hierarchy, predictor view, scheduling kernel) via
    ``prepare_from_statics``.  Results and published metrics are
    bit-identical to running each task solo — the shared statics are
    exactly the values every solo ``prepare_window`` call recomputes.
    """

    def __init__(self, tasks: list[SimTask]):
        if not tasks:
            raise ValueError("SimBatch requires at least one task")
        key = (tasks[0].profile, tasks[0].seed, tasks[0].window)
        for task in tasks:
            if (task.profile, task.seed, task.window) != key:
                raise ValueError(
                    "SimBatch tasks must share (profile, seed, window)"
                )
        self.tasks = tasks
        self.profile, self.seed, self.window = key

    def run(self) -> list[LeadingRunResult | RmtTimingResult]:
        """Run every member and return results in task order."""
        from repro.core.leading import prepare_window_statics
        from repro.core.rmt import RmtSimulator

        window = self.window
        cache = memo.get_cache()
        with span("sim.trace"):
            arrays = cache.trace_arrays(self.profile, self.seed, window.total)

        # Per-member mutable state: hierarchy, predictor view, simulator.
        sims = []
        for task in self.tasks:
            leading_cfg = task.leading or LeadingCoreConfig()
            with span("sim.prepare"):
                memory = build_memory(task.chip, leading_cfg, task.policy)
                memory.preload_profile(self.profile)
                predictor = cache.branch_stream_view(self.profile, self.seed)
                schedule = cache.trace_schedule(
                    self.profile, self.seed, window.total, leading_cfg
                )
            if task.kind == "leading":
                core = LeadingCoreTiming(leading_cfg, memory, predictor)
                core.begin_kernel(schedule)
                sims.append(("leading", core, memory))
            elif task.kind == "rmt":
                simulator = RmtSimulator(
                    leading_config=leading_cfg,
                    checker_config=task.checker or CheckerCoreConfig(),
                    memory=memory,
                    predictor=predictor,
                    transfer_latency_cycles=1 if task.chip.is_3d else 4,
                    checker_peak_ratio=task.checker_peak_ratio,
                )
                simulator.begin_windows(arrays, schedule)
                sims.append(("rmt", simulator, memory))
            else:
                raise ValueError(f"unknown simulation kind {task.kind!r}")

        # Lockstep window stepping: statics once, K applications.
        n = window.total
        warmup = min(window.warmup, n)
        prev_line = -1  # every member is a freshly constructed core
        with span("sim.batch"):
            for start, end in ((0, warmup), (warmup, n)):
                if start == end:
                    continue
                statics = prepare_window_statics(arrays, start, end, prev_line)
                prev_line = statics.last_line
                for kind, sim, _memory in sims:
                    core = sim if kind == "leading" else sim.leading
                    if start == window.warmup and window.warmup:
                        core.start_measurement()
                    prepared = core.prepare_from_statics(statics)
                    if kind == "leading":
                        core.advance_window(prepared, start)
                    else:
                        sim.advance_window(prepared, start)

        results: list[LeadingRunResult | RmtTimingResult] = []
        measured = n - window.warmup
        for kind, sim, memory in sims:
            if kind == "leading":
                sim.end_kernel()
                result = sim.result(measured)
                _publish_sim_metrics(result, memory)
            else:
                result = sim.end_windows(measured)
                _publish_sim_metrics(result.leading, memory)
            results.append(result)
        return results


def _batch_groups(tasks: list[SimTask]):
    """Split a task list into maximal consecutive same-stream runs."""
    groups: list[list[SimTask]] = []
    key = None
    for task in tasks:
        task_key = (task.profile, task.seed, task.window)
        if task_key != key:
            groups.append([])
            key = task_key
        groups[-1].append(task)
    return groups


def run_batch(
    tasks, lockstep: bool = True
) -> list[LeadingRunResult | RmtTimingResult]:
    """Run several :class:`SimTask` with batched trace generation.

    Primes every distinct trace stream in one lockstep pass
    (:func:`prime_sim_tasks`), then runs the tasks in order in this
    process — consecutive tasks over the same ``(profile, seed,
    window)`` stream as one :class:`SimBatch` (sharing each window's
    prepare statics), the rest solo.  Results are identical to
    ``[run_sim_task(t) for t in tasks]`` — batching only changes how
    shared immutable artifacts are produced.  ``lockstep=False``
    disables the grouping (solo oracle path for every task).  Sweep
    drivers get the trace-priming effect across processes by passing
    ``prepare_chunk=prime_sim_tasks`` to the engine.
    """
    tasks = list(tasks)
    prime_sim_tasks(tasks)
    if not lockstep or not all(isinstance(t, SimTask) for t in tasks):
        return [run_sim_task(task) for task in tasks]
    results: list[LeadingRunResult | RmtTimingResult] = []
    for group in _batch_groups(tasks):
        if len(group) == 1:
            results.append(run_sim_task(group[0]))
        else:
            results.extend(SimBatch(group).run())
    return results


def run_sim_task_with_metrics(
    task: SimTask,
) -> tuple[LeadingRunResult | RmtTimingResult, MetricsSnapshot]:
    """Run one task and capture the metrics delta it produced.

    The engine uses this as its worker function so that each task's
    contribution to the registry crosses the process boundary alongside
    its result, letting ``run_sweep`` merge worker metrics into a total
    that is identical however the tasks were partitioned.
    """
    registry = get_registry()
    mark = registry.begin_task()
    result = run_sim_task(task)
    return result, registry.end_task(mark)
