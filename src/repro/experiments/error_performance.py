"""Performance under error pressure: what recovery actually costs.

The paper establishes that errors are detected and recovered from, but a
reliable processor's throughput degrades with the recovery rate: every
detected disagreement flushes the in-flight slack and re-executes from
the trailing core's state.  This module quantifies that — analytically
(recovery events x penalty) and by Monte-Carlo over the error models —
connecting the reliability analysis of Sections 3.5/4 to performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import QueueConfig
from repro.reliability.ser import SoftErrorModel
from repro.reliability.timing import TimingErrorModel

__all__ = [
    "RecoveryCostModel",
    "ErrorPerformanceResult",
    "error_performance",
]


@dataclass(frozen=True)
class RecoveryCostModel:
    """Cycles lost per detected error.

    Recovery drains the slack between the cores (the leading core rolls
    back to the trailing core's architectural state, discarding up to
    ``slack`` instructions), restores register state, and refills the
    pipeline.
    """

    slack_instructions: int = QueueConfig().slack_target
    restore_cycles: int = 100          # regfile copy + mode switch
    pipeline_refill_cycles: int = 16

    def penalty_cycles(self, leading_ipc: float) -> float:
        """Cycles lost per recovery at a given leading IPC."""
        discarded = self.slack_instructions / max(0.1, leading_ipc)
        return discarded + self.restore_cycles + self.pipeline_refill_cycles


@dataclass
class ErrorPerformanceResult:
    """Throughput under a given error environment."""

    error_rate_per_instruction: float
    recoveries_per_million: float
    throughput_fraction: float      # vs error-free execution

    @property
    def slowdown(self) -> float:
        """Fractional throughput loss from recoveries."""
        return 1.0 - self.throughput_fraction


def error_performance(
    error_rate_per_instruction: float,
    leading_ipc: float = 1.5,
    cost: RecoveryCostModel | None = None,
) -> ErrorPerformanceResult:
    """Analytical throughput under a per-instruction detected-error rate.

    Each instruction costs ``1/IPC`` cycles plus, with probability equal
    to the error rate, a recovery penalty.
    """
    if error_rate_per_instruction < 0:
        raise ValueError("error rate cannot be negative")
    cost = cost or RecoveryCostModel()
    base_cpi = 1.0 / leading_ipc
    effective_cpi = base_cpi + error_rate_per_instruction * cost.penalty_cycles(
        leading_ipc
    )
    return ErrorPerformanceResult(
        error_rate_per_instruction=error_rate_per_instruction,
        recoveries_per_million=error_rate_per_instruction * 1e6,
        throughput_fraction=base_cpi / effective_cpi,
    )


def checker_operating_point_comparison(
    residency: dict[float, float] | None = None,
    leading_ipc: float = 1.5,
) -> dict[str, ErrorPerformanceResult]:
    """Recovery cost at three checker operating points (Sections 3.5/4).

    * ``full-speed`` — a hypothetical checker pinned at peak frequency
      (thin margins: frequent timing errors, constant recoveries);
    * ``dfs-throttled`` — the paper's checker at a typical Figure 7
      residency (huge margins: errors essentially vanish);
    * ``particle-strikes-only`` — residual soft-error-driven recoveries
      for a 6 MB of protected SRAM plus core latches.

    This is the performance argument behind "a natural fall-out of our
    checker core design is that it is much more resilient".
    """
    residency = residency or {0.5: 0.3, 0.6: 0.4, 0.7: 0.3}
    timing = TimingErrorModel()

    full = timing.error_rate_per_instruction(1.0)
    throttled = sum(
        weight * timing.error_rate_per_instruction(level)
        for level, weight in residency.items()
    ) / sum(residency.values())
    soft = SoftErrorModel(65).upset_probability_per_cycle(
        bits=8 * (6 << 20), frequency_hz=2e9
    )
    return {
        "full-speed": error_performance(full, leading_ipc),
        "dfs-throttled": error_performance(throttled, leading_ipc),
        "particle-strikes-only": error_performance(soft, leading_ipc),
    }
