"""Workload calibration audit: profiles vs simulated behaviour.

The synthetic benchmarks stand in for SPEC2k; this driver quantifies how
close each profile's simulated behaviour lands to its calibration targets
(IPC on the 2d-a baseline, suite-level miss statistics), so drift is
caught when models change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel
from repro.experiments import engine
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    run_sim_task,
)
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = ["CalibrationRow", "calibration_audit", "suite_summary"]


@dataclass
class CalibrationRow:
    """One benchmark's simulated-vs-target comparison."""

    benchmark: str
    target_ipc: float
    simulated_ipc: float
    branch_mispredict_rate: float
    l1d_miss_rate: float
    l2_misses_per_10k: float

    @property
    def ipc_error(self) -> float:
        """Relative IPC error vs the calibration target."""
        return (self.simulated_ipc - self.target_ipc) / self.target_ipc


def calibration_audit(
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    jobs: int | None = None,
) -> list[CalibrationRow]:
    """Simulate every profile on the 2d-a baseline and compare to targets."""
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    tasks = [
        SimTask(
            kind="leading", profile=p, chip=ChipModel.TWO_D_A,
            window=window, seed=seed,
        )
        for p in benchmarks
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=1, label="calibration_audit"
    )
    rows = []
    for profile, run in zip(benchmarks, results):
        rows.append(
            CalibrationRow(
                benchmark=profile.name,
                target_ipc=profile.target_ipc,
                simulated_ipc=run.ipc,
                branch_mispredict_rate=run.branch_mispredict_rate,
                l1d_miss_rate=run.l1d_miss_rate,
                l2_misses_per_10k=run.l2_misses_per_10k,
            )
        )
    return rows


def suite_summary(rows: list[CalibrationRow]) -> dict[str, float]:
    """Aggregate calibration health metrics."""
    n = len(rows)
    return {
        "mean_ipc": sum(r.simulated_ipc for r in rows) / n,
        "mean_abs_ipc_error": sum(abs(r.ipc_error) for r in rows) / n,
        "mean_l2_misses_per_10k": sum(r.l2_misses_per_10k for r in rows) / n,
        "mean_mispredict_rate": sum(r.branch_mispredict_rate for r in rows) / n,
        "rank_correlation": _spearman(
            [r.target_ipc for r in rows], [r.simulated_ipc for r in rows]
        ),
    }


def _spearman(a: list[float], b: list[float]) -> float:
    def ranks(xs: list[float]) -> list[float]:
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        out = [0.0] * len(xs)
        for rank, i in enumerate(order):
            out[i] = float(rank)
        return out

    ra, rb = ranks(a), ranks(b)
    n = len(a)
    d2 = sum((x - y) ** 2 for x, y in zip(ra, rb))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))
