"""One-shot report generation: every fast experiment into JSON/markdown.

``python -m repro report`` (or :func:`generate_report`) runs the
analytical and reduced-window experiments and writes a machine-readable
``results.json`` plus a human-readable ``results.md`` — the artifact a
release pipeline would publish next to EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.common.config import ChipModel
from repro.common.errors import ConfigError
from repro.common.tables import format_table
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import engine
from repro.experiments.coverage import fault_coverage_campaign
from repro.experiments.frequency import fig7_frequency_histogram
from repro.experiments.interconnect import (
    section34_wire_analysis,
    table4_bandwidth,
    via_summary,
)
from repro.experiments.pipeline_depth import table5_pipeline_power
from repro.experiments.runner import SimulationWindow
from repro.experiments.technology import (
    fig8_ser_scaling,
    fig9_mbu_curve,
    table6_variability,
    table7_devices,
    table8_power_ratios,
)
from repro.experiments.thermal import fig4_thermal_sweep, thermal_variants
from repro.obs import events
from repro.obs.tracing import flatten_spans
from repro.workloads.profiles import get_profile

__all__ = ["generate_report", "render_partial_report"]

_DEFAULT_SUBSET = ("gzip", "mcf", "mesa")


def _collect(window: SimulationWindow, subset) -> dict:
    benchmarks = [get_profile(n) for n in subset]
    fig7 = fig7_frequency_histogram(window=window, benchmarks=benchmarks)
    coverage = fault_coverage_campaign(instructions=10_000)
    return {
        "table4": [dataclasses.asdict(r) for r in table4_bandwidth()],
        "table5": [dataclasses.asdict(r) for r in table5_pipeline_power()],
        "table6": table6_variability(),
        "table7": table7_devices(),
        "table8": [dataclasses.asdict(r) for r in table8_power_ratios()],
        "fig4": [dataclasses.asdict(r) for r in fig4_thermal_sweep()],
        "fig4_variants": {
            "7W": thermal_variants(7.0),
            "15W": thermal_variants(15.0),
        },
        "fig7": {
            "fractions": {str(k): v for k, v in fig7.fractions.items()},
            "mode": fig7.mode,
            "mean": fig7.mean,
        },
        "fig8": fig8_ser_scaling(),
        "fig9": fig9_mbu_curve(),
        "vias": dataclasses.asdict(via_summary()),
        "wires": {
            name: dataclasses.asdict(budget)
            for name, budget in section34_wire_analysis().items()
        },
        "coverage": dataclasses.asdict(coverage),
    }


def _render_markdown(data: dict) -> str:
    sections = ["# repro results\n"]
    sections.append(format_table(
        "Figure 4: 3D thermal overhead",
        ["checker W", "2d-2a C", "3d-2a C", "2d-a C"],
        [
            [r["checker_power_w"], round(r["temp_2d_2a_c"], 1),
             round(r["temp_3d_2a_c"], 1), round(r["temp_2d_a_c"], 1)]
            for r in data["fig4"]
        ],
    ))
    sections.append(format_table(
        "Figure 7: checker frequency residency",
        ["normalized f", "fraction"],
        [[k, f"{v:.3f}"] for k, v in data["fig7"]["fractions"].items()],
    ))
    sections.append(format_table(
        "Table 8: relative power",
        ["nodes", "dynamic", "leakage"],
        [
            [f"{r['old_nm']}/{r['new_nm']}", r["dynamic_derived"],
             r["leakage_derived"]]
            for r in data["table8"]
        ],
    ))
    vias = data["vias"]
    sections.append(
        f"\nd2d vias: {vias['num_vias']} "
        f"({vias['total_power_mw']:.2f} mW, {vias['total_area_mm2']:.3f} mm2)"
    )
    cov = data["coverage"]
    sections.append(
        f"fault coverage: {cov['faults_injected']} injected, "
        f"{cov['mismatches_detected']} detected, "
        f"store stream correct: {cov['store_stream_correct']}"
    )
    for name, budget in data["wires"].items():
        sections.append(
            f"wires {name}: inter-core {budget['intercore_length_mm']:.0f} mm, "
            f"power {budget['intercore_power_w'] + budget['l2_power_w']:.1f} W"
        )
    if data.get("sweep_timings"):
        sections.append(format_table(
            "Sweep timings (experiment engine)",
            ["sweep", "tasks", "jobs", "cpu (s)", "wall (s)", "speedup",
             "tasks/s"],
            [
                [t["label"], t["tasks"], t["jobs"], t["cpu_s"], t["wall_s"],
                 "—" if t["wall_s"] <= 0 or t["tasks"] == 0
                 else f"{t['speedup']:.2f}x",
                 "—" if t["wall_s"] <= 0 or t["tasks"] == 0
                 else f"{t['tasks'] / t['wall_s']:.1f}"]
                for t in data["sweep_timings"]
            ],
        ))
        disturbed = [
            t for t in data["sweep_timings"]
            if t.get("failures") or t.get("retries") or t.get("timeouts")
            or t.get("pool_rebuilds") or t.get("resumed_tasks")
            or t.get("degraded") or t.get("requeues")
            or t.get("lost_workers") or t.get("lease_expiries")
            or t.get("duplicate_results") or t.get("respawns")
            or t.get("respawn_failures") or t.get("bisections")
            or t.get("quarantined")
        ]
        if disturbed:
            sections.append(format_table(
                "Sweep resilience (failures, retries, recovery)",
                ["sweep", "failures", "retries", "timeouts",
                 "pool rebuilds", "respawns", "quarantined", "resumed",
                 "degraded"],
                [
                    [t["label"], t.get("failures", 0), t.get("retries", 0),
                     t.get("timeouts", 0), t.get("pool_rebuilds", 0),
                     t.get("respawns", 0), len(t.get("quarantined") or ()),
                     t.get("resumed_tasks", 0),
                     "yes" if t.get("degraded") else "no"]
                    for t in disturbed
                ],
            ))
        quarantined_rows = [
            [t["label"], q.get("task_key", "?"), q.get("index", "?"),
             q.get("error", "")]
            for t in data["sweep_timings"]
            for q in (t.get("quarantined") or ())
        ]
        if quarantined_rows:
            sections.append(format_table(
                "Quarantined tasks (poisonous grains isolated by bisection)",
                ["sweep", "task key", "index", "error"],
                quarantined_rows,
            ))
        backends: dict[str, dict] = {}
        for t in data["sweep_timings"]:
            for name in (t.get("backends") or [t.get("executor") or "?"]):
                row = backends.setdefault(name, {
                    "sweeps": 0, "requeues": 0, "lost_workers": 0,
                    "lease_expiries": 0, "duplicate_results": 0,
                    "pool_rebuilds": 0, "respawns": 0, "degraded": 0,
                })
                row["sweeps"] += 1
                for key in ("requeues", "lost_workers", "lease_expiries",
                            "duplicate_results", "pool_rebuilds", "respawns"):
                    row[key] += t.get(key, 0)
                row["degraded"] += 1 if t.get("degraded") else 0
        if backends:
            sections.append(format_table(
                "Executor backends (per-backend resilience)",
                ["backend", "sweeps", "requeues", "lost workers",
                 "lease expiries", "dup results dropped",
                 "pool rebuilds", "respawns", "degraded sweeps"],
                [
                    [name, row["sweeps"], row["requeues"],
                     row["lost_workers"], row["lease_expiries"],
                     row["duplicate_results"], row["pool_rebuilds"],
                     row["respawns"], row["degraded"]]
                    for name, row in sorted(backends.items())
                ],
            ))
    metrics = data.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        cache_rows = []
        for category in ("trace", "predictor", "thermal", "grid"):
            hits = counters.get(f"memo.{category}.hits", 0)
            misses = counters.get(f"memo.{category}.misses", 0)
            if hits or misses:
                rate = hits / (hits + misses)
                cache_rows.append([category, hits, misses, f"{rate:.1%}"])
        if cache_rows:
            sections.append(format_table(
                "Artifact cache (memoized simulation artifacts)",
                ["artifact", "hits", "misses", "hit rate"],
                cache_rows,
            ))
        sections.append(format_table(
            "Run metrics (counters)",
            ["counter", "value"],
            [[name, counters[name]] for name in sorted(counters)
             if not name.startswith("sim.ops.")],
        ))
    span_rows = flatten_spans(metrics.get("spans"))
    if span_rows:
        sections.append(format_table(
            "Span hot paths",
            ["span", "count", "wall (s)", "cpu (s)"],
            [[path, count, f"{wall:.3f}", f"{cpu:.3f}"]
             for path, count, wall, cpu in span_rows],
        ))
    return "\n\n".join(sections) + "\n"


def render_partial_report(
    run_id: str,
    out_dir: str | Path,
    checkpoint_root: str | Path | None = None,
) -> dict:
    """Render what an interrupted run committed before it stopped.

    Scans every sweep checkpoint under ``<checkpoint_root>/<run_id>``
    (read-only — safe against a live run) and writes
    ``results_partial.json``/``results_partial.md``: committed task
    counts per sweep, quarantined tasks with their errors, and the
    resume hint.  The markdown is prominently marked PARTIAL so it
    cannot be mistaken for a complete report.
    """
    root = Path(checkpoint_root) if checkpoint_root is not None else (
        checkpoint_mod.checkpoint_dir()
    )
    if root is None:
        raise ConfigError(
            "partial report needs a checkpoint directory "
            "(--checkpoint-dir or set_checkpoint_dir)"
        )
    run_dir = Path(root) / run_id
    sweeps = [
        checkpoint_mod.scan_sweep(path)
        for path in sorted(run_dir.glob("*.jsonl"))
    ]
    data = {
        "partial": True,
        "run_id": run_id,
        "checkpoint_dir": str(root),
        "sweeps": sweeps,
        "tasks_committed": sum(s["tasks_committed"] for s in sweeps),
        "quarantined": [
            dict(q, sweep=s["label"]) for s in sweeps for q in s["quarantined"]
        ],
        "finalized_sweeps": sum(1 for s in sweeps if s["finalized"]),
    }

    sections = [
        "# repro results — PARTIAL\n",
        "**This run was interrupted.** The tables below cover only work "
        "committed to the checkpoint before the run stopped; figures and "
        "derived metrics are omitted because they would be computed from "
        f"incomplete sweeps. Resume with:\n\n"
        f"    python -m repro <command> --checkpoint-dir {root} "
        f"--resume {run_id}\n",
    ]
    if sweeps:
        sections.append(format_table(
            "Partial sweep progress",
            ["sweep", "tasks committed", "cpu (s)", "torn lines",
             "finalized"],
            [
                [s["label"], s["tasks_committed"], f"{s['wall_s']:.2f}",
                 s["truncated_lines"], "yes" if s["finalized"] else "no"]
                for s in sweeps
            ],
        ))
    else:
        sections.append(
            f"No sweep checkpoints found under {run_dir} — the run "
            "stopped before any task committed."
        )
    if data["quarantined"]:
        sections.append(format_table(
            "Quarantined tasks (excluded from resume until retried)",
            ["sweep", "task key", "index", "error"],
            [
                [q["sweep"], q["task_key"], q["index"], q["error"]]
                for q in data["quarantined"]
            ],
        ))
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "results_partial.json").write_text(
        json.dumps(data, indent=2, default=str)
    )
    (out / "results_partial.md").write_text("\n\n".join(sections) + "\n")
    return data


def generate_report(
    out_dir: str | Path,
    window: SimulationWindow | None = None,
    subset: tuple[str, ...] = _DEFAULT_SUBSET,
) -> dict:
    """Run the report experiments and write ``results.json``/``results.md``.

    Returns the collected data dictionary.
    """
    window = window or SimulationWindow(warmup=3000, measured=10_000)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    # Timings and metrics are scoped by run id, so a long-lived process
    # (test session, notebook) can generate several reports without one
    # run's sweeps leaking into the next — and without clearing a global
    # registry someone else may be reading.
    run_id = events.begin_run("report")
    data = _collect(window, subset)
    data["sweep_timings"] = engine.timing_summary(run_id)
    data["metrics"] = engine.run_metrics(run_id).as_dict()
    (out / "results.json").write_text(json.dumps(data, indent=2, default=str))
    (out / "results.md").write_text(_render_markdown(data))
    events.write_manifest(
        out / "run_manifest.json",
        command="report",
        window=window.measured,
        run_id=run_id,
        metrics=data["metrics"],
        sweeps=data["sweep_timings"],
    )
    return data
