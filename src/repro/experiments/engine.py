"""Parallel experiment execution engine.

Every figure/table driver is a sweep over independent ``(benchmark x chip
model x policy)`` simulations, so the drivers submit their task lists here
instead of running nested loops inline.  The engine provides:

* :func:`parallel_map` / :func:`run_sweep` — order-preserving map over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked submission
  (chunks keep a worker on one benchmark's tasks so its per-process
  artifact cache gets hits; see :mod:`repro.common.memo`);
* a worker-count policy: an explicit ``jobs`` argument wins, then the
  ``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
  ``jobs=1`` is a pure in-process serial loop — no executor, no pickling —
  so ``pdb``, profilers, and coverage keep working;
* per-task wall-clock capture: each sweep records a :class:`SweepTiming`
  (task count, summed task CPU-seconds, sweep wall-seconds, speedup) into
  a process-local registry that ``experiments/report.py`` and the
  benchmark harness render.  Timings are stamped with the active run id
  (:func:`repro.obs.events.current_run_id`), so consumers read one run's
  sweeps with ``timings(run_id=...)`` instead of clearing the registry;
* per-task metric capture: every task is bracketed with
  ``registry.begin_task()`` / ``end_task()`` (:mod:`repro.obs.metrics`),
  so its counter/histogram/span *delta* travels back with its result and
  :func:`run_sweep` merges the deltas into ``SweepTiming.metrics``.
  Merging is commutative and associative, so the merged snapshot is
  identical at any worker count.

Determinism: results are returned in task-submission order regardless of
completion order, and every task re-derives its artifacts from explicit
``(profile, seed, window)`` keys, so a parallel sweep is bit-identical to
the serial one — including its merged metrics.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.errors import ConfigError
from repro.obs import events
from repro.obs.metrics import MetricsSnapshot, get_registry, merge_snapshots

__all__ = [
    "JOBS_ENV_VAR",
    "SweepTiming",
    "resolve_jobs",
    "set_default_jobs",
    "parallel_map",
    "run_sweep",
    "run_metrics",
    "timings",
    "clear_timings",
    "timing_summary",
    "format_timing_summary",
]

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"

# Upper bound on auto-detected workers: sweeps are memory-hungry (each
# worker holds its own artifact cache), so "as many as the machine has"
# is capped unless the user asks explicitly.
_MAX_AUTO_JOBS = 16


@dataclass
class SweepTiming:
    """Wall-clock accounting of one sweep through the engine."""

    label: str
    jobs: int
    task_wall_s: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    run_id: str = ""
    metrics: MetricsSnapshot | None = None

    @property
    def tasks(self) -> int:
        """Number of tasks the sweep ran."""
        return len(self.task_wall_s)

    @property
    def cpu_s(self) -> float:
        """Summed per-task wall time — the serial-equivalent cost."""
        return sum(self.task_wall_s)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time (1.0 when serial)."""
        return self.cpu_s / self.wall_s if self.wall_s > 0 else 1.0


_TIMINGS: list[SweepTiming] = []


def timings(run_id: str | None = None) -> list[SweepTiming]:
    """Sweep timings recorded in this process, oldest first.

    With ``run_id``, only that run's sweeps — the registry is never
    cleared between runs, so long-lived processes (test sessions,
    notebooks) filter instead of racing over a global reset.
    """
    if run_id is None:
        return list(_TIMINGS)
    return [t for t in _TIMINGS if t.run_id == run_id]


def clear_timings() -> None:
    """Forget all recorded sweep timings (prefer run-id filtering)."""
    _TIMINGS.clear()


def timing_summary(
    run_id: str | None = None, include_metrics: bool = False
) -> list[dict]:
    """The recorded timings as plain dicts (JSON-serialisable).

    ``include_metrics`` adds each sweep's merged metric snapshot (for
    run manifests); the default stays compact for the results report.
    """
    rows = []
    for t in timings(run_id):
        row = {
            "label": t.label,
            "run_id": t.run_id,
            "tasks": t.tasks,
            "jobs": t.jobs,
            "cpu_s": round(t.cpu_s, 3),
            "wall_s": round(t.wall_s, 3),
            "speedup": round(t.speedup, 2),
        }
        if include_metrics:
            row["metrics"] = (t.metrics or MetricsSnapshot()).as_dict()
        rows.append(row)
    return rows


def run_metrics(run_id: str | None = None) -> MetricsSnapshot:
    """All of one run's sweep metrics merged into a single snapshot.

    Built purely from the per-task deltas the sweeps collected, so the
    result is identical whatever worker count produced them.
    """
    return merge_snapshots(t.metrics for t in timings(run_id))


def format_timing_summary(run_id: str | None = None) -> str:
    """Human-readable table of every sweep recorded so far."""
    rows = timing_summary(run_id)
    if not rows:
        return "no sweeps recorded"
    header = ["sweep", "tasks", "jobs", "cpu (s)", "wall (s)", "speedup"]
    table = [
        [r["label"], str(r["tasks"]), str(r["jobs"]), f"{r['cpu_s']:.2f}",
         f"{r['wall_s']:.2f}", f"{r['speedup']:.2f}x"]
        for r in rows
    ]
    widths = [
        max(len(header[i]), max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


# ---------------------------------------------------------------------
_DEFAULT_JOBS: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``).

    Applies to every sweep that does not pass ``jobs`` explicitly; it
    outranks ``REPRO_JOBS``.  ``None`` restores environment/auto policy.
    """
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count: argument, then :func:`set_default_jobs`, then
    ``REPRO_JOBS``, then ``os.cpu_count()`` (capped)."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, _MAX_AUTO_JOBS)
    if jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    return jobs


def _timed_call(
    fn: Callable[[T], R], item: T
) -> tuple[R, float, MetricsSnapshot]:
    """Run one task; capture its wall time and metric delta (in-worker).

    The delta snapshot is what crosses the process boundary: a worker's
    absolute registry totals never leave it, so warm-cache state a
    forked worker inherited cannot pollute the sweep's merged metrics.
    """
    registry = get_registry()
    mark = registry.begin_task()
    start = time.perf_counter()
    result = fn(item)
    wall = time.perf_counter() - start
    return result, wall, registry.end_task(mark)


def run_sweep(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    record: bool = True,
) -> tuple[list[R], SweepTiming]:
    """Map ``fn`` over ``items``, preserving order, and time every task.

    ``fn`` must be a module-level callable and every item picklable when
    more than one worker is used (tasks cross a process boundary).  With
    ``jobs=1`` nothing is pickled and everything runs in-process.
    ``chunksize`` controls how many consecutive tasks a worker takes at
    once; drivers pass the inner-loop length so one worker runs all of a
    benchmark's chip models and reuses its memoized trace.
    """
    tasks: Sequence[T] = list(items)
    jobs = min(resolve_jobs(jobs), max(1, len(tasks)))
    timing = SweepTiming(
        label=label, jobs=jobs, run_id=events.current_run_id()
    )
    snapshots: list[MetricsSnapshot] = []
    start = time.perf_counter()
    if jobs == 1:
        results = []
        for item in tasks:
            result, wall, snap = _timed_call(fn, item)
            results.append(result)
            timing.task_wall_s.append(wall)
            snapshots.append(snap)
    else:
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (jobs * 4)))
        results = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result, wall, snap in pool.map(
                partial(_timed_call, fn), tasks, chunksize=chunksize
            ):
                results.append(result)
                timing.task_wall_s.append(wall)
                snapshots.append(snap)
    timing.wall_s = time.perf_counter() - start
    # Merge in submission order: the operation is order-independent, but
    # a fixed order keeps even float-valued span times reproducible for
    # a given worker count.
    timing.metrics = merge_snapshots(snapshots)
    if record:
        _TIMINGS.append(timing)
        events.emit(
            "sweep",
            run_id=timing.run_id,
            label=label,
            tasks=timing.tasks,
            jobs=jobs,
            wall_s=round(timing.wall_s, 3),
        )
    return results, timing


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
) -> list[R]:
    """:func:`run_sweep` without the timing handle (it is still recorded)."""
    results, _ = run_sweep(
        fn, items, jobs=jobs, chunksize=chunksize, label=label
    )
    return results
