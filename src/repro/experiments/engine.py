"""Parallel experiment execution engine.

Every figure/table driver is a sweep over independent ``(benchmark x chip
model x policy)`` simulations, so the drivers submit their task lists here
instead of running nested loops inline.  The engine provides:

* :func:`parallel_map` / :func:`run_sweep` — order-preserving map over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked submission
  (chunks keep a worker on one benchmark's tasks so its per-process
  artifact cache gets hits; see :mod:`repro.common.memo`);
* a worker-count policy: an explicit ``jobs`` argument wins, then the
  ``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
  ``jobs=1`` is a pure in-process serial loop — no executor, no pickling —
  so ``pdb``, profilers, and coverage keep working;
* per-task wall-clock capture: each sweep records a :class:`SweepTiming`
  (task count, summed task CPU-seconds, sweep wall-seconds, speedup) into
  a process-local registry that ``experiments/report.py`` and the
  benchmark harness render.

Determinism: results are returned in task-submission order regardless of
completion order, and every task re-derives its artifacts from explicit
``(profile, seed, window)`` keys, so a parallel sweep is bit-identical to
the serial one.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.errors import ConfigError

__all__ = [
    "JOBS_ENV_VAR",
    "SweepTiming",
    "resolve_jobs",
    "parallel_map",
    "run_sweep",
    "timings",
    "clear_timings",
    "timing_summary",
    "format_timing_summary",
]

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"

# Upper bound on auto-detected workers: sweeps are memory-hungry (each
# worker holds its own artifact cache), so "as many as the machine has"
# is capped unless the user asks explicitly.
_MAX_AUTO_JOBS = 16


@dataclass
class SweepTiming:
    """Wall-clock accounting of one sweep through the engine."""

    label: str
    jobs: int
    task_wall_s: list[float] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def tasks(self) -> int:
        """Number of tasks the sweep ran."""
        return len(self.task_wall_s)

    @property
    def cpu_s(self) -> float:
        """Summed per-task wall time — the serial-equivalent cost."""
        return sum(self.task_wall_s)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time (1.0 when serial)."""
        return self.cpu_s / self.wall_s if self.wall_s > 0 else 1.0


_TIMINGS: list[SweepTiming] = []


def timings() -> list[SweepTiming]:
    """Sweep timings recorded in this process, oldest first."""
    return list(_TIMINGS)


def clear_timings() -> None:
    """Forget all recorded sweep timings."""
    _TIMINGS.clear()


def timing_summary() -> list[dict]:
    """The recorded timings as plain dicts (JSON-serialisable)."""
    return [
        {
            "label": t.label,
            "tasks": t.tasks,
            "jobs": t.jobs,
            "cpu_s": round(t.cpu_s, 3),
            "wall_s": round(t.wall_s, 3),
            "speedup": round(t.speedup, 2),
        }
        for t in _TIMINGS
    ]


def format_timing_summary() -> str:
    """Human-readable table of every sweep recorded so far."""
    rows = timing_summary()
    if not rows:
        return "no sweeps recorded"
    header = ["sweep", "tasks", "jobs", "cpu (s)", "wall (s)", "speedup"]
    table = [
        [r["label"], str(r["tasks"]), str(r["jobs"]), f"{r['cpu_s']:.2f}",
         f"{r['wall_s']:.2f}", f"{r['speedup']:.2f}x"]
        for r in rows
    ]
    widths = [
        max(len(header[i]), max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


# ---------------------------------------------------------------------
def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count to use: argument, then ``REPRO_JOBS``, then cores."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, _MAX_AUTO_JOBS)
    if jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    return jobs


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[R, float]:
    """Run one task and capture its wall time (executed in the worker)."""
    start = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - start


def run_sweep(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    record: bool = True,
) -> tuple[list[R], SweepTiming]:
    """Map ``fn`` over ``items``, preserving order, and time every task.

    ``fn`` must be a module-level callable and every item picklable when
    more than one worker is used (tasks cross a process boundary).  With
    ``jobs=1`` nothing is pickled and everything runs in-process.
    ``chunksize`` controls how many consecutive tasks a worker takes at
    once; drivers pass the inner-loop length so one worker runs all of a
    benchmark's chip models and reuses its memoized trace.
    """
    tasks: Sequence[T] = list(items)
    jobs = min(resolve_jobs(jobs), max(1, len(tasks)))
    timing = SweepTiming(label=label, jobs=jobs)
    start = time.perf_counter()
    if jobs == 1:
        results = []
        for item in tasks:
            result, wall = _timed_call(fn, item)
            results.append(result)
            timing.task_wall_s.append(wall)
    else:
        if chunksize is None:
            chunksize = max(1, -(-len(tasks) // (jobs * 4)))
        results = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result, wall in pool.map(
                partial(_timed_call, fn), tasks, chunksize=chunksize
            ):
                results.append(result)
                timing.task_wall_s.append(wall)
    timing.wall_s = time.perf_counter() - start
    if record:
        _TIMINGS.append(timing)
    return results, timing


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
) -> list[R]:
    """:func:`run_sweep` without the timing handle (it is still recorded)."""
    results, _ = run_sweep(
        fn, items, jobs=jobs, chunksize=chunksize, label=label
    )
    return results
