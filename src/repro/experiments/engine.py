"""Fault-tolerant parallel experiment execution engine.

Every figure/table driver is a sweep over independent ``(benchmark x chip
model x policy)`` simulations, so the drivers submit their task lists here
instead of running nested loops inline.  The engine provides:

* :func:`parallel_map` / :func:`run_sweep` — order-preserving map over a
  :class:`~concurrent.futures.ProcessPoolExecutor` with chunked,
  future-based submission (chunks keep a worker on one benchmark's tasks
  so its per-process artifact cache gets hits; see
  :mod:`repro.common.memo`);
* a worker-count policy: an explicit ``jobs`` argument wins, then the
  ``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
  ``jobs=1`` is a pure in-process serial loop — no executor, no pickling —
  so ``pdb``, profilers, and coverage keep working;
* a resilience policy (:class:`TaskPolicy`): per-task retries with
  exponential backoff and deterministic jitter, a per-task timeout that
  kills hung attempts from inside the worker, fail-fast vs.
  collect-errors modes, transparent rebuild of a broken worker pool
  (``BrokenProcessPool``), and graceful degradation to serial execution
  after repeated worker deaths;
* sweep checkpointing (:mod:`repro.experiments.checkpoint`): completed
  task results append to a JSONL file keyed by run id and task key, so an
  interrupted sweep resumes via ``--resume <run_id>`` and re-executes
  only the tasks that never finished;
* a chaos hook (:mod:`repro.experiments.chaos`, ``REPRO_CHAOS``) that
  injects worker-side failures, delays, and process kills so the recovery
  machinery is itself testable — mirroring how :mod:`repro.core.faults`
  injects faults into the simulated cores;
* per-task wall-clock, metric-delta, and failure accounting recorded as a
  :class:`SweepTiming` per sweep (stamped with the active run id) that
  ``experiments/report.py`` and the benchmark harness render.

Determinism: results are returned in task-submission order regardless of
completion, retry, or resume history.  Tasks are pure — a retried attempt
is bit-identical to a clean first run — and the metric deltas of failed
attempts are discarded, so merged sweep metrics are equal across any
worker count, retry history, or resume boundary.  Chaos injections fire
*before* a task's body and only on first attempts, which keeps even a
chaos-disturbed sweep bit-identical to an undisturbed serial one.

Failure accounting (failures/retries/timeouts/pool rebuilds) deliberately
stays **out** of the merged metric snapshots and in dedicated
:class:`SweepTiming` fields: the ``metrics`` section of a run manifest
must stay bit-identical between a faulted-and-recovered run and a clean
one, which it could not if recovery events were counted there.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback as traceback_mod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.errors import (
    ChaosError,
    ConfigError,
    SweepAbortedError,
    TaskError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments.chaos import ChaosPolicy, hash01
from repro.obs import events
from repro.obs.metrics import MetricsSnapshot, get_registry, merge_snapshots

__all__ = [
    "JOBS_ENV_VAR",
    "RETRIES_ENV_VAR",
    "TASK_TIMEOUT_ENV_VAR",
    "TaskPolicy",
    "SweepTiming",
    "resolve_jobs",
    "set_default_jobs",
    "set_default_policy",
    "policy_from_env",
    "resolve_policy",
    "parallel_map",
    "run_sweep",
    "run_metrics",
    "timings",
    "clear_timings",
    "timing_summary",
    "format_timing_summary",
]

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"

# Upper bound on auto-detected workers: sweeps are memory-hungry (each
# worker holds its own artifact cache), so "as many as the machine has"
# is capped unless the user asks explicitly.
_MAX_AUTO_JOBS = 16

# Guard against division by a degenerate (sub-resolution) wall clock.
_EPS_WALL_S = 1e-9


# ---------------------------------------------------------------------
@dataclass(frozen=True)
class TaskPolicy:
    """How a sweep treats task failures, hangs, and worker deaths.

    ``max_retries`` counts *re*-executions per task beyond the first
    attempt.  ``timeout_s`` kills an attempt from inside the worker (a
    ``SIGALRM`` timer around the task body; enforcement needs a Unix
    main thread and otherwise degrades to no limit).  Backoff between a
    task's attempts grows exponentially from ``backoff_s`` and carries
    deterministic jitter derived from the task index, so retry storms
    from chunk-mates never synchronise yet stay reproducible.  With
    ``fail_fast`` (the default) the first exhausted task aborts the
    sweep with :class:`SweepAbortedError`; otherwise failures are
    collected, failed slots return ``None``, and the sweep completes.
    A pool that keeps dying is rebuilt ``max_pool_rebuilds`` times, then
    the remaining tasks run serially in-process (``degrade_serial``) or
    :class:`WorkerCrashError` is raised.
    """

    max_retries: int = 0
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    fail_fast: bool = True
    max_pool_rebuilds: int = 3
    degrade_serial: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ConfigError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff(self, task_index: int, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (>= 1) of ``task_index``.

        Exponential in the attempt number, capped at ``max_backoff_s``,
        with up to +50% jitter hashed from the task index — deterministic
        for a given sweep, decorrelated across tasks.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = min(
            self.backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + 0.5 * hash01(f"backoff:{task_index}:{attempt}"))


_BASE_POLICY = TaskPolicy()
_DEFAULT_POLICY: TaskPolicy | None = None

RETRIES_ENV_VAR = "REPRO_RETRIES"
TASK_TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"


def set_default_policy(policy: TaskPolicy | None) -> None:
    """Set the process-wide resilience policy (the CLI's retry flags).

    Applies to every sweep that does not pass ``policy`` explicitly;
    ``None`` restores the environment-derived (or base) default.
    """
    global _DEFAULT_POLICY
    _DEFAULT_POLICY = policy


def policy_from_env() -> TaskPolicy | None:
    """The resilience policy implied by ``REPRO_RETRIES`` /
    ``REPRO_TASK_TIMEOUT``, or None when neither is set.

    Mirrors ``REPRO_JOBS``: environment knobs sit below explicit
    arguments and :func:`set_default_policy` (the CLI flags), above the
    built-in default.  Re-read on every resolution so tests and long
    processes see environment changes.
    """
    overrides: dict[str, object] = {}
    raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
    if raw:
        try:
            overrides["max_retries"] = int(raw)
        except ValueError:
            raise ConfigError(
                f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    raw = os.environ.get(TASK_TIMEOUT_ENV_VAR, "").strip()
    if raw:
        try:
            overrides["timeout_s"] = float(raw)
        except ValueError:
            raise ConfigError(
                f"{TASK_TIMEOUT_ENV_VAR} must be a number, got {raw!r}"
            ) from None
    if not overrides:
        return None
    return replace(_BASE_POLICY, **overrides)


def resolve_policy(policy: TaskPolicy | None = None) -> TaskPolicy:
    """The effective policy: argument, then :func:`set_default_policy`,
    then the environment knobs, then the built-in default."""
    return policy or _DEFAULT_POLICY or policy_from_env() or _BASE_POLICY


# ---------------------------------------------------------------------
@dataclass
class SweepTiming:
    """Wall-clock and failure accounting of one sweep through the engine."""

    label: str
    jobs: int
    task_wall_s: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    run_id: str = ""
    metrics: MetricsSnapshot | None = None
    failures: int = 0        # tasks that exhausted every attempt
    retries: int = 0         # failed attempts that were retried
    timeouts: int = 0        # attempts killed by the per-task timeout
    pool_rebuilds: int = 0   # BrokenProcessPool recoveries
    resumed_tasks: int = 0   # tasks restored from a checkpoint
    degraded: bool = False   # fell back to serial after repeated crashes
    empty: bool = False      # sweep had no tasks (not recorded)

    @property
    def tasks(self) -> int:
        """Number of tasks the sweep ran."""
        return len(self.task_wall_s)

    @property
    def cpu_s(self) -> float:
        """Summed per-task wall time — the serial-equivalent cost."""
        return sum(self.task_wall_s)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time.

        Division is epsilon-guarded, so a degenerate (sub-resolution)
        wall clock yields a huge-but-finite ratio instead of a bogus
        ``1.0``; :func:`format_timing_summary` renders such sweeps as
        ``—``.  An empty sweep reports ``0.0``.
        """
        return self.cpu_s / max(self.wall_s, _EPS_WALL_S)


_TIMINGS: list[SweepTiming] = []


def timings(run_id: str | None = None) -> list[SweepTiming]:
    """Sweep timings recorded in this process, oldest first.

    With ``run_id``, only that run's sweeps — the registry is never
    cleared between runs, so long-lived processes (test sessions,
    notebooks) filter instead of racing over a global reset.
    """
    if run_id is None:
        return list(_TIMINGS)
    return [t for t in _TIMINGS if t.run_id == run_id]


def clear_timings() -> None:
    """Forget all recorded sweep timings (prefer run-id filtering)."""
    _TIMINGS.clear()


def timing_summary(
    run_id: str | None = None, include_metrics: bool = False
) -> list[dict]:
    """The recorded timings as plain dicts (JSON-serialisable).

    ``include_metrics`` adds each sweep's merged metric snapshot (for
    run manifests); the default stays compact for the results report.
    """
    rows = []
    for t in timings(run_id):
        row = {
            "label": t.label,
            "run_id": t.run_id,
            "tasks": t.tasks,
            "jobs": t.jobs,
            "cpu_s": round(t.cpu_s, 3),
            "wall_s": round(t.wall_s, 3),
            "speedup": round(t.speedup, 2),
            "failures": t.failures,
            "retries": t.retries,
            "timeouts": t.timeouts,
            "pool_rebuilds": t.pool_rebuilds,
            "resumed_tasks": t.resumed_tasks,
            "degraded": t.degraded,
        }
        if include_metrics:
            row["metrics"] = (t.metrics or MetricsSnapshot()).as_dict()
        rows.append(row)
    return rows


def run_metrics(run_id: str | None = None) -> MetricsSnapshot:
    """All of one run's sweep metrics merged into a single snapshot.

    Built purely from the per-task deltas the sweeps collected, so the
    result is identical whatever worker count produced them.
    """
    return merge_snapshots(t.metrics for t in timings(run_id))


def format_timing_summary(run_id: str | None = None) -> str:
    """Human-readable table of every sweep recorded so far."""
    rows = timing_summary(run_id)
    if not rows:
        return "no sweeps recorded"
    header = ["sweep", "tasks", "jobs", "cpu (s)", "wall (s)", "speedup"]
    table = [
        [r["label"], str(r["tasks"]), str(r["jobs"]), f"{r['cpu_s']:.2f}",
         f"{r['wall_s']:.2f}",
         "—" if r["wall_s"] <= 0 or r["tasks"] == 0
         else f"{r['speedup']:.2f}x"]
        for r in rows
    ]
    widths = [
        max(len(header[i]), max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


# ---------------------------------------------------------------------
_DEFAULT_JOBS: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``).

    Applies to every sweep that does not pass ``jobs`` explicitly; it
    outranks ``REPRO_JOBS``.  ``None`` restores environment/auto policy.
    """
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count: argument, then :func:`set_default_jobs`, then
    ``REPRO_JOBS``, then ``os.cpu_count()`` (capped)."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, _MAX_AUTO_JOBS)
    if jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    return jobs


# ---------------------------------------------------------------------
# Worker-side task execution: attempts, timeouts, chaos.
#
# A sweep entry is the tuple ``(index, base_attempt, item)``.
# ``base_attempt`` is nonzero only after a chaos kill was attributed to
# the task, so its rerun counts the consumed attempt and skips further
# first-attempt injections.


class _TaskTimeout(BaseException):
    """Raised by the SIGALRM handler; BaseException so the task body
    cannot swallow it with a broad ``except Exception``."""


@contextmanager
def _deadline(timeout_s: float | None):
    """Kill the enclosed block after ``timeout_s`` via an interval timer.

    Enforcement requires ``SIGALRM`` (Unix) and the main thread — both
    true for pool workers and for the serial in-process path.  Anywhere
    else the block runs unlimited rather than failing.

    The timer is armed with a repeating interval equal to the timeout:
    if a task body swallows the first :class:`_TaskTimeout` (a broad
    ``except BaseException`` handler) the alarm re-fires one period
    later, so an in-process (jobs=1) task cannot convert one caught
    alarm into an unlimited run.  The ``finally`` disarm clears both the
    pending expiry and the repeat interval.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise _TaskTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _TaskOutcome:
    """What one task's attempt loop produced (picklable)."""

    index: int
    ok: bool = False
    result: object = None
    wall_s: float = 0.0
    metrics: MetricsSnapshot | None = None
    attempts: int = 0        # attempts executed here (excludes base)
    retries: int = 0         # failed attempts that were retried in place
    timeouts: int = 0        # attempts killed by the per-task timeout
    error_kind: str = ""     # "error" | "timeout" | "chaos"
    error: str = ""
    traceback: str = ""


def _attempt_task(
    fn: Callable[[T], R],
    item: T,
    index: int,
    base_attempt: int,
    policy: TaskPolicy,
    chaos: ChaosPolicy | None,
    in_worker: bool,
    prepare: Callable | None = None,
    chunk_items: Sequence | None = None,
) -> _TaskOutcome:
    """Run one task with in-place retries; never raises task errors.

    Retries stay on the executing process on purpose: the retry then
    sees exactly the memo-cache state a clean run would have, which is
    part of the merged-metric determinism contract.  Failed attempts
    call ``end_task`` purely to unwind the span stack — their metric
    deltas are discarded.

    ``prepare`` (the chunk's ``prepare_chunk`` hook, passed only to the
    chunk's first entry) runs with the full ``chunk_items`` list inside
    this task's metrics window and deadline, on *every* attempt: chaos
    injections fire before ``begin_task``, so a killed first attempt did
    no priming and the retry prepares from the same cold state a clean
    run would have seen.  The hook must therefore be idempotent (warm
    caches make it a no-op).
    """
    outcome = _TaskOutcome(index=index)
    attempts_allowed = max(1, policy.max_retries + 1 - base_attempt)
    registry = get_registry()
    for n in range(attempts_allowed):
        attempt = base_attempt + n
        outcome.attempts = n + 1
        if n:
            delay = policy.backoff(index, attempt)
            if delay:
                time.sleep(delay)
        try:
            if chaos is not None:
                chaos.inject(index, attempt, in_worker=in_worker)
            mark = registry.begin_task()
            try:
                start = time.perf_counter()
                with _deadline(policy.timeout_s):
                    if prepare is not None:
                        prepare(chunk_items)
                    result = fn(item)
                wall = time.perf_counter() - start
                snapshot = registry.end_task(mark)
            except BaseException:
                registry.end_task(mark)
                raise
        except _TaskTimeout:
            outcome.timeouts += 1
            outcome.error_kind = "timeout"
            outcome.error = f"task exceeded its {policy.timeout_s}s timeout"
            outcome.traceback = traceback_mod.format_exc()
        except ChaosError as exc:
            outcome.error_kind = "chaos"
            outcome.error = str(exc)
            outcome.traceback = traceback_mod.format_exc()
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            outcome.error_kind = "error"
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.traceback = traceback_mod.format_exc()
        else:
            outcome.ok = True
            outcome.result = result
            outcome.wall_s = wall
            outcome.metrics = snapshot
            return outcome
        if n + 1 < attempts_allowed:
            outcome.retries += 1
    return outcome


def _run_chunk(
    fn: Callable[[T], R],
    entries: Sequence[tuple[int, int, T]],
    policy: TaskPolicy,
    chaos: ChaosPolicy | None,
    in_worker: bool,
    prepare: Callable | None = None,
) -> list[_TaskOutcome]:
    """Execute one chunk of entries in order (the pool's unit of work).

    ``prepare`` runs inside the first entry's attempt with the whole
    chunk's items, so batched warm-up work is attributed to the chunk
    that benefits from it (see :func:`_attempt_task`).
    """
    items = [item for _index, _base, item in entries]
    return [
        _attempt_task(
            fn, item, index, base, policy, chaos, in_worker,
            prepare=prepare if pos == 0 else None,
            chunk_items=items if pos == 0 else None,
        )
        for pos, (index, base, item) in enumerate(entries)
    ]


# ---------------------------------------------------------------------
# Controller side: chunk scheduling, pool recovery, checkpointing.


class _SweepState:
    """Per-sweep bookkeeping shared by the serial and pool paths."""

    def __init__(
        self,
        tasks: Sequence,
        label: str,
        policy: TaskPolicy,
        timing: SweepTiming,
        ckpt: checkpoint_mod.SweepCheckpoint | None,
    ):
        self.tasks = tasks
        self.label = label
        self.policy = policy
        self.timing = timing
        self.ckpt = ckpt
        n = len(tasks)
        self.results: list = [None] * n
        self.walls: list[float] = [0.0] * n
        self.snapshots: list[MetricsSnapshot | None] = [None] * n
        self.failures: list[TaskError] = []

    def restore(self, entry: tuple[int, int, object]) -> bool:
        """Fill one slot from the checkpoint; True when restored."""
        if self.ckpt is None:
            return False
        index, _base, item = entry
        stored = self.ckpt.restore(checkpoint_mod.task_key(item, index))
        if stored is None:
            return False
        self.results[index], self.walls[index], self.snapshots[index] = stored
        self.timing.resumed_tasks += 1
        return True

    def absorb(self, outcome: _TaskOutcome) -> None:
        """Fold one final task outcome into the sweep (and checkpoint)."""
        i = outcome.index
        self.timing.retries += outcome.retries
        self.timing.timeouts += outcome.timeouts
        if outcome.ok:
            self.results[i] = outcome.result
            self.walls[i] = outcome.wall_s
            self.snapshots[i] = outcome.metrics
            if self.ckpt is not None:
                item = self.tasks[i]
                self.ckpt.append(
                    checkpoint_mod.task_key(item, i),
                    i,
                    repr(item)[:160],
                    outcome.wall_s,
                    outcome.result,
                    outcome.metrics,
                )
            return
        self.timing.failures += 1
        key = checkpoint_mod.task_key(self.tasks[i], i)
        message = (
            f"sweep {self.label!r} task {i} failed after "
            f"{outcome.attempts} attempt(s): {outcome.error}"
        )
        cls = TaskTimeoutError if outcome.error_kind == "timeout" else TaskError
        kwargs = dict(
            task_key=key,
            task_index=i,
            attempts=outcome.attempts,
            worker_traceback=outcome.traceback,
        )
        if cls is TaskTimeoutError:
            kwargs["timeout_s"] = self.policy.timeout_s or 0.0
        error = cls(message, **kwargs)
        self.failures.append(error)
        events.emit(
            "task_failed",
            run_id=self.timing.run_id,
            label=self.label,
            task_index=i,
            task_key=key,
            attempts=outcome.attempts,
            error_kind=outcome.error_kind,
            error=outcome.error,
        )
        if self.policy.fail_fast:
            raise SweepAbortedError(
                f"sweep {self.label!r} aborted: {message}",
                label=self.label,
                failures=self.failures,
            ) from error

    def absorb_chunk_error(self, chunk, exc: Exception) -> None:
        """An infrastructure failure lost a whole chunk (e.g. the result
        would not unpickle); every task in it counts as failed."""
        for index, base, _item in chunk:
            self.absorb(_TaskOutcome(
                index=index,
                attempts=base + 1,
                error_kind="error",
                error=f"chunk execution failed: {type(exc).__name__}: {exc}",
            ))


def _chunked(entries: list, chunksize: int) -> list[list]:
    return [
        entries[i:i + chunksize] for i in range(0, len(entries), chunksize)
    ]


def _bump_killed_entries(chunk, chaos: ChaosPolicy | None):
    """After a pool crash, consume the first attempt of every entry the
    chaos policy would have killed, so its rerun is injection-free.  Both
    sides of the process boundary compute the same pure decision, which
    is what lets the controller attribute a crash it only observed as a
    ``BrokenProcessPool``.  Real (non-chaos) crashes resubmit unchanged.
    """
    if chaos is None:
        return chunk
    return [
        (index, base + 1, item)
        if chaos.kills(index, base) else (index, base, item)
        for index, base, item in chunk
    ]


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Best-effort terminate of pool workers on abnormal exits, so an
    abort or Ctrl-C is not held hostage by a long or hung task.  Reaches
    into executor internals, hence the broad guard."""
    try:
        processes = list((pool._processes or {}).values())
    except Exception:
        return
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


def _run_serial(fn, chunks, policy, chaos, state: _SweepState,
                prepare=None) -> None:
    # Per-task absorb (not per-chunk) so fail-fast aborts mid-chunk and
    # checkpoints land as each task finishes; prepare semantics match
    # _run_chunk's first-entry placement exactly.
    for chunk in chunks:
        items = [item for _index, _base, item in chunk]
        for pos, (index, base, item) in enumerate(chunk):
            state.absorb(
                _attempt_task(
                    fn, item, index, base, policy, chaos, in_worker=False,
                    prepare=prepare if pos == 0 else None,
                    chunk_items=items if pos == 0 else None,
                )
            )


# Controller-deadline slack over the serial worst case: covers dispatch,
# pickling, and scheduler noise without masking a genuinely stuck worker.
_DEADLINE_SLACK = 1.25
_DEADLINE_GRACE_S = 2.0


def _wave_budget(chunks, policy: TaskPolicy) -> float:
    """Worst-case wall budget for one submission wave.

    Every attempt of every entry at the per-attempt timeout plus maximal
    backoffs, run *serially* — a pessimistic bound that stays valid
    however the pool distributes chunks over workers (a queued chunk's
    wait time is someone else's run time, already counted).  Only
    meaningful when ``policy.timeout_s`` is set.
    """
    budget = 0.0
    for chunk in chunks:
        for _index, base, _item in chunk:
            attempts = max(1, policy.max_retries + 1 - base)
            budget += attempts * policy.timeout_s
            budget += (attempts - 1) * policy.max_backoff_s * 1.5
    return budget * _DEADLINE_SLACK + _DEADLINE_GRACE_S


def _expire_wave(inflight: dict, policy: TaskPolicy, state: _SweepState) -> None:
    """Declare every unfinished chunk of a wave timed out (the controller
    backstop fired: the in-worker alarm never delivered a result inside
    the wave's worst-case serial budget).  Raises ``SweepAbortedError``
    via ``absorb`` under a fail-fast policy."""
    expired = list(inflight.items())
    inflight.clear()
    events.emit(
        "sweep_deadline_expired",
        run_id=state.timing.run_id,
        label=state.label,
        unfinished_chunks=len(expired),
        timeout_s=policy.timeout_s,
    )
    for future, chunk in expired:
        future.cancel()
        for index, base, _item in chunk:
            state.absorb(_TaskOutcome(
                index=index,
                attempts=max(1, policy.max_retries + 1 - base),
                timeouts=1,
                error_kind="timeout",
                error=(
                    "controller deadline expired: task still unfinished "
                    f"after the wave's worst-case budget "
                    f"(per-attempt timeout {policy.timeout_s}s)"
                ),
            ))


def _run_pooled(fn, chunks, jobs, policy, chaos, state: _SweepState,
                prepare=None) -> None:
    """Future-based chunk execution with broken-pool recovery.

    Chunks are resubmitted whole after a crash: a fresh worker re-runs
    the chunk from a cold cache exactly like the first worker did, so
    the re-produced metric deltas are bit-identical and nothing from the
    aborted pass survives (its results died with the worker).

    When the policy carries a per-task timeout, the controller also arms
    a wave-level deadline (:func:`_wave_budget`).  The in-worker alarm is
    the primary enforcement, but it cannot fire inside C extensions and a
    pathological task can swallow it; a wave that outlives the budget has
    its unfinished chunks declared timed out and its workers terminated,
    so no sweep can hang the controller indefinitely.
    """
    pending = list(chunks)
    rebuilds = 0
    while pending:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        broken = False
        try:
            deadline = None
            if policy.timeout_s is not None:
                deadline = time.monotonic() + _wave_budget(pending, policy)
            inflight = {
                pool.submit(
                    _run_chunk, fn, chunk, policy, chaos, True, prepare
                ): chunk
                for chunk in pending
            }
            pending = []
            while inflight:
                wait_s = None
                if deadline is not None:
                    wait_s = max(0.0, deadline - time.monotonic())
                done, _ = futures_wait(
                    inflight, timeout=wait_s, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = inflight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        broken = True
                        pending.append(_bump_killed_entries(chunk, chaos))
                        continue
                    except Exception as exc:
                        state.absorb_chunk_error(chunk, exc)
                        continue
                    for outcome in outcomes:
                        state.absorb(outcome)
                if (
                    inflight
                    and not done
                    and deadline is not None
                    and time.monotonic() >= deadline
                ):
                    _expire_wave(inflight, policy, state)
                    _kill_pool_workers(pool)
        except BaseException:
            _kill_pool_workers(pool)
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not broken:
            return
        rebuilds += 1
        state.timing.pool_rebuilds += 1
        events.emit(
            "pool_rebuilt",
            run_id=state.timing.run_id,
            label=state.label,
            rebuilds=rebuilds,
            unfinished_tasks=sum(len(c) for c in pending),
        )
        if rebuilds > policy.max_pool_rebuilds:
            if not policy.degrade_serial:
                raise WorkerCrashError(
                    f"sweep {state.label!r}: worker pool died "
                    f"{rebuilds} times (max_pool_rebuilds="
                    f"{policy.max_pool_rebuilds})",
                    rebuilds=rebuilds,
                )
            state.timing.degraded = True
            events.emit(
                "sweep_degraded",
                run_id=state.timing.run_id,
                label=state.label,
                rebuilds=rebuilds,
                remaining_tasks=sum(len(c) for c in pending),
            )
            _run_serial(fn, pending, policy, chaos, state, prepare=prepare)
            return


# ---------------------------------------------------------------------
def run_sweep(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    record: bool = True,
    policy: TaskPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    prepare_chunk: Callable | None = None,
) -> tuple[list[R], SweepTiming]:
    """Map ``fn`` over ``items``, preserving order, with fault tolerance.

    ``fn`` must be a module-level callable and every item picklable when
    more than one worker is used (tasks cross a process boundary).  With
    ``jobs=1`` nothing is pickled and everything runs in-process.
    ``chunksize`` controls how many consecutive tasks form one unit of
    worker placement; drivers pass the inner-loop length so one worker
    runs all of a benchmark's chip models and reuses its memoized trace.

    ``prepare_chunk``, when given, is a module-level callable invoked
    with each chunk's full item list inside the chunk's *first* task
    (within its metrics window, deadline, and retry loop) before that
    task's ``fn`` runs.  Drivers use it to warm per-process caches for a
    whole chunk at once — e.g. lockstep-batched trace generation across
    the chunk's simulations.  It must be idempotent: it re-runs on
    retries and on chunk resubmission after a worker crash, each time
    from exactly the cache state a clean first run would have seen.

    ``policy`` (default: :func:`set_default_policy`, else no retries,
    fail fast) governs retries, timeouts, error collection, and pool
    recovery; ``chaos`` (default: :func:`chaos.set_chaos`, else the
    ``REPRO_CHAOS`` environment variable) injects faults for testing.
    In collect-errors mode the returned list holds ``None`` for tasks
    that exhausted their attempts.

    An empty task list returns immediately with ``timing.empty`` set and
    records nothing, so reports never show zero-task sweeps.
    """
    tasks: Sequence[T] = list(items)
    policy = resolve_policy(policy)
    chaos = chaos if chaos is not None else chaos_mod.current_chaos()
    run_id = events.current_run_id()
    timing = SweepTiming(label=label, jobs=1, run_id=run_id)
    if not tasks:
        timing.empty = True
        timing.metrics = MetricsSnapshot()
        return [], timing
    jobs = min(resolve_jobs(jobs), max(1, len(tasks)))
    if chunksize is None:
        chunksize = max(1, -(-len(tasks) // (jobs * 4)))
    entries = [(i, 0, item) for i, item in enumerate(tasks)]
    chunks = _chunked(entries, chunksize)
    ckpt = checkpoint_mod.open_sweep(label, run_id)
    state = _SweepState(tasks, label, policy, timing, ckpt)
    # Chunk-granular restore: a chunk re-runs whole unless every one of
    # its tasks is checkpointed (see repro.experiments.checkpoint).
    pending_chunks = []
    for chunk in chunks:
        probe = timing.resumed_tasks
        if all(state.restore(entry) for entry in chunk):
            continue
        timing.resumed_tasks = probe
        pending_chunks.append(chunk)
    jobs = min(jobs, max(1, len(pending_chunks)))
    timing.jobs = jobs
    start = time.perf_counter()
    try:
        if pending_chunks:
            if jobs == 1:
                _run_serial(fn, pending_chunks, policy, chaos, state,
                            prepare=prepare_chunk)
            else:
                _run_pooled(fn, pending_chunks, jobs, policy, chaos, state,
                            prepare=prepare_chunk)
    except KeyboardInterrupt:
        events.emit(
            "sweep_interrupted",
            run_id=run_id,
            label=label,
            completed_tasks=sum(s is not None for s in state.snapshots),
            checkpointed=ckpt is not None,
        )
        raise
    finally:
        if ckpt is not None:
            ckpt.close()
    timing.wall_s = time.perf_counter() - start
    timing.task_wall_s = list(state.walls)
    # Merge in submission order: the operation is order-independent, but
    # a fixed order keeps even float-valued span times reproducible for
    # a given worker count.
    timing.metrics = merge_snapshots(state.snapshots)
    if record:
        _TIMINGS.append(timing)
        events.emit(
            "sweep",
            run_id=run_id,
            label=label,
            tasks=timing.tasks,
            jobs=jobs,
            wall_s=round(timing.wall_s, 3),
            failures=timing.failures,
            retries=timing.retries,
            timeouts=timing.timeouts,
            pool_rebuilds=timing.pool_rebuilds,
            resumed_tasks=timing.resumed_tasks,
        )
    return state.results, timing


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    policy: TaskPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    prepare_chunk: Callable | None = None,
) -> list[R]:
    """:func:`run_sweep` without the timing handle (it is still recorded)."""
    results, _ = run_sweep(
        fn, items, jobs=jobs, chunksize=chunksize, label=label,
        policy=policy, chaos=chaos, prepare_chunk=prepare_chunk,
    )
    return results
