"""Fault-tolerant parallel experiment execution engine.

Every figure/table driver is a sweep over independent ``(benchmark x chip
model x policy)`` simulations, so the drivers submit their task lists here
instead of running nested loops inline.  The engine provides:

* :func:`parallel_map` / :func:`run_sweep` — order-preserving map over a
  pluggable executor backend (:mod:`repro.experiments.executors`) with
  chunked submission (chunks keep a worker on one benchmark's tasks so
  its per-process artifact cache gets hits; see :mod:`repro.common.memo`);
* a worker-count policy: an explicit ``jobs`` argument wins, then the
  ``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
  Backend selection mirrors it: ``executor=`` argument, then the CLI's
  ``--executor``, then ``REPRO_EXECUTOR``, then ``inline`` for one
  worker (a pure in-process loop — no executor processes, no pickling —
  so ``pdb``, profilers, and coverage keep working) and the ``local``
  process pool otherwise; ``socket`` runs long-lived TCP workers;
* a backend-agnostic scheduler loop driven by per-chunk **leases**
  (deadline = the wave's worst-case serial budget) and worker
  **heartbeats**: a missed heartbeat or expired lease requeues the
  chunk onto a surviving worker where the backend supports it, results
  commit **at most once** per task key (a slow original completing
  after its requeued twin cannot double-count), and repeated backend
  failure degrades down the chain ``socket -> local -> inline``;
* a resilience policy (:class:`TaskPolicy`): per-task retries with
  exponential backoff and deterministic jitter, a per-task timeout that
  kills hung attempts from inside the worker, fail-fast vs.
  collect-errors modes, transparent rebuild of a broken worker pool
  (``BrokenProcessPool``), and graceful degradation after repeated
  worker deaths;
* sweep checkpointing (:mod:`repro.experiments.checkpoint`): completed
  task results append to a JSONL file keyed by run id and task key, so an
  interrupted sweep resumes via ``--resume <run_id>`` and re-executes
  only the tasks that never finished;
* a chaos hook (:mod:`repro.experiments.chaos`, ``REPRO_CHAOS``) that
  injects worker-side failures, delays, and process kills so the recovery
  machinery is itself testable — mirroring how :mod:`repro.core.faults`
  injects faults into the simulated cores;
* per-task wall-clock, metric-delta, and failure accounting recorded as a
  :class:`SweepTiming` per sweep (stamped with the active run id) that
  ``experiments/report.py`` and the benchmark harness render.

Determinism: results are returned in task-submission order regardless of
completion, retry, or resume history.  Tasks are pure — a retried attempt
is bit-identical to a clean first run — and the metric deltas of failed
attempts are discarded, so merged sweep metrics are equal across any
worker count, retry history, or resume boundary.  Chaos injections fire
*before* a task's body and only on first attempts, which keeps even a
chaos-disturbed sweep bit-identical to an undisturbed serial one.

Failure accounting (failures/retries/timeouts/pool rebuilds) deliberately
stays **out** of the merged metric snapshots and in dedicated
:class:`SweepTiming` fields: the ``metrics`` section of a run manifest
must stay bit-identical between a faulted-and-recovered run and a clean
one, which it could not if recovery events were counted there.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.errors import (
    ConfigError,
    ExecutorBrokenError,
    SweepAbortedError,
    SweepDrainedError,
    TaskError,
    TaskQuarantinedError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import executors as executors_mod
from repro.experiments.chaos import ChaosPolicy, hash01
from repro.experiments.executors import (
    EXECUTOR_ENV_VAR,
    resolve_executor,
    set_default_executor,
)
from repro.obs import events
from repro.obs import export as export_mod
from repro.obs import live as live_mod
from repro.obs import profile as profile_mod
from repro.obs.metrics import MetricsSnapshot, merge_snapshots

# Worker-side execution moved to repro.experiments.executors in PR 7;
# aliased here because engine is their historical home and the runner,
# tests, and docs refer to them through this module.
from repro.experiments.executors import (  # noqa: F401
    _TaskOutcome,
    _TaskTimeout,
    _attempt_task,
    _deadline,
    _kill_pool_workers,
    _run_chunk,
)

__all__ = [
    "JOBS_ENV_VAR",
    "RETRIES_ENV_VAR",
    "TASK_TIMEOUT_ENV_VAR",
    "EXECUTOR_ENV_VAR",
    "TaskPolicy",
    "SweepTiming",
    "resolve_jobs",
    "set_default_jobs",
    "set_default_policy",
    "policy_from_env",
    "resolve_policy",
    "resolve_executor",
    "set_default_executor",
    "parallel_map",
    "run_sweep",
    "run_metrics",
    "request_drain",
    "drain_requested",
    "clear_drain",
    "timings",
    "clear_timings",
    "timing_summary",
    "format_timing_summary",
]

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"

# Upper bound on auto-detected workers: sweeps are memory-hungry (each
# worker holds its own artifact cache), so "as many as the machine has"
# is capped unless the user asks explicitly.
_MAX_AUTO_JOBS = 16

# Guard against division by a degenerate (sub-resolution) wall clock.
_EPS_WALL_S = 1e-9


# ---------------------------------------------------------------------
@dataclass(frozen=True)
class TaskPolicy:
    """How a sweep treats task failures, hangs, and worker deaths.

    ``max_retries`` counts *re*-executions per task beyond the first
    attempt.  ``timeout_s`` kills an attempt from inside the worker (a
    ``SIGALRM`` timer around the task body; enforcement needs a Unix
    main thread and otherwise degrades to no limit).  Backoff between a
    task's attempts grows exponentially from ``backoff_s`` and carries
    deterministic jitter derived from the task index, so retry storms
    from chunk-mates never synchronise yet stay reproducible.  With
    ``fail_fast`` (the default) the first exhausted task aborts the
    sweep with :class:`SweepAbortedError`; otherwise failures are
    collected, failed slots return ``None``, and the sweep completes.
    A pool that keeps dying is rebuilt ``max_pool_rebuilds`` times, then
    the remaining tasks run serially in-process (``degrade_serial``) or
    :class:`WorkerCrashError` is raised.  On backends that support
    work-stealing requeue (the socket executor), a chunk stranded by a
    lost worker or an expired lease is resubmitted to a surviving
    worker at most ``max_requeues`` times before its unfinished tasks
    are declared failed.  A lost socket worker is replaced by a fresh
    process after ``respawn_backoff_s``, at most ``max_respawns`` times
    per sweep (``0`` restores the old shrink-onto-survivors behaviour);
    the local pool's equivalent is its ``max_pool_rebuilds`` budget.
    ``drain_timeout_s`` bounds how long a drain (SIGTERM) waits for
    in-flight chunks to finish before giving up on them.
    ``degrade_serial`` also governs the backend degradation chain: when
    off, a broken backend raises instead of falling back to the next
    one.
    """

    max_retries: int = 0
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    fail_fast: bool = True
    max_pool_rebuilds: int = 3
    degrade_serial: bool = True
    max_requeues: int = 3
    max_respawns: int = 2
    respawn_backoff_s: float = 0.1
    drain_timeout_s: float = 30.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ConfigError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.max_requeues < 0:
            raise ConfigError(
                f"max_requeues must be >= 0, got {self.max_requeues}"
            )
        if self.max_respawns < 0:
            raise ConfigError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.respawn_backoff_s < 0:
            raise ConfigError(
                f"respawn_backoff_s must be >= 0, got "
                f"{self.respawn_backoff_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigError(
                f"drain_timeout_s must be positive, got "
                f"{self.drain_timeout_s}"
            )

    def backoff(self, task_index: int, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (>= 1) of ``task_index``.

        Exponential in the attempt number, capped at ``max_backoff_s``,
        with up to +50% jitter hashed from the task index — deterministic
        for a given sweep, decorrelated across tasks.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = min(
            self.backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + 0.5 * hash01(f"backoff:{task_index}:{attempt}"))


_BASE_POLICY = TaskPolicy()
_DEFAULT_POLICY: TaskPolicy | None = None

RETRIES_ENV_VAR = "REPRO_RETRIES"
TASK_TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"


def set_default_policy(policy: TaskPolicy | None) -> None:
    """Set the process-wide resilience policy (the CLI's retry flags).

    Applies to every sweep that does not pass ``policy`` explicitly;
    ``None`` restores the environment-derived (or base) default.
    """
    global _DEFAULT_POLICY
    _DEFAULT_POLICY = policy


def policy_from_env() -> TaskPolicy | None:
    """The resilience policy implied by ``REPRO_RETRIES`` /
    ``REPRO_TASK_TIMEOUT``, or None when neither is set.

    Mirrors ``REPRO_JOBS``: environment knobs sit below explicit
    arguments and :func:`set_default_policy` (the CLI flags), above the
    built-in default.  Re-read on every resolution so tests and long
    processes see environment changes.
    """
    overrides: dict[str, object] = {}
    raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
    if raw:
        try:
            overrides["max_retries"] = int(raw)
        except ValueError:
            raise ConfigError(
                f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    raw = os.environ.get(TASK_TIMEOUT_ENV_VAR, "").strip()
    if raw:
        try:
            overrides["timeout_s"] = float(raw)
        except ValueError:
            raise ConfigError(
                f"{TASK_TIMEOUT_ENV_VAR} must be a number, got {raw!r}"
            ) from None
    if not overrides:
        return None
    return replace(_BASE_POLICY, **overrides)


def resolve_policy(policy: TaskPolicy | None = None) -> TaskPolicy:
    """The effective policy: argument, then :func:`set_default_policy`,
    then the environment knobs, then the built-in default."""
    return policy or _DEFAULT_POLICY or policy_from_env() or _BASE_POLICY


# ---------------------------------------------------------------------
@dataclass
class SweepTiming:
    """Wall-clock and failure accounting of one sweep through the engine."""

    label: str
    jobs: int
    task_wall_s: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    run_id: str = ""
    metrics: MetricsSnapshot | None = None
    failures: int = 0        # tasks that exhausted every attempt
    retries: int = 0         # failed attempts that were retried
    timeouts: int = 0        # attempts killed by the per-task timeout
    pool_rebuilds: int = 0   # BrokenProcessPool recoveries
    resumed_tasks: int = 0   # tasks restored from a checkpoint
    degraded: bool = False   # fell down the backend chain mid-sweep
    empty: bool = False      # sweep had no tasks (not recorded)
    executor: str = ""       # backend the sweep started on
    backends: list[str] = field(default_factory=list)  # backends used, in order
    requeues: int = 0        # chunks resubmitted after worker loss/lease expiry
    lost_workers: int = 0    # workers declared dead (crash or heartbeat)
    lease_expiries: int = 0  # chunk leases that expired at the controller
    duplicate_results: int = 0  # late/duplicate commits dropped per task key
    respawns: int = 0        # replacement workers spawned after a loss
    respawn_failures: int = 0  # respawn attempts that failed to come up
    bisections: int = 0      # chunks split while isolating a poison task
    quarantined: list = field(default_factory=list)  # poison tasks, as dicts

    @property
    def tasks(self) -> int:
        """Number of tasks the sweep ran."""
        return len(self.task_wall_s)

    @property
    def cpu_s(self) -> float:
        """Summed per-task wall time — the serial-equivalent cost."""
        return sum(self.task_wall_s)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time.

        Division is epsilon-guarded, so a degenerate (sub-resolution)
        wall clock yields a huge-but-finite ratio instead of a bogus
        ``1.0``; :func:`format_timing_summary` renders such sweeps as
        ``—``.  An empty sweep reports ``0.0``.
        """
        return self.cpu_s / max(self.wall_s, _EPS_WALL_S)


_TIMINGS: list[SweepTiming] = []


def timings(run_id: str | None = None) -> list[SweepTiming]:
    """Sweep timings recorded in this process, oldest first.

    With ``run_id``, only that run's sweeps — the registry is never
    cleared between runs, so long-lived processes (test sessions,
    notebooks) filter instead of racing over a global reset.
    """
    if run_id is None:
        return list(_TIMINGS)
    return [t for t in _TIMINGS if t.run_id == run_id]


def clear_timings() -> None:
    """Forget all recorded sweep timings (prefer run-id filtering)."""
    _TIMINGS.clear()


def timing_summary(
    run_id: str | None = None, include_metrics: bool = False
) -> list[dict]:
    """The recorded timings as plain dicts (JSON-serialisable).

    ``include_metrics`` adds each sweep's merged metric snapshot (for
    run manifests); the default stays compact for the results report.
    """
    rows = []
    for t in timings(run_id):
        row = {
            "label": t.label,
            "run_id": t.run_id,
            "tasks": t.tasks,
            "jobs": t.jobs,
            "cpu_s": round(t.cpu_s, 3),
            "wall_s": round(t.wall_s, 3),
            "speedup": round(t.speedup, 2),
            "failures": t.failures,
            "retries": t.retries,
            "timeouts": t.timeouts,
            "pool_rebuilds": t.pool_rebuilds,
            "resumed_tasks": t.resumed_tasks,
            "degraded": t.degraded,
            "executor": t.executor,
            "backends": list(t.backends),
            "requeues": t.requeues,
            "lost_workers": t.lost_workers,
            "lease_expiries": t.lease_expiries,
            "duplicate_results": t.duplicate_results,
            "respawns": t.respawns,
            "respawn_failures": t.respawn_failures,
            "bisections": t.bisections,
            "quarantined": list(t.quarantined),
        }
        if include_metrics:
            row["metrics"] = (t.metrics or MetricsSnapshot()).as_dict()
        rows.append(row)
    return rows


def run_metrics(run_id: str | None = None) -> MetricsSnapshot:
    """All of one run's sweep metrics merged into a single snapshot.

    Built purely from the per-task deltas the sweeps collected, so the
    result is identical whatever worker count produced them.
    """
    return merge_snapshots(t.metrics for t in timings(run_id))


def format_timing_summary(run_id: str | None = None) -> str:
    """Human-readable table of every sweep recorded so far."""
    rows = timing_summary(run_id)
    if not rows:
        return "no sweeps recorded"
    header = ["sweep", "tasks", "jobs", "cpu (s)", "wall (s)", "speedup"]
    table = [
        [r["label"], str(r["tasks"]), str(r["jobs"]), f"{r['cpu_s']:.2f}",
         f"{r['wall_s']:.2f}",
         "—" if r["wall_s"] <= 0 or r["tasks"] == 0
         else f"{r['speedup']:.2f}x"]
        for r in rows
    ]
    widths = [
        max(len(header[i]), max(len(row[i]) for row in table))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


# ---------------------------------------------------------------------
_DEFAULT_JOBS: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Set the process-wide default worker count (the CLI's ``--jobs``).

    Applies to every sweep that does not pass ``jobs`` explicitly; it
    outranks ``REPRO_JOBS``.  ``None`` restores environment/auto policy.
    """
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count: argument, then :func:`set_default_jobs`, then
    ``REPRO_JOBS``, then ``os.cpu_count()`` (capped)."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = min(os.cpu_count() or 1, _MAX_AUTO_JOBS)
    if jobs < 1:
        raise ConfigError(f"worker count must be >= 1, got {jobs}")
    return jobs


# ---------------------------------------------------------------------
# Controller side: chunk scheduling, lease/heartbeat supervision,
# backend degradation, checkpointing.  (Worker-side execution — the
# attempt loop, SIGALRM deadline, and chunk runner — lives in
# repro.experiments.executors and is re-exported above.)


class _SweepState:
    """Per-sweep bookkeeping shared by the serial and pool paths."""

    def __init__(
        self,
        tasks: Sequence,
        label: str,
        policy: TaskPolicy,
        timing: SweepTiming,
        ckpt: checkpoint_mod.SweepCheckpoint | None,
    ):
        self.tasks = tasks
        self.label = label
        self.policy = policy
        self.timing = timing
        self.ckpt = ckpt
        n = len(tasks)
        self.results: list = [None] * n
        self.walls: list[float] = [0.0] * n
        self.snapshots: list[MetricsSnapshot | None] = [None] * n
        self.failures: list[TaskError] = []
        # Live telemetry aggregate (None unless a consumer is attached;
        # every use below is observation-only).
        self.live: live_mod.LiveStats | None = None
        # At-most-once commit: task keys whose slot is already decided.
        # A requeued chunk can race its slow original (or a chaos-
        # duplicated result frame can arrive twice) — the first commit
        # wins, every later arrival for the key is dropped.
        self.committed: set[str] = set()

    def is_committed(self, index: int) -> bool:
        """Whether the task at ``index`` already has a committed outcome."""
        return checkpoint_mod.task_key(self.tasks[index], index) in self.committed

    def restore(self, entry: tuple[int, int, object]) -> bool:
        """Fill one slot from the checkpoint; True when restored."""
        if self.ckpt is None:
            return False
        index, _base, item = entry
        key = checkpoint_mod.task_key(item, index)
        stored = self.ckpt.restore(key)
        if stored is None:
            return False
        self.results[index], self.walls[index], self.snapshots[index] = stored
        self.committed.add(key)
        self.timing.resumed_tasks += 1
        return True

    def absorb(self, outcome: _TaskOutcome, chunk_id: int | None = None,
               worker: str = "") -> None:
        """Fold one final task outcome into the sweep (and checkpoint).

        Commits at most once per task key: a duplicate arrival (late
        original after a requeue, or a chaos-duplicated result frame)
        is counted and dropped, keeping results, metrics, and the
        checkpoint identical to a single clean delivery.

        ``chunk_id`` and ``worker`` are trace context for the live /
        export consumers only — scheduling never reads them, and every
        telemetry fold below is observation-only.
        """
        i = outcome.index
        key = checkpoint_mod.task_key(self.tasks[i], i)
        if key in self.committed:
            self.timing.duplicate_results += 1
            if self.live is not None:
                self.live.note_duplicate()
            events.emit(
                "duplicate_result_dropped",
                run_id=self.timing.run_id,
                label=self.label,
                task_index=i,
                task_key=key,
            )
            return
        self.committed.add(key)
        self.timing.retries += outcome.retries
        self.timing.timeouts += outcome.timeouts
        if outcome.ok:
            self.results[i] = outcome.result
            self.walls[i] = outcome.wall_s
            self.snapshots[i] = outcome.metrics
            if self.ckpt is not None:
                item = self.tasks[i]
                self.ckpt.append(
                    key,
                    i,
                    repr(item)[:160],
                    outcome.wall_s,
                    outcome.result,
                    outcome.metrics,
                )
            self._observe_commit(outcome, key, chunk_id, worker)
            return
        self.timing.failures += 1
        if self.live is not None:
            self.live.fold_task(
                i, False, 0.0, None, worker=worker,
                retries=outcome.retries, timeouts=outcome.timeouts,
            )
        message = (
            f"sweep {self.label!r} task {i} failed after "
            f"{outcome.attempts} attempt(s): {outcome.error}"
        )
        if outcome.error_kind == "timeout":
            cls = TaskTimeoutError
        elif outcome.error_kind == "quarantine":
            cls = TaskQuarantinedError
        else:
            cls = TaskError
        kwargs = dict(
            task_key=key,
            task_index=i,
            attempts=outcome.attempts,
            worker_traceback=outcome.traceback,
        )
        if cls is TaskTimeoutError:
            kwargs["timeout_s"] = self.policy.timeout_s or 0.0
        error = cls(message, **kwargs)
        self.failures.append(error)
        events.emit(
            "task_failed",
            run_id=self.timing.run_id,
            label=self.label,
            task_index=i,
            task_key=key,
            attempts=outcome.attempts,
            error_kind=outcome.error_kind,
            error=outcome.error,
        )
        if self.policy.fail_fast:
            raise SweepAbortedError(
                f"sweep {self.label!r} aborted: {message}",
                label=self.label,
                failures=self.failures,
            ) from error

    def _observe_commit(self, outcome: _TaskOutcome, key: str,
                        chunk_id: int | None, worker: str) -> None:
        """Feed one committed success to the telemetry consumers.

        Observation-only by construction: reads the outcome, writes only
        to the live aggregate, the trace collector, the profile
        accumulator, and the event sink — never to sweep state.
        """
        i = outcome.index
        telemetry = outcome.telemetry or {}
        if self.live is not None:
            self.live.fold_task(
                i, True, outcome.wall_s, outcome.metrics, worker=worker,
                retries=outcome.retries, timeouts=outcome.timeouts,
            )
        collector = export_mod.get_collector()
        if collector is not None and telemetry:
            collector.record(export_mod.TaskTrace(
                label=self.label,
                index=i,
                task_key=key,
                chunk_id=-1 if chunk_id is None else chunk_id,
                worker=worker,
                pid=telemetry.get("pid", 0),
                start_unix=telemetry.get("start_unix", 0.0),
                wall_s=outcome.wall_s,
                spans=getattr(outcome.metrics, "spans", None),
                run_id=self.timing.run_id,
            ))
        accumulator = profile_mod.get_accumulator()
        if accumulator is not None and telemetry.get("profile"):
            accumulator.fold(telemetry["profile"])
        events.emit(
            "task_done",
            run_id=self.timing.run_id,
            label=self.label,
            task_index=i,
            wall_s=round(outcome.wall_s, 6),
            worker=worker,
        )

    def quarantine(self, index: int, base: int, reason: str) -> None:
        """Declare one task poisonous and commit a failure for it.

        Records the verdict in the sweep timing, the checkpoint (as a
        payload-free quarantine record — a later resume re-runs the task
        once more), and the event stream, then folds a failed outcome
        through the normal at-most-once commit so fail-fast and failure
        accounting behave exactly like any exhausted task.
        """
        if self.is_committed(index):
            return
        item = self.tasks[index]
        key = checkpoint_mod.task_key(item, index)
        error = (
            f"task quarantined after repeatedly killing its worker "
            f"(last loss: {reason})"
        )
        self.timing.quarantined.append({
            "task_key": key,
            "index": index,
            "task": repr(item)[:160],
            "error": error,
        })
        if self.ckpt is not None:
            self.ckpt.append_quarantine(key, index, repr(item)[:160], error)
        if self.live is not None:
            self.live.quarantined_task()
        events.emit(
            "task_quarantined",
            run_id=self.timing.run_id,
            label=self.label,
            task_index=index,
            task_key=key,
            reason=reason,
        )
        self.absorb(_TaskOutcome(
            index=index,
            attempts=base + 1,
            error_kind="quarantine",
            error=error,
        ))

    def absorb_chunk_error(self, chunk, exc: Exception) -> None:
        """An infrastructure failure lost a whole chunk (e.g. the result
        would not unpickle); every not-yet-committed task in it counts
        as failed."""
        for index, base, _item in chunk:
            if self.is_committed(index):
                continue
            self.absorb(_TaskOutcome(
                index=index,
                attempts=base + 1,
                error_kind="error",
                error=f"chunk execution failed: {type(exc).__name__}: {exc}",
            ))


def _chunked(entries: list, chunksize: int) -> list[list]:
    return [
        entries[i:i + chunksize] for i in range(0, len(entries), chunksize)
    ]


def _bump_killed_entries(chunk, chaos: ChaosPolicy | None):
    """After a pool crash, consume the first attempt of every entry the
    chaos policy would have killed, so its rerun is injection-free.  Both
    sides of the process boundary compute the same pure decision, which
    is what lets the controller attribute a crash it only observed as a
    ``BrokenProcessPool``.  Real (non-chaos) crashes resubmit unchanged.
    """
    if chaos is None:
        return list(chunk)
    return [
        (index, base + 1, item)
        if chaos.kills(index, base) else (index, base, item)
        for index, base, item in chunk
    ]


def _bump_lost_entries(chunk, chaos: ChaosPolicy | None, reason: str):
    """Attribute a lost socket worker to the chaos decisions that caused
    it, consuming the disturbed first attempts so the requeued rerun is
    injection-free.  ``crash`` losses attribute kills (same logic as the
    pool's :func:`_bump_killed_entries`); ``heartbeat`` losses also
    consume the chunk-level heartbeat drop, which is decided from the
    first entry.  A chaos ``worker-hang`` is consumed for *any* reason —
    including lease-driven requeues, which are exactly how a hang
    surfaces — while a real hang (no chaos decision) resubmits
    unchanged.
    """
    if chaos is None:
        return list(chunk)
    bumped = []
    for pos, (index, base, item) in enumerate(chunk):
        bump = pos == 0 and chaos.hangs(index, base)
        if reason != "lease":
            bump = bump or chaos.kills(index, base) or (
                reason == "heartbeat"
                and pos == 0
                and chaos.drops_heartbeat(index, base)
            )
        bumped.append((index, base + 1, item) if bump else (index, base, item))
    return bumped


# Controller-deadline slack over the serial worst case: covers dispatch,
# pickling, and scheduler noise without masking a genuinely stuck worker.
_DEADLINE_SLACK = 1.25
_DEADLINE_GRACE_S = 2.0

# Unattributed worker losses a chunk survives before the scheduler
# suspects a poison task and bisects (or, at single-task grain,
# quarantines).  Chaos-attributed losses never count — they are one-shot
# by construction and the rerun is clean.
_POISON_LOSS_LIMIT = 2


# ---------------------------------------------------------------------
# Drain requests (SIGTERM): a process-wide flag the scheduler loop polls
# between events.  On a drain, in-flight chunks finish and commit,
# pending chunks are withdrawn, and the sweep raises
# :class:`SweepDrainedError` so the caller can exit with a resume hint.

_DRAIN = {"requested": False, "reason": ""}


def request_drain(reason: str = "signal") -> None:
    """Ask running (and subsequent) sweeps to drain and stop.

    Safe to call from a signal handler: sets a flag the scheduler loop
    polls — no locks, no I/O.  Stays set until :func:`clear_drain`, so
    a multi-sweep command stops after the sweep that noticed it.
    """
    _DRAIN["requested"] = True
    _DRAIN["reason"] = reason


def drain_requested() -> bool:
    """Whether a drain has been requested and not yet cleared."""
    return _DRAIN["requested"]


def clear_drain() -> None:
    """Reset the drain flag (the CLI does this between invocations)."""
    _DRAIN["requested"] = False
    _DRAIN["reason"] = ""


def _wave_budget(chunks, policy: TaskPolicy) -> float:
    """Worst-case wall budget for one submission wave.

    Every attempt of every entry at the per-attempt timeout plus maximal
    backoffs, run *serially* — a pessimistic bound that stays valid
    however the pool distributes chunks over workers (a queued chunk's
    wait time is someone else's run time, already counted).  Only
    meaningful when ``policy.timeout_s`` is set.
    """
    budget = 0.0
    for chunk in chunks:
        for _index, base, _item in chunk:
            attempts = max(1, policy.max_retries + 1 - base)
            budget += attempts * policy.timeout_s
            budget += (attempts - 1) * policy.max_backoff_s * 1.5
    return budget * _DEADLINE_SLACK + _DEADLINE_GRACE_S


def _drive_backend(fn, chunks, jobs, policy, chaos, state: _SweepState,
                   prepare, backend: str) -> list:
    """Run chunks to completion on one backend; return what it stranded.

    The scheduler is backend-agnostic: it submits chunks with a lease
    (deadline = the wave's worst-case serial budget, armed only when the
    policy carries a per-task timeout), consumes the executor's event
    stream, and supervises three failure paths —

    * **worker loss** (socket EOF or missed heartbeats): the chunk is
      requeued onto a surviving worker, at most
      ``policy.max_requeues`` times, with the chaos decisions that
      caused the loss attributed so the rerun is injection-free;
    * **lease expiry**: on a requeue-capable backend the chunk's worker
      is cancelled and the chunk requeued; elsewhere (inline, local
      pool — the old wave-expiry semantics) its unfinished tasks are
      declared timed out by the controller;
    * **pool breakage**: counted against ``policy.max_pool_rebuilds``
      and resubmitted whole onto a rebuilt pool.

    A chunk that is resubmitted whole re-runs from a cold cache for its
    task keys, so re-produced metric deltas are bit-identical and the
    at-most-once commit can drop whichever copy arrives second.
    Returns the chunks still unfinished when the backend broke for good
    (``[]`` on normal completion); raises :class:`WorkerCrashError`
    instead when ``policy.degrade_serial`` is off.
    """
    timing = state.timing
    executor = executors_mod.make_executor(
        backend, fn=fn, policy=policy, chaos=chaos, prepare=prepare,
        jobs=max(1, min(jobs, len(chunks))),
    )
    outstanding: dict[int, list] = {}
    leases: dict[int, float | None] = {}
    requeue_counts: dict[int, int] = {}
    loss_counts: dict[int, int] = {}
    ids = itertools.count()
    pool_rebuilds = 0

    def submit_wave(wave) -> None:
        deadline = None
        if policy.timeout_s is not None:
            deadline = time.monotonic() + _wave_budget(wave, policy)
        for chunk in wave:
            chunk_id = next(ids)
            outstanding[chunk_id] = chunk
            leases[chunk_id] = deadline
            executor.submit_chunk(chunk_id, chunk)

    def expire_chunk(chunk_id: int, chunk) -> None:
        # The controller backstop fired: no result inside the worst-case
        # serial budget.  Raises SweepAbortedError via absorb when the
        # policy is fail-fast.
        for index, base, _item in chunk:
            if state.is_committed(index):
                continue
            state.absorb(_TaskOutcome(
                index=index,
                attempts=max(1, policy.max_retries + 1 - base),
                timeouts=1,
                error_kind="timeout",
                error=(
                    "controller deadline expired: task still unfinished "
                    f"after the wave's worst-case budget "
                    f"(per-attempt timeout {policy.timeout_s}s)"
                ),
            ))

    def bisect_chunk(chunk_id: int, reason: str) -> None:
        # A chunk that keeps killing workers without a chaos decision to
        # blame hides a poison task: split it so the halves isolate the
        # culprit (fresh chunk ids, fresh requeue and loss budgets) —
        # one bad task no longer costs every retry of its chunk-mates.
        chunk = outstanding.pop(chunk_id)
        leases.pop(chunk_id, None)
        timing.bisections += 1
        mid = len(chunk) // 2
        deadline = None
        if policy.timeout_s is not None:
            deadline = time.monotonic() + _wave_budget([chunk], policy)
        half_ids = []
        for half in (chunk[:mid], chunk[mid:]):
            half_id = next(ids)
            half_ids.append(half_id)
            outstanding[half_id] = half
            leases[half_id] = deadline
            executor.submit_chunk(half_id, half)
        events.emit(
            "chunk_bisected",
            run_id=timing.run_id,
            label=state.label,
            chunk_id=chunk_id,
            reason=reason,
            halves=half_ids,
            tasks=len(chunk),
        )

    def requeue_chunk(chunk_id: int, reason: str) -> None:
        original = outstanding[chunk_id]
        chunk = _bump_lost_entries(original, chaos, reason)
        outstanding[chunk_id] = chunk
        attributed = any(
            b_new != b_old
            for (_i1, b_old, _t1), (_i2, b_new, _t2) in zip(original, chunk)
        )
        if reason in ("crash", "heartbeat") and not attributed:
            losses = loss_counts[chunk_id] = loss_counts.get(chunk_id, 0) + 1
            if losses >= _POISON_LOSS_LIMIT:
                if len(chunk) > 1:
                    bisect_chunk(chunk_id, reason)
                else:
                    outstanding.pop(chunk_id)
                    leases.pop(chunk_id, None)
                    index, base, _item = chunk[0]
                    state.quarantine(index, base, reason)
                return
        count = requeue_counts[chunk_id] = requeue_counts.get(chunk_id, 0) + 1
        if count > policy.max_requeues:
            outstanding.pop(chunk_id)
            leases.pop(chunk_id, None)
            if reason == "lease":
                expire_chunk(chunk_id, chunk)
                return
            for index, base, _item in chunk:
                if state.is_committed(index):
                    continue
                state.absorb(_TaskOutcome(
                    index=index,
                    attempts=base + 1,
                    error_kind="error",
                    error=(
                        f"chunk abandoned after {count - 1} requeues "
                        f"(last worker loss: {reason})"
                    ),
                ))
            return
        timing.requeues += 1
        if state.live is not None:
            state.live.requeued()
        events.emit(
            "chunk_requeued",
            run_id=timing.run_id,
            label=state.label,
            chunk_id=chunk_id,
            reason=reason,
            requeues=count,
        )
        if policy.timeout_s is not None:
            leases[chunk_id] = time.monotonic() + _wave_budget([chunk], policy)
        executor.submit_chunk(chunk_id, chunk)

    def handle_event(event) -> None:
        nonlocal pool_rebuilds
        if isinstance(event, executors_mod.ChunkStarted):
            # A worker picked the chunk up: re-arm its lease to the
            # chunk's own budget (tighter than the shared wave bound).
            if event.chunk_id in outstanding and policy.timeout_s is not None:
                leases[event.chunk_id] = time.monotonic() + _wave_budget(
                    [outstanding[event.chunk_id]], policy
                )
            if state.live is not None:
                state.live.chunk_started(event.chunk_id, event.worker)
        elif isinstance(event, executors_mod.TaskDone):
            state.absorb(event.outcome, chunk_id=event.chunk_id,
                         worker=event.worker)
        elif isinstance(event, executors_mod.ChunkDone):
            outstanding.pop(event.chunk_id, None)
            leases.pop(event.chunk_id, None)
        elif isinstance(event, executors_mod.ChunkFailed):
            chunk = outstanding.pop(event.chunk_id, None)
            leases.pop(event.chunk_id, None)
            if chunk is not None:
                state.absorb_chunk_error(chunk, event.error)
        elif isinstance(event, executors_mod.WorkerLost):
            timing.lost_workers += 1
            if state.live is not None:
                state.live.worker_lost(event.worker, event.reason)
            events.emit(
                "worker_lost",
                run_id=timing.run_id,
                label=state.label,
                backend=backend,
                worker=event.worker,
                reason=event.reason,
                chunks=len(event.chunk_ids),
            )
            for chunk_id in event.chunk_ids:
                if chunk_id in outstanding:
                    requeue_chunk(chunk_id, event.reason)
        elif isinstance(event, executors_mod.WorkerRespawned):
            timing.respawns += 1
            if state.live is not None:
                state.live.respawned(event.worker)
            events.emit(
                "worker_respawned",
                run_id=timing.run_id,
                label=state.label,
                backend=backend,
                worker=event.worker,
                replaced=event.replaced,
            )
        elif isinstance(event, executors_mod.RespawnFailed):
            timing.respawn_failures += 1
            events.emit(
                "worker_respawn_failed",
                run_id=timing.run_id,
                label=state.label,
                backend=backend,
                replaced=event.replaced,
                ordinal=event.ordinal,
            )
        elif isinstance(event, executors_mod.PoolBroken):
            pool_rebuilds += 1
            timing.pool_rebuilds += 1
            events.emit(
                "pool_rebuilt",
                run_id=timing.run_id,
                label=state.label,
                rebuilds=pool_rebuilds,
                unfinished_tasks=sum(
                    len(outstanding[cid]) for cid in event.chunk_ids
                    if cid in outstanding
                ),
            )
            wave = []
            for chunk_id in event.chunk_ids:
                chunk = outstanding.get(chunk_id)
                if chunk is None:
                    continue
                # Attribute chaos kills before any resubmission or
                # degradation handoff, so the rerun is injection-free.
                chunk = _bump_killed_entries(chunk, chaos)
                outstanding[chunk_id] = chunk
                wave.append(chunk_id)
            if pool_rebuilds > policy.max_pool_rebuilds:
                if not policy.degrade_serial:
                    raise WorkerCrashError(
                        f"sweep {state.label!r}: worker pool died "
                        f"{pool_rebuilds} times (max_pool_rebuilds="
                        f"{policy.max_pool_rebuilds})",
                        rebuilds=pool_rebuilds,
                    )
                raise ExecutorBrokenError(
                    f"worker pool died {pool_rebuilds} times",
                    backend=backend,
                )
            deadline = None
            if policy.timeout_s is not None:
                deadline = time.monotonic() + _wave_budget(
                    [outstanding[cid] for cid in wave], policy
                )
            for chunk_id in wave:
                leases[chunk_id] = deadline
                executor.submit_chunk(chunk_id, outstanding[chunk_id])

    remaining: list = []
    broken = False
    draining = False
    drain_deadline = 0.0
    stranded_tasks = 0
    try:
        submit_wave(chunks)
        while outstanding:
            if _DRAIN["requested"] and not draining:
                draining = True
                drain_deadline = time.monotonic() + policy.drain_timeout_s
                # Withdraw everything not yet running; what a worker
                # already picked up finishes and commits normally.
                for chunk_id in sorted(outstanding):
                    if executor.cancel_pending(chunk_id):
                        stranded_tasks += len(outstanding.pop(chunk_id))
                        leases.pop(chunk_id, None)
                events.emit(
                    "sweep_draining",
                    run_id=timing.run_id,
                    label=state.label,
                    reason=_DRAIN["reason"],
                    inflight_chunks=len(outstanding),
                    stranded_tasks=stranded_tasks,
                )
                if not outstanding:
                    break
            wait_s = None
            armed = [d for d in leases.values() if d is not None]
            if armed:
                wait_s = max(0.0, min(armed) - time.monotonic())
            if state.live is not None and (wait_s is None or wait_s > 0.5):
                # Live consumers need the loop back regularly for a
                # heartbeat fold / renderer tick even when no lease is
                # armed (local pool would otherwise block indefinitely
                # on its futures).
                wait_s = 0.5
            if wait_s is None or wait_s > 1.0:
                # Bounded wait so a drain request (SIGTERM) is noticed
                # within a second even with no lease armed and no live
                # consumer attached.
                wait_s = 1.0
            if draining:
                wait_s = min(wait_s, 0.25)
            for event in executor.poll(wait_s):
                handle_event(event)
            if state.live is not None:
                state.live.tick(executor)
            if draining and outstanding \
                    and time.monotonic() >= drain_deadline:
                # In-flight chunks outlived the drain timeout: give up
                # on them (their uncommitted tasks count as stranded —
                # the resume re-runs them) and let shutdown kill the
                # workers.
                break
            if not armed:
                continue
            now = time.monotonic()
            for chunk_id, deadline in list(leases.items()):
                if deadline is None or deadline > now:
                    continue
                if chunk_id not in outstanding:
                    leases.pop(chunk_id, None)
                    continue
                timing.lease_expiries += 1
                if state.live is not None:
                    state.live.lease_expired()
                events.emit(
                    "lease_expired",
                    run_id=timing.run_id,
                    label=state.label,
                    backend=backend,
                    chunk_id=chunk_id,
                    timeout_s=policy.timeout_s,
                )
                cancelled = executor.cancel(chunk_id)
                if executor.supports_requeue and cancelled:
                    requeue_chunk(chunk_id, "lease")
                else:
                    chunk = outstanding.pop(chunk_id)
                    leases.pop(chunk_id, None)
                    expire_chunk(chunk_id, chunk)
        if draining:
            for chunk in outstanding.values():
                stranded_tasks += sum(
                    1 for index, _base, _item in chunk
                    if not state.is_committed(index)
                )
            raise SweepDrainedError(
                f"sweep {state.label!r} drained after "
                f"{_DRAIN['reason'] or 'drain request'}: "
                f"{len(state.committed)}/{len(state.tasks)} task(s) "
                f"committed, {stranded_tasks} stranded",
                label=state.label,
                run_id=timing.run_id,
                completed=len(state.committed),
                total=len(state.tasks),
                stranded=stranded_tasks,
            )
    except ExecutorBrokenError:
        broken = True
        remaining = [outstanding[cid] for cid in sorted(outstanding)]
        if not policy.degrade_serial:
            executor.shutdown(kill=True)
            raise WorkerCrashError(
                f"sweep {state.label!r}: executor backend {backend!r} "
                f"failed with {sum(len(c) for c in remaining)} task(s) "
                "unfinished and degradation disabled",
                rebuilds=pool_rebuilds,
            ) from None
    except BaseException:
        executor.shutdown(kill=True)
        raise
    executor.shutdown(kill=broken)
    return remaining


def _run_with_executors(fn, chunks, jobs, policy, chaos, state: _SweepState,
                        prepare, backend: str) -> None:
    """Drive the sweep down the degradation chain starting at ``backend``.

    Each broken backend hands its unfinished chunks to the next link
    (``socket -> local -> inline``); ``inline`` is the in-process loop
    and cannot break, so the chain always terminates.
    """
    chain = executors_mod.DEGRADATION_CHAIN
    position = chain.index(backend)
    pending = [list(chunk) for chunk in chunks]
    while pending:
        name = chain[position]
        state.timing.backends.append(name)
        pending = _drive_backend(
            fn, pending, jobs, policy, chaos, state, prepare, name
        )
        if not pending:
            return
        position += 1
        state.timing.degraded = True
        events.emit(
            "sweep_degraded",
            run_id=state.timing.run_id,
            label=state.label,
            backend=name,
            fallback=chain[position],
            rebuilds=state.timing.pool_rebuilds,
            remaining_tasks=sum(len(c) for c in pending),
        )


# ---------------------------------------------------------------------
def run_sweep(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    record: bool = True,
    policy: TaskPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    prepare_chunk: Callable | None = None,
    executor: str | None = None,
) -> tuple[list[R], SweepTiming]:
    """Map ``fn`` over ``items``, preserving order, with fault tolerance.

    ``fn`` must be a module-level callable and every item picklable when
    the work leaves the process (the ``local`` and ``socket`` backends).
    With ``jobs=1`` (the ``inline`` backend) nothing is pickled and
    everything runs in-process.  ``executor`` picks the backend by name
    (``inline``/``local``/``socket``; default per
    :func:`~repro.experiments.executors.resolve_executor`).
    ``chunksize`` controls how many consecutive tasks form one unit of
    worker placement; drivers pass the inner-loop length so one worker
    runs all of a benchmark's chip models and reuses its memoized trace.

    ``prepare_chunk``, when given, is a module-level callable invoked
    with each chunk's full item list inside the chunk's *first* task
    (within its metrics window, deadline, and retry loop) before that
    task's ``fn`` runs.  Drivers use it to warm per-process caches for a
    whole chunk at once — e.g. lockstep-batched trace generation across
    the chunk's simulations.  It must be idempotent: it re-runs on
    retries and on chunk resubmission after a worker crash, each time
    from exactly the cache state a clean first run would have seen.

    ``policy`` (default: :func:`set_default_policy`, else no retries,
    fail fast) governs retries, timeouts, error collection, and pool
    recovery; ``chaos`` (default: :func:`chaos.set_chaos`, else the
    ``REPRO_CHAOS`` environment variable) injects faults for testing.
    In collect-errors mode the returned list holds ``None`` for tasks
    that exhausted their attempts.

    An empty task list returns immediately with ``timing.empty`` set and
    records nothing, so reports never show zero-task sweeps.
    """
    tasks: Sequence[T] = list(items)
    policy = resolve_policy(policy)
    chaos = chaos if chaos is not None else chaos_mod.current_chaos()
    run_id = events.current_run_id()
    timing = SweepTiming(label=label, jobs=1, run_id=run_id)
    if not tasks:
        timing.empty = True
        timing.metrics = MetricsSnapshot()
        return [], timing
    jobs = min(resolve_jobs(jobs), max(1, len(tasks)))
    if chunksize is None:
        chunksize = max(1, -(-len(tasks) // (jobs * 4)))
    entries = [(i, 0, item) for i, item in enumerate(tasks)]
    chunks = _chunked(entries, chunksize)
    ckpt = checkpoint_mod.open_sweep(label, run_id, chaos=chaos)
    state = _SweepState(tasks, label, policy, timing, ckpt)
    # Chunk-granular restore: a chunk re-runs whole unless every one of
    # its tasks is checkpointed (see repro.experiments.checkpoint).
    pending_chunks = []
    for chunk in chunks:
        probe = timing.resumed_tasks
        if all(state.restore(entry) for entry in chunk):
            continue
        timing.resumed_tasks = probe
        pending_chunks.append(chunk)
    jobs = min(jobs, max(1, len(pending_chunks)))
    timing.jobs = jobs
    backend = resolve_executor(executor, jobs)
    timing.executor = backend
    events.emit(
        "sweep_begin",
        run_id=run_id,
        label=label,
        tasks=len(tasks),
        jobs=jobs,
        executor=backend,
        resumed_tasks=timing.resumed_tasks,
    )
    state.live = live_mod.sweep_begin(
        label, len(tasks), run_id=run_id, backend=backend, jobs=jobs
    )
    if state.live is not None and timing.resumed_tasks:
        # Checkpoint-restored slots are already committed; fold them so
        # the live totals (and merged_metrics) cover the whole sweep.
        for i in range(len(tasks)):
            if state.is_committed(i):
                state.live.fold_task(
                    i, True, state.walls[i], state.snapshots[i],
                    resumed=True,
                )
    start = time.perf_counter()
    try:
        if pending_chunks:
            _run_with_executors(fn, pending_chunks, jobs, policy, chaos,
                                state, prepare_chunk, backend)
        if ckpt is not None:
            # The sweep ran to completion: publish the crash-consistent
            # "this checkpoint is the full record" marker.
            ckpt.finalize(len(tasks), failures=timing.failures)
    except KeyboardInterrupt:
        events.emit(
            "sweep_interrupted",
            run_id=run_id,
            label=label,
            completed_tasks=sum(s is not None for s in state.snapshots),
            checkpointed=ckpt is not None,
        )
        raise
    except SweepDrainedError as exc:
        events.emit(
            "sweep_drained",
            run_id=run_id,
            label=label,
            reason=_DRAIN["reason"],
            completed_tasks=exc.completed,
            stranded_tasks=exc.stranded,
            checkpointed=ckpt is not None,
        )
        raise
    finally:
        if ckpt is not None:
            ckpt.close()
    timing.wall_s = time.perf_counter() - start
    timing.task_wall_s = list(state.walls)
    # Merge in submission order: the operation is order-independent, but
    # a fixed order keeps even float-valued span times reproducible for
    # a given worker count.
    timing.metrics = merge_snapshots(state.snapshots)
    if state.live is not None:
        live_mod.sweep_end(state.live)
    if record:
        _TIMINGS.append(timing)
        events.emit(
            "sweep",
            run_id=run_id,
            label=label,
            tasks=timing.tasks,
            jobs=jobs,
            wall_s=round(timing.wall_s, 3),
            failures=timing.failures,
            retries=timing.retries,
            timeouts=timing.timeouts,
            pool_rebuilds=timing.pool_rebuilds,
            resumed_tasks=timing.resumed_tasks,
            executor=backend,
            requeues=timing.requeues,
            lost_workers=timing.lost_workers,
            respawns=timing.respawns,
            quarantined=len(timing.quarantined),
        )
    return state.results, timing


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    label: str = "sweep",
    policy: TaskPolicy | None = None,
    chaos: ChaosPolicy | None = None,
    prepare_chunk: Callable | None = None,
    executor: str | None = None,
) -> list[R]:
    """:func:`run_sweep` without the timing handle (it is still recorded)."""
    results, _ = run_sweep(
        fn, items, jobs=jobs, chunksize=chunksize, label=label,
        policy=policy, chaos=chaos, prepare_chunk=prepare_chunk,
        executor=executor,
    )
    return results
