"""Section 4: the heterogeneous (older-process) checker die.

Quantifies every consequence the paper walks through when the upper die
moves from 65 nm to 90 nm:

* checker power rises (dynamic ×2.21) while cache leakage falls (×0.40),
* the same die area holds the larger checker plus only five 1 MB banks,
* power density of the hot block falls, dropping its temperature,
* circuit delay grows, capping the checker at 1.4 GHz under a 2 GHz
  leading core (a small slowdown since the checker needs ~1.26 GHz),
* soft-error and timing-error susceptibility improve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cacti import CactiModel, logic_area_scale
from repro.common import memo
from repro.common.config import ChipModel, ThermalConfig
from repro.experiments import engine
from repro.experiments.frequency import fig7_frequency_histogram
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    run_sim_task,
)
from repro.experiments.thermal import standard_floorplan
from repro.floorplan.blocks import CHECKER_CORE_AREA_MM2
from repro.power.itrs import (
    dynamic_power_ratio,
    leakage_power_ratio,
    relative_gate_delay,
)
from repro.reliability.margins import compare_checker_processes
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = ["HeteroCheckerResult", "section4_heterogeneous", "checker_power_at_node"]

# Fraction of the checker core's 65 nm power that is leakage; chosen so a
# 14.5 W checker re-implemented at 90 nm dissipates the paper's 23.7 W.
CHECKER_LEAKAGE_FRACTION = 0.32


def checker_power_at_node(
    power_65nm_w: float,
    old_nm: int = 90,
    frequency_fraction: float = 1.0,
    leakage_fraction: float = CHECKER_LEAKAGE_FRACTION,
) -> float:
    """The checker's power re-implemented at an older node.

    ``frequency_fraction`` scales the dynamic component for DFS-throttled
    operation (the 90 nm checker never exceeds 0.7x the leading clock).
    """
    dynamic = power_65nm_w * (1.0 - leakage_fraction)
    leakage = power_65nm_w * leakage_fraction
    return (
        dynamic * dynamic_power_ratio(old_nm, 65) * frequency_fraction
        + leakage * leakage_power_ratio(old_nm, 65)
    )


@dataclass
class HeteroCheckerResult:
    """Everything Section 4 reports for the 90 nm checker die."""

    checker_power_65nm_w: float
    checker_power_90nm_w: float
    upper_cache_banks_65nm: int
    upper_cache_banks_90nm: int
    upper_cache_power_65nm_w: float
    upper_cache_power_90nm_w: float
    checker_die_delta_w: float          # paper: +6.9 W
    checker_area_90nm_mm2: float
    peak_temp_homogeneous_c: float
    peak_temp_hetero_c: float
    checker_temp_homogeneous_c: float
    checker_temp_hetero_c: float
    peak_frequency_ratio: float         # paper: 0.7 (1.4 GHz of 2 GHz)
    mean_required_frequency_ghz: float  # paper: ~1.26 GHz
    leading_slowdown: float             # paper: ~3%
    bank_access_cycles_65nm: int
    bank_access_cycles_90nm: int
    timing_error_rate_65nm: float
    timing_error_rate_90nm: float
    soft_error_rate_ratio: float        # 90 nm vs 65 nm per bit
    # The paper's closing trade (Section 6): temperature increase vs the
    # 2d-a baseline, or the performance loss under a constant thermal
    # constraint, for both die choices.
    temp_increase_homo_c: float = 0.0       # paper: up to 7
    temp_increase_hetero_c: float = 0.0     # paper: 3
    constraint_loss_homo: float = 0.0       # paper: 8%
    constraint_loss_hetero: float = 0.0     # paper: 4%


def section4_heterogeneous(
    checker_power_w: float = 14.5,
    window: SimulationWindow = DEFAULT_WINDOW,
    thermal: ThermalConfig | None = None,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    with_thermal_constraint: bool = True,
    jobs: int | None = None,
) -> HeteroCheckerResult:
    """Full Section 4 analysis for the pessimistic (15 W-class) checker."""
    from repro.experiments.thermal_constraint import constant_thermal_performance

    thermal = thermal or ThermalConfig()
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    cacti = CactiModel()

    peak_ratio = min(1.0, 1.0 / relative_gate_delay(90, 65))
    # The DFS controller quantises to tenths; a 1.4 GHz cap is level 0.7.
    peak_ratio = int(peak_ratio * 10) / 10.0

    bank65 = cacti.estimate_bank(tech_nm=65)
    bank90 = cacti.estimate_bank(tech_nm=90)
    cache65_w = 9 * (bank65.static_power_w + 0.05)
    cache90_w = 5 * (bank90.static_power_w + 0.05)
    checker90_nominal = checker_power_at_node(checker_power_w, 90)
    checker90_operational = checker_power_at_node(
        checker_power_w, 90, frequency_fraction=peak_ratio
    )

    homo = standard_floorplan(
        ChipModel.THREE_D_2A, checker_power_w=checker_power_w
    )
    hetero = standard_floorplan(
        ChipModel.THREE_D_2A,
        checker_power_w=checker90_operational,
        upper_die_tech_nm=90,
        bank_powers_w=[bank65.static_power_w + 0.05] * 6
        + [bank90.static_power_w + 0.05] * 5,
    )
    cache = memo.get_cache()
    homo_solved = cache.solve_floorplan(homo, thermal)
    hetero_solved = cache.solve_floorplan(hetero, thermal)
    baseline_peak = cache.solve_floorplan(
        standard_floorplan(ChipModel.TWO_D_A), thermal
    ).peak_c

    loss_homo = loss_hetero = 0.0
    if with_thermal_constraint:
        loss_homo = constant_thermal_performance(
            checker_power_w=checker_power_w, window=window, thermal=thermal,
            seed=seed, benchmarks=benchmarks, jobs=jobs,
        ).performance_loss
        loss_hetero = constant_thermal_performance(
            checker_power_w=checker90_operational, window=window,
            thermal=thermal, seed=seed, benchmarks=benchmarks,
            upper_die_tech_nm=90, jobs=jobs,
        ).performance_loss

    # RMT with the capped checker: leading slowdown + required frequency.
    # Benchmark-major pairs so both operating points share one trace.
    ratios = (peak_ratio, 1.0)
    tasks = [
        SimTask(
            kind="rmt", profile=profile, chip=ChipModel.THREE_D_2A,
            window=window, seed=seed, checker_peak_ratio=ratio,
        )
        for profile in benchmarks
        for ratio in ratios
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=len(ratios),
        label="section4_heterogeneous",
    )
    capped_loss = 0.0
    uncapped_loss = 0.0
    mean_fraction = 0.0
    for b in range(len(benchmarks)):
        capped = results[b * 2]
        uncapped = results[b * 2 + 1]
        capped_loss += capped.leading.ipc
        uncapped_loss += uncapped.leading.ipc
        mean_fraction += uncapped.mean_frequency_fraction
    leading_slowdown = 1.0 - capped_loss / uncapped_loss
    mean_fraction /= len(benchmarks)

    residency = fig7_frequency_histogram(
        window=window, seed=seed, benchmarks=benchmarks, jobs=jobs
    ).fractions
    resilience = compare_checker_processes(
        residency, old_nm=90, new_nm=65, peak_ratio_old=peak_ratio
    )

    return HeteroCheckerResult(
        checker_power_65nm_w=checker_power_w,
        checker_power_90nm_w=checker90_nominal,
        upper_cache_banks_65nm=9,
        upper_cache_banks_90nm=len(
            [b for b in hetero.blocks if b.die == 1 and b.name.startswith("bank")]
        ),
        upper_cache_power_65nm_w=cache65_w,
        upper_cache_power_90nm_w=cache90_w,
        checker_die_delta_w=(checker90_nominal + cache90_w)
        - (checker_power_w + cache65_w),
        checker_area_90nm_mm2=CHECKER_CORE_AREA_MM2 * logic_area_scale(90),
        peak_temp_homogeneous_c=homo_solved.peak_c,
        peak_temp_hetero_c=hetero_solved.peak_c,
        checker_temp_homogeneous_c=homo_solved.block_peak_c["checker"],
        checker_temp_hetero_c=hetero_solved.block_peak_c["checker"],
        peak_frequency_ratio=peak_ratio,
        mean_required_frequency_ghz=mean_fraction * 2.0,
        leading_slowdown=leading_slowdown,
        bank_access_cycles_65nm=bank65.access_cycles,
        bank_access_cycles_90nm=bank90.access_cycles,
        timing_error_rate_65nm=resilience["same-node"].expected_timing_error_rate,
        timing_error_rate_90nm=resilience["older-node"].expected_timing_error_rate,
        soft_error_rate_ratio=resilience["older-node"].uncorrectable_upset_rate
        / resilience["same-node"].uncorrectable_upset_rate,
        temp_increase_homo_c=homo_solved.peak_c - baseline_peak,
        temp_increase_hetero_c=hetero_solved.peak_c - baseline_peak,
        constraint_loss_homo=loss_homo,
        constraint_loss_hetero=loss_hetero,
    )
