"""Thermal experiments: Figure 4, Figure 5, and the Section 3.2 variants.

Each driver builds powered floorplans (wire power computed from the
model's own interconnect budget), solves the HotSpot-style grid, and
returns rows shaped like the paper's figures.  Thermal models come from
the process-local artifact cache (:mod:`repro.common.memo`), so the LU
factorisation of each stack geometry happens once per process however
many power points are swept over it; the sweeps themselves run through
:mod:`repro.experiments.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import memo
from repro.common.config import ChipModel, ThermalConfig
from repro.experiments import engine
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimulationWindow,
    simulate_leading,
)
from repro.floorplan.blocks import L2_BANK_STATIC_W
from repro.floorplan.layouts import CheckerPlacement, Floorplan, build_floorplan
from repro.interconnect.wires import wire_budget
from repro.power.wattch import CorePowerModel, l2_bank_power_w
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = [
    "standard_floorplan",
    "Fig4Row",
    "fig4_thermal_sweep",
    "Fig5Row",
    "fig5_per_benchmark",
    "thermal_variants",
]

# Nominal per-bank power when no per-benchmark access counts are supplied
# (static leakage plus a light dynamic share).
_NOMINAL_BANK_W = L2_BANK_STATIC_W + 0.05


def standard_floorplan(
    chip: ChipModel,
    checker_power_w: float = 7.0,
    leading_power_w: float = 35.0,
    bank_powers_w: list[float] | float | None = None,
    **kwargs,
) -> Floorplan:
    """A floorplan whose distributed wire power is its own wire budget.

    Builds once to measure the interconnect (Section 3.4), then rebuilds
    with that power spread over the dies.
    """
    if bank_powers_w is None:
        bank_powers_w = _NOMINAL_BANK_W
    probe = build_floorplan(
        chip,
        checker_power_w=checker_power_w,
        leading_power_w=leading_power_w,
        bank_powers_w=bank_powers_w,
        **kwargs,
    )
    wires = wire_budget(probe).total_power_w
    return build_floorplan(
        chip,
        checker_power_w=checker_power_w,
        leading_power_w=leading_power_w,
        bank_powers_w=bank_powers_w,
        wire_power_w=wires,
        **kwargs,
    )


# ---------------------------------------------------------------------
@dataclass
class Fig4Row:
    """One checker-power point of Figure 4."""

    checker_power_w: float
    temp_2d_2a_c: float
    temp_3d_2a_c: float
    temp_2d_a_c: float

    @property
    def delta_3d_vs_2da(self) -> float:
        """3D overhead over the unreliable baseline."""
        return self.temp_3d_2a_c - self.temp_2d_a_c

    @property
    def delta_3d_vs_2d2a(self) -> float:
        """3D overhead over the equal-transistor 2D chip."""
        return self.temp_3d_2a_c - self.temp_2d_2a_c


def _fig4_point(task: tuple[float, ThermalConfig]) -> tuple[float, float]:
    """(3d-2a peak, 2d-2a peak) at one checker power."""
    power, thermal = task
    cache = memo.get_cache()
    t3d = cache.solve_floorplan(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=power), thermal
    ).peak_c
    t2d = cache.solve_floorplan(
        standard_floorplan(ChipModel.TWO_D_2A, checker_power_w=power), thermal
    ).peak_c
    return t3d, t2d


def fig4_thermal_sweep(
    checker_powers_w: tuple[float, ...] = (2, 5, 7, 10, 15, 20, 25),
    thermal: ThermalConfig | None = None,
    jobs: int | None = None,
) -> list[Fig4Row]:
    """Peak temperature vs checker power for 2d-2a and 3d-2a (Figure 4)."""
    thermal = thermal or ThermalConfig()
    base = memo.get_cache().solve_floorplan(
        standard_floorplan(ChipModel.TWO_D_A), thermal
    ).peak_c
    points = engine.parallel_map(
        _fig4_point,
        [(power, thermal) for power in checker_powers_w],
        jobs=jobs,
        chunksize=2,
        label="fig4_thermal_sweep",
    )
    return [
        Fig4Row(power, t2d, t3d, base)
        for power, (t3d, t2d) in zip(checker_powers_w, points)
    ]


# ---------------------------------------------------------------------
@dataclass
class Fig5Row:
    """One benchmark's peak temperatures across the five configurations."""

    benchmark: str
    temp_2d_a: float
    temp_2d_2a_7w: float
    temp_3d_2a_7w: float
    temp_2d_2a_15w: float
    temp_3d_2a_15w: float


# The five Figure 5 configurations: label -> (chip model, checker power).
_FIG5_CONFIGS: dict[str, tuple[ChipModel, float]] = {
    "2d_a": (ChipModel.TWO_D_A, 0.0),
    "2d_2a_7W": (ChipModel.TWO_D_2A, 7.0),
    "3d_2a_7W": (ChipModel.THREE_D_2A, 7.0),
    "2d_2a_15W": (ChipModel.TWO_D_2A, 15.0),
    "3d_2a_15W": (ChipModel.THREE_D_2A, 15.0),
}


def _benchmark_powers(
    profile: WorkloadProfile,
    chip: ChipModel,
    window: SimulationWindow,
    seed: int,
) -> tuple[float, dict[str, float], list[float]]:
    """(core power, per-unit powers, per-bank powers) for one benchmark."""
    run = simulate_leading(profile, chip, window=window, seed=seed)
    model = CorePowerModel()
    breakdown = model.core_power(run)
    # Re-derive per-bank powers from relative access counts: total L2
    # accesses = L1 misses; distribute uniformly (distributed-sets policy
    # touches banks evenly, Section 3.1).
    accesses = run.op_counts.get("load", 0) * run.l1d_miss_rate
    per_bank = int(accesses / chip.l2_banks)
    bank_power = l2_bank_power_w(per_bank, run.cycles)
    return breakdown.total_w, breakdown.per_unit_w, [bank_power] * chip.l2_banks


def _fig5_row(
    task: tuple[WorkloadProfile, SimulationWindow, int, ThermalConfig],
) -> Fig5Row:
    """One benchmark's Figure 5 temperatures (runs in a worker)."""
    profile, window, seed, thermal = task
    cache = memo.get_cache()
    temps: dict[str, float] = {}
    cached_powers: dict[ChipModel, tuple] = {}
    for name, (chip, power) in _FIG5_CONFIGS.items():
        if chip not in cached_powers:
            cached_powers[chip] = _benchmark_powers(profile, chip, window, seed)
        _total_core, per_unit, banks = cached_powers[chip]
        overrides = dict(per_unit)
        for i, bank_power in enumerate(banks):
            overrides[f"bank{i}"] = bank_power
        plan = standard_floorplan(chip, checker_power_w=power)
        temps[name] = cache.solve_floorplan(
            plan, thermal, overrides=overrides
        ).peak_c
    return Fig5Row(
        benchmark=profile.name,
        temp_2d_a=temps["2d_a"],
        temp_2d_2a_7w=temps["2d_2a_7W"],
        temp_3d_2a_7w=temps["3d_2a_7W"],
        temp_2d_2a_15w=temps["2d_2a_15W"],
        temp_3d_2a_15w=temps["3d_2a_15W"],
    )


def fig5_per_benchmark(
    window: SimulationWindow = DEFAULT_WINDOW,
    thermal: ThermalConfig | None = None,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    jobs: int | None = None,
) -> list[Fig5Row]:
    """Per-benchmark peak temperature for the five configurations (Fig 5).

    Per-benchmark leading-core power comes from the Wattch-style activity
    model over a simulated window; the thermal model is factorised once
    per configuration and re-solved per benchmark.
    """
    thermal = thermal or ThermalConfig()
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    return engine.parallel_map(
        _fig5_row,
        [(profile, window, seed, thermal) for profile in benchmarks],
        jobs=jobs,
        chunksize=1,
        label="fig5_per_benchmark",
    )


# ---------------------------------------------------------------------
def thermal_variants(
    checker_power_w: float = 7.0, thermal: ThermalConfig | None = None
) -> dict[str, float]:
    """The Section 3.2 design-space probes, as peak-temperature deltas.

    Returns deltas (°C) relative to the standard 3d-2a chip at the same
    checker power for: ``inactive_top`` (upper-die cache replaced with
    inactive silicon), ``corner`` (checker moved to the band's corner),
    and ``double_density`` (checker area halved at constant power).
    """
    thermal = thermal or ThermalConfig()
    cache = memo.get_cache()
    reference = cache.solve_floorplan(
        standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=checker_power_w),
        thermal,
    ).peak_c
    inactive = cache.solve_floorplan(
        standard_floorplan(
            ChipModel.THREE_D_2A,
            checker_power_w=checker_power_w,
            upper_die_cache=False,
        ),
        thermal,
    ).peak_c
    corner = cache.solve_floorplan(
        standard_floorplan(
            ChipModel.THREE_D_2A,
            checker_power_w=checker_power_w,
            checker_placement=CheckerPlacement.CORNER,
        ),
        thermal,
    ).peak_c
    doubled = cache.solve_floorplan(
        standard_floorplan(
            ChipModel.THREE_D_2A,
            checker_power_w=checker_power_w,
            checker_area_scale=0.5,
        ),
        thermal,
    ).peak_c
    return {
        "inactive_top": inactive - reference,
        "corner": corner - reference,
        "double_density": doubled - reference,
    }
