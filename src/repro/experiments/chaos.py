"""Deterministic fault injection for the sweep execution layer.

The simulated cores get their faults from :mod:`repro.core.faults`; this
module does the same for the machinery that *runs* the simulations, so
the engine's recovery paths (retries, pool rebuilds, serial degradation)
are themselves testable.  A :class:`ChaosPolicy` injects three kinds of
trouble into sweep tasks:

* ``task-fail`` — raise :class:`~repro.common.errors.ChaosError` before
  the task body runs;
* ``worker-kill`` — ``os._exit`` the worker process (surfaces to the
  controller as a ``BrokenProcessPool``), only ever inside pool workers;
* ``task-delay`` — sleep before the task body runs.

PR 7 adds *transport* faults for the pluggable executor backends
(:mod:`repro.experiments.executors`):

* ``heartbeat-drop`` — a socket worker suppresses its heartbeat frames
  while running the chunk whose first entry the decision names, so the
  controller declares it lost and requeues the chunk;
* ``result-dup`` — a worker sends a task's result frame twice (the
  at-most-once commit must drop the second copy);
* ``result-delay`` — a worker holds a result frame back for
  ``frame_delay_s`` before sending it (exercises late results racing a
  requeued rerun).

PR 9 adds *supervision* faults for the self-healing layer:

* ``worker-hang`` — a socket worker sleeps ``hang_s`` after accepting
  the chunk whose first entry the decision names, while its heartbeats
  keep beating (only the chunk lease can catch it);
* ``respawn-fail`` — a scheduled replacement worker fails to come up
  (decided per respawn ordinal, exercising the degrade fallback);
* ``short-write`` — the checkpoint writer persists only a prefix of the
  JSONL line for the named task, simulating a crash torn mid-byte.

Two rules make chaos compatible with the engine's determinism contract
(results, merged metrics, and manifests bit-identical to an undisturbed
run):

1. **Injections happen before the task body.**  A chaos-failed attempt
   executes none of the task, so it warms no memo cache and produces no
   metric delta; the retry behaves exactly like a clean first run.
2. **Only first attempts are disturbed** (``attempt == 0``).  Retries
   and kill-recovery resubmissions always run clean, so every task
   eventually succeeds with a bit-identical result.

Decisions are pure functions of ``(seed, kind, task index)`` — both the
worker (to inject) and the controller (to attribute a pool crash to the
task chaos killed) compute them independently and agree.

Activate with the ``REPRO_CHAOS`` environment variable or the CLI's
``--chaos`` flag, e.g. ``worker-kill:0.1,task-fail:0.05``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.common.errors import ChaosError, ConfigError

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosPolicy",
    "hash01",
    "set_chaos",
    "current_chaos",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"


def hash01(text: str) -> float:
    """A deterministic hash of ``text`` mapped into ``[0, 1)``."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class ChaosPolicy:
    """Probabilities (and a seed) for the task and transport injections."""

    fail_p: float = 0.0
    kill_p: float = 0.0
    delay_p: float = 0.0
    delay_s: float = 0.01
    hb_drop_p: float = 0.0
    dup_result_p: float = 0.0
    frame_delay_p: float = 0.0
    frame_delay_s: float = 0.05
    hang_p: float = 0.0
    hang_s: float = 3600.0
    respawn_fail_p: float = 0.0
    short_write_p: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for name in (
            "fail_p", "kill_p", "delay_p",
            "hb_drop_p", "dup_result_p", "frame_delay_p",
            "hang_p", "respawn_fail_p", "short_write_p",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"chaos {name} must be in [0, 1], got {p}")
        if self.delay_s < 0:
            raise ConfigError(f"chaos delay_s must be >= 0, got {self.delay_s}")
        if self.frame_delay_s < 0:
            raise ConfigError(
                f"chaos frame_delay_s must be >= 0, got {self.frame_delay_s}"
            )
        if self.hang_s < 0:
            raise ConfigError(f"chaos hang_s must be >= 0, got {self.hang_s}")

    def _roll(self, kind: str, index: int) -> float:
        return hash01(f"{self.seed}:{kind}:{index}")

    def fails(self, index: int, attempt: int) -> bool:
        """Whether the task at ``index`` gets an injected failure."""
        return attempt == 0 and self._roll("fail", index) < self.fail_p

    def kills(self, index: int, attempt: int) -> bool:
        """Whether the task at ``index`` gets its worker killed."""
        return attempt == 0 and self._roll("kill", index) < self.kill_p

    def delays(self, index: int, attempt: int) -> bool:
        """Whether the task at ``index`` gets an injected delay."""
        return attempt == 0 and self._roll("delay", index) < self.delay_p

    # -- transport faults (executor backends) --------------------------
    # All follow the same two determinism rules: decided purely from
    # ``(seed, kind, index)`` and fired only on a chunk's first pass
    # (``attempt == 0``), so a requeued rerun always runs clean and both
    # sides of the wire can attribute a loss they observe indirectly.

    def drops_heartbeat(self, index: int, attempt: int) -> bool:
        """Whether a worker running the chunk whose first entry is
        ``index`` suppresses its heartbeats (controller will requeue)."""
        return attempt == 0 and self._roll("hb", index) < self.hb_drop_p

    def duplicates_result(self, index: int, attempt: int) -> bool:
        """Whether the result frame of task ``index`` is sent twice."""
        return attempt == 0 and self._roll("dup", index) < self.dup_result_p

    def delays_result(self, index: int, attempt: int) -> bool:
        """Whether the result frame of task ``index`` is held back for
        ``frame_delay_s`` before sending."""
        return (
            attempt == 0 and self._roll("frame", index) < self.frame_delay_p
        )

    # -- supervision faults (self-healing layer) -----------------------

    def hangs(self, index: int, attempt: int) -> bool:
        """Whether a worker running the chunk whose first entry is
        ``index`` stalls for ``hang_s`` after accepting it.  Heartbeats
        keep flowing, so only the chunk lease (``timeout_s``) detects
        the hang; a requeued rerun runs clean."""
        return attempt == 0 and self._roll("hang", index) < self.hang_p

    def fails_respawn(self, ordinal: int) -> bool:
        """Whether the ``ordinal``-th replacement worker an executor
        schedules fails to come up.  Keyed by respawn ordinal, not task
        index — respawns are an executor-level act with no task yet."""
        return self._roll("respawn", ordinal) < self.respawn_fail_p

    def short_writes(self, index: int) -> bool:
        """Whether the checkpoint append for task ``index`` persists
        only a line prefix (a simulated mid-byte crash).  Fired at most
        once per checkpoint file, and never on a file that already
        carries a torn line, so resumed runs converge."""
        return self._roll("short", index) < self.short_write_p

    def inject(self, index: int, attempt: int, in_worker: bool) -> None:
        """Apply this policy ahead of one task attempt.

        Called by the engine *before* the task body (and before its
        metric bracket).  Kills only fire inside pool workers — during
        serial (in-process) execution they are skipped, which is what
        lets a degraded or ``jobs=1`` run complete under any policy.
        """
        if self.delays(index, attempt):
            time.sleep(self.delay_s)
        if in_worker and self.kills(index, attempt):
            os._exit(17)
        if self.fails(index, attempt):
            raise ChaosError(
                f"chaos: injected failure for task {index} (attempt {attempt})"
            )

    # -- spec parsing --------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Build a policy from a spec string.

        Comma-separated ``kind:value`` fields; kinds are ``task-fail``
        (or ``fail``), ``worker-kill`` (``kill``), ``task-delay``
        (``delay``, with an optional second value for the sleep in
        seconds), the transport kinds ``heartbeat-drop`` (``hb-drop``),
        ``result-dup`` (``dup``), ``result-delay`` (optional second
        value: hold-back seconds), the supervision kinds ``worker-hang``
        (``hang``, optional second value: stall seconds),
        ``respawn-fail``, ``short-write``, and ``seed``.  Example::

            worker-kill:0.1,respawn-fail:0.3,short-write:0.2,seed:7
        """
        values: dict = {}
        for field in spec.split(","):
            field = field.strip()
            if not field:
                continue
            parts = field.split(":")
            kind = parts[0].strip().lower()
            try:
                if kind in ("task-fail", "fail"):
                    values["fail_p"] = float(parts[1])
                elif kind in ("worker-kill", "kill"):
                    values["kill_p"] = float(parts[1])
                elif kind in ("task-delay", "delay"):
                    values["delay_p"] = float(parts[1])
                    if len(parts) > 2:
                        values["delay_s"] = float(parts[2])
                elif kind in ("heartbeat-drop", "hb-drop"):
                    values["hb_drop_p"] = float(parts[1])
                elif kind in ("result-dup", "dup"):
                    values["dup_result_p"] = float(parts[1])
                elif kind in ("result-delay", "frame-delay"):
                    values["frame_delay_p"] = float(parts[1])
                    if len(parts) > 2:
                        values["frame_delay_s"] = float(parts[2])
                elif kind in ("worker-hang", "hang"):
                    values["hang_p"] = float(parts[1])
                    if len(parts) > 2:
                        values["hang_s"] = float(parts[2])
                elif kind in ("respawn-fail", "respawn"):
                    values["respawn_fail_p"] = float(parts[1])
                elif kind in ("short-write", "short"):
                    values["short_write_p"] = float(parts[1])
                elif kind == "seed":
                    values["seed"] = int(parts[1])
                else:
                    raise ConfigError(
                        f"unknown chaos kind {kind!r} in {spec!r}"
                    )
            except (IndexError, ValueError):
                raise ConfigError(
                    f"malformed chaos field {field!r} in {spec!r} "
                    "(expected kind:value)"
                ) from None
        return cls(**values)


# ---------------------------------------------------------------------
_CHAOS: ChaosPolicy | None = None


def set_chaos(policy: ChaosPolicy | None) -> None:
    """Set the process-wide chaos policy (the CLI's ``--chaos``).

    Outranks ``REPRO_CHAOS``; ``None`` restores environment lookup.
    """
    global _CHAOS
    _CHAOS = policy


def current_chaos() -> ChaosPolicy | None:
    """The active policy: :func:`set_chaos`, else ``REPRO_CHAOS``, else none."""
    if _CHAOS is not None:
        return _CHAOS
    spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
    if spec:
        return ChaosPolicy.parse(spec)
    return None
