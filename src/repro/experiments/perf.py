"""Performance experiments: Figure 6 and the NUCA policy comparison.

Figure 6 plots per-benchmark IPC for the four chip models under the
distributed-sets NUCA policy.  Models with a checker run the full RMT
co-simulation (leading + trailing + DFS), which also demonstrates the
checker's negligible impact on the leading core.

All sweeps here are flat lists of independent ``(benchmark x chip/policy)``
simulations executed through :mod:`repro.experiments.engine`; inner loops
are benchmark-major so the memoized trace of one benchmark is reused
across every chip model and policy before the cache moves on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel, NucaPolicy
from repro.experiments import engine
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    prime_sim_tasks,
    run_batch,
    run_sim_task,
)
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = [
    "Fig6Row",
    "fig6_performance",
    "average_ipc",
    "nuca_policy_comparison",
    "l2_statistics",
]

_MODELS = (
    ChipModel.TWO_D_A,
    ChipModel.TWO_D_2A,
    ChipModel.THREE_D_2A,
    ChipModel.THREE_D_CHECKER,
)


@dataclass
class Fig6Row:
    """One benchmark's IPC across the four chip models."""

    benchmark: str
    ipc: dict[str, float]   # chip model value -> IPC

    def __getitem__(self, chip: ChipModel) -> float:
        return self.ipc[chip.value]


def fig6_performance(
    window: SimulationWindow = DEFAULT_WINDOW,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    models: tuple[ChipModel, ...] = _MODELS,
    jobs: int | None = None,
    chunksize: int | None = None,
    simbatch: bool = False,
) -> list[Fig6Row]:
    """IPC of every benchmark on every chip model (Figure 6).

    ``chunksize`` defaults to the inner-loop length (one benchmark's
    chip models), which keeps each benchmark's memoized trace on one
    worker.  A larger multiple of ``len(models)`` groups several
    benchmarks per chunk, letting ``prime_sim_tasks`` generate their
    traces in one lockstep batch — results are identical either way.

    ``simbatch=True`` runs each benchmark's chip models as one
    :class:`~repro.experiments.runner.SimBatch` — all K simulations
    stepped in lockstep per trace window, sharing each window's
    prepare statics.  One work item per benchmark goes to the engine
    (so it parallelizes across benchmarks at any ``jobs``) and results
    are bit-identical to the per-task path.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    tasks = [
        SimTask(
            kind="rmt" if chip.has_checker else "leading",
            profile=profile,
            chip=chip,
            window=window,
            seed=seed,
            policy=policy,
        )
        for profile in benchmarks
        for chip in models
    ]
    if simbatch:
        m = len(models)
        groups = [tasks[b * m:(b + 1) * m] for b in range(len(benchmarks))]
        grouped = engine.parallel_map(
            run_batch, groups, jobs=jobs, chunksize=1,
            label="fig6_performance",
        )
        results = [result for group in grouped for result in group]
    else:
        results = engine.parallel_map(
            run_sim_task, tasks, jobs=jobs,
            chunksize=chunksize if chunksize is not None else len(models),
            label="fig6_performance", prepare_chunk=prime_sim_tasks,
        )
    rows = []
    for b, profile in enumerate(benchmarks):
        ipc: dict[str, float] = {}
        for m, chip in enumerate(models):
            result = results[b * len(models) + m]
            ipc[chip.value] = (
                result.leading.ipc if chip.has_checker else result.ipc
            )
        rows.append(Fig6Row(profile.name, ipc))
    return rows


def average_ipc(rows: list[Fig6Row]) -> dict[str, float]:
    """Arithmetic-mean IPC per chip model over a Figure 6 result set."""
    if not rows:
        return {}
    totals: dict[str, float] = {}
    for row in rows:
        for chip, value in row.ipc.items():
            totals[chip] = totals.get(chip, 0.0) + value
    return {chip: total / len(rows) for chip, total in totals.items()}


def nuca_policy_comparison(
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    chip: ChipModel = ChipModel.THREE_D_2A,
    jobs: int | None = None,
) -> dict[str, float]:
    """Distributed-sets vs distributed-ways mean IPC (Section 3.3).

    The paper reports the distributed-way policy is slightly (< 2%)
    better because blocks migrate toward the controller.  The comparison
    uses the 15-bank organization, where dedicating one bank position to
    the centralized tag array costs a negligible 1/15th of capacity.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    policies = (NucaPolicy.DISTRIBUTED_SETS, NucaPolicy.DISTRIBUTED_WAYS)
    # Benchmark-major so both policies reuse one memoized trace.
    tasks = [
        SimTask(
            kind="leading", profile=profile, chip=chip, window=window,
            seed=seed, policy=policy,
        )
        for profile in benchmarks
        for policy in policies
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=len(policies),
        label="nuca_policy_comparison", prepare_chunk=prime_sim_tasks,
    )
    totals = {policy: 0.0 for policy in policies}
    for i, task in enumerate(tasks):
        totals[task.policy] += results[i].ipc
    return {
        policy.value: total / len(benchmarks)
        for policy, total in totals.items()
    }


def l2_statistics(
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    jobs: int | None = None,
) -> dict[str, float]:
    """The Section 3.3 cache numbers: misses/10k and mean hit latency.

    Paper values: 1.43 → 1.25 misses per 10k instructions from 6 MB to
    15 MB, and 18 → 22 cycles average hit latency from 2d-a to 2d-2a.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    configs = ((ChipModel.TWO_D_A, "6mb"), (ChipModel.TWO_D_2A, "15mb"))
    # Benchmark-major so both capacities reuse one memoized trace.
    tasks = [
        SimTask(
            kind="leading", profile=profile, chip=chip, window=window,
            seed=seed,
        )
        for profile in benchmarks
        for chip, _tag in configs
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=len(configs),
        label="l2_statistics", prepare_chunk=prime_sim_tasks,
    )
    misses = {tag: 0.0 for _chip, tag in configs}
    latency = {tag: 0.0 for _chip, tag in configs}
    for b in range(len(benchmarks)):
        for c, (_chip, tag) in enumerate(configs):
            run = results[b * len(configs) + c]
            misses[tag] += run.l2_misses_per_10k
            latency[tag] += run.average_l2_hit_latency
    out = {}
    for _chip, tag in configs:
        out[f"misses_per_10k_{tag}"] = misses[tag] / len(benchmarks)
        out[f"avg_hit_latency_{tag}"] = latency[tag] / len(benchmarks)
    return out
