"""Performance experiments: Figure 6 and the NUCA policy comparison.

Figure 6 plots per-benchmark IPC for the four chip models under the
distributed-sets NUCA policy.  Models with a checker run the full RMT
co-simulation (leading + trailing + DFS), which also demonstrates the
checker's negligible impact on the leading core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel, NucaPolicy
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimulationWindow,
    simulate_leading,
    simulate_rmt,
)
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = [
    "Fig6Row",
    "fig6_performance",
    "average_ipc",
    "nuca_policy_comparison",
    "l2_statistics",
]

_MODELS = (
    ChipModel.TWO_D_A,
    ChipModel.TWO_D_2A,
    ChipModel.THREE_D_2A,
    ChipModel.THREE_D_CHECKER,
)


@dataclass
class Fig6Row:
    """One benchmark's IPC across the four chip models."""

    benchmark: str
    ipc: dict[str, float]   # chip model value -> IPC

    def __getitem__(self, chip: ChipModel) -> float:
        return self.ipc[chip.value]


def fig6_performance(
    window: SimulationWindow = DEFAULT_WINDOW,
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    models: tuple[ChipModel, ...] = _MODELS,
) -> list[Fig6Row]:
    """IPC of every benchmark on every chip model (Figure 6)."""
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    rows = []
    for profile in benchmarks:
        ipc: dict[str, float] = {}
        for chip in models:
            if chip.has_checker:
                result = simulate_rmt(
                    profile, chip, window=window, seed=seed, policy=policy
                )
                ipc[chip.value] = result.leading.ipc
            else:
                ipc[chip.value] = simulate_leading(
                    profile, chip, window=window, seed=seed, policy=policy
                ).ipc
        rows.append(Fig6Row(profile.name, ipc))
    return rows


def average_ipc(rows: list[Fig6Row]) -> dict[str, float]:
    """Arithmetic-mean IPC per chip model over a Figure 6 result set."""
    if not rows:
        return {}
    totals: dict[str, float] = {}
    for row in rows:
        for chip, value in row.ipc.items():
            totals[chip] = totals.get(chip, 0.0) + value
    return {chip: total / len(rows) for chip, total in totals.items()}


def nuca_policy_comparison(
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    chip: ChipModel = ChipModel.THREE_D_2A,
) -> dict[str, float]:
    """Distributed-sets vs distributed-ways mean IPC (Section 3.3).

    The paper reports the distributed-way policy is slightly (< 2%)
    better because blocks migrate toward the controller.  The comparison
    uses the 15-bank organization, where dedicating one bank position to
    the centralized tag array costs a negligible 1/15th of capacity.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    means = {}
    for policy in (NucaPolicy.DISTRIBUTED_SETS, NucaPolicy.DISTRIBUTED_WAYS):
        total = 0.0
        for profile in benchmarks:
            total += simulate_leading(
                profile, chip, window=window, seed=seed, policy=policy
            ).ipc
        means[policy.value] = total / len(benchmarks)
    return means


def l2_statistics(
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
) -> dict[str, float]:
    """The Section 3.3 cache numbers: misses/10k and mean hit latency.

    Paper values: 1.43 → 1.25 misses per 10k instructions from 6 MB to
    15 MB, and 18 → 22 cycles average hit latency from 2d-a to 2d-2a.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    out = {}
    for chip, tag in ((ChipModel.TWO_D_A, "6mb"), (ChipModel.TWO_D_2A, "15mb")):
        misses = 0.0
        latency = 0.0
        for profile in benchmarks:
            run = simulate_leading(profile, chip, window=window, seed=seed)
            misses += run.l2_misses_per_10k
            latency += run.average_l2_hit_latency
        out[f"misses_per_10k_{tag}"] = misses / len(benchmarks)
        out[f"avg_hit_latency_{tag}"] = latency / len(benchmarks)
    return out
