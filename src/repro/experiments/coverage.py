"""Section 2: fault-injection campaigns over the RMT checking protocol.

Runs the functional (value-domain) RMT engine with injected transient and
dynamic timing faults and verifies the paper's fault-model claims: every
single datapath fault is detected, and recovery from the ECC-protected
trailing register file restores the architecturally correct store stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultInjector, FaultRates
from repro.core.functional import FunctionalRmt
from repro.isa.trace import generate_trace
from repro.workloads.profiles import get_profile

__all__ = ["CoverageResult", "fault_coverage_campaign"]


@dataclass
class CoverageResult:
    """Outcome of one fault-injection campaign."""

    instructions: int
    faults_injected: int
    mismatches_detected: int
    recoveries: int
    ecc_corrections: int
    ecc_uncorrectable: int
    store_stream_correct: bool

    @property
    def architecturally_safe(self) -> bool:
        """True when no fault escaped into the committed store stream."""
        return self.store_stream_correct


def fault_coverage_campaign(
    benchmark: str = "gzip",
    instructions: int = 20_000,
    soft_error_rate: float = 5e-4,
    timing_error_rate: float = 5e-4,
    seed: int = 7,
) -> CoverageResult:
    """Inject faults into a functional RMT run and audit the outcome.

    The fault rates are per instruction and deliberately enormous compared
    to reality so a short run exercises detection and recovery thousands
    of times.  The committed store stream is compared against a fault-free
    golden run: with the paper's protections (ECC on LVQ and the trailing
    register file) it must match exactly.
    """
    profile = get_profile(benchmark)
    trace = generate_trace(profile, instructions, seed=seed)

    golden = FunctionalRmt().run([ins for ins in trace])
    injector = FaultInjector(
        leading=FaultRates(
            soft_error=soft_error_rate, timing_error=timing_error_rate
        ),
        trailing=FaultRates(
            soft_error=soft_error_rate / 2, timing_error=timing_error_rate / 2
        ),
        seed=seed,
    )
    rmt = FunctionalRmt(injector=injector)
    result = rmt.run(trace)

    return CoverageResult(
        instructions=instructions,
        faults_injected=len(injector.injected),
        mismatches_detected=result.mismatches_detected,
        recoveries=result.recoveries,
        ecc_corrections=result.ecc_corrections,
        ecc_uncorrectable=result.ecc_detections_uncorrectable,
        store_stream_correct=result.store_stream == golden.store_stream,
    )
