"""Section 3.3: performance under a constant thermal constraint.

The 3D reliable processor runs hotter; to hold the 2D baseline's peak
temperature, its voltage and frequency scale down together (the paper,
following [2], treats V and f as linearly coupled, so power scales
strongly with frequency).  The driver searches for the frequency that
matches the 2d-a thermals and then measures the leading core's
performance at that frequency — memory latency is fixed in nanoseconds,
so the loss is a little less than the frequency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import memo
from repro.common.config import ChipModel, LeadingCoreConfig, ThermalConfig
from repro.experiments import engine
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    run_sim_task,
)
from repro.experiments.thermal import standard_floorplan
from repro.workloads.profiles import WorkloadProfile, spec2k_suite

__all__ = [
    "ThermalConstraintResult",
    "thermally_equivalent_frequency",
    "constant_thermal_performance",
]

# Dynamic power ∝ V²f with V ∝ f gives an exponent of 3; leakage scales
# more slowly, so the chip-level effective exponent sits a little lower.
_POWER_FREQUENCY_EXPONENT = 2.6


def thermally_equivalent_frequency(
    checker_power_w: float,
    thermal: ThermalConfig | None = None,
    chip: ChipModel = ChipModel.THREE_D_2A,
    upper_die_tech_nm: int = 65,
    tolerance_c: float = 0.05,
) -> float:
    """Frequency fraction at which ``chip`` matches the 2d-a peak temp.

    Paper: 1.9 GHz (0.95) for a 7 W checker, 1.8 GHz (0.90) for 15 W.
    """
    thermal = thermal or ThermalConfig()
    cache = memo.get_cache()
    target = cache.solve_floorplan(
        standard_floorplan(ChipModel.TWO_D_A), thermal
    ).peak_c
    plan = standard_floorplan(
        chip, checker_power_w=checker_power_w, upper_die_tech_nm=upper_die_tech_nm
    )
    model = cache.thermal_model(plan, thermal)

    def peak_at(ratio: float) -> float:
        scaled = plan.scaled_power(ratio**_POWER_FREQUENCY_EXPONENT)
        powers = {b.name: b.power_w for b in scaled.blocks}
        # distributed wire power scales too: rebuild the model's view by
        # scaling block powers and solving with the scaled distributed map.
        saved = model.floorplan.distributed_power_w
        model.floorplan.distributed_power_w = scaled.distributed_power_w
        try:
            return model.solve(powers).peak_c
        finally:
            model.floorplan.distributed_power_w = saved

    low, high = 0.6, 1.0
    if peak_at(1.0) <= target:
        return 1.0
    for _ in range(30):
        mid = (low + high) / 2.0
        if peak_at(mid) > target + tolerance_c:
            high = mid
        else:
            low = mid
        if high - low < 1e-3:
            break
    return (low + high) / 2.0


@dataclass
class ThermalConstraintResult:
    """Outcome of the constant-thermal analysis for one checker power."""

    checker_power_w: float
    frequency_fraction: float
    frequency_ghz: float
    performance_loss: float   # 1 - (perf at reduced f / perf at full f)


def constant_thermal_performance(
    checker_power_w: float = 7.0,
    window: SimulationWindow = DEFAULT_WINDOW,
    thermal: ThermalConfig | None = None,
    seed: int = 42,
    benchmarks: list[WorkloadProfile] | None = None,
    chip: ChipModel = ChipModel.THREE_D_2A,
    upper_die_tech_nm: int = 65,
    jobs: int | None = None,
) -> ThermalConstraintResult:
    """Find the thermally-matched frequency and its performance cost.

    Performance is instructions per second: IPC at the scaled frequency
    (with memory latency re-expressed in the shorter cycles) times the
    frequency itself.  Paper: 4.1% loss at 7 W, 8.2% at 15 W.
    """
    benchmarks = benchmarks if benchmarks is not None else spec2k_suite()
    ratio = thermally_equivalent_frequency(
        checker_power_w, thermal, chip, upper_die_tech_nm
    )
    base_cfg = LeadingCoreConfig()
    scaled_cfg = LeadingCoreConfig(
        frequency_hz=base_cfg.frequency_hz * ratio,
        memory_latency_cycles=max(1, round(base_cfg.memory_latency_cycles * ratio)),
    )
    configs = (base_cfg, scaled_cfg)
    # Benchmark-major: both frequency points share one memoized trace.
    tasks = [
        SimTask(
            kind="leading", profile=profile, chip=chip, window=window,
            seed=seed, leading=cfg,
        )
        for profile in benchmarks
        for cfg in configs
    ]
    results = engine.parallel_map(
        run_sim_task, tasks, jobs=jobs, chunksize=len(configs),
        label="constant_thermal_performance",
    )
    perf_full = 0.0
    perf_scaled = 0.0
    for b in range(len(benchmarks)):
        perf_full += results[b * 2].ipc * 1.0
        perf_scaled += results[b * 2 + 1].ipc * ratio
    loss = 1.0 - perf_scaled / perf_full
    return ThermalConstraintResult(
        checker_power_w=checker_power_w,
        frequency_fraction=ratio,
        frequency_ghz=2.0 * ratio,
        performance_loss=loss,
    )
