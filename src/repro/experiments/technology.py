"""Technology experiments: Tables 6-8 and Figures 8-9 (Section 4 data)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.itrs import (
    PUBLISHED_TABLE8,
    TECH_NODES,
    VARIABILITY_TABLE,
    dynamic_power_ratio,
    leakage_power_ratio,
)
from repro.reliability.ser import (
    SER_PER_BIT_RELATIVE,
    critical_charge_fc,
    mbu_probability,
    total_chip_ser,
)

__all__ = [
    "table6_variability",
    "table7_devices",
    "Table8Row",
    "table8_power_ratios",
    "fig8_ser_scaling",
    "fig9_mbu_curve",
]


def table6_variability() -> list[dict[str, float]]:
    """Table 6: ITRS projected variability per node."""
    return [
        {
            "feature_nm": entry.feature_nm,
            "vth_variability": entry.vth_variability,
            "circuit_performance_variability": entry.circuit_performance_variability,
            "circuit_power_variability": entry.circuit_power_variability,
        }
        for entry in VARIABILITY_TABLE.values()
    ]


def table7_devices() -> list[dict[str, float]]:
    """Table 7: ITRS device characteristics per node."""
    return [
        {
            "feature_nm": node.feature_nm,
            "voltage_v": node.voltage_v,
            "gate_length_nm": node.gate_length_nm,
            "capacitance_f_per_um": node.capacitance_f_per_um,
            "leakage_ua_per_um": node.leakage_ua_per_um,
        }
        for node in TECH_NODES.values()
    ]


@dataclass
class Table8Row:
    """Relative power of an old node vs a new node: derived vs published."""

    old_nm: int
    new_nm: int
    dynamic_derived: float
    leakage_derived: float
    dynamic_published: float
    leakage_published: float


def table8_power_ratios() -> list[Table8Row]:
    """Table 8, derived from Table 7 (P_dyn ∝ C·L·V², P_leak ∝ I·L·V)."""
    rows = []
    for (old, new), (dyn_pub, leak_pub) in PUBLISHED_TABLE8.items():
        rows.append(
            Table8Row(
                old_nm=old,
                new_nm=new,
                dynamic_derived=round(dynamic_power_ratio(old, new), 2),
                leakage_derived=round(leakage_power_ratio(old, new), 2),
                dynamic_published=dyn_pub,
                leakage_published=leak_pub,
            )
        )
    return rows


def fig8_ser_scaling() -> list[dict[str, float]]:
    """Figure 8: per-bit and whole-chip SER across nodes.

    Per-bit rates fall slowly; chip rates rise with density — the paper's
    argument for older-process checker dies.
    """
    return [
        {
            "feature_nm": node,
            "per_bit_relative": rel,
            "chip_relative": round(total_chip_ser(node), 2),
        }
        for node, rel in sorted(SER_PER_BIT_RELATIVE.items(), reverse=True)
    ]


def fig9_mbu_curve(
    nodes: tuple[int, ...] = (180, 130, 90, 65, 45)
) -> list[dict[str, float]]:
    """Figure 9: multi-bit-upset probability vs critical charge."""
    return [
        {
            "feature_nm": node,
            "critical_charge_fc": critical_charge_fc(node),
            "mbu_probability": round(
                mbu_probability(critical_charge_fc(node)), 4
            ),
        }
        for node in nodes
    ]
