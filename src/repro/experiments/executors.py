"""Pluggable executor backends for the sweep engine.

The engine (:mod:`repro.experiments.engine`) schedules chunks of sweep
tasks; *how* a chunk actually runs is this module's concern.  An
:class:`Executor` turns ``submit_chunk`` calls into a stream of
:class:`ChunkStarted` / :class:`TaskDone` / :class:`ChunkDone` /
:class:`WorkerLost` events that the engine's backend-agnostic scheduler
loop consumes.  Three implementations ship:

* :class:`InlineExecutor` — serial, in-process, one task per ``poll``
  call so the scheduler can checkpoint and fail-fast *between* tasks
  exactly like the old ``_run_serial`` path.  Nothing is pickled;
  ``pdb``, profilers, and coverage keep working.
* :class:`LocalPoolExecutor` — today's ``ProcessPoolExecutor`` shape:
  chunk futures, ``BrokenProcessPool`` surfaced as a single
  :class:`PoolBroken` event so the scheduler can rebuild and resubmit.
* :class:`SocketExecutor` — long-lived worker processes speaking a
  localhost TCP protocol of length-prefixed pickled frames, standing in
  for the multi-host case.  Workers send heartbeats from a daemon
  thread and stream per-task results, so the controller detects a lost
  or silent worker (EOF, missed heartbeats), requeues its chunk onto
  a survivor without restarting the backend, and — within
  ``TaskPolicy.max_respawns`` — spawns a replacement worker so the
  sweep recovers full capacity.

This module also owns the *worker-side* execution layer the backends
share — the per-attempt retry loop (:func:`_attempt_task`), the
``SIGALRM`` interval-timer deadline (:func:`_deadline`), and the
picklable :class:`_TaskOutcome` record — moved here from the engine so
the backends and the engine do not import-cycle.

On platforms without ``signal.SIGALRM`` / ``setitimer`` the in-worker
deadline cannot be armed; :func:`_attempt_task` then falls back to a
post-hoc wall-clock check (an overlong attempt that *finishes* is still
converted to a timeout and retried) and true hangs are left to the
controller-side lease, which fabricates the timeout when the chunk
outlives its worst-case budget.

Selection: :func:`resolve_executor` picks the backend — explicit
argument, then :func:`set_default_executor` (the CLI's ``--executor``),
then the ``REPRO_EXECUTOR`` environment variable, then ``inline`` for
``jobs=1`` and ``local`` otherwise.  When a backend fails for good
(every socket worker lost, pool rebuild budget exhausted) it raises
:class:`~repro.common.errors.ExecutorBrokenError` and the scheduler
degrades down :data:`DEGRADATION_CHAIN` (``socket -> local ->
inline``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import selectors
import signal
import socket
import threading
import time
import traceback as traceback_mod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.errors import ChaosError, ConfigError, ExecutorBrokenError
from repro.experiments.chaos import ChaosPolicy
from repro.obs import profile as profile_mod
from repro.obs.metrics import MetricsSnapshot, get_registry

__all__ = [
    "EXECUTOR_ENV_VAR",
    "DEGRADATION_CHAIN",
    "ChunkStarted",
    "TaskDone",
    "ChunkDone",
    "ChunkFailed",
    "WorkerLost",
    "PoolBroken",
    "WorkerRespawned",
    "RespawnFailed",
    "Executor",
    "InlineExecutor",
    "LocalPoolExecutor",
    "SocketExecutor",
    "make_executor",
    "resolve_executor",
    "set_default_executor",
]

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Fallback order when a backend fails for good: each link degrades to
#: the next.  ``inline`` cannot fail (it is the in-process loop), so the
#: chain always terminates.
DEGRADATION_CHAIN = ("socket", "local", "inline")

#: Whether this platform can arm the in-worker interval-timer deadline.
#: Module-level so tests can monkeypatch the no-SIGALRM fallback.
_HAS_ALARM = hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")


# ---------------------------------------------------------------------
# Worker-side task execution: attempts, timeouts, chaos.
#
# A sweep entry is the tuple ``(index, base_attempt, item)``.
# ``base_attempt`` is nonzero only after a chaos kill (or heartbeat
# drop) was attributed to the task, so its rerun counts the consumed
# attempt and skips further first-attempt injections.


class _TaskTimeout(BaseException):
    """Raised by the SIGALRM handler; BaseException so the task body
    cannot swallow it with a broad ``except Exception``."""


def _alarm_usable() -> bool:
    """Whether the in-process deadline can be enforced right here."""
    return _HAS_ALARM and threading.current_thread() is threading.main_thread()


@contextmanager
def _deadline(timeout_s: float | None):
    """Kill the enclosed block after ``timeout_s`` via an interval timer.

    Enforcement requires ``SIGALRM`` (Unix) and the main thread — both
    true for pool/socket workers and for the inline in-process path.
    Anywhere else the block runs unlimited rather than failing; the
    caller's post-hoc wall check and the controller-side lease take
    over (see the module docstring).

    The timer is armed with a repeating interval equal to the timeout:
    if a task body swallows the first :class:`_TaskTimeout` (a broad
    ``except BaseException`` handler) the alarm re-fires one period
    later, so an in-process (jobs=1) task cannot convert one caught
    alarm into an unlimited run.  The ``finally`` disarm clears both the
    pending expiry and the repeat interval.
    """
    if timeout_s is None or not _alarm_usable():
        yield
        return

    def _on_alarm(signum, frame):
        raise _TaskTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _TaskOutcome:
    """What one task's attempt loop produced (picklable)."""

    index: int
    ok: bool = False
    result: object = None
    wall_s: float = 0.0
    metrics: MetricsSnapshot | None = None
    attempts: int = 0        # attempts executed here (excludes base)
    retries: int = 0         # failed attempts that were retried in place
    timeouts: int = 0        # attempts killed by the per-task timeout
    error_kind: str = ""     # "error" | "timeout" | "chaos"
    error: str = ""
    traceback: str = ""
    #: Optional trace context piggybacked for the live/export consumers:
    #: ``pid``, ``start_unix``/``end_unix`` wall-clock stamps, and (with
    #: ``--profile``) the attempt's collapsed-stack ``profile`` dict.
    #: ``None`` whenever observability is off (``REPRO_OBS=off``).
    telemetry: dict | None = None


def _attempt_task(
    fn: Callable,
    item,
    index: int,
    base_attempt: int,
    policy,
    chaos: ChaosPolicy | None,
    in_worker: bool,
    prepare: Callable | None = None,
    chunk_items: Sequence | None = None,
) -> _TaskOutcome:
    """Run one task with in-place retries; never raises task errors.

    Retries stay on the executing process on purpose: the retry then
    sees exactly the memo-cache state a clean run would have, which is
    part of the merged-metric determinism contract.  Failed attempts
    call ``end_task`` purely to unwind the span stack — their metric
    deltas are discarded.

    ``prepare`` (the chunk's ``prepare_chunk`` hook, passed only to the
    chunk's first entry) runs with the full ``chunk_items`` list inside
    this task's metrics window and deadline, on *every* attempt: chaos
    injections fire before ``begin_task``, so a killed first attempt did
    no priming and the retry prepares from the same cold state a clean
    run would have seen.  The hook must therefore be idempotent (warm
    caches make it a no-op).

    Without a usable ``SIGALRM`` the deadline degrades to a post-hoc
    check: an attempt that returns after more than ``timeout_s`` of
    wall clock is discarded and counted as a timeout, exactly as if the
    alarm had fired.  Attempts that never return are the controller
    lease's problem.
    """
    outcome = _TaskOutcome(index=index)
    attempts_allowed = max(1, policy.max_retries + 1 - base_attempt)
    registry = get_registry()
    for n in range(attempts_allowed):
        attempt = base_attempt + n
        outcome.attempts = n + 1
        if n:
            delay = policy.backoff(index, attempt)
            if delay:
                time.sleep(delay)
        try:
            if chaos is not None:
                chaos.inject(index, attempt, in_worker=in_worker)
            mark = registry.begin_task()
            prof = profile_mod.start_profile() if profile_mod.enabled() \
                else None
            start_unix = time.time()
            try:
                start = time.perf_counter()
                with _deadline(policy.timeout_s):
                    if prepare is not None:
                        prepare(chunk_items)
                    result = fn(item)
                wall = time.perf_counter() - start
                if (
                    policy.timeout_s is not None
                    and wall > policy.timeout_s
                    and not _alarm_usable()
                ):
                    raise _TaskTimeout()
                snapshot = registry.end_task(mark)
            except BaseException:
                if prof is not None:
                    prof.disable()
                registry.end_task(mark)
                raise
        except _TaskTimeout:
            outcome.timeouts += 1
            outcome.error_kind = "timeout"
            outcome.error = f"task exceeded its {policy.timeout_s}s timeout"
            outcome.traceback = traceback_mod.format_exc()
        except ChaosError as exc:
            outcome.error_kind = "chaos"
            outcome.error = str(exc)
            outcome.traceback = traceback_mod.format_exc()
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            outcome.error_kind = "error"
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.traceback = traceback_mod.format_exc()
        else:
            outcome.ok = True
            outcome.result = result
            outcome.wall_s = wall
            outcome.metrics = snapshot
            if registry.enabled:
                telemetry = {
                    "pid": os.getpid(),
                    "start_unix": start_unix,
                    "end_unix": start_unix + wall,
                }
                if prof is not None:
                    telemetry["profile"] = profile_mod.collapse(prof)
                outcome.telemetry = telemetry
            return outcome
        if n + 1 < attempts_allowed:
            outcome.retries += 1
    return outcome


def _run_chunk(
    fn: Callable,
    entries: Sequence[tuple[int, int, object]],
    policy,
    chaos: ChaosPolicy | None,
    in_worker: bool,
    prepare: Callable | None = None,
) -> list[_TaskOutcome]:
    """Execute one chunk of entries in order (the unit of placement).

    ``prepare`` runs inside the first entry's attempt with the whole
    chunk's items, so batched warm-up work is attributed to the chunk
    that benefits from it (see :func:`_attempt_task`).
    """
    items = [item for _index, _base, item in entries]
    return [
        _attempt_task(
            fn, item, index, base, policy, chaos, in_worker,
            prepare=prepare if pos == 0 else None,
            chunk_items=items if pos == 0 else None,
        )
        for pos, (index, base, item) in enumerate(entries)
    ]


# ---------------------------------------------------------------------
# Scheduler-facing event stream.


@dataclass(frozen=True)
class ChunkStarted:
    """A worker began executing a chunk (re-arms its lease)."""

    chunk_id: int
    worker: str = ""


@dataclass(frozen=True)
class TaskDone:
    """One task of a chunk finished (ok or exhausted); carries the outcome.

    ``worker`` names the executing worker when the backend knows it
    (``"inline"``, a pool pid, a socket worker id) — live telemetry
    attribution only, never scheduling state.
    """

    chunk_id: int
    outcome: _TaskOutcome = None
    worker: str = ""


@dataclass(frozen=True)
class ChunkDone:
    """Every task of the chunk has been reported."""

    chunk_id: int


@dataclass(frozen=True)
class ChunkFailed:
    """Chunk execution failed as a unit (e.g. its result would not
    unpickle); the scheduler fails its uncommitted tasks."""

    chunk_id: int
    error: Exception = None


@dataclass(frozen=True)
class WorkerLost:
    """A worker died (``crash``) or went silent (``heartbeat``); its
    chunks need requeueing onto a survivor."""

    worker: str
    chunk_ids: tuple = ()
    reason: str = "crash"


@dataclass(frozen=True)
class PoolBroken:
    """The whole process pool died; the scheduler rebuilds and
    resubmits every listed chunk (``BrokenProcessPool`` semantics)."""

    chunk_ids: tuple = ()


@dataclass(frozen=True)
class WorkerRespawned:
    """A replacement worker came up after a loss (socket backend);
    ``replaced`` names the worker it stands in for."""

    worker: str
    replaced: str = ""


@dataclass(frozen=True)
class RespawnFailed:
    """A scheduled replacement worker failed to come up (chaos
    ``respawn-fail`` or a real spawn error); the respawn budget was
    still consumed."""

    replaced: str = ""
    ordinal: int = 0


class Executor:
    """Protocol all backends implement; see the module docstring.

    Constructed with the sweep-constant context (``fn``, ``policy``,
    ``chaos``, ``prepare``, ``jobs``) so ``submit_chunk`` carries only
    the varying part: a chunk id and its entries.
    """

    name = "base"
    #: Whether a cancelled/lost chunk can be resubmitted to a surviving
    #: worker (socket) or the backend only supports terminal
    #: cancellation (inline, local pool — matching the old wave-expiry
    #: semantics).
    supports_requeue = False

    def __init__(self, *, fn, policy, chaos, prepare=None, jobs=1):
        self._fn = fn
        self._policy = policy
        self._chaos = chaos
        self._prepare = prepare
        self._jobs = max(1, jobs)

    def submit_chunk(self, chunk_id: int, entries: Sequence) -> None:
        """Queue one chunk of ``(index, base_attempt, item)`` entries."""
        raise NotImplementedError

    def poll(self, timeout_s: float | None = None) -> list:
        """Advance the backend and return newly available events."""
        raise NotImplementedError

    def cancel(self, chunk_id: int) -> bool:
        """Stop tracking (and best-effort stop running) one chunk.

        True when the backend knew the chunk; after cancellation no
        further events for it are delivered.
        """
        raise NotImplementedError

    def cancel_pending(self, chunk_id: int) -> bool:
        """Cancel one chunk *only if it has not started executing*.

        Used by the drain path (SIGTERM): started chunks are left to
        finish and commit, unstarted ones are withdrawn so the process
        can exit early with a resumable checkpoint.  True when the
        chunk was withdrawn; False when it is already running (or
        unknown) and will still report events.
        """
        return False

    def heartbeat(self) -> dict:
        """Live-worker health, keyed by worker id (a string).

        Every backend reports the same schema — each value is a dict
        with ``worker`` (the same id), ``age_s`` (seconds since the
        worker was last heard from, monotonic clock; ``0.0`` for
        in-process or pool workers whose liveness is implicit), and
        ``inflight_chunk`` (the chunk id currently placed on the
        worker, or ``None`` when idle).  Backends may add keys — the
        socket backend adds ``tasks_done``, the worker's self-reported
        progress within its current chunk.  Observation-only: the
        scheduler never reads this; it feeds ``LiveStats`` and the
        metrics endpoint.
        """
        return {}

    def shutdown(self, kill: bool = False) -> None:
        """Release workers; ``kill`` terminates them without waiting."""
        raise NotImplementedError


# ---------------------------------------------------------------------
class InlineExecutor(Executor):
    """Serial in-process execution, one task per :meth:`poll`.

    Advancing a single task per poll is what preserves the old serial
    path's semantics: the scheduler absorbs (checkpoints, fail-fasts)
    between tasks, so an abort stops mid-chunk.  Chaos worker-kills are
    skipped (``in_worker=False``) — killing the controller process is
    never useful — which is exactly what lets a degraded run complete
    under any chaos policy.
    """

    name = "inline"
    supports_requeue = False

    def __init__(self, **context):
        super().__init__(**context)
        self._queue: deque = deque()
        self._current = None  # [chunk_id, entries, next_pos]

    def submit_chunk(self, chunk_id: int, entries: Sequence) -> None:
        self._queue.append((chunk_id, list(entries)))

    def poll(self, timeout_s: float | None = None) -> list:
        events: list = []
        if self._current is None:
            if not self._queue:
                return events
            chunk_id, entries = self._queue.popleft()
            self._current = [chunk_id, entries, 0]
            events.append(ChunkStarted(chunk_id, worker="inline"))
        chunk_id, entries, pos = self._current
        index, base, item = entries[pos]
        items = [entry[2] for entry in entries]
        outcome = _attempt_task(
            self._fn, item, index, base, self._policy, self._chaos,
            in_worker=False,
            prepare=self._prepare if pos == 0 else None,
            chunk_items=items if pos == 0 else None,
        )
        events.append(TaskDone(chunk_id, outcome, worker="inline"))
        if pos + 1 >= len(entries):
            events.append(ChunkDone(chunk_id))
            self._current = None
        else:
            self._current[2] = pos + 1
        return events

    def cancel(self, chunk_id: int) -> bool:
        if self._current is not None and self._current[0] == chunk_id:
            self._current = None
            return True
        for queued in list(self._queue):
            if queued[0] == chunk_id:
                self._queue.remove(queued)
                return True
        return False

    def cancel_pending(self, chunk_id: int) -> bool:
        if self._current is not None and self._current[0] == chunk_id:
            return False  # mid-chunk: let it finish
        for queued in list(self._queue):
            if queued[0] == chunk_id:
                self._queue.remove(queued)
                return True
        return False

    def heartbeat(self) -> dict:
        inflight = self._current[0] if self._current is not None else None
        return {"inline": {"worker": "inline", "age_s": 0.0,
                           "inflight_chunk": inflight}}

    def shutdown(self, kill: bool = False) -> None:
        self._queue.clear()
        self._current = None


# ---------------------------------------------------------------------
def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Best-effort terminate of pool workers on abnormal exits, so an
    abort or Ctrl-C is not held hostage by a long or hung task.  Reaches
    into executor internals, hence the broad guard."""
    try:
        processes = list((pool._processes or {}).values())
    except Exception:
        return
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


class LocalPoolExecutor(Executor):
    """Chunk futures on a lazily (re)built ``ProcessPoolExecutor``.

    A broken pool is reported once, as a single :class:`PoolBroken`
    event carrying every in-flight chunk id; the pool itself is torn
    down and a fresh one is built on the next ``submit_chunk`` — the
    scheduler owns the rebuild budget and the resubmission.
    """

    name = "local"
    supports_requeue = False

    def __init__(self, **context):
        super().__init__(**context)
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict = {}   # future -> chunk_id
        self._by_chunk: dict = {}  # chunk_id -> future
        self._needs_kill = False

    def submit_chunk(self, chunk_id: int, entries: Sequence) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._jobs)
        future = self._pool.submit(
            _run_chunk, self._fn, list(entries), self._policy, self._chaos,
            True, self._prepare,
        )
        self._futures[future] = chunk_id
        self._by_chunk[chunk_id] = future

    def _chunk_events(self, chunk_id: int, outcomes) -> list:
        events = []
        for outcome in outcomes:
            telemetry = getattr(outcome, "telemetry", None) or {}
            pid = telemetry.get("pid")
            events.append(TaskDone(
                chunk_id, outcome,
                worker="" if pid is None else str(pid),
            ))
        events.append(ChunkDone(chunk_id))
        return events

    def poll(self, timeout_s: float | None = None) -> list:
        if not self._futures:
            return []
        done, _ = futures_wait(
            list(self._futures), timeout=timeout_s,
            return_when=FIRST_COMPLETED,
        )
        events: list = []
        broken_ids: list = []
        for future in done:
            chunk_id = self._futures.pop(future)
            self._by_chunk.pop(chunk_id, None)
            try:
                outcomes = future.result()
            except BrokenProcessPool:
                broken_ids.append(chunk_id)
            except Exception as exc:
                events.append(ChunkFailed(chunk_id, exc))
            else:
                events.extend(self._chunk_events(chunk_id, outcomes))
        if broken_ids:
            # The pool is dead: every other in-flight future is doomed
            # (or already holds a result).  Drain them so one PoolBroken
            # event carries the full set to resubmit.
            for future in list(self._futures):
                chunk_id = self._futures.pop(future)
                self._by_chunk.pop(chunk_id, None)
                try:
                    outcomes = future.result(timeout=10.0)
                except Exception:
                    broken_ids.append(chunk_id)
                else:
                    events.extend(self._chunk_events(chunk_id, outcomes))
            self._teardown(kill=True)
            events.append(PoolBroken(tuple(broken_ids)))
        return events

    def cancel(self, chunk_id: int) -> bool:
        future = self._by_chunk.pop(chunk_id, None)
        if future is None:
            return False
        self._futures.pop(future, None)
        if not future.cancel():
            # Already running: the worker may be hung on it.  Once no
            # tracked work remains, terminate the workers so the sweep
            # is not held hostage (old wave-expiry semantics).
            self._needs_kill = True
        if self._needs_kill and not self._futures:
            self._teardown(kill=True)
        return True

    def cancel_pending(self, chunk_id: int) -> bool:
        future = self._by_chunk.get(chunk_id)
        if future is None or not future.cancel():
            return False  # unknown or already picked up by a worker
        self._by_chunk.pop(chunk_id, None)
        self._futures.pop(future, None)
        return True

    def heartbeat(self) -> dict:
        if self._pool is None:
            return {}
        try:
            pids = sorted(
                pid for pid, proc in (self._pool._processes or {}).items()
                if proc.is_alive()
            )
        except Exception:
            return {}
        # Chunk placement inside the pool is the pool's own business, so
        # ``inflight_chunk`` is unknowable here; liveness is implicit in
        # the process being alive (age 0.0).
        return {
            str(pid): {"worker": str(pid), "age_s": 0.0,
                       "inflight_chunk": None}
            for pid in pids
        }

    def _teardown(self, kill: bool) -> None:
        pool, self._pool = self._pool, None
        self._needs_kill = False
        if pool is None:
            return
        if kill:
            _kill_pool_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, kill: bool = False) -> None:
        self._futures.clear()
        self._by_chunk.clear()
        self._teardown(kill=kill)


# ---------------------------------------------------------------------
# Socket transport: 4-byte big-endian length prefix + pickled payload.

_FRAME_HEADER_BYTES = 4
_HB_INTERVAL_S = 0.25
_SEND_TIMEOUT_S = 10.0


def _send_frame(sock: socket.socket, obj, lock: threading.Lock | None = None):
    """Serialise ``obj`` and write one length-prefixed frame."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    payload = len(data).to_bytes(_FRAME_HEADER_BYTES, "big") + data
    if lock is None:
        sock.sendall(payload)
    else:
        with lock:
            sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Blocking read of exactly ``n`` bytes; None on EOF."""
    buf = bytearray()
    while len(buf) < n:
        part = sock.recv(n - len(buf))
        if not part:
            return None
        buf += part
    return bytes(buf)


def _recv_frame(sock: socket.socket):
    """Blocking read of one frame; None on EOF."""
    header = _recv_exact(sock, _FRAME_HEADER_BYTES)
    if header is None:
        return None
    size = int.from_bytes(header, "big")
    data = _recv_exact(sock, size)
    if data is None:
        return None
    return pickle.loads(data)


class _FrameBuffer:
    """Reassembles frames from a non-blocking socket's byte stream."""

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> list:
        """Absorb ``data``; return every now-complete frame."""
        self._buf += data
        frames = []
        while True:
            if len(self._buf) < _FRAME_HEADER_BYTES:
                break
            size = int.from_bytes(self._buf[:_FRAME_HEADER_BYTES], "big")
            end = _FRAME_HEADER_BYTES + size
            if len(self._buf) < end:
                break
            frames.append(pickle.loads(bytes(self._buf[_FRAME_HEADER_BYTES:end])))
            del self._buf[:end]
        return frames


def _socket_worker_main(host, port, worker_id, fn, policy, chaos, prepare,
                        hb_interval):
    """Entry point of one long-lived socket worker process.

    Connects back to the controller, heartbeats from a daemon thread
    (suppressed while chaos says this chunk drops heartbeats), and
    streams ``task_result`` frames as the chunk progresses — with
    chaos-injected duplicate and delayed frames when asked, so the
    controller's at-most-once commit is exercised for real.

    While observability is on, heartbeat frames piggyback a tiny
    telemetry dict — the in-flight chunk id and tasks completed within
    it — updated by the main loop and read by the beat thread (plain
    dict-key stores, safe under the GIL).  ``REPRO_OBS=off`` drops the
    piggyback entirely.
    """
    sock = socket.create_connection((host, port))
    send_lock = threading.Lock()
    suppress_hb = threading.Event()
    stop = threading.Event()
    telemetry_on = get_registry().enabled
    progress = {"chunk": None, "done": 0}
    _send_frame(sock, {"type": "hello", "worker": worker_id}, send_lock)

    def _beat():
        while not stop.wait(hb_interval):
            if suppress_hb.is_set():
                continue
            frame = {"type": "hb", "worker": worker_id}
            if telemetry_on:
                frame["telemetry"] = dict(progress)
            try:
                _send_frame(sock, frame, send_lock)
            except OSError:
                return

    threading.Thread(target=_beat, daemon=True).start()
    try:
        while True:
            frame = _recv_frame(sock)
            if frame is None or frame.get("type") == "shutdown":
                return
            if frame.get("type") != "run":
                continue
            chunk_id = frame["chunk_id"]
            entries = frame["entries"]
            first_index, first_base, _item = entries[0]
            if chaos is not None and chaos.drops_heartbeat(
                first_index, first_base
            ):
                suppress_hb.set()
            _send_frame(
                sock,
                {"type": "started", "chunk_id": chunk_id,
                 "worker": worker_id},
                send_lock,
            )
            if chaos is not None and chaos.hangs(first_index, first_base):
                # The worker stalls *after* accepting the chunk while
                # heartbeats keep flowing — only the chunk lease can
                # notice; the controller cancels (kills) us and the
                # chunk's rerun is clean (attempt bump consumes the
                # decision).
                time.sleep(chaos.hang_s)
            items = [entry[2] for entry in entries]
            progress["chunk"] = chunk_id
            progress["done"] = 0
            for pos, (index, base, item) in enumerate(entries):
                outcome = _attempt_task(
                    fn, item, index, base, policy, chaos, in_worker=True,
                    prepare=prepare if pos == 0 else None,
                    chunk_items=items if pos == 0 else None,
                )
                if chaos is not None and chaos.delays_result(index, base):
                    time.sleep(chaos.frame_delay_s)
                result = {
                    "type": "task_result", "chunk_id": chunk_id,
                    "worker": worker_id, "outcome": outcome,
                }
                _send_frame(sock, result, send_lock)
                progress["done"] = pos + 1
                if chaos is not None and chaos.duplicates_result(index, base):
                    _send_frame(sock, result, send_lock)
            _send_frame(
                sock,
                {"type": "chunk_done", "chunk_id": chunk_id,
                 "worker": worker_id},
                send_lock,
            )
            progress["chunk"] = None
            suppress_hb.clear()
    except OSError:
        pass
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


class SocketExecutor(Executor):
    """Long-lived worker processes over localhost TCP.

    The controller is single-threaded: a ``selectors`` loop accepts
    worker connections and reassembles their frames inside
    :meth:`poll`.  Liveness is judged *only* from heartbeat (and hello)
    frames — result frames do not count — so a worker whose heartbeat
    thread is muted is declared lost even while it is still streaming
    results, which is exactly the failure the at-most-once commit must
    absorb.  A lost worker's chunks requeue onto survivors, and — when
    ``TaskPolicy.max_respawns`` allows — a replacement process is
    spawned after ``respawn_backoff_s`` (same frame protocol, fresh
    worker id, cold caches), so the sweep recovers full capacity
    instead of only shrinking.  When the respawn budget is spent and no
    worker is left the executor raises
    :class:`~repro.common.errors.ExecutorBrokenError` so the scheduler
    degrades to the next backend.
    """

    name = "socket"
    supports_requeue = True

    def __init__(self, *, hb_interval=_HB_INTERVAL_S, hb_timeout=None,
                 **context):
        super().__init__(**context)
        self._hb_interval = hb_interval
        self._hb_timeout = hb_timeout if hb_timeout is not None \
            else hb_interval * 6.0
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self._jobs)
        self._listener.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ,
                                {"kind": "listener"})
        self._addr = self._listener.getsockname()
        self._ctx = multiprocessing.get_context()
        self._procs: dict = {}       # worker_id -> Process
        self._states: dict = {}      # worker_id -> connection state
        self._last_hb: dict = {}     # worker_id -> monotonic timestamp
        self._hb_meta: dict = {}     # worker_id -> piggybacked telemetry
        self._busy: dict = {}        # worker_id -> chunk_id
        self._assigned: dict = {}    # chunk_id -> worker_id
        self._queue: deque = deque()  # (chunk_id, entries)
        self._next_worker_id = self._jobs
        self._respawns_used = 0
        self._max_respawns = max(0, getattr(
            self._policy, "max_respawns", 0) or 0)
        self._respawn_backoff = max(0.0, getattr(
            self._policy, "respawn_backoff_s", 0.0) or 0.0)
        self._pending_spawns: list = []  # (due monotonic, replaced id)
        self._pending_events: list = []  # RespawnFailed queued for poll
        for worker_id in range(self._jobs):
            self._spawn_worker(worker_id)

    def _spawn_worker(self, worker_id: int) -> None:
        host, port = self._addr
        proc = self._ctx.Process(
            target=_socket_worker_main,
            args=(host, port, worker_id, self._fn, self._policy,
                  self._chaos, self._prepare, self._hb_interval),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def _schedule_respawn(self, replaced) -> None:
        """Book a replacement for a lost worker, if budget remains.

        The budget is consumed at scheduling time, so a chaos-vetoed
        respawn (``respawn-fail``) costs an attempt exactly like a real
        spawn failure would.
        """
        if replaced is None or self._respawns_used >= self._max_respawns:
            return
        ordinal = self._respawns_used
        self._respawns_used += 1
        if self._chaos is not None and self._chaos.fails_respawn(ordinal):
            self._pending_events.append(
                RespawnFailed(replaced=str(replaced), ordinal=ordinal))
            return
        due = time.monotonic() + self._respawn_backoff
        self._pending_spawns.append((due, replaced))

    def _spawn_due_replacements(self, events: list) -> None:
        now = time.monotonic()
        for entry in [e for e in self._pending_spawns if e[0] <= now]:
            self._pending_spawns.remove(entry)
            _due, replaced = entry
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            try:
                self._spawn_worker(worker_id)
            except OSError:
                events.append(RespawnFailed(
                    replaced=str(replaced),
                    ordinal=self._respawns_used - 1))
                continue
            events.append(WorkerRespawned(worker=str(worker_id),
                                          replaced=str(replaced)))

    # -- wiring --------------------------------------------------------
    def _accept(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        conn.settimeout(_SEND_TIMEOUT_S)
        state = {"kind": "worker", "sock": conn, "buf": _FrameBuffer(),
                 "worker": None}
        self._selector.register(conn, selectors.EVENT_READ, state)

    def _drop_conn(self, state) -> None:
        try:
            self._selector.unregister(state["sock"])
        except (KeyError, ValueError):
            pass
        try:
            state["sock"].close()
        except OSError:
            pass

    def _kill_proc(self, worker_id) -> None:
        proc = self._procs.pop(worker_id, None)
        if proc is None:
            return
        try:
            proc.terminate()
            proc.join(timeout=1.0)
        except Exception:
            pass

    def _lose_worker(self, state, reason: str, events: list,
                     silent: bool = False) -> None:
        self._drop_conn(state)
        worker_id = state.get("worker")
        if worker_id is None:
            return
        self._states.pop(worker_id, None)
        self._last_hb.pop(worker_id, None)
        self._hb_meta.pop(worker_id, None)
        self._kill_proc(worker_id)
        chunk_id = self._busy.pop(worker_id, None)
        chunk_ids = ()
        if chunk_id is not None:
            self._assigned.pop(chunk_id, None)
            chunk_ids = (chunk_id,)
        if not silent:
            events.append(WorkerLost(worker=str(worker_id),
                                     chunk_ids=chunk_ids, reason=reason))
        self._schedule_respawn(worker_id)

    def _read_worker(self, state, events: list) -> None:
        try:
            data = state["sock"].recv(65536)
        except (OSError, socket.timeout):
            data = b""
        if not data:
            self._lose_worker(state, "crash", events)
            return
        for frame in state["buf"].feed(data):
            kind = frame.get("type")
            if kind == "hello":
                worker_id = frame["worker"]
                state["worker"] = worker_id
                self._states[worker_id] = state
                self._last_hb[worker_id] = time.monotonic()
            elif kind == "hb":
                worker_id = frame["worker"]
                self._last_hb[worker_id] = time.monotonic()
                meta = frame.get("telemetry")
                if meta:
                    self._hb_meta[worker_id] = meta
            elif kind == "started":
                events.append(ChunkStarted(frame["chunk_id"],
                                           worker=str(frame["worker"])))
            elif kind == "task_result":
                events.append(TaskDone(frame["chunk_id"], frame["outcome"],
                                       worker=str(frame["worker"])))
            elif kind == "chunk_done":
                chunk_id = frame["chunk_id"]
                self._busy.pop(frame["worker"], None)
                self._assigned.pop(chunk_id, None)
                events.append(ChunkDone(chunk_id))

    def _dispatch(self, events: list) -> None:
        while self._queue:
            idle = sorted(
                worker_id for worker_id in self._states
                if worker_id not in self._busy
            )
            if not idle:
                return
            worker_id = idle[0]
            chunk_id, entries = self._queue.popleft()
            state = self._states[worker_id]
            try:
                _send_frame(state["sock"], {
                    "type": "run", "chunk_id": chunk_id, "entries": entries,
                })
            except (OSError, socket.timeout):
                self._queue.appendleft((chunk_id, entries))
                self._lose_worker(state, "crash", events)
                continue
            self._busy[worker_id] = chunk_id
            self._assigned[chunk_id] = worker_id

    def _check_capacity(self) -> None:
        if not (self._queue or self._assigned):
            return
        if self._states:
            return
        if self._pending_spawns:
            return  # a replacement is booked but not yet started
        if any(proc.is_alive() for proc in self._procs.values()):
            return  # spawned but not yet connected
        raise ExecutorBrokenError(
            "socket backend lost every worker", backend=self.name
        )

    # -- Executor protocol ---------------------------------------------
    def submit_chunk(self, chunk_id: int, entries: Sequence) -> None:
        self._queue.append((chunk_id, list(entries)))

    def poll(self, timeout_s: float | None = None) -> list:
        events: list = list(self._pending_events)
        self._pending_events.clear()
        self._spawn_due_replacements(events)
        budget = self._hb_interval
        if timeout_s is not None:
            budget = max(0.0, min(timeout_s, self._hb_interval))
        for key, _mask in self._selector.select(budget):
            if key.data["kind"] == "listener":
                self._accept()
            else:
                self._read_worker(key.data, events)
        now = time.monotonic()
        for worker_id, last in list(self._last_hb.items()):
            if now - last > self._hb_timeout:
                state = self._states.get(worker_id)
                if state is not None:
                    self._lose_worker(state, "heartbeat", events)
        self._dispatch(events)
        if not events:
            # Only declare the backend dead on a quiet poll: pending
            # events (WorkerLost in particular) must reach the scheduler
            # first so it can requeue and attribute the losses.
            self._check_capacity()
        return events

    def cancel(self, chunk_id: int) -> bool:
        for queued in list(self._queue):
            if queued[0] == chunk_id:
                self._queue.remove(queued)
                return True
        worker_id = self._assigned.pop(chunk_id, None)
        if worker_id is None:
            return False
        # The assigned worker is hung or silent on this chunk: kill it
        # (scheduler-initiated, so no WorkerLost event) and let the
        # requeue land on a survivor.
        state = self._states.get(worker_id)
        if state is not None:
            self._lose_worker(state, "cancelled", [], silent=True)
        else:
            self._kill_proc(worker_id)
            self._busy.pop(worker_id, None)
            self._schedule_respawn(worker_id)
        return True

    def cancel_pending(self, chunk_id: int) -> bool:
        for queued in list(self._queue):
            if queued[0] == chunk_id:
                self._queue.remove(queued)
                return True
        return False

    def heartbeat(self) -> dict:
        now = time.monotonic()
        health = {}
        for worker_id, last in self._last_hb.items():
            meta = self._hb_meta.get(worker_id) or {}
            inflight = meta.get("chunk")
            if inflight is None:  # worker silent on placement: ask the
                inflight = self._busy.get(worker_id)  # controller's book
            entry = {"worker": str(worker_id), "age_s": now - last,
                     "inflight_chunk": inflight}
            if "done" in meta:
                entry["tasks_done"] = meta["done"]
            health[str(worker_id)] = entry
        return health

    def shutdown(self, kill: bool = False) -> None:
        for state in list(self._states.values()):
            if not kill:
                try:
                    _send_frame(state["sock"], {"type": "shutdown"})
                except (OSError, socket.timeout):
                    pass
            self._drop_conn(state)
        self._states.clear()
        self._last_hb.clear()
        self._hb_meta.clear()
        self._busy.clear()
        self._assigned.clear()
        self._queue.clear()
        self._pending_spawns.clear()
        self._pending_events.clear()
        for worker_id in list(self._procs):
            self._kill_proc(worker_id)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()


# ---------------------------------------------------------------------
# Backend selection.

_EXECUTORS = {
    "inline": InlineExecutor,
    "local": LocalPoolExecutor,
    "socket": SocketExecutor,
}

_DEFAULT_EXECUTOR: str | None = None


def set_default_executor(name: str | None) -> None:
    """Set the process-wide backend (the CLI's ``--executor``).

    Outranks ``REPRO_EXECUTOR``; ``None`` restores environment/auto
    selection.
    """
    global _DEFAULT_EXECUTOR
    if name is not None and name not in _EXECUTORS:
        raise ConfigError(
            f"unknown executor {name!r} (expected one of "
            f"{sorted(_EXECUTORS)})"
        )
    _DEFAULT_EXECUTOR = name


def resolve_executor(executor: str | None = None,
                     jobs: int | None = None) -> str:
    """The backend name: argument, then :func:`set_default_executor`,
    then ``REPRO_EXECUTOR``, then ``inline`` for one worker and
    ``local`` otherwise."""
    name = executor or _DEFAULT_EXECUTOR
    if name is None:
        raw = os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower()
        name = raw or None
    if name is None:
        return "inline" if (jobs or 1) <= 1 else "local"
    if name not in _EXECUTORS:
        raise ConfigError(
            f"unknown executor {name!r} (expected one of "
            f"{sorted(_EXECUTORS)})"
        )
    return name


def make_executor(name: str, *, fn, policy, chaos, prepare=None,
                  jobs=1) -> Executor:
    """Instantiate the named backend with the sweep-constant context."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ConfigError(
            f"unknown executor {name!r} (expected one of "
            f"{sorted(_EXECUTORS)})"
        ) from None
    return cls(fn=fn, policy=policy, chaos=chaos, prepare=prepare, jobs=jobs)
