"""Experiment drivers: one per table and figure of the paper.

See DESIGN.md for the experiment index mapping each driver to the paper's
tables/figures and to the benchmark that regenerates it.
"""

from repro.experiments.ablations import (
    dfs_sensitivity,
    hard_error_failover,
    rvp_ablation,
    slack_sweep,
    tmr_comparison,
    transfer_latency_ablation,
)
from repro.experiments.calibration import (
    CalibrationRow,
    calibration_audit,
    suite_summary,
)
from repro.experiments.coverage import CoverageResult, fault_coverage_campaign
from repro.experiments.shared_cache import SharedCacheResult, shared_cache_pressure
from repro.experiments.error_performance import (
    ErrorPerformanceResult,
    RecoveryCostModel,
    checker_operating_point_comparison,
    error_performance,
)
from repro.experiments.frequency import Fig7Result, fig7_frequency_histogram
from repro.experiments.hetero import (
    HeteroCheckerResult,
    checker_power_at_node,
    section4_heterogeneous,
)
from repro.experiments.interconnect import (
    Table4Row,
    ViaSummary,
    section34_wire_analysis,
    table4_bandwidth,
    via_summary,
)
from repro.experiments.perf import (
    Fig6Row,
    average_ipc,
    fig6_performance,
    l2_statistics,
    nuca_policy_comparison,
)
from repro.experiments.pipeline_depth import (
    Table5Row,
    slack_comparison,
    table5_pipeline_power,
)
from repro.experiments.chaos import ChaosPolicy
from repro.experiments.engine import (
    SweepTiming,
    TaskPolicy,
    format_timing_summary,
    parallel_map,
    resolve_executor,
    resolve_jobs,
    run_sweep,
    set_default_executor,
    timing_summary,
)
from repro.experiments.executors import (
    Executor,
    InlineExecutor,
    LocalPoolExecutor,
    SocketExecutor,
    make_executor,
)
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimTask,
    SimulationWindow,
    build_memory,
    run_sim_task,
    simulate_leading,
    simulate_rmt,
)
from repro.experiments.technology import (
    Table8Row,
    fig8_ser_scaling,
    fig9_mbu_curve,
    table6_variability,
    table7_devices,
    table8_power_ratios,
)
from repro.experiments.thermal import (
    Fig4Row,
    Fig5Row,
    fig4_thermal_sweep,
    fig5_per_benchmark,
    standard_floorplan,
    thermal_variants,
)
from repro.experiments.thermal_constraint import (
    ThermalConstraintResult,
    constant_thermal_performance,
    thermally_equivalent_frequency,
)

from repro.experiments.report import generate_report

__all__ = [
    "dfs_sensitivity",
    "hard_error_failover",
    "rvp_ablation",
    "slack_sweep",
    "tmr_comparison",
    "transfer_latency_ablation",
    "ErrorPerformanceResult",
    "RecoveryCostModel",
    "checker_operating_point_comparison",
    "error_performance",
    "generate_report",
    "CalibrationRow",
    "calibration_audit",
    "suite_summary",
    "SharedCacheResult",
    "shared_cache_pressure",
    "CoverageResult",
    "fault_coverage_campaign",
    "Fig7Result",
    "fig7_frequency_histogram",
    "HeteroCheckerResult",
    "checker_power_at_node",
    "section4_heterogeneous",
    "Table4Row",
    "ViaSummary",
    "section34_wire_analysis",
    "table4_bandwidth",
    "via_summary",
    "Fig6Row",
    "average_ipc",
    "fig6_performance",
    "l2_statistics",
    "nuca_policy_comparison",
    "Table5Row",
    "slack_comparison",
    "table5_pipeline_power",
    "ChaosPolicy",
    "Executor",
    "InlineExecutor",
    "LocalPoolExecutor",
    "SocketExecutor",
    "make_executor",
    "resolve_executor",
    "set_default_executor",
    "DEFAULT_WINDOW",
    "SimTask",
    "SimulationWindow",
    "SweepTiming",
    "TaskPolicy",
    "build_memory",
    "format_timing_summary",
    "parallel_map",
    "resolve_jobs",
    "run_sim_task",
    "run_sweep",
    "simulate_leading",
    "simulate_rmt",
    "timing_summary",
    "Table8Row",
    "fig8_ser_scaling",
    "fig9_mbu_curve",
    "table6_variability",
    "table7_devices",
    "table8_power_ratios",
    "Fig4Row",
    "Fig5Row",
    "fig4_thermal_sweep",
    "fig5_per_benchmark",
    "standard_floorplan",
    "thermal_variants",
    "ThermalConstraintResult",
    "constant_thermal_performance",
    "thermally_equivalent_frequency",
]
