"""Ablations of the paper's design choices.

DESIGN.md calls out the load-bearing mechanisms of the checker design;
each ablation here removes or perturbs one and measures what it buys:

* **register value prediction** — without it the in-order checker stalls
  on dependences and must run much faster to keep up (Section 2.1's
  motivation for RVP);
* **slack / queue sizing** — smaller RVQs stall the leader;
* **DFS interval and thresholds** — control-loop sensitivity;
* **inter-core transfer latency** — the 3D via advantage vs routed 2D
  wires on the co-simulation;
* **hard-error failover** — the checker serving as the leading core after
  a hard fault (Section 2's footnote 1), at in-order performance;
* **TMR vs RMT** — the third-core alternative Section 4 mentions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    DfsConfig,
    LeadingCoreConfig,
    QueueConfig,
)
from repro.core.faults import FaultInjector, FaultRates
from repro.core.functional import FunctionalRmt
from repro.core.tmr import TmrSystem
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimulationWindow,
    simulate_leading,
    simulate_rmt,
)
from repro.isa.trace import generate_trace
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = [
    "rvp_ablation",
    "slack_sweep",
    "dfs_sensitivity",
    "transfer_latency_ablation",
    "hard_error_failover",
    "interrupt_cost",
    "tmr_comparison",
]


def rvp_ablation(
    benchmark: str = "mcf",
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
) -> dict[str, float]:
    """Checker frequency needed with and without register value prediction.

    Without RVP the trailer stalls on dependences, so DFS must hold it at
    a higher frequency to sustain the same slack (costing dynamic power).
    """
    out = {}
    for use_rvp in (True, False):
        checker = CheckerCoreConfig(uses_register_value_prediction=use_rvp)
        result = simulate_rmt(
            benchmark, ChipModel.THREE_D_2A, window=window, seed=seed,
            checker=checker,
        )
        key = "with_rvp" if use_rvp else "without_rvp"
        out[f"{key}_mean_frequency"] = result.mean_frequency_fraction
        out[f"{key}_leading_ipc"] = result.leading.ipc
    return out


def slack_sweep(
    benchmark: str = "gzip",
    slacks: tuple[int, ...] = (25, 50, 100, 200, 400),
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
) -> list[dict[str, float]]:
    """Leading-core impact of the RVQ/slack size (Section 2.1 uses 200)."""
    rows = []
    for slack in slacks:
        queues = QueueConfig(
            slack_target=slack,
            rvq_entries=slack,
            lvq_entries=max(8, int(slack * 0.4)),
            boq_entries=max(8, slack // 5),
            stb_entries=max(8, slack // 5),
        )
        result = simulate_rmt(
            benchmark, ChipModel.THREE_D_2A, window=window, seed=seed,
            checker=CheckerCoreConfig(queues=queues),
        )
        rows.append(
            {
                "slack": slack,
                "leading_ipc": result.leading.ipc,
                "backpressure": result.backpressure_commits,
                "mean_frequency": result.mean_frequency_fraction,
            }
        )
    return rows


def dfs_sensitivity(
    benchmark: str = "gzip",
    intervals: tuple[int, ...] = (250, 1000, 4000),
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
) -> list[dict[str, float]]:
    """DFS interval sensitivity: reaction speed vs stability."""
    rows = []
    for interval in intervals:
        checker = CheckerCoreConfig(dfs=DfsConfig(interval_cycles=interval))
        result = simulate_rmt(
            benchmark, ChipModel.THREE_D_2A, window=window, seed=seed,
            checker=checker,
        )
        rows.append(
            {
                "interval_cycles": interval,
                "mean_frequency": result.mean_frequency_fraction,
                "leading_ipc": result.leading.ipc,
                "backpressure": result.backpressure_commits,
            }
        )
    return rows


def transfer_latency_ablation(
    benchmark: str = "gzip",
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
) -> dict[str, float]:
    """3D vias (1 cycle) vs routed 2D wires (4 cycles) vs a slow 10-cycle
    interconnect: the co-simulation effect is small (slack absorbs it),
    which is why the 3D win is power/wiring, not cycles."""
    out = {}
    for chip, label in (
        (ChipModel.THREE_D_2A, "via_1_cycle"),
        (ChipModel.TWO_D_2A, "wire_4_cycles"),
    ):
        result = simulate_rmt(benchmark, chip, window=window, seed=seed)
        out[f"{label}_leading_ipc"] = result.leading.ipc
        out[f"{label}_mean_frequency"] = result.mean_frequency_fraction
    return out


def hard_error_failover(
    benchmark: str = "gzip",
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
) -> dict[str, float]:
    """Performance when the checker must serve as the leading core.

    Section 2: "a hard error in the leading core can also be tolerated,
    although at a performance penalty" — the full-fledged in-order checker
    takes over.  Approximated by a width-4 core with a minimal window and
    in-order-like issue (tiny ROB), running the same workload.
    """
    ooo = simulate_leading(benchmark, ChipModel.TWO_D_A, window=window, seed=seed)
    in_order_cfg = LeadingCoreConfig(rob_size=8, lsq_size=8)
    in_order = simulate_leading(
        benchmark, ChipModel.TWO_D_A, window=window, seed=seed,
        leading=in_order_cfg,
    )
    return {
        "out_of_order_ipc": ooo.ipc,
        "failover_in_order_ipc": in_order.ipc,
        "slowdown": 1.0 - in_order.ipc / ooo.ipc,
    }


def interrupt_cost(
    benchmark: str = "gzip",
    window: SimulationWindow = DEFAULT_WINDOW,
    seed: int = 42,
    interrupt_rate_per_million: float = 100.0,
) -> dict[str, float]:
    """Cost of servicing external interrupts (Section 2).

    "When external interrupts or exceptions are raised, the leading thread
    must wait for the trailing thread to catch up before servicing the
    interrupt" — each interrupt therefore stalls the leader for the time
    the checker needs to drain the current slack at its operating
    frequency.  Returns the per-interrupt drain time and the throughput
    overhead at a given interrupt rate.
    """
    result = simulate_rmt(benchmark, ChipModel.THREE_D_2A, window=window, seed=seed)
    slack = result.mean_rvq_occupancy_fraction * QueueConfig().rvq_entries
    # The checker consumes roughly issue-limited instructions per trailing
    # cycle; convert to leading cycles through its mean frequency.
    checker_rate = result.checker_instructions / max(
        1.0, result.leading.cycles / max(1e-9, result.mean_frequency_fraction)
    )
    drain_cycles = slack / max(0.1, checker_rate * result.mean_frequency_fraction)
    per_instruction = interrupt_rate_per_million / 1e6
    base_cpi = 1.0 / result.leading.ipc
    overhead = per_instruction * drain_cycles / base_cpi
    return {
        "mean_slack_instructions": slack,
        "drain_cycles_per_interrupt": drain_cycles,
        "throughput_overhead": overhead,
    }


def tmr_comparison(
    benchmark: str = "vpr",
    instructions: int = 20_000,
    soft_error_rate: float = 1e-3,
    seed: int = 9,
) -> dict[str, float]:
    """RMT-with-recovery vs TMR-with-voting under the same fault pressure.

    TMR masks every single-replica error with zero recovery events, at
    the cost of a third execution; RMT detects and rolls back.  Both must
    end architecturally safe.
    """
    profile = get_profile(benchmark)
    trace = generate_trace(profile, instructions, seed=seed)
    golden = FunctionalRmt().run(trace).store_stream

    rmt = FunctionalRmt(
        injector=FaultInjector(
            leading=FaultRates(soft_error=soft_error_rate),
            trailing=FaultRates(soft_error=soft_error_rate / 2),
            seed=seed,
        )
    ).run(trace)
    tmr = TmrSystem(
        injector=FaultInjector(
            leading=FaultRates(soft_error=soft_error_rate),
            trailing=FaultRates(soft_error=soft_error_rate / 2),
            seed=seed,
        )
    ).run(trace)
    return {
        "rmt_recoveries": rmt.recoveries,
        "rmt_safe": float(rmt.store_stream == golden),
        "tmr_masked_errors": tmr.masked_errors,
        "tmr_split_votes": tmr.votes_split,
        "tmr_safe": float(tmr.store_stream == golden),
        "tmr_execution_overhead": 2.0,   # two extra executions
        "rmt_execution_overhead": 1.0,   # one (throttled) extra execution
    }
