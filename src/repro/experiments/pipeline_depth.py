"""Table 5: the power cost of deep pipelining the checker (Section 3.5).

The paper rejects deep pipelining as a way to buy per-stage timing slack
because the latch/clock power explodes; this driver reports the published
Table 5 next to our analytical Srinivasan-style model, plus the natural
alternative: the slack the DFS-throttled checker already enjoys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.pipeline import PUBLISHED_TABLE5, PipelinePowerModel
from repro.reliability.timing import TimingErrorModel

__all__ = ["Table5Row", "table5_pipeline_power", "slack_comparison"]


@dataclass
class Table5Row:
    """Model vs published relative power at one pipeline depth."""

    fo4_per_stage: int
    published_dynamic: float
    published_leakage: float
    model_dynamic: float
    model_leakage: float

    @property
    def published_total(self) -> float:
        return self.published_dynamic + self.published_leakage

    @property
    def model_total(self) -> float:
        return self.model_dynamic + self.model_leakage


def table5_pipeline_power() -> list[Table5Row]:
    """Relative power at 18/14/10/6 FO4 per stage."""
    model = PipelinePowerModel()
    rows = []
    for depth, published in sorted(PUBLISHED_TABLE5.items(), reverse=True):
        rows.append(
            Table5Row(
                fo4_per_stage=depth,
                published_dynamic=published.dynamic_relative,
                published_leakage=published.leakage_relative,
                model_dynamic=round(model.dynamic_relative(depth), 2),
                model_leakage=round(model.leakage_relative(depth), 2),
            )
        )
    return rows


def slack_comparison(frequency_fraction: float = 0.6) -> dict[str, float]:
    """Timing slack: deep pipelining vs DFS throttling (Section 3.5).

    A 6 FO4 pipeline at full frequency buys 2/3 slack per stage at ~4x
    power; the checker at 0.6x frequency gets comparable slack for *less*
    power than baseline.  Returns slack fractions and the power ratio.
    """
    model = PipelinePowerModel()
    timing = TimingErrorModel()
    return {
        "deep_pipeline_slack": 1.0 - 6.0 / 18.0,
        "deep_pipeline_power": model.total_relative(6)
        / model.total_relative(18),
        "dfs_slack": timing.slack_fraction(frequency_fraction),
        "dfs_power": frequency_fraction,  # dynamic power scales with f
        "dfs_error_rate": timing.error_rate_per_instruction(frequency_fraction),
        "full_speed_error_rate": timing.error_rate_per_instruction(1.0),
    }
