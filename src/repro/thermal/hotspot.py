"""Floorplan-level thermal analysis: rasterize blocks, solve, report.

This is the layer the experiment drivers use: give it a powered
:class:`~repro.floorplan.layouts.Floorplan` and it returns peak and
per-block temperatures, with the grid solver and stack construction hidden
behind one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.config import ThermalConfig
from repro.floorplan.layouts import Floorplan
from repro.thermal.grid import GridThermalModel
from repro.thermal.materials import stack_for_2d, stack_for_3d

__all__ = ["ThermalResult", "ChipThermalModel", "solve_floorplan"]

_ACTIVE_LAYER = {0: "active_1", 1: "active_2"}


@dataclass
class ThermalResult:
    """Temperatures of one solved floorplan."""

    peak_c: float
    block_peak_c: dict[str, float]
    block_mean_c: dict[str, float]
    layer_grids: dict[str, np.ndarray]

    def hottest_block(self) -> str:
        """Name of the hottest block."""
        return max(self.block_peak_c, key=self.block_peak_c.get)


class ChipThermalModel:
    """Reusable thermal model for one floorplan geometry.

    The conductance matrix is factorised at construction; :meth:`solve`
    can then be called repeatedly with different block powers (same
    geometry), which is how the checker-power sweep of Figure 4 runs.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        config: ThermalConfig | None = None,
        grid_factory=None,
    ):
        self.config = config or ThermalConfig()
        self.floorplan = floorplan
        cfg = self.config
        layers = (
            stack_for_3d(cfg) if floorplan.num_dies == 2 else stack_for_2d(cfg)
        )
        # ``grid_factory`` lets a cache (repro.common.memo) share one
        # LU-factorised grid between floorplans with identical stacks.
        if grid_factory is None:
            grid_factory = GridThermalModel
        self.grid = grid_factory(
            layers=layers,
            width_m=floorplan.die_width_mm * 1e-3,
            height_m=floorplan.die_height_mm * 1e-3,
            rows=cfg.grid_rows,
            cols=cfg.grid_cols,
            sink_r_k_mm2_per_w=cfg.heatsink_resistance_k_per_w_mm2,
            secondary_r_k_mm2_per_w=cfg.secondary_resistance_k_per_w_mm2,
            ambient_c=cfg.ambient_c,
        )
        self._cell_w = floorplan.die_width_mm / cfg.grid_cols
        self._cell_h = floorplan.die_height_mm / cfg.grid_rows
        # Precompute block -> cell overlap fractions for rasterization.
        self._block_cells: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}
        for block in floorplan.blocks:
            self._block_cells[block.name] = (
                block.die,
                *self._rasterize(block.rect),
            )

    def _rasterize(self, rect) -> tuple[np.ndarray, np.ndarray]:
        """(flat cell indices, overlap fraction of the block in each cell)."""
        cfg = self.config
        c0 = max(0, int(rect.x / self._cell_w))
        c1 = min(cfg.grid_cols, int(np.ceil(rect.x2 / self._cell_w)))
        r0 = max(0, int(rect.y / self._cell_h))
        r1 = min(cfg.grid_rows, int(np.ceil(rect.y2 / self._cell_h)))
        indices = []
        fractions = []
        for r in range(r0, r1):
            y_lo, y_hi = r * self._cell_h, (r + 1) * self._cell_h
            dy = min(y_hi, rect.y2) - max(y_lo, rect.y)
            if dy <= 0:
                continue
            for c in range(c0, c1):
                x_lo, x_hi = c * self._cell_w, (c + 1) * self._cell_w
                dx = min(x_hi, rect.x2) - max(x_lo, rect.x)
                if dx <= 0:
                    continue
                indices.append(r * cfg.grid_cols + c)
                fractions.append(dx * dy / rect.area)
        return np.array(indices, dtype=int), np.array(fractions)

    # ------------------------------------------------------------------
    def solve(self, block_powers: dict[str, float] | None = None) -> ThermalResult:
        """Solve for temperatures.

        ``block_powers`` overrides the floorplan's per-block powers (same
        names); blocks not mentioned keep their floorplan power.
        """
        cfg = self.config
        maps = {
            name: np.zeros((cfg.grid_rows, cfg.grid_cols))
            for name in set(_ACTIVE_LAYER[b.die] for b in self.floorplan.blocks)
        }
        # Distributed interconnect power overlays the die uniformly.
        n_cells = cfg.grid_rows * cfg.grid_cols
        for die, power in self.floorplan.distributed_power_w.items():
            layer = _ACTIVE_LAYER[die]
            maps.setdefault(layer, np.zeros((cfg.grid_rows, cfg.grid_cols)))
            maps[layer] += power / n_cells
        for block in self.floorplan.blocks:
            power = block.power_w
            if block_powers and block.name in block_powers:
                power = block_powers[block.name]
            if power <= 0:
                continue
            die, idx, frac = self._block_cells[block.name]
            layer = _ACTIVE_LAYER[die]
            flat = maps[layer].ravel()
            np.add.at(flat, idx, power * frac)
        temps = self.grid.solve(maps)

        block_peak: dict[str, float] = {}
        block_mean: dict[str, float] = {}
        for block in self.floorplan.blocks:
            die, idx, frac = self._block_cells[block.name]
            grid = temps[_ACTIVE_LAYER[die]].ravel()
            cells = grid[idx]
            block_peak[block.name] = float(cells.max()) if cells.size else cfg.ambient_c
            block_mean[block.name] = (
                float(np.average(cells, weights=frac)) if cells.size else cfg.ambient_c
            )
        peak = max(
            float(temps[_ACTIVE_LAYER[d]].max())
            for d in range(self.floorplan.num_dies)
            if _ACTIVE_LAYER[d] in temps
        )
        return ThermalResult(
            peak_c=peak,
            block_peak_c=block_peak,
            block_mean_c=block_mean,
            layer_grids=temps,
        )


def solve_floorplan(
    floorplan: Floorplan, config: ThermalConfig | None = None
) -> ThermalResult:
    """One-shot convenience: build the model for a floorplan and solve it."""
    return ChipThermalModel(floorplan, config).solve()
