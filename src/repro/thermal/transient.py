"""Transient thermal simulation: heat capacities + implicit time stepping.

The steady-state grid answers "where does the design settle"; DTM and
workload phase behaviour need the *trajectory*.  Each grid cell gets a
heat capacity from its material's volumetric specific heat, and the
solver steps ``C dT/dt = P - G(T - boundary)`` with backward Euler —
unconditionally stable, so milliseconds-long thermal transients take a
handful of sparse solves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csc_matrix, diags
from scipy.sparse.linalg import splu

from repro.common.errors import ThermalModelError
from repro.thermal.grid import GridThermalModel

__all__ = ["TransientThermalModel", "VOLUMETRIC_HEAT_CAPACITY"]

# Volumetric heat capacity, J/(m^3 K).
VOLUMETRIC_HEAT_CAPACITY = {
    "si": 1.75e6,
    "cu": 3.45e6,
}


def _capacity_for(layer) -> float:
    """Volumetric heat capacity for a layer, by material guess from name."""
    name = layer.name
    if "si" in name or "active" in name:
        return VOLUMETRIC_HEAT_CAPACITY["si"]
    # metal stacks, spreader, sink, d2d vias: copper-dominated
    return VOLUMETRIC_HEAT_CAPACITY["cu"]


class TransientThermalModel:
    """Backward-Euler transient stepping over a :class:`GridThermalModel`.

    The grid's conductance matrix ``G`` (with its boundary terms already
    on the diagonal) is reused; a diagonal capacitance matrix ``C`` comes
    from layer thickness × cell area × volumetric heat capacity.
    """

    def __init__(self, grid: GridThermalModel, timestep_s: float = 1e-4):
        if timestep_s <= 0:
            raise ThermalModelError("timestep must be positive")
        self.grid = grid
        self.timestep_s = timestep_s
        cell_area = (grid.width_m / grid.cols) * (grid.height_m / grid.rows)
        caps = []
        for layer in grid.layers:
            caps.extend(
                [_capacity_for(layer) * layer.thickness_m * cell_area]
                * (grid.rows * grid.cols)
            )
        self._capacity = np.array(caps)

        matrix = grid.matrix
        c_over_dt = diags(self._capacity / timestep_s)
        self._stepper = splu(csc_matrix(c_over_dt + matrix))
        self._c_over_dt = self._capacity / timestep_s
        self._n = matrix.shape[0]

    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        """All cells at ambient."""
        return np.full(self._n, self.grid.ambient_c)

    def _rhs_static(self, power_maps: dict[str, np.ndarray]) -> np.ndarray:
        rhs = np.zeros(self._n)
        per_layer = self.grid.rows * self.grid.cols
        for name, grid_map in power_maps.items():
            li = self.grid.layer_index(name)
            if not self.grid.layers[li].has_power:
                raise ThermalModelError(f"layer {name!r} cannot dissipate power")
            rhs[li * per_layer : (li + 1) * per_layer] += grid_map.ravel()
        rhs[self.grid.bottom_indices] += self.grid.bottom_conductance * self.grid.ambient_c
        rhs[self.grid.top_indices] += self.grid.top_conductance * self.grid.ambient_c
        return rhs

    def step(
        self, state: np.ndarray, power_maps: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Advance one timestep; returns the new temperature state."""
        rhs = self._rhs_static(power_maps) + self._c_over_dt * state
        return self._stepper.solve(rhs)

    def run(
        self,
        power_maps: dict[str, np.ndarray],
        duration_s: float,
        state: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[float]]:
        """Simulate ``duration_s`` of constant power.

        Returns the final state and the peak temperature after each step.
        """
        if state is None:
            state = self.initial_state()
        peaks: list[float] = []
        steps = max(1, int(round(duration_s / self.timestep_s)))
        for _ in range(steps):
            state = self.step(state, power_maps)
            peaks.append(float(state.max()))
        return state, peaks

    def peak_of(self, state: np.ndarray, layer_name: str) -> float:
        """Peak temperature within one layer of a state vector."""
        per_layer = self.grid.rows * self.grid.cols
        li = self.grid.layer_index(layer_name)
        return float(state[li * per_layer : (li + 1) * per_layer].max())
