"""Steady-state 3D resistive-grid thermal solver (HotSpot grid model).

Each layer is discretised into a rows×cols grid of cells.  Cells conduct
laterally to their four neighbours and vertically to the cells above/below;
the bottom face convects to ambient through the heat-sink resistance and
the top face through a (much weaker) secondary package path.  Solving
``G·T = P + G_amb·T_amb`` yields the steady-state temperature field.

The conductance matrix depends only on geometry, so it is LU-factorised
once and reused across power maps (the experiment drivers sweep dozens of
power assignments over the same stack).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix, csc_matrix
from scipy.sparse.linalg import splu

from repro.common.errors import ThermalModelError
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.thermal.materials import Layer

__all__ = ["GridThermalModel"]


class GridThermalModel:
    """Steady-state conduction solver over a layered grid."""

    def __init__(
        self,
        layers: list[Layer],
        width_m: float,
        height_m: float,
        rows: int,
        cols: int,
        sink_r_k_mm2_per_w: float,
        secondary_r_k_mm2_per_w: float,
        ambient_c: float,
    ):
        if not layers:
            raise ThermalModelError("stack needs at least one layer")
        if rows < 2 or cols < 2:
            raise ThermalModelError("grid must be at least 2x2")
        names = [layer.name for layer in layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            # layer_index / solve address layers by name; a duplicate would
            # silently route power to the first match only.
            raise ThermalModelError(
                f"duplicate layer names in stack: {sorted(duplicates)}"
            )
        self.layers = list(layers)
        self.rows = rows
        self.cols = cols
        self.width_m = width_m
        self.height_m = height_m
        self.ambient_c = ambient_c
        self._n_layer = rows * cols
        self._n = self._n_layer * len(layers)

        dx = width_m / cols
        dy = height_m / rows
        cell_area_m2 = dx * dy
        cell_area_mm2 = cell_area_m2 * 1e6
        self._sink_g = cell_area_mm2 / sink_r_k_mm2_per_w
        self._secondary_g = cell_area_mm2 / secondary_r_k_mm2_per_w

        rows_idx: list[np.ndarray] = []
        cols_idx: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        diag = np.zeros(self._n)

        def add_pairs(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            rows_idx.extend((a, b))
            cols_idx.extend((b, a))
            vals.extend((-g, -g))
            np.add.at(diag, a, g)
            np.add.at(diag, b, g)

        for li, layer in enumerate(self.layers):
            base = li * self._n_layer
            k = layer.conductivity_w_per_mk
            t = layer.thickness_m
            idx = base + np.arange(self._n_layer)
            grid = idx.reshape(rows, cols)
            # Lateral east-west: cross-section dy*t over distance dx.
            g_ew = k * dy * t / dx * layer.lateral_scale
            a = grid[:, :-1].ravel()
            b = grid[:, 1:].ravel()
            add_pairs(a, b, np.full(a.size, g_ew))
            # Lateral north-south.
            g_ns = k * dx * t / dy * layer.lateral_scale
            a = grid[:-1, :].ravel()
            b = grid[1:, :].ravel()
            add_pairs(a, b, np.full(a.size, g_ns))
            # Vertical to the next layer: series of half-thickness slabs.
            if li + 1 < len(self.layers):
                upper = self.layers[li + 1]
                r_vert = (
                    t / 2.0 * layer.resistivity_mk_per_w
                    + upper.thickness_m / 2.0 * upper.resistivity_mk_per_w
                ) / cell_area_m2
                g_vert = 1.0 / r_vert
                a = idx
                b = idx + self._n_layer
                add_pairs(a, b, np.full(a.size, g_vert))

        # Boundary conductances to ambient (added to the diagonal only; the
        # ambient node is folded into the right-hand side).
        bottom = np.arange(self._n_layer)
        top = (len(self.layers) - 1) * self._n_layer + np.arange(self._n_layer)
        # Half-thickness conduction from the cell centre to the face, in
        # series with the convective film.
        bottom_layer = self.layers[0]
        r_half_bot = (
            bottom_layer.thickness_m / 2.0 * bottom_layer.resistivity_mk_per_w
        ) / cell_area_m2
        g_bot = 1.0 / (r_half_bot + 1.0 / self._sink_g)
        top_layer = self.layers[-1]
        r_half_top = (
            top_layer.thickness_m / 2.0 * top_layer.resistivity_mk_per_w
        ) / cell_area_m2
        g_top = 1.0 / (r_half_top + 1.0 / self._secondary_g)
        diag[bottom] += g_bot
        diag[top] += g_top
        self._g_bot = g_bot
        self._g_top = g_top
        self._bottom_idx = bottom
        self._top_idx = top
        # Public aliases for composing solvers (transient stepping).
        self.bottom_conductance = g_bot
        self.top_conductance = g_top
        self.bottom_indices = bottom
        self.top_indices = top

        all_rows = np.concatenate(rows_idx + [np.arange(self._n)])
        all_cols = np.concatenate(cols_idx + [np.arange(self._n)])
        all_vals = np.concatenate(vals + [diag])
        # The assembled conductance matrix is kept (the transient solver
        # composes it with a capacitance matrix).
        self.matrix = csc_matrix(
            coo_matrix((all_vals, (all_rows, all_cols)), shape=(self._n, self._n))
        )
        with span("thermal.lu_factorize"):
            self._lu = splu(self.matrix)
        get_registry().counter("thermal.factorizations").inc()

    # ------------------------------------------------------------------
    def layer_index(self, name: str) -> int:
        """Index of a layer by name."""
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"no layer named {name!r}")

    def solve(self, power_maps: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Solve for temperatures given per-layer power maps (watts/cell).

        ``power_maps`` maps layer names to (rows, cols) arrays; layers not
        mentioned dissipate nothing.  Returns temperature grids (°C) for
        every layer.
        """
        rhs = np.zeros(self._n)
        for name, grid in power_maps.items():
            li = self.layer_index(name)
            if not self.layers[li].has_power:
                raise ThermalModelError(f"layer {name!r} cannot dissipate power")
            if grid.shape != (self.rows, self.cols):
                raise ThermalModelError(
                    f"power map for {name!r} has shape {grid.shape}, "
                    f"expected {(self.rows, self.cols)}"
                )
            if np.any(grid < 0):
                raise ThermalModelError("negative cell power")
            rhs[li * self._n_layer : (li + 1) * self._n_layer] += grid.ravel()
        rhs[self._bottom_idx] += self._g_bot * self.ambient_c
        rhs[self._top_idx] += self._g_top * self.ambient_c
        get_registry().counter("thermal.solves").inc()
        with span("thermal.lu_solve"):
            temps = self._lu.solve(rhs)
        return {
            layer.name: temps[
                i * self._n_layer : (i + 1) * self._n_layer
            ].reshape(self.rows, self.cols)
            for i, layer in enumerate(self.layers)
        }
