"""Layer definitions and material constants for the thermal stacks.

Material resistivities and layer thicknesses come from Table 3 of the paper
(which follows [2, 26]).  A copper heat spreader is added below the bottom
die — HotSpot's package model does the same — so that hot spots spread
laterally before reaching the convective sink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ThermalConfig

__all__ = ["Layer", "stack_for_2d", "stack_for_3d", "SPREADER", "SINK_PLATE"]


@dataclass(frozen=True)
class Layer:
    """One horizontal slab of the die stack.

    ``lateral_scale`` multiplies the in-plane conductance only: the heat
    sink base extends far beyond the die (a 60 mm sink over a ~7 mm die in
    HotSpot's package), so heat entering the die-sized model of that layer
    spreads as if the layer were much wider.  1.0 for on-die layers.
    """

    name: str
    thickness_m: float
    resistivity_mk_per_w: float   # (m·K)/W — conductivity is its inverse
    has_power: bool = False       # True for active silicon layers
    lateral_scale: float = 1.0

    @property
    def conductivity_w_per_mk(self) -> float:
        """Thermal conductivity in W/(m·K)."""
        return 1.0 / self.resistivity_mk_per_w


# Copper heat spreader and heat-sink base plate (real copper, k ≈ 400
# W/mK).  HotSpot's package model uses a 1 mm spreader and a ~7 mm sink
# base; they spread hot spots laterally before the convective interface.
# The spreader is ~30 mm square and the sink base ~60 mm square over a
# ~7-10 mm die: heat entering them spreads into a much wider cross-section
# than the die-sized grid models, captured by the lateral scale factors.
SPREADER = Layer("spreader", 1e-3, 1.0 / 400.0, lateral_scale=17.0)
SINK_PLATE = Layer("sink_plate", 3e-3, 1.0 / 400.0, lateral_scale=68.0)


def _split(layer: Layer, parts: int) -> list[Layer]:
    """Subdivide a thick layer into equal sublayers.

    A single grid cell through a 750 um slab cannot represent the 3D
    spreading cone under a small hot spot; 4-5 sublayers resolve it.
    """
    return [
        Layer(
            f"{layer.name}_{chr(ord('a') + i)}",
            layer.thickness_m / parts,
            layer.resistivity_mk_per_w,
            lateral_scale=layer.lateral_scale,
        )
        for i in range(parts)
    ]


def stack_for_2d(config: ThermalConfig) -> list[Layer]:
    """Layer stack for a single-die chip, heat sink side first.

    sink plate → spreader → bulk Si → active Si (power) → metal.
    """
    return [
        *_split(SINK_PLATE, 3),
        SPREADER,
        *_split(Layer("bulk_si_1", config.bulk_si_thickness_die1_m,
                      config.si_resistivity_mk_per_w), 5),
        Layer("active_1", config.active_layer_thickness_m,
              config.si_resistivity_mk_per_w, has_power=True),
        Layer("metal_1", config.metal_layer_thickness_m,
              config.cu_resistivity_mk_per_w,
              lateral_scale=_METAL_LATERAL_SCALE),
    ]


# Metal stacks conduct much better in-plane (continuous copper wires) than
# through-plane (dielectric between layers, pierced by vias): Table 3's
# 0.0833 (mK)/W is the through-plane effective value; in-plane is ~20x.
_METAL_LATERAL_SCALE = 20.0


def stack_for_3d(config: ThermalConfig) -> list[Layer]:
    """Layer stack for a face-to-face bonded two-die chip (Figure 2b).

    Heat sink side first: spreader → bulk Si #1 → active Si #1 (power) →
    metal #1 → die-to-die vias → metal #2 → active Si #2 (power) →
    bulk Si #2.  The d2d resistivity already accounts for air cavities and
    interconnect density (Table 3).
    """
    return [
        *_split(SINK_PLATE, 3),
        SPREADER,
        *_split(Layer("bulk_si_1", config.bulk_si_thickness_die1_m,
                      config.si_resistivity_mk_per_w), 5),
        Layer("active_1", config.active_layer_thickness_m,
              config.si_resistivity_mk_per_w, has_power=True),
        Layer("metal_1", config.metal_layer_thickness_m,
              config.cu_resistivity_mk_per_w,
              lateral_scale=_METAL_LATERAL_SCALE),
        Layer("d2d_via", config.d2d_via_thickness_m,
              config.d2d_resistivity_mk_per_w),
        Layer("metal_2", config.metal_layer_thickness_m,
              config.cu_resistivity_mk_per_w,
              lateral_scale=_METAL_LATERAL_SCALE),
        Layer("active_2", config.active_layer_thickness_m,
              config.si_resistivity_mk_per_w, has_power=True),
        Layer("bulk_si_2", config.bulk_si_thickness_die2_m,
              config.si_resistivity_mk_per_w),
    ]
