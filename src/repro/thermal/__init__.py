"""HotSpot-like steady-state thermal modelling of the 2D and 3D chips."""

from repro.thermal.dtm import DtmController, DtmResult
from repro.thermal.grid import GridThermalModel
from repro.thermal.hotspot import ChipThermalModel, ThermalResult, solve_floorplan
from repro.thermal.leakage import (
    LeakageFeedbackResult,
    leakage_scale,
    solve_with_leakage_feedback,
)
from repro.thermal.materials import SINK_PLATE, SPREADER, Layer, stack_for_2d, stack_for_3d
from repro.thermal.transient import TransientThermalModel

__all__ = [
    "DtmController",
    "DtmResult",
    "GridThermalModel",
    "ChipThermalModel",
    "ThermalResult",
    "solve_floorplan",
    "LeakageFeedbackResult",
    "leakage_scale",
    "solve_with_leakage_feedback",
    "SINK_PLATE",
    "SPREADER",
    "Layer",
    "stack_for_2d",
    "stack_for_3d",
    "TransientThermalModel",
]
