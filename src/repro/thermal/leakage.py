"""Temperature-leakage feedback (Section 3.2's negligibility claim).

Sub-threshold leakage grows roughly exponentially with temperature
(doubling every ~25 °C).  The paper models this effect for the L2 banks
and reports that "the overall impact of temperature on leakage power of
caches [is] negligible"; this module closes the loop — solve
temperatures, rescale bank leakage, re-solve — so the claim can be
measured rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan.blocks import BlockKind, L2_BANK_STATIC_W
from repro.thermal.hotspot import ChipThermalModel, ThermalResult

__all__ = ["leakage_scale", "LeakageFeedbackResult", "solve_with_leakage_feedback"]

# Leakage doubles roughly every 25 degrees C around the operating point.
_DOUBLING_C = 25.0


def leakage_scale(temp_c: float, reference_c: float = 47.0) -> float:
    """Leakage multiplier at ``temp_c`` relative to the reference."""
    return 2.0 ** ((temp_c - reference_c) / _DOUBLING_C)


@dataclass
class LeakageFeedbackResult:
    """Converged thermal solution with temperature-dependent leakage."""

    thermal: ThermalResult
    iterations: int
    extra_leakage_w: float        # leakage added by self-heating
    peak_delta_c: float           # peak temperature shift vs no feedback


def solve_with_leakage_feedback(
    model: ChipThermalModel,
    max_iterations: int = 10,
    tolerance_c: float = 0.05,
) -> LeakageFeedbackResult:
    """Iterate temperature <-> L2 leakage to a fixed point.

    Bank static power is rescaled each iteration by the bank's mean
    temperature; other blocks keep their configured power (the paper only
    applied the feedback to the caches).
    """
    baseline = model.solve()
    banks = [
        b for b in model.floorplan.blocks if b.kind is BlockKind.L2_BANK
    ]
    current = baseline
    overrides: dict[str, float] = {}
    for iteration in range(1, max_iterations + 1):
        new_overrides = {}
        for bank in banks:
            temp = current.block_mean_c[bank.name]
            dynamic_part = max(0.0, bank.power_w - L2_BANK_STATIC_W)
            new_overrides[bank.name] = (
                dynamic_part + L2_BANK_STATIC_W * leakage_scale(temp)
            )
        solved = model.solve(new_overrides)
        if abs(solved.peak_c - current.peak_c) < tolerance_c and iteration > 1:
            overrides = new_overrides
            current = solved
            break
        overrides = new_overrides
        current = solved
    extra = sum(
        overrides.get(b.name, b.power_w) - b.power_w for b in banks
    )
    return LeakageFeedbackResult(
        thermal=current,
        iterations=iteration,
        extra_leakage_w=extra,
        peak_delta_c=current.peak_c - baseline.peak_c,
    )
