"""Dynamic thermal management (the paper's Discussion paragraph).

When the DFS heuristic keeps the checker fast enough to never stall the
leader, temperatures rise and can cross a thermal trigger; the package
then throttles voltage/frequency until the chip re-enters its envelope —
"thermal emergencies and lower performance".  This controller computes
the steady-state throttle for a given trigger temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan.layouts import Floorplan
from repro.thermal.hotspot import ChipThermalModel

__all__ = ["DtmResult", "DtmController"]


@dataclass
class DtmResult:
    """Steady-state DTM operating point."""

    trigger_c: float
    unthrottled_peak_c: float
    frequency_fraction: float      # 1.0 = no emergency
    throttled_peak_c: float

    @property
    def emergency(self) -> bool:
        """Whether the trigger was crossed at full speed."""
        return self.frequency_fraction < 1.0

    @property
    def performance_cost(self) -> float:
        """Upper-bound slowdown (actual loss is less; memory is unscaled)."""
        return 1.0 - self.frequency_fraction


class DtmController:
    """Finds the V/f throttle that holds a floorplan at its trigger."""

    def __init__(
        self,
        floorplan: Floorplan,
        trigger_c: float = 85.0,
        power_frequency_exponent: float = 2.6,
        thermal_config=None,
    ):
        self.floorplan = floorplan
        self.trigger_c = trigger_c
        self.exponent = power_frequency_exponent
        self.model = ChipThermalModel(floorplan, thermal_config)

    def _peak_at(self, ratio: float) -> float:
        scaled = self.floorplan.scaled_power(ratio**self.exponent)
        powers = {b.name: b.power_w for b in scaled.blocks}
        saved = self.model.floorplan.distributed_power_w
        self.model.floorplan.distributed_power_w = scaled.distributed_power_w
        try:
            return self.model.solve(powers).peak_c
        finally:
            self.model.floorplan.distributed_power_w = saved

    def steady_state(self, tolerance_c: float = 0.05) -> DtmResult:
        """Binary-search the frequency that meets the trigger."""
        full = self._peak_at(1.0)
        if full <= self.trigger_c:
            return DtmResult(self.trigger_c, full, 1.0, full)
        low, high = 0.3, 1.0
        peak = full
        for _ in range(30):
            mid = (low + high) / 2.0
            peak = self._peak_at(mid)
            if peak > self.trigger_c + tolerance_c:
                high = mid
            else:
                low = mid
            if high - low < 1e-3:
                break
        ratio = (low + high) / 2.0
        return DtmResult(self.trigger_c, full, ratio, self._peak_at(ratio))
