"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list
    python -m repro simulate gzip --chip 3d-2a
    python -m repro fig4 | fig7 | fig8 | fig9
    python -m repro table4 | table5 | table6 | table7 | table8
    python -m repro vias | wires | coverage | constraint | hetero
    python -m repro fig6 --progress live --metrics-port 9109
    python -m repro tail events.jsonl --follow  # watch another process

The heavyweight figures (fig5, fig6) accept ``--window N`` to trade
fidelity for time; the pytest-benchmark harness under ``benchmarks/``
remains the canonical way to regenerate everything with assertions.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import signal
import sys
import threading
import time

from repro.common.config import ChipModel
from repro.common.errors import ReproError, SweepDrainedError
from repro.common.tables import print_table
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import engine
from repro.experiments import (
    SimulationWindow,
    constant_thermal_performance,
    fault_coverage_campaign,
    fig4_thermal_sweep,
    fig6_performance,
    fig7_frequency_histogram,
    fig8_ser_scaling,
    fig9_mbu_curve,
    section34_wire_analysis,
    section4_heterogeneous,
    simulate_rmt,
    table4_bandwidth,
    table5_pipeline_power,
    table6_variability,
    table7_devices,
    table8_power_ratios,
    via_summary,
)
from repro.obs import events, log
from repro.obs import export as export_mod
from repro.obs import live as live_mod
from repro.obs import profile as profile_mod
from repro.workloads.profiles import get_profile, spec2k_suite

_CHIP_BY_NAME = {c.value: c for c in ChipModel}


def _say(*parts) -> None:
    """Emit one user-facing line through the ``repro.cli`` logger."""
    log.get_logger("cli").info(" ".join(str(p) for p in parts))


def _window(args) -> SimulationWindow:
    measured = args.window
    return SimulationWindow(warmup=max(1000, measured // 4), measured=measured)


def _cmd_list(_args) -> None:
    _say("experiments:")
    for name, what in [
        ("simulate", "RMT co-simulation of one benchmark on one chip model"),
        ("fig4", "peak temperature vs checker power"),
        ("fig6", "per-benchmark IPC across chip models (slow)"),
        ("fig7", "checker DFS frequency residency"),
        ("fig8", "SRAM soft-error-rate scaling"),
        ("fig9", "multi-bit upset probability vs critical charge"),
        ("table4", "die-to-die bandwidth requirements"),
        ("table5", "pipeline-depth power overheads"),
        ("table6", "ITRS variability projections"),
        ("table7", "ITRS device characteristics"),
        ("table8", "relative power across technology nodes"),
        ("vias", "d2d via count / power / area"),
        ("wires", "horizontal interconnect budgets"),
        ("coverage", "fault-injection detection/recovery audit"),
        ("constraint", "constant-thermal-constraint frequency and loss"),
        ("hetero", "the 90 nm checker die analysis (slow)"),
    ]:
        _say(f"  {name:10s} {what}")
    _say("\nbenchmarks:", " ".join(p.name for p in spec2k_suite()))


def _cmd_simulate(args) -> None:
    chip = _CHIP_BY_NAME[args.chip]
    profile = get_profile(args.benchmark)
    result = simulate_rmt(profile, chip, window=_window(args), seed=args.seed)
    lead = result.leading
    _say(f"{profile.name} on {chip.value}:")
    _say(f"  leading IPC           : {lead.ipc:.3f}")
    _say(f"  branch mispredicts    : {lead.branch_mispredict_rate:.1%}")
    _say(f"  L2 misses / 10k       : {lead.l2_misses_per_10k:.2f}")
    _say(f"  avg L2 hit latency    : {lead.average_l2_hit_latency:.1f} cycles")
    _say(f"  checker mean frequency: {result.mean_frequency_fraction:.2f}x peak")
    _say(f"  checker modal level   : {result.modal_frequency_fraction:.1f}x")
    _say(f"  backpressure commits  : {result.backpressure_commits}")


def _cmd_fig4(_args) -> None:
    rows = fig4_thermal_sweep()
    print_table(
        "Figure 4: peak temperature vs checker power",
        ["checker (W)", "2d-2a (C)", "3d-2a (C)", "2d-a (C)", "3d delta (C)"],
        [
            [r.checker_power_w, f"{r.temp_2d_2a_c:.1f}", f"{r.temp_3d_2a_c:.1f}",
             f"{r.temp_2d_a_c:.1f}", f"{r.delta_3d_vs_2da:+.1f}"]
            for r in rows
        ],
    )


def _cmd_fig6(args) -> None:
    benchmarks = None
    if args.benchmarks:
        benchmarks = [
            get_profile(name.strip())
            for name in args.benchmarks.split(",")
            if name.strip()
        ]
    rows = fig6_performance(window=_window(args), benchmarks=benchmarks)
    print_table(
        "Figure 6: IPC per benchmark",
        ["benchmark", "2d-a", "2d-2a", "3d-2a", "3d-checker"],
        [
            [r.benchmark] + [f"{r.ipc[c.value]:.2f}" for c in (
                ChipModel.TWO_D_A, ChipModel.TWO_D_2A,
                ChipModel.THREE_D_2A, ChipModel.THREE_D_CHECKER)]
            for r in rows
        ],
    )


def _cmd_fig7(args) -> None:
    result = fig7_frequency_histogram(window=_window(args))
    print_table(
        "Figure 7: checker frequency residency",
        ["normalized f", "% of intervals"],
        [[f"{lvl:.1f}", f"{frac:.1%}"] for lvl, frac in result.fractions.items()],
    )
    _say(f"mode {result.mode:.1f}, mean {result.mean:.2f} "
          f"({result.mean_frequency_hz() / 1e9:.2f} GHz)")


def _cmd_fig8(_args) -> None:
    print_table(
        "Figure 8: SER scaling",
        ["node (nm)", "per-bit", "whole chip"],
        [[r["feature_nm"], r["per_bit_relative"], r["chip_relative"]]
         for r in fig8_ser_scaling()],
    )


def _cmd_fig9(_args) -> None:
    print_table(
        "Figure 9: MBU probability",
        ["node (nm)", "Qcrit (fC)", "P(MBU)"],
        [[r["feature_nm"], r["critical_charge_fc"], r["mbu_probability"]]
         for r in fig9_mbu_curve()],
    )


def _cmd_table4(_args) -> None:
    rows = table4_bandwidth()
    print_table(
        "Table 4: D2D bandwidth",
        ["data", "width (bits)", "placement"],
        [[r.data, r.width_bits, r.placement] for r in rows],
    )
    _say(f"total: {sum(r.width_bits for r in rows)} vias")


def _cmd_table5(_args) -> None:
    print_table(
        "Table 5: pipeline power",
        ["FO4", "dyn (paper)", "dyn (model)", "leak (paper)", "leak (model)"],
        [
            [r.fo4_per_stage, r.published_dynamic, r.model_dynamic,
             r.published_leakage, r.model_leakage]
            for r in table5_pipeline_power()
        ],
    )


def _cmd_table6(_args) -> None:
    print_table(
        "Table 6: ITRS variability",
        ["node (nm)", "Vth", "perf", "power"],
        [
            [r["feature_nm"], f"{r['vth_variability']:.0%}",
             f"{r['circuit_performance_variability']:.0%}",
             f"{r['circuit_power_variability']:.0%}"]
            for r in table6_variability()
        ],
    )


def _cmd_table7(_args) -> None:
    print_table(
        "Table 7: ITRS devices",
        ["node (nm)", "V", "Lgate (nm)", "C/um (F)", "Ioff/um (uA)"],
        [
            [r["feature_nm"], r["voltage_v"], r["gate_length_nm"],
             f"{r['capacitance_f_per_um']:.2e}", r["leakage_ua_per_um"]]
            for r in table7_devices()
        ],
    )


def _cmd_table8(_args) -> None:
    print_table(
        "Table 8: relative power",
        ["nodes", "dyn (derived/paper)", "leak (derived/paper)"],
        [
            [f"{r.old_nm}/{r.new_nm}",
             f"{r.dynamic_derived}/{r.dynamic_published}",
             f"{r.leakage_derived}/{r.leakage_published}"]
            for r in table8_power_ratios()
        ],
    )


def _cmd_vias(_args) -> None:
    summary = via_summary()
    _say(f"vias: {summary.num_vias}")
    _say(f"per-via power: {summary.per_via_power_mw:.4f} mW")
    _say(f"total power  : {summary.total_power_mw:.2f} mW")
    _say(f"total area   : {summary.total_area_mm2:.3f} mm2")


def _cmd_wires(_args) -> None:
    budgets = section34_wire_analysis()
    print_table(
        "Section 3.4: wire budgets",
        ["model", "inter-core (mm)", "ic metal (mm2)", "L2 metal (mm2)", "power (W)"],
        [
            [name, f"{b.intercore_length_mm:.0f}",
             f"{b.intercore_metal_area_mm2:.2f}", f"{b.l2_metal_area_mm2:.2f}",
             f"{b.total_power_w:.1f}"]
            for name, b in budgets.items()
        ],
    )


def _cmd_coverage(args) -> None:
    result = fault_coverage_campaign(seed=args.seed)
    _say(f"instructions : {result.instructions}")
    _say(f"faults       : {result.faults_injected}")
    _say(f"detected     : {result.mismatches_detected}")
    _say(f"recovered    : {result.recoveries}")
    _say(f"ECC corrected: {result.ecc_corrections}")
    _say(f"ECC detected : {result.ecc_uncorrectable}")
    _say(f"arch. safe   : {result.architecturally_safe}")


def _cmd_constraint(args) -> None:
    for power in (7.0, 15.0):
        result = constant_thermal_performance(
            checker_power_w=power, window=_window(args)
        )
        _say(
            f"{power:4.0f} W checker: {result.frequency_ghz:.2f} GHz, "
            f"{result.performance_loss:.1%} performance loss"
        )


def _cmd_thermalmap(args) -> None:
    from repro.experiments.thermal import standard_floorplan
    from repro.thermal import ChipThermalModel
    from repro.viz import floorplan_map, heatmap

    chip = _CHIP_BY_NAME[args.chip]
    plan = standard_floorplan(chip, checker_power_w=7.0)
    solved = ChipThermalModel(plan).solve()
    for die in range(plan.num_dies):
        _say(f"--- die {die + 1} floorplan ---")
        _say(floorplan_map(plan, die=die, width=58, height=14))
        layer = "active_1" if die == 0 else "active_2"
        grid = solved.layer_grids[layer]
        _say(f"--- die {die + 1} temperature ({grid.max():.1f} C peak) ---")
        _say(heatmap(grid[::-1], width=58, height=14))
    _say(f"chip peak: {solved.peak_c:.1f} C at {solved.hottest_block()}")


def _cmd_presets(_args) -> None:
    from repro.presets import load_preset, preset_names

    for name in preset_names():
        point = load_preset(name)
        _say(f"{name:12s} {point.description}")


def _cmd_report(args) -> None:
    from repro.experiments.report import generate_report, render_partial_report

    if args.partial:
        root = checkpoint_mod.checkpoint_dir() or ".repro/checkpoints"
        data = render_partial_report(args.partial, args.out,
                                     checkpoint_root=root)
        _say(f"wrote PARTIAL report {args.out}/results_partial.md "
             f"({data['tasks_committed']} task(s) committed, "
             f"{len(data['quarantined'])} quarantined)")
        return
    generate_report(args.out, window=_window(args))
    _say(f"wrote {args.out}/results.json and {args.out}/results.md")


def _cmd_gc(args) -> None:
    report = checkpoint_mod.gc_checkpoints(
        args.dir,
        keep_last=args.keep_last,
        max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    for run_id in report.removed:
        _say(f"  {verb} {run_id}")
    for run_id in report.skipped:
        _say(f"  skipped {run_id} (unreadable)")
    summary = (
        f"{verb} {len(report.removed)} run(s) "
        f"({report.reclaimed_files} file(s), "
        f"{report.reclaimed_bytes / 1024:.1f} KiB), "
        f"kept {len(report.kept)}"
    )
    if report.skipped:
        summary += f", skipped {len(report.skipped)}"
    _say(summary)


def _cmd_tail(args) -> None:
    """Print another run's JSONL event stream, optionally following it.

    Reads only complete lines (the follower buffers a torn trailing
    line until its newline arrives) so tailing a live writer never
    shows mangled events.
    """
    path = live_mod.resolve_events_path(args.path)
    if args.follow:
        _say(f"tailing {path} (Ctrl-C to stop)")
    idle_since = time.monotonic()
    follower = live_mod.EventFollower(path)
    while True:
        records = follower.poll()
        for record in records:
            _say(live_mod.format_event(record))
        if not args.follow:
            break
        if records:
            idle_since = time.monotonic()
        elif (
            args.exit_idle_s is not None
            and time.monotonic() - idle_since >= args.exit_idle_s
        ):
            _say(f"idle for {args.exit_idle_s}s, exiting")
            break
        time.sleep(args.interval)
    if follower.skipped:
        _say(f"skipped {follower.skipped} partial/corrupt line(s)")


def _cmd_top(args) -> None:
    """Live dashboard reconstructed from a run's JSONL event stream."""
    path = live_mod.resolve_events_path(args.path)
    follower = live_mod.EventFollower(path)
    stats = None
    idle_since = time.monotonic()
    ansi = sys.stdout.isatty()
    frame_lines = 0
    from repro.viz.ascii import render_dashboard

    while True:
        records = follower.poll()
        for record in records:
            stats = live_mod.fold_event(stats, record)
        if stats is not None:
            text = render_dashboard(stats.as_row())
            if ansi and frame_lines:
                sys.stdout.write(f"\x1b[{frame_lines}F\x1b[J")
            sys.stdout.write(text + "\n")
            sys.stdout.flush()
            frame_lines = text.count("\n") + 1
        if args.once or (stats is not None and stats.finished):
            break
        if records:
            idle_since = time.monotonic()
        elif (
            args.exit_idle_s is not None
            and time.monotonic() - idle_since >= args.exit_idle_s
        ):
            break
        time.sleep(args.interval)
    if stats is None:
        _say(f"no sweep events in {path}")


def _cmd_hetero(args) -> None:
    result = section4_heterogeneous(window=_window(args))
    _say(f"checker power : {result.checker_power_65nm_w:.1f} W (65nm) -> "
          f"{result.checker_power_90nm_w:.1f} W (90nm)")
    _say(f"upper cache   : 9 banks -> {result.upper_cache_banks_90nm} banks")
    _say(f"die delta     : {result.checker_die_delta_w:+.1f} W")
    _say(f"peak temps    : {result.peak_temp_homogeneous_c:.1f} C -> "
          f"{result.peak_temp_hetero_c:.1f} C")
    _say(f"peak clock    : {2 * result.peak_frequency_ratio:.1f} GHz")
    _say(f"leader slowdown: {result.leading_slowdown:.1%}")


_COMMANDS = {
    "list": _cmd_list,
    "simulate": _cmd_simulate,
    "fig4": _cmd_fig4,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "table7": _cmd_table7,
    "table8": _cmd_table8,
    "vias": _cmd_vias,
    "wires": _cmd_wires,
    "coverage": _cmd_coverage,
    "constraint": _cmd_constraint,
    "hetero": _cmd_hetero,
    "gc": _cmd_gc,
    "tail": _cmd_tail,
    "top": _cmd_top,
    "report": _cmd_report,
    "thermalmap": _cmd_thermalmap,
    "presets": _cmd_presets,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce results from 'Leveraging 3D Technology for "
        "Improved Reliability' (MICRO 2007).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        p = sub.add_parser(name)
        if name == "simulate":
            p.add_argument("benchmark")
        if name in ("simulate", "thermalmap"):
            p.add_argument(
                "--chip", default="3d-2a", choices=sorted(_CHIP_BY_NAME)
            )
        if name == "report":
            p.add_argument("--out", default="results")
            p.add_argument("--partial", default=None, metavar="RUN_ID",
                           help="render a clearly-marked partial report "
                                "from an interrupted run's checkpoint "
                                "instead of re-running the experiments")
        if name == "fig6":
            p.add_argument(
                "--benchmarks", default=None,
                help="comma-separated benchmark subset (default: full suite)",
            )
        if name == "gc":
            p.add_argument("--dir", default=".repro/checkpoints",
                           metavar="DIR",
                           help="checkpoint root to collect")
            p.add_argument("--keep-last", type=int, default=None, metavar="N",
                           help="keep the N most recently active runs")
            p.add_argument("--max-age-days", type=float, default=None,
                           metavar="DAYS",
                           help="remove runs idle for more than DAYS")
            p.add_argument("--dry-run", action="store_true",
                           help="report what would be removed, delete "
                                "nothing")
        if name in ("tail", "top"):
            p.add_argument("path",
                           help="a JSONL event stream (another run's "
                                "--trace-out file) or a directory to "
                                "search for the newest one")
            p.add_argument("--interval", type=float, default=0.5,
                           metavar="SECONDS",
                           help="poll interval while following")
            p.add_argument("--exit-idle-s", type=float, default=None,
                           metavar="SECONDS",
                           help="stop after this long with no new events "
                                "(default: keep following)")
        if name == "tail":
            p.add_argument("--follow", action="store_true",
                           help="keep polling for new events instead of "
                                "printing the backlog once")
        if name == "top":
            p.add_argument("--once", action="store_true",
                           help="render the current state once and exit")
        p.add_argument("--window", type=int, default=20_000,
                       help="measured instructions per simulation")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for sweeps (default: "
                            "REPRO_JOBS or cpu count)")
        p.add_argument("--executor", default=None,
                       choices=("inline", "local", "socket"),
                       help="sweep executor backend (default: "
                            "REPRO_EXECUTOR, else inline for --jobs 1 "
                            "and local otherwise)")
        p.add_argument("--retries", type=int, default=None,
                       help="re-executions allowed per failed sweep task "
                            "(default: REPRO_RETRIES or 0)")
        p.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill any single sweep task attempt that "
                            "runs longer than this (default: "
                            "REPRO_TASK_TIMEOUT or unlimited)")
        p.add_argument("--respawns", type=int, default=None, metavar="N",
                       help="replacement workers the socket backend may "
                            "spawn after losses before degrading "
                            "(default: 2)")
        p.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="on SIGTERM, wait this long for in-flight "
                            "chunks to finish and checkpoint before "
                            "abandoning them (default: 30)")
        p.add_argument("--fail-fast", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="abort a sweep on the first exhausted task "
                            "(--no-fail-fast collects failures and "
                            "returns None for their slots; default: "
                            "fail fast)")
        p.add_argument("--checkpoint", nargs="?", const=".repro/checkpoints",
                       default=None, metavar="DIR",
                       help="persist completed sweep tasks under DIR "
                            "(default .repro/checkpoints) for --resume")
        p.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume an interrupted checkpointed run: "
                            "re-executes only tasks missing from its "
                            "checkpoint")
        p.add_argument("--chaos", default=None, metavar="SPEC",
                       help="inject faults into sweep execution, e.g. "
                            "'worker-kill:0.1,task-fail:0.05' "
                            "(or set REPRO_CHAOS)")
        p.add_argument("--metrics", nargs="?", const="run_manifest.json",
                       default=None, metavar="PATH",
                       help="write a run manifest (metrics + sweep "
                            "accounting) to PATH after the command")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="append JSONL events (run/sweep/manifest) to PATH")
        p.add_argument("--progress", default="off", choices=("off", "live"),
                       help="live ANSI dashboard of running sweeps "
                            "(tasks, rate, ETA, per-worker health)")
        p.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve Prometheus text-format metrics on "
                            "127.0.0.1:PORT while the command runs "
                            "(0 = ephemeral; default: REPRO_METRICS_PORT)")
        p.add_argument("--trace-export", default=None, metavar="PATH",
                       help="write the run's task timeline as Chrome "
                            "trace-event JSON (Perfetto-loadable)")
        p.add_argument("--profile", nargs="?", const="profile.collapsed",
                       default=None, metavar="PATH",
                       help="cProfile every sweep task and write "
                            "flamegraph-ready collapsed stacks to PATH "
                            "(default profile.collapsed; slow)")
        p.add_argument("-v", "--verbose", action="count", default=0,
                       help="more output (DEBUG-level logging)")
        p.add_argument("-q", "--quiet", action="count", default=0,
                       help="less output (warnings only)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    Library errors (:class:`ReproError`) become a one-line ``error:``
    message and exit code 2; Ctrl-C exits 130 after the event sink is
    flushed — any enabled sweep checkpoint is already on disk because
    tasks are persisted as they complete, so the run can be continued
    with ``--resume``.
    """
    args = build_parser().parse_args(argv)
    log.configure(verbosity=args.verbose - args.quiet)
    logger = log.get_logger("cli")
    prior_sigterm = None
    sigterm_installed = False
    if threading.current_thread() is threading.main_thread():
        # SIGTERM asks for a graceful drain: in-flight chunks finish and
        # checkpoint, pending chunks are withdrawn, and the run exits 143
        # with a --resume hint instead of dying mid-write.
        def _on_sigterm(_signum, _frame):
            engine.request_drain("SIGTERM")

        prior_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        sigterm_installed = True
    if args.trace_out:
        events.set_sink(args.trace_out)
    run_id = events.begin_run(args.command, run_id=args.resume)
    checkpoint_dir = args.checkpoint or (
        ".repro/checkpoints" if args.resume else None
    )
    renderer = None
    profile_env_prior = None
    try:
        if args.progress == "live":
            renderer = live_mod.LiveRenderer()
            live_mod.add_listener(renderer)
        metrics_port = live_mod.resolve_metrics_port(args.metrics_port)
        if metrics_port is not None:
            server = live_mod.start_metrics_server(metrics_port)
            _say(f"serving metrics at {server.url}")
        if args.trace_export:
            export_mod.set_collector(export_mod.TraceCollector())
        if args.profile:
            # Workers inherit the environment, so the env knob (not the
            # in-process accumulator) is what switches profiling on in
            # pool and socket worker processes.
            profile_env_prior = os.environ.get(profile_mod.PROFILE_ENV_VAR)
            os.environ[profile_mod.PROFILE_ENV_VAR] = "1"
            profile_mod.set_accumulator(profile_mod.ProfileAccumulator())
        engine.set_default_jobs(args.jobs)
        engine.set_default_executor(args.executor)
        overrides = {
            field: value
            for field, value in (
                ("max_retries", args.retries),
                ("timeout_s", args.task_timeout),
                ("fail_fast", args.fail_fast),
                ("max_respawns", args.respawns),
                ("drain_timeout_s", args.drain_timeout),
            )
            if value is not None
        }
        if overrides:
            # CLI flags outrank the REPRO_RETRIES / REPRO_TASK_TIMEOUT
            # env knobs but leave unflagged fields to them.
            base = engine.policy_from_env() or engine.TaskPolicy()
            engine.set_default_policy(dataclasses.replace(base, **overrides))
        if checkpoint_dir:
            checkpoint_mod.set_checkpoint_dir(checkpoint_dir)
            _say(f"checkpointing sweeps under {checkpoint_dir}/{run_id}")
        if args.chaos:
            chaos_mod.set_chaos(chaos_mod.ChaosPolicy.parse(args.chaos))
        _COMMANDS[args.command](args)
        if args.metrics:
            events.write_manifest(
                args.metrics,
                command=args.command,
                seed=args.seed,
                window=args.window,
                jobs=engine.resolve_jobs(args.jobs),
                run_id=run_id,
                metrics=engine.run_metrics(run_id).as_dict(),
                sweeps=engine.timing_summary(run_id),
                extra={
                    "executor": engine.resolve_executor(
                        args.executor, engine.resolve_jobs(args.jobs)
                    ),
                },
            )
            _say(f"wrote run manifest {args.metrics}")
        return 0
    except SweepDrainedError as exc:
        events.emit(
            "run_drained", run_id=run_id,
            completed_tasks=exc.completed, total_tasks=exc.total,
            stranded_tasks=exc.stranded,
        )
        logger.error(f"drained: {exc}")
        if checkpoint_dir:
            logger.error(
                f"resume with: repro {args.command} --resume {run_id}"
            )
            logger.error(
                f"partial report: repro report --partial {run_id} "
                f"--checkpoint {checkpoint_dir}"
            )
        return 143
    except ReproError as exc:
        events.emit("run_error", run_id=run_id, error=str(exc))
        logger.error(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        events.emit("run_interrupted", run_id=run_id)
        if checkpoint_dir:
            logger.error(
                f"interrupted; resume with: repro {args.command} "
                f"--resume {run_id}"
            )
        else:
            logger.error("interrupted")
        return 130
    finally:
        if sigterm_installed:
            signal.signal(signal.SIGTERM, prior_sigterm or signal.SIG_DFL)
        engine.clear_drain()
        engine.set_default_jobs(None)
        engine.set_default_executor(None)
        engine.set_default_policy(None)
        checkpoint_mod.set_checkpoint_dir(None)
        chaos_mod.set_chaos(None)
        if renderer is not None:
            live_mod.remove_listener(renderer)
        live_mod.stop_metrics_server()
        collector = export_mod.get_collector()
        export_mod.set_collector(None)
        accumulator = profile_mod.get_accumulator()
        profile_mod.set_accumulator(None)
        if args.profile:
            if profile_env_prior is None:
                os.environ.pop(profile_mod.PROFILE_ENV_VAR, None)
            else:
                os.environ[profile_mod.PROFILE_ENV_VAR] = profile_env_prior
        try:
            if args.trace_export and collector is not None \
                    and collector.records:
                out = export_mod.write_chrome_trace(
                    args.trace_export, collector.records, run_id=run_id
                )
                _say(f"wrote trace {out} ({len(collector.records)} tasks)")
            if args.profile and accumulator is not None \
                    and accumulator.stacks:
                out = accumulator.write_collapsed(args.profile)
                _say(f"wrote profile {out} ({accumulator.tasks} tasks)")
        except OSError as exc:  # never mask the command's own outcome
            logger.error(f"telemetry export failed: {exc}")
        if args.trace_out:
            events.set_sink(None)


if __name__ == "__main__":
    sys.exit(main())
