"""Distributed trace export: sweep timelines as Chrome trace-event JSON.

Every committed task outcome carries trace context — ``run_id``,
``chunk_id``, ``task_key``, the executing worker and its pid, a
wall-clock start stamp, and the task's span tree (the same nested
name → :class:`~repro.obs.tracing.SpanNode` dicts the report renders).
The engine records each into the process :class:`TraceCollector`
(installed by the CLI's ``--trace-export``), and
:func:`write_chrome_trace` lays the collected records out as Chrome
trace-event JSON — the ``{"traceEvents": [...]}`` format Perfetto and
``chrome://tracing`` load directly.

Layout: one trace *process* per worker (socket worker id / pool pid /
``inline``), one *thread* row per worker, ``"X"`` complete events with
microsecond ``ts``/``dur`` relative to the earliest task start.  Within
one worker row events are sorted by start and clamped so they never
overlap (a worker executes tasks sequentially; wall-clock stamps from
distinct OS processes can still jitter a few µs, so the clamp restores
the true ordering).  Each task event nests its span tree as child
events laid out sequentially inside the task interval, scaled down when
recorded span time exceeds the task's wall time (spans measure inclusive
perf-counter time; scheduling gaps can compress them).

Export is observation-only: records are built from data the outcome
already carries, and collection is skipped entirely when no collector
is installed.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "TaskTrace",
    "TraceCollector",
    "set_collector",
    "get_collector",
    "chrome_trace",
    "write_chrome_trace",
]


class TaskTrace:
    """Trace context + timing of one committed task execution."""

    __slots__ = ("label", "index", "task_key", "chunk_id", "worker",
                 "pid", "start_unix", "wall_s", "spans", "run_id")

    def __init__(self, label: str, index: int, task_key: str,
                 chunk_id: int, worker: str, pid: int,
                 start_unix: float, wall_s: float,
                 spans: dict | None = None, run_id: str = ""):
        self.label = label
        self.index = index
        self.task_key = task_key
        self.chunk_id = chunk_id
        self.worker = worker or "inline"
        self.pid = pid
        self.start_unix = start_unix
        self.wall_s = wall_s
        # ``spans`` accepts either a snapshot's root span-tree dict
        # (``SpanNode.to_dict()`` — name/count/wall_s/cpu_s/children)
        # or directly a ``{name: node_dict}`` children mapping.
        spans = spans or {}
        if "children" in spans and "name" in spans:
            spans = spans["children"]
        self.spans = spans
        self.run_id = run_id


class TraceCollector:
    """Accumulates :class:`TaskTrace` records across a CLI invocation."""

    def __init__(self):
        self.records: list[TaskTrace] = []

    def record(self, trace: TaskTrace) -> None:
        self.records.append(trace)


_COLLECTOR: TraceCollector | None = None


def set_collector(collector: TraceCollector | None) -> None:
    """Install (or clear) the process trace collector."""
    global _COLLECTOR
    _COLLECTOR = collector


def get_collector() -> TraceCollector | None:
    """The installed trace collector, if any."""
    return _COLLECTOR


def _span_events(spans: dict, start_us: float, dur_us: float,
                 pid: int, tid: int, depth: int = 0) -> list[dict]:
    """Lay one span-tree level out sequentially inside [start, start+dur].

    Spans at one level run back to back from the interval start; if
    their recorded total exceeds the interval (perf-counter inclusive
    time vs wall interval), they are scaled to fit so children never
    escape their parent in the rendered timeline.
    """
    if not spans or depth > 8 or dur_us <= 0.0:
        return []
    total_s = sum(node["wall_s"] for node in spans.values())
    scale = 1.0
    if total_s > 0 and total_s * 1e6 > dur_us:
        scale = dur_us / (total_s * 1e6)
    events = []
    cursor = start_us
    for name in sorted(spans):
        node = spans[name]
        span_us = node["wall_s"] * 1e6 * scale
        events.append({
            "name": name,
            "ph": "X",
            "ts": round(cursor, 3),
            "dur": round(span_us, 3),
            "pid": pid,
            "tid": tid,
            "args": {"count": node["count"],
                     "cpu_s": round(node["cpu_s"], 6)},
        })
        events.extend(_span_events(
            node.get("children") or {}, cursor, span_us, pid, tid,
            depth + 1))
        cursor += span_us
    return events


def chrome_trace(records: list[TaskTrace], run_id: str = "") -> dict:
    """Chrome trace-event JSON for the collected task records.

    One pid per distinct worker, one thread row per worker; task events
    are sorted and clamped per row so timestamps are monotonic and
    non-overlapping; span trees nest inside their task's interval.
    """
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"run_id": run_id}}
    t0 = min(r.start_unix for r in records)
    workers = sorted({r.worker for r in records})
    worker_pid = {w: i + 1 for i, w in enumerate(workers)}
    events: list[dict] = []
    for worker, pid in worker_pid.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"worker {worker}"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": "tasks"},
        })
        row = sorted(
            (r for r in records if r.worker == worker),
            key=lambda r: (r.start_unix, r.index),
        )
        prev_end = 0.0
        for rec in row:
            ts = (rec.start_unix - t0) * 1e6
            if ts < prev_end:  # clamp inter-process clock jitter
                ts = prev_end
            dur = max(rec.wall_s * 1e6, 0.001)
            events.append({
                "name": f"{rec.label}[{rec.index}]",
                "cat": "task",
                "ph": "X",
                "ts": round(ts, 3),
                "dur": round(dur, 3),
                "pid": pid,
                "tid": 1,
                "args": {
                    "run_id": rec.run_id or run_id,
                    "chunk_id": rec.chunk_id,
                    "task_key": rec.task_key,
                    "label": rec.label,
                    "os_pid": rec.pid,
                },
            })
            events.extend(_span_events(rec.spans, ts, dur, pid, 1))
            prev_end = ts + dur
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": run_id, "tasks": len(records),
                      "workers": len(workers)},
    }


def write_chrome_trace(path: str | Path, records: list[TaskTrace],
                       run_id: str = "") -> Path:
    """Write the Chrome trace-event JSON for ``records`` to ``path``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(records, run_id=run_id)),
                   encoding="utf-8")
    return out
