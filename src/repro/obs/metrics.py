"""Process-local metrics registry: counters, gauges, bucket histograms.

Designed for simulator inner loops: every instrument is a tiny
``__slots__`` object doing a plain attribute update — no locks (each
process owns its registry), no string formatting, no time lookups.
Components fetch instruments once (``m.counter("rmt.backpressure")``)
and update them directly, or publish totals once per simulation.

Three primitives:

* :class:`Counter` — monotone event count (merge: **sum**);
* :class:`Gauge` — last-set level (merge: **max**, the only
  order-independent choice, which is what keeps parallel == serial);
* :class:`BucketHistogram` — counts over fixed upper-edge buckets plus
  an overflow bucket (merge: **bucket-wise sum**; edges must match).

:meth:`MetricsRegistry.snapshot` freezes everything into a
:class:`MetricsSnapshot` — a plain picklable dataclass that crosses the
process boundary and merges deterministically (same multiset of task
snapshots ⇒ same merged snapshot, whatever the completion order).  The
experiment engine brackets every task with :meth:`begin_task` /
:meth:`end_task`, which also gives the task its own span tree
(:mod:`repro.obs.tracing`) and returns only the task's *delta*, so
pre-existing process state never leaks into a sweep's metrics.  The
engine discards the deltas of *failed* task attempts and keeps its own
failure/retry accounting in ``SweepTiming`` fields rather than in
counters here — merged snapshots must stay bit-identical between a
faulted-and-recovered sweep and an undisturbed one.

Setting ``REPRO_OBS=off`` (or ``0``/``false``/``no``) in the environment
makes every instrument a shared no-op object; worker processes inherit
the setting.  ``benchmarks/bench_obs_overhead.py`` holds the resulting
overhead budget honest.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.obs import tracing

__all__ = [
    "OBS_ENV_VAR",
    "Counter",
    "Gauge",
    "BucketHistogram",
    "MetricsSnapshot",
    "MetricsRegistry",
    "get_registry",
    "enabled",
    "set_enabled",
    "reset",
    "merge_snapshots",
    "FRACTION_EDGES",
]

OBS_ENV_VAR = "REPRO_OBS"

# Shared decile edges for metrics that are fractions in [0, 1] (queue
# occupancy, DFS frequency levels).  Fixed edges mean every simulation
# feeds the same histogram, whatever its configuration.
FRACTION_EDGES = tuple((i + 1) / 10 for i in range(10))


class Counter:
    """Monotone event counter (merge across snapshots: sum)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` events."""
        self.value += amount


class Gauge:
    """Last-set level (merge across snapshots: max)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class BucketHistogram:
    """Counts over fixed, ascending upper-edge buckets plus overflow.

    ``observe(x)`` lands in the first bucket whose edge is >= ``x``;
    anything above the last edge lands in the overflow bucket.
    """

    __slots__ = ("edges", "counts")

    def __init__(self, edges: tuple[float, ...]):
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be ascending and non-empty")
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        self.counts[bisect_left(self.edges, value)] += count

    @property
    def total(self) -> int:
        """Total recorded occurrences."""
        return sum(self.counts)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for ``REPRO_OBS=off``."""

    __slots__ = ()
    value = 0
    edges: tuple[float, ...] = ()
    counts: list[int] = []
    total = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass


_NULL = _NullInstrument()


# ---------------------------------------------------------------------
@dataclass
class MetricsSnapshot:
    """A frozen, mergeable, picklable view of a registry (or a delta)."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, tuple[tuple[float, ...], tuple[int, ...]]] = field(
        default_factory=dict
    )
    spans: dict | None = None

    @property
    def empty(self) -> bool:
        """True when nothing was recorded."""
        return not (self.counters or self.gauges or self.histograms or self.spans)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot combined with ``other`` (both unchanged).

        Counters sum, gauges take the max, histograms add bucket-wise
        (edges must agree), span trees merge by name.  The operation is
        commutative and associative, so merging a set of per-task
        snapshots yields the same result in any order — the property the
        parallel == serial metric tests assert.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        histograms = dict(self.histograms)
        for name, (edges, counts) in other.histograms.items():
            if name in histograms:
                mine_edges, mine_counts = histograms[name]
                if mine_edges != edges:
                    raise ValueError(
                        f"histogram {name!r}: mismatched edges "
                        f"{mine_edges} vs {edges}"
                    )
                histograms[name] = (
                    edges,
                    tuple(a + b for a, b in zip(mine_counts, counts)),
                )
            else:
                histograms[name] = (edges, counts)
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=tracing.merge_span_dicts(self.spans, other.spans),
        )

    def as_dict(self) -> dict:
        """JSON-ready form (sorted keys, histograms as edge/count lists)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: {"edges": list(edges), "counts": list(counts)}
                for name, (edges, counts) in sorted(self.histograms.items())
            },
            "spans": self.spans,
        }


def merge_snapshots(snapshots) -> MetricsSnapshot:
    """Merge an iterable of snapshots into one (empty when none)."""
    merged = MetricsSnapshot()
    for snap in snapshots:
        if snap is not None:
            merged = merged.merge(snap)
    return merged


# ---------------------------------------------------------------------
@dataclass
class _TaskMark:
    """Baseline captured by :meth:`MetricsRegistry.begin_task`."""

    counters: dict[str, int]
    gauges: dict[str, float]
    histograms: dict[str, tuple[int, ...]]
    frame_depth: int


class MetricsRegistry:
    """The per-process home of every counter, gauge, and histogram."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, BucketHistogram] = {}

    # -- instrument access --------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str, edges: tuple[float, ...]) -> BucketHistogram:
        """The histogram called ``name`` (edges fixed at first creation)."""
        if not self.enabled:
            return _NULL
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = BucketHistogram(edges)
        elif h.edges != tuple(edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {h.edges}"
            )
        return h

    # -- snapshots -----------------------------------------------------
    def snapshot(self, spans: bool = True) -> MetricsSnapshot:
        """Freeze the registry's current totals (and the live span tree)."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: (h.edges, tuple(h.counts))
                for k, h in self._histograms.items()
            },
            spans=tracing.current_tree().to_dict() if spans else None,
        )

    def reset(self) -> None:
        """Drop every instrument and all recorded spans."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        tracing.reset()

    # -- task scoping (the engine's per-task delta capture) ------------
    def begin_task(self) -> _TaskMark | None:
        """Mark the start of a task; pair with :meth:`end_task`.

        Pushes a fresh span-tree root so the task's spans are isolated,
        and records instrument baselines so :meth:`end_task` can return
        only the task's delta.  Returns ``None`` when disabled.
        """
        if not self.enabled:
            return None
        tracing.push_root()
        return _TaskMark(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={
                k: tuple(h.counts) for k, h in self._histograms.items()
            },
            frame_depth=tracing.frame_depth(),
        )

    def end_task(self, mark: _TaskMark | None) -> MetricsSnapshot:
        """The delta since ``mark``: new activity only, zeros dropped."""
        if mark is None or not self.enabled:
            return MetricsSnapshot()
        spans = None
        # Unwind to the frame begin_task pushed (exceptions inside the
        # task may have left deeper task frames unpopped).
        while tracing.frame_depth() > mark.frame_depth:
            tracing.pop_root()
        if tracing.frame_depth() == mark.frame_depth:
            tree = tracing.pop_root()
            spans = tree.to_dict() if tree.children else None
        counters = {}
        for name, c in self._counters.items():
            delta = c.value - mark.counters.get(name, 0)
            if delta:
                counters[name] = delta
        gauges = {}
        for name, g in self._gauges.items():
            if name not in mark.gauges or g.value != mark.gauges[name]:
                gauges[name] = g.value
        histograms = {}
        for name, h in self._histograms.items():
            base = mark.histograms.get(name, (0,) * len(h.counts))
            delta = tuple(c - b for c, b in zip(h.counts, base))
            if any(delta):
                histograms[name] = (h.edges, delta)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms, spans=spans
        )


# ---------------------------------------------------------------------
_REGISTRY = MetricsRegistry(enabled=tracing.enabled())


def get_registry() -> MetricsRegistry:
    """This process's metrics registry."""
    return _REGISTRY


def enabled() -> bool:
    """Whether observability is on (``REPRO_OBS`` is not ``off``)."""
    return _REGISTRY.enabled


def set_enabled(flag: bool) -> None:
    """Toggle observability at runtime (tests; prefer ``REPRO_OBS=off``).

    Instruments fetched while disabled are shared no-ops and stay inert;
    components built afterwards pick up live instruments.
    """
    _REGISTRY.enabled = bool(flag)
    tracing.set_enabled(flag)


def reset() -> None:
    """Clear every metric and span recorded in this process."""
    _REGISTRY.reset()
