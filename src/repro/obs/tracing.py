"""Nested span timers building a per-task span tree.

A span brackets one phase of work::

    with span("thermal.lu_solve"):
        temps = lu.solve(rhs)

Spans nest: entering a span while another is open makes it a child, so a
task accumulates a tree whose structure mirrors the call structure of its
hot paths.  Each node records how many times the span ran and its summed
wall and CPU time.  Aggregation is by name — re-entering ``"sim.trace"``
under the same parent accumulates into the same node rather than growing
the tree, which keeps the footprint bounded no matter how hot the loop.

The collector keeps a stack of *roots* so the experiment engine can give
every task its own tree: :func:`push_root` before the task,
:func:`pop_root` after, and the returned tree travels back to the parent
process inside the task's :class:`~repro.obs.metrics.MetricsSnapshot`.
Trees are exchanged as plain nested dicts (JSON- and pickle-friendly) and
merged with :func:`merge_span_dicts` — counts and times sum, children
merge by name — so a parallel sweep's merged tree matches the serial
sweep's in structure and counts exactly (only the timings differ).

``REPRO_OBS=off`` turns :func:`span` into a shared no-op context manager
(see :mod:`repro.obs.metrics` for the switch).
"""

from __future__ import annotations

import os
import time

__all__ = [
    "SpanNode",
    "span",
    "push_root",
    "pop_root",
    "current_tree",
    "reset",
    "merge_span_dicts",
    "span_structure",
    "flatten_spans",
]


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_OBS", "").strip().lower()
    return raw not in ("off", "0", "false", "no", "disabled")


_ENABLED = _env_enabled()


def set_enabled(flag: bool) -> None:
    """Turn span collection on/off (normally driven by ``REPRO_OBS``)."""
    global _ENABLED
    _ENABLED = bool(flag)


def enabled() -> bool:
    """Whether spans are being collected in this process."""
    return _ENABLED


class SpanNode:
    """One aggregated span: entry count, summed times, children by name."""

    __slots__ = ("name", "count", "wall_s", "cpu_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """The child span called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict:
        """The subtree as a plain nested dict (picklable, JSON-ready)."""
        return {
            "name": self.name,
            "count": self.count,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": {k: v.to_dict() for k, v in self.children.items()},
        }

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, count={self.count}, "
            f"wall={self.wall_s:.4f}s, children={len(self.children)})"
        )


class _Span:
    """Context manager for one (possibly re-entered) span."""

    __slots__ = ("name", "_node", "_wall0", "_cpu0")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self):
        stack = _FRAMES[-1]
        node = stack[-1].child(self.name)
        stack.append(node)
        self._node = node
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        node = self._node
        node.count += 1
        node.wall_s += time.perf_counter() - self._wall0
        node.cpu_s += time.process_time() - self._cpu0
        stack = _FRAMES[-1]
        if stack and stack[-1] is node:
            stack.pop()
        return False


class _NullSpan:
    """Shared no-op span used when observability is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()

# Stack of frames; each frame is a span stack rooted at its own tree.
# Frame 0 is the process-level root; the engine pushes one frame per task.
_FRAMES: list[list[SpanNode]] = [[SpanNode("root")]]


def span(name: str) -> _Span | _NullSpan:
    """A context manager timing the named span (no-op when obs is off)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name)


def push_root() -> None:
    """Start a fresh span tree (the engine calls this per task)."""
    _FRAMES.append([SpanNode("task")])


def pop_root() -> SpanNode:
    """Finish the innermost tree pushed by :func:`push_root`."""
    if len(_FRAMES) == 1:
        raise RuntimeError("pop_root() without a matching push_root()")
    return _FRAMES.pop()[0]


def frame_depth() -> int:
    """How many roots are live (1 = just the process root)."""
    return len(_FRAMES)


def current_tree() -> SpanNode:
    """The root of the innermost live span tree."""
    return _FRAMES[-1][0]


def reset() -> None:
    """Drop every recorded span and any task frames."""
    del _FRAMES[:]
    _FRAMES.append([SpanNode("root")])


# ---------------------------------------------------------------------
def merge_span_dicts(a: dict | None, b: dict | None) -> dict | None:
    """Merge two span-tree dicts: counts/times sum, children by name."""
    if a is None:
        return None if b is None else _copy_tree(b)
    if b is None:
        return _copy_tree(a)
    merged = {
        "name": a["name"],
        "count": a["count"] + b["count"],
        "wall_s": a["wall_s"] + b["wall_s"],
        "cpu_s": a["cpu_s"] + b["cpu_s"],
        "children": {},
    }
    names = list(a["children"])
    names += [n for n in b["children"] if n not in a["children"]]
    for name in names:
        merged["children"][name] = merge_span_dicts(
            a["children"].get(name), b["children"].get(name)
        )
    return merged


def _copy_tree(tree: dict) -> dict:
    return {
        "name": tree["name"],
        "count": tree["count"],
        "wall_s": tree["wall_s"],
        "cpu_s": tree["cpu_s"],
        "children": {k: _copy_tree(v) for k, v in tree["children"].items()},
    }


def span_structure(tree: dict | None) -> dict | None:
    """The tree reduced to names and counts (timings stripped).

    Two sweeps that executed the same work produce equal structures even
    though their wall/CPU times differ — the determinism tests compare
    these.
    """
    if tree is None:
        return None
    return {
        "name": tree["name"],
        "count": tree["count"],
        "children": {
            k: span_structure(v) for k, v in sorted(tree["children"].items())
        },
    }


def flatten_spans(
    tree: dict | None, prefix: str = ""
) -> list[tuple[str, int, float, float]]:
    """Depth-first ``(path, count, wall_s, cpu_s)`` rows for reporting.

    The root node itself is skipped (it is an anonymous container).
    """
    if tree is None:
        return []
    rows: list[tuple[str, int, float, float]] = []
    for name, child in sorted(tree["children"].items()):
        path = f"{prefix}{name}"
        rows.append((path, child["count"], child["wall_s"], child["cpu_s"]))
        rows.extend(flatten_spans(child, prefix=path + "."))
    return rows
