"""Run identity, an optional JSONL event sink, and run manifests.

A *run* is one top-level invocation — a CLI command, a
``generate_report`` call, a benchmark session.  :func:`begin_run` mints
a process-unique run id; the experiment engine stamps it onto every
:class:`~repro.experiments.engine.SweepTiming` it records, which is what
lets repeated runner invocations in one process keep their sweep
registries apart (``timing_summary(run_id=...)``).

The *event sink* is a line-oriented JSON log (one object per line) for
anything worth timestamping: run boundaries, sweep completions, manifest
writes.  It is off unless :func:`set_sink` is given a path (the CLI's
``--trace-out``), and :func:`emit` is a cheap no-op while off.

Flush policy: every :meth:`EventSink.emit` flushes its line so a
concurrent follower (``repro tail``) and crash post-mortems see all
complete recent events; a process killed mid-``write`` can still leave
one torn trailing line, which followers must skip (and
:class:`repro.obs.live.EventFollower` does).  Set ``REPRO_OBS_FSYNC=1``
to additionally ``os.fsync`` per line — durable through power loss, at
a per-event syscall cost.

The *run manifest* is the auditable summary written next to results:
run id, git SHA, command, seed/window/jobs, a configuration hash, and
the run's merged metric snapshot plus per-sweep snapshots.  Everything
in ``manifest["metrics"]`` comes from deterministic counters, so two
manifests from the same sweep at different worker counts are
bit-identical there — the cross-process audit the paper-reproduction
workflow relies on.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import time
from pathlib import Path

__all__ = [
    "FSYNC_ENV_VAR",
    "begin_run",
    "current_run_id",
    "EventSink",
    "set_sink",
    "get_sink",
    "emit",
    "git_sha",
    "config_hash",
    "build_manifest",
    "write_manifest",
]

FSYNC_ENV_VAR = "REPRO_OBS_FSYNC"

_RUN_SEQ = itertools.count(1)
_CURRENT_RUN_ID: str | None = None
_SINK: "EventSink | None" = None
_GIT_SHA: str | None | bool = False  # False = not yet probed


def begin_run(command: str | None = None, run_id: str | None = None) -> str:
    """Start a new run; returns its process-unique id.

    Passing ``run_id`` adopts an existing identity instead of minting a
    new one — the resume path (``repro ... --resume <run_id>``) uses it
    so a continued run lands in the same checkpoint directory and its
    sweeps merge with the original run's accounting.
    """
    global _CURRENT_RUN_ID
    resumed = run_id is not None
    if run_id is None:
        run_id = f"run-{os.getpid()}-{next(_RUN_SEQ):04d}"
    _CURRENT_RUN_ID = run_id
    emit("run_begin", run_id=run_id, command=command, resumed=resumed)
    return run_id


def current_run_id() -> str:
    """The active run's id (a default run is begun on first use)."""
    if _CURRENT_RUN_ID is None:
        return begin_run()
    return _CURRENT_RUN_ID


# ---------------------------------------------------------------------
class EventSink:
    """Append-only JSONL event log, flushed per line.

    Each event is written and flushed as one line so external followers
    see it promptly; with ``REPRO_OBS_FSYNC`` truthy it is also fsynced,
    trading a syscall per event for durability through power loss.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._fsync = os.environ.get(FSYNC_ENV_VAR, "").strip().lower() in (
            "1", "true", "yes", "on")

    def emit(self, kind: str, **fields) -> None:
        """Append one event line (non-serialisable values become strings)."""
        record = {"event": kind, "ts": round(time.time(), 6), **fields}
        self._fh.write(json.dumps(record, default=str) + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._fh.close()


def set_sink(path: str | Path | None) -> None:
    """Route events to a JSONL file, or (with ``None``) turn them off."""
    global _SINK
    if _SINK is not None:
        _SINK.close()
    _SINK = EventSink(path) if path is not None else None


def get_sink() -> EventSink | None:
    """The active sink, if any."""
    return _SINK


def emit(kind: str, **fields) -> None:
    """Emit an event to the active sink (no-op when none is set)."""
    if _SINK is not None:
        _SINK.emit(kind, **fields)


# ---------------------------------------------------------------------
def git_sha() -> str | None:
    """The repository HEAD SHA, or ``None`` outside a git checkout."""
    global _GIT_SHA
    if _GIT_SHA is False:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
        except Exception:
            _GIT_SHA = None
    return _GIT_SHA


def config_hash(payload) -> str:
    """A short stable hash of a JSON-serialisable configuration."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


# ---------------------------------------------------------------------
def build_manifest(
    command: str | None = None,
    seed: int | None = None,
    window: int | None = None,
    jobs: int | None = None,
    run_id: str | None = None,
    metrics: dict | None = None,
    sweeps: list[dict] | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a run-manifest dictionary (see module docstring).

    ``metrics`` is the run's merged :class:`MetricsSnapshot` as a dict
    and ``sweeps`` the per-sweep timing/metric rows — both usually come
    from :mod:`repro.experiments.engine` (``run_metrics`` /
    ``timing_summary``); they are parameters here so this module stays
    import-light.
    """
    config = {"command": command, "seed": seed, "window": window, "jobs": jobs}
    manifest = {
        "run_id": run_id or current_run_id(),
        "created_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "command": command,
        "seed": seed,
        "window": window,
        "jobs": jobs,
        "config_hash": config_hash(config),
        "metrics": metrics or {},
        "sweeps": sweeps or [],
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, **kwargs) -> dict:
    """Build a manifest, write it as JSON, and emit a ``manifest`` event."""
    manifest = build_manifest(**kwargs)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    emit("manifest", run_id=manifest["run_id"], path=str(out))
    return manifest
