"""Live sweep telemetry: streaming aggregation, renderers, and scraping.

Everything in :mod:`repro.obs` up to this module is *post-hoc*: per-task
:class:`~repro.obs.metrics.MetricsSnapshot` deltas merge at sweep end
into ``SweepTiming.metrics`` and render in a static report.  This module
is the *while-it-runs* layer.  The experiment engine folds the telemetry
that workers already piggyback on their heartbeat / ``TaskDone`` frames
into a :class:`LiveStats` aggregator — tasks done/total, an ETA from a
moving-window completion rate, per-worker health (last-heartbeat age,
in-flight chunk, tasks completed), requeues, lease expiries — and three
consumers sit on top:

* **listeners** (:func:`add_listener`): callbacks invoked on every fold
  and poll tick.  :class:`LiveRenderer` is the built-in one — the CLI's
  ``--progress=live`` ANSI dashboard, drawn by
  :func:`repro.viz.ascii.render_dashboard`;
* a **Prometheus endpoint** (:func:`start_metrics_server`, the CLI's
  ``--metrics-port`` / ``REPRO_METRICS_PORT``): a stdlib
  ``http.server`` daemon thread serving ``GET /metrics`` in text
  exposition format — live sweep gauges, per-worker heartbeat ages, and
  the sweep's folded counters/histograms — scrapeable mid-sweep;
* an **event follower** (:class:`EventFollower`, :func:`fold_event`):
  reconstructs ``LiveStats`` from another process's JSONL event stream
  (the ``--trace-out`` sink), which is what ``repro tail`` and
  ``repro top`` run on.  The follower only consumes complete lines — a
  partially-written trailing line is left buffered until its newline
  arrives (the same torn-line discipline as checkpoint restore).

Determinism contract: live aggregation is **observation-only**.  The
incremental fold uses the same commutative/associative merge operations
as :meth:`MetricsSnapshot.merge` (counters sum, gauges max, histograms
bucket-wise), so the displayed totals are order-independent; and the
per-task snapshots are additionally kept by index so
:meth:`LiveStats.merged_metrics` replays the exact submission-order
merge — bit-identical to the sweep's final ``SweepTiming.metrics``,
float-valued span times included.

``REPRO_OBS=off`` (or no consumer being registered) makes
:func:`sweep_begin` return ``None`` and the engine skips every live
call — the streaming path then costs one ``is None`` test per event.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import MetricsSnapshot, merge_snapshots

__all__ = [
    "METRICS_PORT_ENV_VAR",
    "WorkerHealth",
    "LiveStats",
    "add_listener",
    "remove_listener",
    "telemetry_active",
    "sweep_begin",
    "current",
    "LiveRenderer",
    "MetricsServer",
    "start_metrics_server",
    "stop_metrics_server",
    "get_metrics_server",
    "resolve_metrics_port",
    "render_prometheus",
    "EventFollower",
    "resolve_events_path",
    "fold_event",
    "format_event",
]

METRICS_PORT_ENV_VAR = "REPRO_METRICS_PORT"

#: Completion stamps kept for the moving-window rate (ETA smoothing).
_RATE_WINDOW = 64
#: Seconds of completion history the rate is computed over.
_RATE_HORIZON_S = 30.0
#: Minimum seconds between heartbeat folds on the engine's poll ticks.
_HB_FOLD_INTERVAL_S = 0.2


class WorkerHealth:
    """Live view of one worker: heartbeat age, placement, throughput."""

    __slots__ = ("worker", "age_s", "inflight_chunk", "tasks_done", "lost")

    def __init__(self, worker: str):
        self.worker = worker
        self.age_s = 0.0
        self.inflight_chunk: int | None = None
        self.tasks_done = 0
        self.lost = ""  # reason, once declared dead

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "age_s": round(self.age_s, 3),
            "inflight_chunk": self.inflight_chunk,
            "tasks_done": self.tasks_done,
            "lost": self.lost,
        }


class LiveStats:
    """Streaming aggregate of one running sweep.

    Fold order does not matter: every incremental operation (counter
    sum, gauge max, histogram bucket add, completion count) is
    commutative and associative, so the totals shown mid-sweep are the
    same whatever order worker frames arrive in.  The final
    :meth:`merged_metrics` is bit-identical to the engine's post-hoc
    ``SweepTiming.metrics`` because it replays the same
    submission-order merge over the same per-task snapshots.
    """

    def __init__(self, label: str, total: int, run_id: str = "",
                 backend: str = "", jobs: int = 1):
        self.label = label
        self.run_id = run_id
        self.backend = backend
        self.jobs = jobs
        self.tasks_total = total
        self.tasks_done = 0       # committed outcomes (ok + failed)
        self.tasks_ok = 0
        self.failures = 0
        self.resumed = 0
        self.retries = 0
        self.timeouts = 0
        self.requeues = 0
        self.lost_workers = 0
        self.lease_expiries = 0
        self.duplicate_results = 0
        self.respawns = 0
        self.quarantined = 0
        self.finished = False
        self.task_wall_s = 0.0
        self.started_mono = time.monotonic()
        self.started_unix = time.time()
        self.workers: dict[str, WorkerHealth] = {}
        # Incrementally folded instrument totals (live view).
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, tuple[tuple[float, ...], list[int]]] = {}
        # Per-index snapshots for the bit-identical final merge.
        self._snapshots: dict[int, MetricsSnapshot] = {}
        self._window: deque = deque(maxlen=_RATE_WINDOW)
        self._last_hb_fold = 0.0

    # -- folds (called by the engine controller) -----------------------
    def fold_task(self, index: int, ok: bool, wall_s: float,
                  snapshot: MetricsSnapshot | None, worker: str = "",
                  retries: int = 0, timeouts: int = 0,
                  resumed: bool = False) -> None:
        """Absorb one committed task outcome (or checkpoint restore)."""
        self.tasks_done += 1
        self.retries += retries
        self.timeouts += timeouts
        if ok:
            self.tasks_ok += 1
            self.task_wall_s += wall_s
        else:
            self.failures += 1
        if resumed:
            self.resumed += 1
        else:
            self._window.append(time.monotonic())
        if snapshot is not None:
            self._snapshots[index] = snapshot
            self._fold_snapshot(snapshot)
        if worker:
            self._worker(worker).tasks_done += 1
        _notify("task", self)

    def _fold_snapshot(self, snap: MetricsSnapshot) -> None:
        for name, value in snap.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snap.gauges.items():
            prior = self.gauges.get(name)
            self.gauges[name] = value if prior is None else max(prior, value)
        for name, (edges, counts) in snap.histograms.items():
            held = self.histograms.get(name)
            if held is None or held[0] != edges:
                self.histograms[name] = (edges, list(counts))
            else:
                mine = held[1]
                for i, count in enumerate(counts):
                    mine[i] += count

    def _worker(self, worker: str) -> WorkerHealth:
        health = self.workers.get(worker)
        if health is None:
            health = self.workers[worker] = WorkerHealth(worker)
        return health

    def chunk_started(self, chunk_id: int, worker: str) -> None:
        if worker:
            self._worker(worker).inflight_chunk = chunk_id

    def worker_lost(self, worker: str, reason: str) -> None:
        self.lost_workers += 1
        if worker:
            health = self._worker(worker)
            health.lost = reason
            health.inflight_chunk = None
        _notify("worker_lost", self)

    def requeued(self) -> None:
        self.requeues += 1

    def lease_expired(self) -> None:
        self.lease_expiries += 1

    def note_duplicate(self) -> None:
        self.duplicate_results += 1

    def respawned(self, worker: str) -> None:
        self.respawns += 1
        if worker:
            self._worker(worker)  # the replacement shows up immediately
        _notify("respawn", self)

    def quarantined_task(self) -> None:
        self.quarantined += 1
        _notify("quarantine", self)

    def fold_heartbeat(self, heartbeat: dict) -> None:
        """Absorb one normalized ``Executor.heartbeat()`` mapping."""
        for worker, info in heartbeat.items():
            health = self._worker(str(worker))
            health.age_s = float(info.get("age_s", 0.0))
            health.inflight_chunk = info.get("inflight_chunk")

    def tick(self, executor=None) -> None:
        """One engine poll-loop tick: throttled heartbeat fold + notify."""
        now = time.monotonic()
        if executor is not None and now - self._last_hb_fold >= _HB_FOLD_INTERVAL_S:
            self._last_hb_fold = now
            try:
                self.fold_heartbeat(executor.heartbeat())
            except Exception:
                pass  # observation-only: a backend mid-teardown is fine
        _notify("tick", self)

    def end(self) -> None:
        self.finished = True
        _notify("sweep_end", self)

    # -- derived views -------------------------------------------------
    def rate(self) -> float:
        """Tasks/second over the recent completion window (0 when idle)."""
        if not self._window:
            return 0.0
        now = time.monotonic()
        recent = [t for t in self._window if now - t <= _RATE_HORIZON_S]
        if not recent:
            return 0.0
        span = now - recent[0]
        if span <= 0.0:
            # Everything stamped "now" (first live sample): average over
            # the whole sweep instead of dividing by a degenerate span.
            return self.tasks_done / max(self.elapsed_s(), 1e-6)
        return len(recent) / span

    def eta_s(self) -> float | None:
        """Estimated seconds to completion, or ``None`` with no rate yet."""
        remaining = max(0, self.tasks_total - self.tasks_done)
        if remaining == 0:
            return 0.0
        rate = self.rate()
        if rate <= 0.0:
            return None
        return remaining / rate

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_mono

    def merged_metrics(self) -> MetricsSnapshot:
        """The per-task snapshots merged in submission (index) order —
        the exact sequence ``run_sweep`` merges, so the result is
        bit-identical to the final ``SweepTiming.metrics``."""
        return merge_snapshots(
            self._snapshots[i] for i in sorted(self._snapshots)
        )

    def as_row(self) -> dict:
        """A plain-dict view for renderers and the metrics endpoint."""
        eta = self.eta_s()
        return {
            "label": self.label,
            "run_id": self.run_id,
            "backend": self.backend,
            "jobs": self.jobs,
            "tasks_total": self.tasks_total,
            "tasks_done": self.tasks_done,
            "tasks_ok": self.tasks_ok,
            "failures": self.failures,
            "resumed": self.resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "requeues": self.requeues,
            "lost_workers": self.lost_workers,
            "lease_expiries": self.lease_expiries,
            "duplicate_results": self.duplicate_results,
            "respawns": self.respawns,
            "quarantined": self.quarantined,
            "elapsed_s": round(self.elapsed_s(), 3),
            "rate_per_s": round(self.rate(), 3),
            "eta_s": None if eta is None else round(eta, 1),
            "finished": self.finished,
            "workers": [
                self.workers[w].as_dict() for w in sorted(self.workers)
            ],
        }


# ---------------------------------------------------------------------
# Listener bus + engine attachment point.

_LISTENERS: list = []
_ACTIVE: LiveStats | None = None
# Process-lifetime monotone totals for the metrics endpoint.
_RUN_TOTALS = {"sweeps": 0, "tasks_done": 0, "failures": 0}


def add_listener(listener) -> None:
    """Register a ``listener(kind, stats)`` callback for live updates.

    ``kind`` is ``"begin"``, ``"task"``, ``"tick"``, ``"worker_lost"``,
    ``"respawn"``, ``"quarantine"``, or ``"sweep_end"``.  Listener
    exceptions are swallowed — rendering must never disturb a sweep.
    """
    if listener not in _LISTENERS:
        _LISTENERS.append(listener)


def remove_listener(listener) -> None:
    """Unregister a previously added listener (missing is a no-op)."""
    try:
        _LISTENERS.remove(listener)
    except ValueError:
        pass


def _notify(kind: str, stats: "LiveStats") -> None:
    for listener in _LISTENERS:
        try:
            listener(kind, stats)
        except Exception:
            pass


def telemetry_active() -> bool:
    """Whether any live consumer wants per-sweep streaming aggregation."""
    return bool(_LISTENERS or _SERVER is not None)


def sweep_begin(label: str, total: int, run_id: str = "",
                backend: str = "", jobs: int = 1) -> LiveStats | None:
    """Begin live aggregation for one sweep, or ``None`` when inactive.

    Inactive means no consumer is registered (no listener, no metrics
    server) or observability is off (``REPRO_OBS=off``) — the engine
    then skips every live call, keeping the streaming path at its
    near-zero disabled cost.
    """
    global _ACTIVE
    if not telemetry_active() or not metrics_mod.enabled():
        return None
    stats = LiveStats(label, total, run_id=run_id, backend=backend, jobs=jobs)
    _ACTIVE = stats
    _RUN_TOTALS["sweeps"] += 1
    _notify("begin", stats)
    return stats


def sweep_end(stats: LiveStats) -> None:
    """Finish one sweep's live aggregation (stats stay scrapeable)."""
    _RUN_TOTALS["tasks_done"] += stats.tasks_done
    _RUN_TOTALS["failures"] += stats.failures
    stats.end()


def current() -> LiveStats | None:
    """The most recent live sweep's stats (kept after it finishes)."""
    return _ACTIVE


# ---------------------------------------------------------------------
class LiveRenderer:
    """Listener drawing the in-terminal dashboard (``--progress=live``).

    Renders through :func:`repro.viz.ascii.render_dashboard` at most
    every ``interval_s``; on a TTY the previous frame is overwritten
    with ANSI cursor movement, elsewhere (pipes, logs) a compact
    one-line summary is appended instead so output stays greppable.
    """

    def __init__(self, stream=None, interval_s: float = 0.2,
                 ansi: bool | None = None):
        import sys

        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval_s
        self._last = 0.0
        self._frame_lines = 0
        if ansi is None:
            ansi = bool(getattr(self._stream, "isatty", lambda: False)())
        self._ansi = ansi

    def __call__(self, kind: str, stats: LiveStats) -> None:
        now = time.monotonic()
        if kind not in ("begin", "sweep_end") and \
                now - self._last < self._interval:
            return
        self._last = now
        from repro.viz.ascii import render_dashboard

        row = stats.as_row()
        if self._ansi:
            text = render_dashboard(row)
            lines = text.count("\n") + 1
            if self._frame_lines:
                self._stream.write(f"\x1b[{self._frame_lines}F\x1b[J")
            self._stream.write(text + "\n")
            self._frame_lines = 0 if kind == "sweep_end" else lines
        else:
            eta = row["eta_s"]
            self._stream.write(
                f"[{row['label']}] {row['tasks_done']}/{row['tasks_total']} "
                f"tasks, {row['rate_per_s']:.2f}/s, "
                f"eta {'—' if eta is None else f'{eta:.0f}s'}, "
                f"failures {row['failures']}, workers {len(row['workers'])}"
                + (" (done)" if row["finished"] else "") + "\n"
            )
        self._stream.flush()


# ---------------------------------------------------------------------
# Prometheus text-format exposition endpoint (stdlib http.server).

_SERVER: "MetricsServer | None" = None
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _san(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _label_escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", " ")


def render_prometheus() -> str:
    """The current process's telemetry in Prometheus text exposition.

    Always includes the run-level monotone totals; while a sweep is (or
    just was) live, also its progress gauges, per-worker heartbeat ages,
    and the folded per-sweep counters and histograms.
    """
    lines = [
        "# HELP repro_up Whether the repro process is serving metrics.",
        "# TYPE repro_up gauge",
        "repro_up 1",
        "# TYPE repro_run_sweeps_total counter",
        f"repro_run_sweeps_total {_RUN_TOTALS['sweeps']}",
        "# TYPE repro_run_tasks_done_total counter",
        f"repro_run_tasks_done_total {_RUN_TOTALS['tasks_done']}",
        "# TYPE repro_run_failures_total counter",
        f"repro_run_failures_total {_RUN_TOTALS['failures']}",
    ]
    stats = _ACTIVE
    if stats is None:
        return "\n".join(lines) + "\n"
    sweep = (
        f'sweep="{_label_escape(stats.label)}",'
        f'run_id="{_label_escape(stats.run_id)}",'
        f'backend="{_label_escape(stats.backend)}"'
    )
    row = stats.as_row()
    gauge_fields = (
        ("tasks_total", "Tasks submitted to the sweep."),
        ("tasks_done", "Tasks with a committed outcome."),
        ("tasks_ok", "Tasks that committed successfully."),
        ("failures", "Tasks that exhausted every attempt."),
        ("resumed", "Tasks restored from a checkpoint."),
        ("retries", "Failed attempts retried in place."),
        ("timeouts", "Attempts killed by the per-task timeout."),
        ("requeues", "Chunks requeued after worker loss or lease expiry."),
        ("lost_workers", "Workers declared dead."),
        ("lease_expiries", "Chunk leases expired at the controller."),
        ("duplicate_results", "Late or duplicated commits dropped."),
        ("respawns", "Replacement workers spawned after a loss."),
        ("quarantined", "Tasks quarantined as poisonous."),
        ("elapsed_s", "Seconds since the sweep began."),
        ("rate_per_s", "Moving-window completion rate."),
    )
    for name, help_text in gauge_fields:
        lines.append(f"# HELP repro_sweep_{name} {help_text}")
        lines.append(f"# TYPE repro_sweep_{name} gauge")
        lines.append(f"repro_sweep_{name}{{{sweep}}} {row[name]}")
    eta = row["eta_s"]
    lines.append("# TYPE repro_sweep_eta_seconds gauge")
    lines.append(
        f"repro_sweep_eta_seconds{{{sweep}}} "
        f"{'NaN' if eta is None else eta}"
    )
    lines.append("# TYPE repro_worker_heartbeat_age_seconds gauge")
    lines.append("# TYPE repro_worker_tasks_done gauge")
    for health in (stats.workers[w] for w in sorted(stats.workers)):
        worker = f'{sweep},worker="{_label_escape(health.worker)}"'
        lines.append(
            f"repro_worker_heartbeat_age_seconds{{{worker}}} "
            f"{health.age_s:.3f}"
        )
        lines.append(
            f"repro_worker_tasks_done{{{worker}}} {health.tasks_done}"
        )
    for name in sorted(stats.counters):
        metric = f"repro_metric_{_san(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{{{sweep}}} {stats.counters[name]}")
    for name in sorted(stats.gauges):
        metric = f"repro_metric_{_san(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{{{sweep}}} {stats.gauges[name]}")
    for name in sorted(stats.histograms):
        edges, counts = stats.histograms[name]
        metric = f"repro_metric_{_san(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(edges, counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{{sweep},le="{edge}"}} {cumulative}'
            )
        cumulative += counts[len(edges)]
        lines.append(f'{metric}_bucket{{{sweep},le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_count{{{sweep}}} {cumulative}")
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        body = render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # scrapes are not user-facing output
        pass


class MetricsServer:
    """Prometheus exposition endpoint on a daemon thread.

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one.  The handler reads module state under the GIL — the controller
    updates plain ints and dict entries, so a scrape mid-update sees a
    consistent-enough snapshot (Prometheus semantics tolerate this).
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        self._httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-metrics",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)


def start_metrics_server(port: int = 0) -> MetricsServer:
    """Start (or return the already-running) metrics endpoint."""
    global _SERVER
    if _SERVER is None:
        _SERVER = MetricsServer(port=port)
    return _SERVER


def stop_metrics_server() -> None:
    """Stop the metrics endpoint, if one is running."""
    global _SERVER
    if _SERVER is not None:
        _SERVER.close()
        _SERVER = None


def get_metrics_server() -> MetricsServer | None:
    """The running metrics endpoint, if any."""
    return _SERVER


def resolve_metrics_port(port: int | None = None) -> int | None:
    """The endpoint port: argument, then ``REPRO_METRICS_PORT``, else
    ``None`` (no endpoint).  ``0`` asks for an ephemeral port."""
    if port is not None:
        return port
    raw = os.environ.get(METRICS_PORT_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        from repro.common.errors import ConfigError

        raise ConfigError(
            f"{METRICS_PORT_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


# ---------------------------------------------------------------------
# Following another process's run: JSONL event stream -> LiveStats.


def resolve_events_path(path: str | Path) -> Path:
    """``path`` itself when it is a file; for a directory, the most
    recently modified ``*.jsonl`` inside it (a run/checkpoint dir)."""
    p = Path(path)
    if p.is_dir():
        candidates = sorted(
            p.glob("**/*.jsonl"),
            key=lambda f: f.stat().st_mtime,
            reverse=True,
        )
        if not candidates:
            from repro.common.errors import ConfigError

            raise ConfigError(f"no .jsonl event stream under {p}")
        return candidates[0]
    return p


class EventFollower:
    """Incremental reader of a JSONL event stream being appended to.

    Each :meth:`poll` returns the events whose lines are *complete* —
    a partially-written trailing line (no newline yet, the writer is
    mid-append or died mid-write) stays buffered and is retried on the
    next poll, so a follower never parses torn JSON.  Complete lines
    that still fail to parse (a hard kill mid-flush) are counted in
    :attr:`skipped` and dropped, mirroring checkpoint restore.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.skipped = 0
        self._offset = 0
        self._tail = b""

    def poll(self) -> list[dict]:
        """Newly completed events since the last poll (possibly [])."""
        try:
            with self.path.open("rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        self._offset += len(data)
        data = self._tail + data
        lines = data.split(b"\n")
        self._tail = lines.pop()  # b"" when data ended on a newline
        events = []
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                self.skipped += 1
        return events


def _window_stamp(stats: LiveStats, record: dict) -> None:
    """Add a completion to the rate window at the time it *happened*.

    A follower replaying a backlog (``repro top`` on a finished or
    far-ahead run) would otherwise stamp every historical completion
    "now" and report an absurd instantaneous rate; translating the
    event's wall-clock ``ts`` onto the local monotonic timeline keeps
    the window truthful both live (ts ≈ now) and on replay (old stamps
    age straight out of the rate horizon).
    """
    ts = record.get("ts")
    if ts is None:
        stats._window.append(time.monotonic())
    else:
        stats._window.append(time.monotonic() - (time.time() - float(ts)))


def fold_event(stats: LiveStats | None, record: dict) -> LiveStats | None:
    """Fold one sink event into a follower-side :class:`LiveStats`.

    Returns the (possibly new) stats object: a ``sweep_begin`` event
    starts a fresh aggregate, everything else updates the current one.
    Events that carry no live information pass through unchanged.
    """
    kind = record.get("event")
    if kind == "sweep_begin":
        stats = LiveStats(
            record.get("label", "sweep"),
            int(record.get("tasks", 0)),
            run_id=record.get("run_id", ""),
            backend=record.get("executor", ""),
            jobs=int(record.get("jobs", 1)),
        )
        return stats
    if stats is None:
        return None
    if kind == "task_done":
        stats.tasks_done += 1
        stats.tasks_ok += 1
        stats.task_wall_s += float(record.get("wall_s", 0.0))
        if record.get("resumed"):
            stats.resumed += 1
        else:
            _window_stamp(stats, record)
        worker = str(record.get("worker", "") or "")
        if worker:
            stats._worker(worker).tasks_done += 1
    elif kind == "task_failed":
        stats.tasks_done += 1
        stats.failures += 1
        _window_stamp(stats, record)
    elif kind == "chunk_requeued":
        stats.requeues += 1
    elif kind == "worker_lost":
        stats.lost_workers += 1
        worker = str(record.get("worker", "") or "")
        if worker:
            health = stats._worker(worker)
            health.lost = record.get("reason", "crash")
            health.inflight_chunk = None
    elif kind == "lease_expired":
        stats.lease_expiries += 1
    elif kind == "duplicate_result_dropped":
        stats.duplicate_results += 1
    elif kind == "worker_respawned":
        stats.respawns += 1
        worker = str(record.get("worker", "") or "")
        if worker:
            stats._worker(worker)
    elif kind == "task_quarantined":
        stats.quarantined += 1
    elif kind == "sweep":
        stats.finished = True
    return stats


_EVENT_SUMMARY_FIELDS = (
    "run_id", "label", "task_index", "worker", "replaced", "reason",
    "chunk_id", "tasks", "executor", "wall_s", "failures",
    "stranded_tasks", "error", "path",
)


def format_event(record: dict) -> str:
    """One sink event as a compact single line (``repro tail`` output)."""
    kind = record.get("event", "?")
    ts = record.get("ts")
    clock = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    parts = [
        f"{field}={record[field]}"
        for field in _EVENT_SUMMARY_FIELDS
        if record.get(field) not in (None, "")
    ]
    return f"{clock} {kind:<24s} {' '.join(parts)}".rstrip()
