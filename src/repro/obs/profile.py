"""Opt-in per-task cProfile with collapsed-stack (flamegraph) output.

``--profile`` (or ``REPRO_PROFILE=1``) makes every task attempt run
under :class:`cProfile.Profile` inside the worker.  The profile is
collapsed *in the worker* to a small ``stack -> seconds`` dict (no
pickling of profiler state across the socket), shipped back on the
``TaskDone`` outcome's telemetry, and folded sweep-wide by the
:class:`ProfileAccumulator` the CLI installs.  The accumulated dict
writes out in collapsed-stack format — ``caller;callee count`` lines,
one per stack, counts in integer microseconds — which flamegraph.pl,
inferno, and speedscope all consume directly.

The collapse is a two-level call-graph approximation, not a full stack
sample: cProfile records (caller, callee) edges with per-callee self
time (``tt``), so each callee's self time is split across its callers
proportionally to call counts and emitted as ``caller;callee``; root
functions (no recorded caller) emit as bare ``name``.  That loses
deeper ancestry but keeps the worker-side cost tiny and the output
deterministic.

Profiling is observation-only and **off by default**: it never runs
when ``REPRO_OBS=off`` (the kill switch outranks it), and the runtime
cost when enabled is cProfile's usual several-fold slowdown — use it on
small sweeps.
"""

from __future__ import annotations

import cProfile
import os
from pathlib import Path

from repro.obs import metrics as metrics_mod

__all__ = [
    "PROFILE_ENV_VAR",
    "enabled",
    "start_profile",
    "collapse",
    "ProfileAccumulator",
    "set_accumulator",
    "get_accumulator",
]

PROFILE_ENV_VAR = "REPRO_PROFILE"
_TRUTHY = ("1", "true", "yes", "on")


def enabled() -> bool:
    """Whether per-task profiling is requested *and* obs is on."""
    raw = os.environ.get(PROFILE_ENV_VAR, "").strip().lower()
    return raw in _TRUTHY and metrics_mod.enabled()


def start_profile() -> cProfile.Profile:
    """A started profiler for one task attempt (worker side)."""
    prof = cProfile.Profile()
    prof.enable()
    return prof


def _func_name(func) -> str:
    """``module:func`` for Python frames, ``name`` for C builtins."""
    filename, lineno, name = func
    if filename == "~":
        return name.strip("<>")
    stem = Path(filename).stem
    return f"{stem}:{name}"


def collapse(prof: cProfile.Profile) -> dict[str, float]:
    """Collapse a finished profiler into ``stack -> self-seconds``.

    Two-level stacks: each function's self time splits across its
    recorded callers by call-count proportion (``caller;callee``);
    functions with no recorded caller emit as roots (``name``).
    """
    prof.disable()
    prof.create_stats()
    stacks: dict[str, float] = {}
    for func, (_cc, nc, tt, _ct, callers) in prof.stats.items():
        if tt <= 0.0:
            continue
        name = _func_name(func)
        if not callers:
            stacks[name] = stacks.get(name, 0.0) + tt
            continue
        total_calls = sum(c[0] for c in callers.values()) or nc or 1
        for caller_func, (caller_cc, *_rest) in callers.items():
            share = tt * (caller_cc / total_calls)
            if share <= 0.0:
                continue
            stack = f"{_func_name(caller_func)};{name}"
            stacks[stack] = stacks.get(stack, 0.0) + share
    return stacks


class ProfileAccumulator:
    """Folds per-task collapsed stacks into one sweep-wide profile."""

    def __init__(self):
        self.stacks: dict[str, float] = {}
        self.tasks = 0

    def fold(self, collapsed: dict[str, float]) -> None:
        self.tasks += 1
        for stack, seconds in collapsed.items():
            self.stacks[stack] = self.stacks.get(stack, 0.0) + seconds

    def write_collapsed(self, path: str | Path) -> Path:
        """Write ``stack count`` lines, counts in integer microseconds
        (flamegraph.pl needs integers); sub-microsecond stacks drop."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        for stack in sorted(self.stacks):
            micros = int(round(self.stacks[stack] * 1e6))
            if micros > 0:
                lines.append(f"{stack} {micros}")
        out.write_text("\n".join(lines) + ("\n" if lines else ""),
                       encoding="utf-8")
        return out


_ACCUMULATOR: ProfileAccumulator | None = None


def set_accumulator(acc: ProfileAccumulator | None) -> None:
    """Install (or clear) the process profile accumulator."""
    global _ACCUMULATOR
    _ACCUMULATOR = acc


def get_accumulator() -> ProfileAccumulator | None:
    """The installed profile accumulator, if any."""
    return _ACCUMULATOR
