"""One ``repro`` logger hierarchy for everything the package says aloud.

Library code never calls ``print``: it logs through a child of the
``repro`` logger (``get_logger("tables")`` → ``repro.tables``) and the
entry point decides whether and where that text goes.  The CLI calls
:func:`configure` on every invocation — ``-v`` lowers the threshold to
DEBUG, ``-q`` raises it to WARNING — and binds a fresh handler to the
*current* ``sys.stdout`` so test harnesses that swap stdout still
capture output.  Handlers installed here are tagged and replaced on
reconfiguration, so repeated CLI calls in one process never stack
duplicate handlers.

Messages are emitted bare (``%(message)s``): the CLI's tables and
figures are the user-facing product, not diagnostics, so no
level/timestamp prefix is added at default verbosity.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["ROOT_LOGGER", "get_logger", "configure", "ensure_configured"]

ROOT_LOGGER = "repro"

_TAG = "_repro_obs_handler"


class _StreamHandler(logging.StreamHandler):
    """StreamHandler that stays quiet when the consumer closes the pipe.

    ``repro ... | head`` closes stdout early; the default handler would
    print a "Logging error" traceback for every record after that.
    """

    def handleError(self, record):
        if isinstance(sys.exc_info()[1], BrokenPipeError):
            return
        super().handleError(record)


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or the child ``repro.<name>``."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """(Re)configure the hierarchy's output handler.

    ``verbosity`` maps counts of ``-v``/``-q``: >= 1 → DEBUG, 0 → INFO,
    <= -1 → WARNING.  ``stream`` defaults to the current ``sys.stdout``.
    """
    logger = get_logger()
    if verbosity >= 1:
        level = logging.DEBUG
    elif verbosity <= -1:
        level = logging.WARNING
    else:
        level = logging.INFO
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _TAG, False):
            logger.removeHandler(handler)
            handler.close()
    handler = _StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, _TAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def ensure_configured() -> logging.Logger:
    """Configure with defaults unless a handler is already installed.

    Lets library entry points (``print_table``, the examples) produce
    output when no CLI has configured logging, without ever stacking a
    second handler on top of an existing configuration.
    """
    logger = get_logger()
    if not logger.handlers:
        return configure(0)
    return logger
