"""repro.obs — the structured telemetry layer.

Seven small modules, one switch:

* :mod:`repro.obs.metrics` — the process-local :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms) and its mergeable,
  picklable :class:`MetricsSnapshot`;
* :mod:`repro.obs.tracing` — nested ``span("...")`` timers building a
  per-task span tree with wall/CPU time and entry counts;
* :mod:`repro.obs.events` — run ids, an optional JSONL event sink
  (flushed per line; ``REPRO_OBS_FSYNC`` adds fsync), and the per-run
  manifest written next to results;
* :mod:`repro.obs.live` — the streaming side: the per-sweep
  :class:`~repro.obs.live.LiveStats` aggregate the engine folds worker
  telemetry into, the ``--progress=live`` renderer, the Prometheus
  ``--metrics-port`` endpoint, and the event-stream follower behind
  ``repro tail`` / ``repro top``;
* :mod:`repro.obs.export` — Chrome trace-event JSON export of a sweep's
  distributed task timeline (``--trace-export``, Perfetto-loadable);
* :mod:`repro.obs.profile` — opt-in per-task cProfile with
  flamegraph-ready collapsed-stack output (``--profile``);
* :mod:`repro.obs.log` — the single ``repro`` stdlib-logging hierarchy
  all user-facing text flows through.

``REPRO_OBS=off`` in the environment turns every instrument call into a
no-op — including the live-telemetry piggybacking on executor frames
(``benchmarks/bench_obs_overhead.py`` asserts the instrumented and
streaming paths stay within a small budget of that baseline).

The experiment engine is the integration point: each task runs between
``registry.begin_task()`` / ``end_task()`` so its metric *delta* and
span tree travel back across the process boundary with its result, and
``run_sweep`` merges the per-task snapshots deterministically — a
parallel sweep's merged metrics equal the serial sweep's exactly.
"""

from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    OBS_ENV_VAR,
    enabled,
    get_registry,
    merge_snapshots,
    reset,
    set_enabled,
)
from repro.obs.tracing import span

__all__ = [
    "OBS_ENV_VAR",
    "Counter",
    "Gauge",
    "BucketHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "merge_snapshots",
    "enabled",
    "set_enabled",
    "reset",
    "span",
]
