"""repro.obs — the structured telemetry layer.

Four small modules, one switch:

* :mod:`repro.obs.metrics` — the process-local :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms) and its mergeable,
  picklable :class:`MetricsSnapshot`;
* :mod:`repro.obs.tracing` — nested ``span("...")`` timers building a
  per-task span tree with wall/CPU time and entry counts;
* :mod:`repro.obs.events` — run ids, an optional JSONL event sink, and
  the per-run manifest written next to results;
* :mod:`repro.obs.log` — the single ``repro`` stdlib-logging hierarchy
  all user-facing text flows through.

``REPRO_OBS=off`` in the environment turns every instrument call into a
no-op (``benchmarks/bench_obs_overhead.py`` asserts the instrumented
path stays within a small budget of that baseline).

The experiment engine is the integration point: each task runs between
``registry.begin_task()`` / ``end_task()`` so its metric *delta* and
span tree travel back across the process boundary with its result, and
``run_sweep`` merges the per-task snapshots deterministically — a
parallel sweep's merged metrics equal the serial sweep's exactly.
"""

from repro.obs.metrics import (
    BucketHistogram,
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    OBS_ENV_VAR,
    enabled,
    get_registry,
    merge_snapshots,
    reset,
    set_enabled,
)
from repro.obs.tracing import span

__all__ = [
    "OBS_ENV_VAR",
    "Counter",
    "Gauge",
    "BucketHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "get_registry",
    "merge_snapshots",
    "enabled",
    "set_enabled",
    "reset",
    "span",
]
