"""ASCII rendering of thermal fields, floorplans, and histograms.

The offline environment has no plotting stack, so the examples and CLI
render results as text: temperature grids as shaded-character heatmaps,
floorplans as labelled tile maps, and distributions as bar charts.
"""

from __future__ import annotations

import numpy as np

from repro.floorplan.layouts import Floorplan

__all__ = [
    "heatmap",
    "floorplan_map",
    "bar_chart",
    "progress_bar",
    "render_dashboard",
]

_SHADES = " .:-=+*#%@"


def heatmap(
    grid: np.ndarray,
    width: int = 60,
    height: int = 24,
    vmin: float | None = None,
    vmax: float | None = None,
    legend: bool = True,
) -> str:
    """Render a 2D field as a character heatmap (hotter = denser glyph)."""
    if grid.ndim != 2:
        raise ValueError("heatmap needs a 2D array")
    lo = float(grid.min()) if vmin is None else vmin
    hi = float(grid.max()) if vmax is None else vmax
    span = max(1e-12, hi - lo)

    rows, cols = grid.shape
    out_rows = min(height, rows)
    out_cols = min(width, cols)
    lines = []
    for r in range(out_rows):
        src_r = int(r * rows / out_rows)
        line = []
        for c in range(out_cols):
            src_c = int(c * cols / out_cols)
            level = (float(grid[src_r, src_c]) - lo) / span
            idx = min(len(_SHADES) - 1, max(0, int(level * (len(_SHADES) - 1) + 0.5)))
            line.append(_SHADES[idx])
        lines.append("".join(line))
    if legend:
        lines.append(f"[{lo:.1f} '{_SHADES[0]}' .. '{_SHADES[-1]}' {hi:.1f}]")
    return "\n".join(lines)


def floorplan_map(
    plan: Floorplan, die: int = 0, width: int = 60, height: int = 24
) -> str:
    """Render one die of a floorplan as a labelled tile map.

    Each block is painted with a letter; the legend maps letters back to
    block names.
    """
    blocks = plan.die_blocks(die)
    if not blocks:
        raise ValueError(f"die {die} has no blocks")
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
    legend = {}
    canvas = [["." for _ in range(width)] for _ in range(height)]
    for i, block in enumerate(blocks):
        letter = letters[i % len(letters)]
        legend[letter] = block.name
        x0 = int(block.rect.x / plan.die_width_mm * width)
        x1 = max(x0 + 1, int(block.rect.x2 / plan.die_width_mm * width))
        y0 = int(block.rect.y / plan.die_height_mm * height)
        y1 = max(y0 + 1, int(block.rect.y2 / plan.die_height_mm * height))
        for y in range(y0, min(y1, height)):
            for x in range(x0, min(x1, width)):
                canvas[y][x] = letter
    # Render with y increasing upward (floorplan convention).
    lines = ["".join(row) for row in reversed(canvas)]
    lines.append("")
    lines.extend(
        f"  {letter} = {name}" for letter, name in sorted(legend.items())
    )
    return "\n".join(lines)


def progress_bar(done: int, total: int, width: int = 40) -> str:
    """A ``[###...]`` bar for ``done`` of ``total`` (total 0 = empty)."""
    if total <= 0:
        return "[" + "." * width + "]"
    filled = min(width, int(width * done / total + 0.5))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_duration(seconds: float | None) -> str:
    if seconds is None:
        return "—"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds + 0.5), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_dashboard(row: dict, width: int = 40) -> str:
    """Render one live-sweep status row as a small terminal dashboard.

    ``row`` is :meth:`repro.obs.live.LiveStats.as_row` (or an event
    follower's reconstruction): progress bar with percentage, rate and
    ETA, a per-worker health line, and a failure/recovery counter line
    that only appears once something went wrong.
    """
    total = row.get("tasks_total", 0)
    done = row.get("tasks_done", 0)
    pct = 100.0 * done / total if total else 0.0
    eta = row.get("eta_s")
    header = f"{row.get('label', 'sweep')}"
    backend = row.get("backend", "")
    if backend:
        header += f" · {backend} · jobs={row.get('jobs', 1)}"
    if row.get("run_id"):
        header += f" · {row['run_id']}"
    lines = [
        header,
        (
            f"{progress_bar(done, total, width)} {done}/{total} "
            f"({pct:5.1f}%)  {row.get('rate_per_s', 0.0):.2f}/s  "
            f"eta {_fmt_duration(eta)}  "
            f"elapsed {_fmt_duration(row.get('elapsed_s', 0.0))}"
            + ("  done" if row.get("finished") else "")
        ),
    ]
    workers = row.get("workers") or []
    if workers:
        parts = []
        for health in workers:
            mark = "✗" if health.get("lost") else "·"
            chunk = health.get("inflight_chunk")
            parts.append(
                f"{mark}{health.get('worker', '?')}"
                f"[{'-' if chunk is None else f'c{chunk}'}"
                f" {health.get('tasks_done', 0)}t"
                f" {health.get('age_s', 0.0):.1f}s]"
            )
        lines.append("workers: " + " ".join(parts))
    trouble = {
        key: row.get(key, 0)
        for key in ("failures", "retries", "timeouts", "requeues",
                    "lost_workers", "lease_expiries", "duplicate_results")
        if row.get(key)
    }
    if trouble:
        lines.append(
            "trouble: " + "  ".join(f"{k}={v}" for k, v in trouble.items())
        )
    return "\n".join(lines)


def bar_chart(
    data: dict, width: int = 50, value_format: str = "{:.1%}"
) -> str:
    """Horizontal bar chart of a label -> value mapping."""
    if not data:
        raise ValueError("bar chart needs at least one entry")
    peak = max(data.values())
    label_width = max(len(str(k)) for k in data)
    lines = []
    for key, value in data.items():
        bar = "#" * (int(width * value / peak) if peak > 0 else 0)
        lines.append(
            f"{str(key).rjust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)
