"""Text-based visualization: heatmaps, floorplan maps, bar charts."""

from repro.viz.ascii import bar_chart, floorplan_map, heatmap

__all__ = ["bar_chart", "floorplan_map", "heatmap"]
