"""Lightweight statistics collection for simulator components.

Provides named scalar counters, running averages, and fixed-bin histograms.
Components own a :class:`StatGroup` and register stats at construction time;
experiment drivers read them after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "RunningMean", "Histogram", "StatGroup"]


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0


@dataclass
class RunningMean:
    """Incremental mean/min/max of a stream of samples."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def add(self, sample: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += sample
        if sample < self.minimum:
            self.minimum = sample
        if sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        """Mean of all samples so far (0.0 if no samples)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget all samples."""
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")


class Histogram:
    """A histogram over a fixed set of ordered bin labels.

    Used e.g. for the DFS frequency-residency histogram (Figure 7), where the
    bins are the discrete frequency levels.
    """

    def __init__(self, name: str, bins: list[float]):
        if not bins:
            raise ValueError("histogram needs at least one bin")
        self.name = name
        self.bins = list(bins)
        self.counts = [0] * len(bins)
        self._index = {b: i for i, b in enumerate(self.bins)}

    def add(self, bin_label: float, amount: int = 1) -> None:
        """Record ``amount`` occurrences of ``bin_label`` (must be a bin)."""
        try:
            self.counts[self._index[bin_label]] += amount
        except KeyError:
            raise KeyError(
                f"histogram {self.name}: {bin_label!r} is not a bin"
            ) from None

    @property
    def total(self) -> int:
        """Total number of recorded occurrences."""
        return sum(self.counts)

    def fractions(self) -> list[float]:
        """Per-bin fraction of the total (all zeros if empty)."""
        total = self.total
        if total == 0:
            return [0.0] * len(self.bins)
        return [c / total for c in self.counts]

    def mode(self) -> float:
        """The bin label with the highest count."""
        best = max(range(len(self.bins)), key=lambda i: self.counts[i])
        return self.bins[best]

    def mean(self) -> float:
        """Count-weighted mean of the bin labels (0.0 if empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(b * c for b, c in zip(self.bins, self.counts)) / total

    def reset(self) -> None:
        """Zero all bins."""
        self.counts = [0] * len(self.bins)


class StatGroup:
    """A named collection of stats belonging to one component."""

    def __init__(self, name: str):
        self.name = name
        self._stats: dict[str, Counter | RunningMean | Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Create (or fetch) a counter called ``name``."""
        return self._get_or_create(name, lambda: Counter(name))

    def running_mean(self, name: str) -> RunningMean:
        """Create (or fetch) a running mean called ``name``."""
        return self._get_or_create(name, lambda: RunningMean(name))

    def histogram(self, name: str, bins: list[float]) -> Histogram:
        """Create (or fetch) a histogram called ``name`` with ``bins``."""
        return self._get_or_create(name, lambda: Histogram(name, bins))

    def _get_or_create(self, name, factory):
        stat = self._stats.get(name)
        if stat is None:
            stat = factory()
            self._stats[name] = stat
        return stat

    def __getitem__(self, name: str):
        return self._stats[name]

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def names(self) -> list[str]:
        """Sorted names of all registered stats."""
        return sorted(self._stats)

    def as_dict(self) -> dict[str, float | list[int]]:
        """Snapshot of all stats, suitable for reporting."""
        out: dict[str, float | list[int]] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, RunningMean):
                out[name] = stat.mean
            else:
                out[name] = list(stat.counts)
        return out

    def reset(self) -> None:
        """Reset every stat in the group."""
        for stat in self._stats.values():
            stat.reset()
