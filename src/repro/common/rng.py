"""Deterministic random-number streams.

Every stochastic component of the simulator draws from its own named child
stream of a single root seed, so that (a) runs are reproducible bit-for-bit
and (b) changing how one component consumes randomness does not perturb any
other component.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream ``name``.

    The derivation hashes both inputs so that streams with related names
    ("core0", "core1") are statistically independent.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngFactory:
    """Factory of independent, named :class:`numpy.random.Generator` streams.

    Example::

        rngs = RngFactory(seed=42)
        addr_rng = rngs.stream("addresses")
        fault_rng = rngs.stream("faults")
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name``.

        Calling this twice with the same name returns two generators in the
        same initial state (they will produce identical sequences).
        """
        return np.random.default_rng(derive_seed(self._seed, name))

    def child(self, name: str) -> "RngFactory":
        """Return a new factory whose root seed is derived from ``name``."""
        return RngFactory(derive_seed(self._seed, name))
