"""2D geometry primitives used by floorplans and the thermal grid."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Rect"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: origin ``(x, y)`` plus width and height.

    Units are whatever the caller uses consistently (floorplans use metres).
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(f"negative rectangle dimensions: {self}")

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        """Centre point ``(cx, cy)``."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Rect") -> bool:
        """True if the two rectangles share interior area (not just edges)."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle."""
        return (
            other.x >= self.x
            and other.y >= self.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap between the two rectangles (0 if disjoint)."""
        dx = min(self.x2, other.x2) - max(self.x, other.x)
        dy = min(self.y2, other.y2) - max(self.y, other.y)
        if dx <= 0 or dy <= 0:
            return 0.0
        return dx * dy

    def manhattan_distance_to(self, other: "Rect") -> float:
        """Manhattan distance between the centres of two rectangles."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return abs(cx1 - cx2) + abs(cy1 - cy2)

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy of this rectangle moved by ``(dx, dy)``."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)
