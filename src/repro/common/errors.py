"""Exception hierarchy for the repro library.

Every exception raised intentionally by this package derives from
:class:`ReproError` so callers can catch library errors without catching
programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class QueueFullError(SimulationError):
    """A bounded inter-core queue was pushed while full."""


class QueueEmptyError(SimulationError):
    """A bounded inter-core queue was popped while empty."""


class FloorplanError(ReproError):
    """A floorplan is geometrically invalid (overlap, out-of-die block)."""


class ThermalModelError(ReproError):
    """The thermal solver was given an invalid stack or power map."""


class CalibrationError(ReproError):
    """A model could not be calibrated to its published anchor values."""


# ---------------------------------------------------------------------
# Sweep-execution failure taxonomy (repro.experiments.engine).  The
# engine mirrors the paper's detect-and-recover discipline: every task
# failure is classified, carries enough context to re-run the task, and
# is either retried, collected, or escalated to a sweep abort.


class TaskError(ReproError):
    """One sweep task exhausted its attempts.

    Carries the task's checkpoint key, its position in the sweep, how
    many attempts were executed, and the traceback captured inside the
    worker process (a plain string — the original exception object never
    crosses the process boundary).
    """

    def __init__(
        self,
        message: str,
        *,
        task_key: str = "",
        task_index: int | None = None,
        attempts: int = 1,
        worker_traceback: str = "",
    ):
        super().__init__(message)
        self.task_key = task_key
        self.task_index = task_index
        self.attempts = attempts
        self.worker_traceback = worker_traceback


class TaskTimeoutError(TaskError):
    """A task exceeded its per-task timeout on every allowed attempt."""

    def __init__(self, message: str, *, timeout_s: float = 0.0, **kwargs):
        super().__init__(message, **kwargs)
        self.timeout_s = timeout_s


class TaskQuarantinedError(TaskError):
    """A task was quarantined after repeatedly killing its workers.

    The supervision layer bisected the task's chunk down to a single
    grain, attributed the worker deaths to this task, and committed a
    failure for it instead of degrading the whole sweep.  The task is
    recorded in the checkpoint and the report with this error; a
    ``--resume`` gives it one fresh chance.
    """


class WorkerCrashError(ReproError):
    """The worker pool kept dying and serial degradation was disabled.

    Raised only when ``TaskPolicy.degrade_serial`` is off; with the
    default policy the engine falls back to in-process execution instead.
    """

    def __init__(self, message: str, *, rebuilds: int = 0):
        super().__init__(message)
        self.rebuilds = rebuilds


class ExecutorBrokenError(ReproError):
    """An executor backend ran out of capacity (every worker lost, the
    pool exceeded its rebuild budget, or the transport failed for good).

    Raised *internally* by executor backends to signal the scheduler
    that the backend cannot make further progress; the scheduler then
    degrades down the backend chain (``socket -> local -> inline``) or,
    when degradation is disabled, escalates as
    :class:`WorkerCrashError`.
    """

    def __init__(self, message: str, *, backend: str = ""):
        super().__init__(message)
        self.backend = backend


class SweepAbortedError(ReproError):
    """A fail-fast sweep stopped early; ``failures`` holds the task errors."""

    def __init__(self, message: str, *, label: str = "", failures=()):
        super().__init__(message)
        self.label = label
        self.failures = list(failures)


class SweepDrainedError(ReproError):
    """A sweep stopped early because a drain was requested (SIGTERM).

    Not a failure: every chunk already in flight was allowed to finish
    and commit to the checkpoint, pending chunks were cancelled before
    they started, and the run can be completed with ``--resume``.
    ``completed``/``total`` count tasks; ``stranded`` counts tasks whose
    chunks were cancelled unstarted.
    """

    def __init__(
        self,
        message: str,
        *,
        label: str = "",
        run_id: str = "",
        completed: int = 0,
        total: int = 0,
        stranded: int = 0,
    ):
        super().__init__(message)
        self.label = label
        self.run_id = run_id
        self.completed = completed
        self.total = total
        self.stranded = stranded


class ChaosError(ReproError):
    """A fault injected by the chaos hook (``REPRO_CHAOS``), not a real bug."""
