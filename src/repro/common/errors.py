"""Exception hierarchy for the repro library.

Every exception raised intentionally by this package derives from
:class:`ReproError` so callers can catch library errors without catching
programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class QueueFullError(SimulationError):
    """A bounded inter-core queue was pushed while full."""


class QueueEmptyError(SimulationError):
    """A bounded inter-core queue was popped while empty."""


class FloorplanError(ReproError):
    """A floorplan is geometrically invalid (overlap, out-of-die block)."""


class ThermalModelError(ReproError):
    """The thermal solver was given an invalid stack or power map."""


class CalibrationError(ReproError):
    """A model could not be calibrated to its published anchor values."""
