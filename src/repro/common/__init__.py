"""Shared infrastructure: units, configs, RNG streams, stats, geometry."""

from repro.common.config import (
    BranchPredictorConfig,
    CacheGeometry,
    CheckerCoreConfig,
    ChipModel,
    DfsConfig,
    LeadingCoreConfig,
    NucaConfig,
    NucaPolicy,
    QueueConfig,
    SystemConfig,
    ThermalConfig,
)
from repro.common.errors import (
    CalibrationError,
    ConfigError,
    FloorplanError,
    QueueEmptyError,
    QueueFullError,
    ReproError,
    SimulationError,
    ThermalModelError,
)
from repro.common.geometry import Rect
from repro.common.rng import RngFactory, derive_seed
from repro.common.stats import Counter, Histogram, RunningMean, StatGroup

__all__ = [
    "BranchPredictorConfig",
    "CacheGeometry",
    "CheckerCoreConfig",
    "ChipModel",
    "DfsConfig",
    "LeadingCoreConfig",
    "NucaConfig",
    "NucaPolicy",
    "QueueConfig",
    "SystemConfig",
    "ThermalConfig",
    "CalibrationError",
    "ConfigError",
    "FloorplanError",
    "QueueEmptyError",
    "QueueFullError",
    "ReproError",
    "SimulationError",
    "ThermalModelError",
    "Rect",
    "RngFactory",
    "derive_seed",
    "Counter",
    "Histogram",
    "RunningMean",
    "StatGroup",
]
