"""Plain-text table formatting shared by the CLI and benchmark harness."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs import log

__all__ = ["format_table", "print_table"]


def format_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render a fixed-width table with a title banner."""
    rows = [list(map(str, row)) for row in rows]
    header = list(map(str, header))
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Log :func:`format_table` output with a leading blank line.

    Goes through the ``repro.tables`` logger so entry points decide where
    table text lands; a default stdout handler is installed when nothing
    configured logging first.
    """
    log.ensure_configured()
    log.get_logger("tables").info("\n" + format_table(title, header, rows))
