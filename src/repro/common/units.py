"""Physical unit constants and conversion helpers.

All internal quantities in this library are stored in SI base units
(metres, seconds, watts, kelvin-relative degrees Celsius, farads) unless a
name explicitly says otherwise (``*_mm``, ``*_cycles``, ...).  The constants
below make call sites read like the paper: ``10 * MICROMETRE``.
"""

from __future__ import annotations

# Length
METRE = 1.0
MILLIMETRE = 1e-3
MICROMETRE = 1e-6
NANOMETRE = 1e-9

# Area
MM2 = 1e-6  # square metres per square millimetre

# Time / frequency
SECOND = 1.0
MILLISECOND = 1e-3
NANOSECOND = 1e-9
PICOSECOND = 1e-12
HERTZ = 1.0
MEGAHERTZ = 1e6
GIGAHERTZ = 1e9

# Electrical
VOLT = 1.0
FARAD = 1.0
FEMTOFARAD = 1e-15
WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6

# Data
BYTE = 1
KILOBYTE = 1024
MEGABYTE = 1024 * 1024


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area in mm^2 to m^2."""
    return area_mm2 * MM2


def m2_to_mm2(area_m2: float) -> float:
    """Convert an area in m^2 to mm^2."""
    return area_m2 / MM2


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert degrees Celsius to kelvin."""
    return temp_c + 273.15


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert kelvin to degrees Celsius."""
    return temp_k - 273.15
