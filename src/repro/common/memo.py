"""Keyed memoization of immutable simulation artifacts.

``runner._prepare`` historically re-ran trace generation, cache
preloading, and predictor pretraining for every single simulation, even
when the ``(profile, seed, window)`` key was identical across a sweep's
inner loop (``fig6_performance`` regenerates the same trace four times
per benchmark).  This module caches the artifacts that are safe to
share and rebuilds the ones that are not:

* **traces** — stored columnar (:class:`~repro.isa.soa.TraceArrays`,
  frozen read-only), so one generated stream is shared, shorter windows
  are zero-copy slices, and pickling across the process pool ships nine
  arrays instead of thousands of objects.  The generator is kept alive
  per ``(profile, seed)`` so a longer request extends the existing
  stream instead of starting over (chunked generation makes prefixes
  stable).  Object consumers go through :meth:`ArtifactCache.trace`,
  which materializes an immutable tuple of ``Instruction``.
* **pretrained branch predictors** — pretraining replays thousands of
  outcomes through pure-Python tables; the cache trains once and hands
  out :meth:`~repro.core.branch.BranchPredictor.clone` copies, because
  predictors mutate during simulation.
* **thermal models** — :class:`~repro.thermal.hotspot.ChipThermalModel`
  LU-factorises its conductance matrix at construction.  Factorisation
  depends only on geometry (stack, die size, block rectangles), never on
  power, so models are cached by geometry key and re-solved per power
  assignment; the inner :class:`~repro.thermal.grid.GridThermalModel` is
  additionally shared between floorplans with identical stacks.

Mutable per-run state — ``MemoryHierarchy``, queue occupancy, DFS
controllers — is deliberately *not* cached: it is rebuilt for every
simulation, which is what keeps parallel and serial sweeps bit-identical.

Caches are process-local.  Parallel workers each build their own (the
engine's chunked submission keeps one benchmark's tasks on one worker so
the warm cache gets hits).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.metrics import get_registry
from repro.workloads.profiles import WorkloadProfile

__all__ = ["MemoStats", "ArtifactCache", "get_cache", "clear_cache"]

# Traces dominate the cache's footprint (hundreds of bytes per dynamic
# instruction), so only the most recently used streams are kept.  The
# sweep drivers iterate benchmark-major, which makes even a small LRU
# window hit on every inner-loop re-request.
_TRACE_LRU_ENTRIES = 4


@dataclass
class MemoStats:
    """Hit/miss counts for one artifact category."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class _TraceEntry:
    generator: object
    arrays: object = None  # TraceArrays; grown by prefix-stable extension


class ArtifactCache:
    """Process-local cache of reusable simulation artifacts."""

    def __init__(self, max_trace_entries: int = _TRACE_LRU_ENTRIES):
        self._max_trace_entries = max_trace_entries
        self._traces: OrderedDict[tuple, _TraceEntry] = OrderedDict()
        self._predictors: dict[tuple, object] = {}
        self._thermal_models: dict[tuple, object] = {}
        self._grids: dict[tuple, object] = {}
        self._preload_plans: dict[tuple, object] = {}
        self._schedules: dict[tuple, tuple[int, object]] = {}
        self._branch_streams: dict[tuple, object] = {}
        self.stats: dict[str, MemoStats] = {
            "trace": MemoStats(),
            "predictor": MemoStats(),
            "thermal": MemoStats(),
            "grid": MemoStats(),
            "preload": MemoStats(),
            "schedule": MemoStats(),
            "branch": MemoStats(),
        }

    def _record(self, category: str, hit: bool) -> None:
        """Count one lookup, mirrored into the process metrics registry."""
        stats = self.stats[category]
        if hit:
            stats.hits += 1
            get_registry().counter(f"memo.{category}.hits").inc()
        else:
            stats.misses += 1
            get_registry().counter(f"memo.{category}.misses").inc()

    def clear(self) -> None:
        """Drop every cached artifact and reset the statistics."""
        self._traces.clear()
        self._predictors.clear()
        self._thermal_models.clear()
        self._grids.clear()
        self._preload_plans.clear()
        self._schedules.clear()
        self._branch_streams.clear()
        for stats in self.stats.values():
            stats.hits = 0
            stats.misses = 0

    # -- traces --------------------------------------------------------
    def trace_arrays(self, profile: WorkloadProfile, seed: int, count: int):
        """The first ``count`` instructions of ``(profile, seed)``'s stream
        as a frozen (read-only) :class:`~repro.isa.soa.TraceArrays`.

        The columnar form is what the cache stores: extension for a longer
        request is an array concat (chunked generation keeps prefixes
        identical to a fresh ``generate_arrays(count)``), shorter requests
        are zero-copy slices, and the frozen flag guarantees no consumer
        can corrupt the shared stream.
        """
        from repro.isa.soa import TraceArrays

        entry = self._trace_entry(profile, seed)
        if len(entry.arrays) >= count:
            self._record("trace", hit=True)
        else:
            self._record("trace", hit=False)
            extension = entry.generator.generate_arrays(
                count - len(entry.arrays)
            )
            entry.arrays = TraceArrays.concat(
                [entry.arrays, extension]
            ).freeze()
        return entry.arrays[:count]

    def _trace_entry(self, profile: WorkloadProfile, seed: int) -> _TraceEntry:
        """The LRU entry for ``(profile, seed)``, created on demand."""
        from repro.isa.soa import TraceArrays
        from repro.isa.trace import TraceGenerator

        key = (profile, seed)
        entry = self._traces.get(key)
        if entry is None:
            entry = _TraceEntry(
                generator=TraceGenerator(profile, seed=seed),
                arrays=TraceArrays.empty(),
            )
            self._traces[key] = entry
            if len(self._traces) > self._max_trace_entries:
                self._traces.popitem(last=False)
        self._traces.move_to_end(key)
        return entry

    def prime_trace_batch(self, requests) -> None:
        """Pre-generate several trace streams through the lockstep kernels.

        ``requests`` is an iterable of ``(profile, seed, count)``; every
        stream that is not yet ``count`` instructions long is extended in
        one batched :func:`~repro.isa.trace.generate_arrays_batch` pass
        (bit-identical per stream to solo generation).  Subsequent
        :meth:`trace_arrays` lookups then hit.  Requests beyond the LRU
        capacity are ignored — they would only evict each other.
        """
        from repro.isa.soa import TraceArrays
        from repro.isa.trace import generate_arrays_batch

        entries, needs = [], []
        for profile, seed, count in list(requests)[: self._max_trace_entries]:
            entry = self._trace_entry(profile, seed)
            if len(entry.arrays) < count:
                entries.append(entry)
                needs.append(count - len(entry.arrays))
        if not entries:
            return
        batch = generate_arrays_batch(
            [entry.generator for entry in entries], needs
        )
        for b, entry in enumerate(entries):
            entry.arrays = TraceArrays.concat(
                [entry.arrays, batch.sim(b)]
            ).freeze()

    def trace(self, profile: WorkloadProfile, seed: int, count: int) -> tuple:
        """The first ``count`` instructions of ``(profile, seed)``'s stream
        as an immutable tuple of ``Instruction`` objects (legacy adapter
        over :meth:`trace_arrays`; object consumers like the fault-injection
        harness still use this form)."""
        return tuple(self.trace_arrays(profile, seed, count).to_instructions())

    # -- cache preload plans -------------------------------------------
    def preload_plan(self, key: tuple, compute):
        """A memoized bulk cache-preload plan (see ``preload_lines``).

        Plans are pure functions of the preload address set and the cache
        geometry — callers key them by ``(profile, cache kind, geometry)``
        — so the sort/unique/position math runs once per key per process
        however many simulations rebuild the same hierarchy.  ``compute``
        may return ``None`` (preconditions failed); that result is not
        cached.
        """
        plan = self._preload_plans.get(key)
        if plan is not None:
            self._record("preload", hit=True)
            return plan
        self._record("preload", hit=False)
        plan = compute()
        if plan is not None:
            self._preload_plans[key] = plan
        return plan

    # -- trace schedules -----------------------------------------------
    def trace_schedule(self, profile: WorkloadProfile, seed: int,
                       count: int, config):
        """A :class:`~repro.core.leading.TraceSchedule` covering the
        first ``count`` rows of ``(profile, seed)``'s stream.

        Schedules are pure functions of the trace order and the queue
        geometry, and they are prefix-stable — a schedule built over a
        longer prefix is valid for any shorter run — so one entry per
        ``(stream, geometry)`` serves every simulation of that pair,
        rebuilt only when a longer window is requested.
        """
        from repro.core.leading import build_trace_schedule

        key = (
            profile, seed, config.rob_size, config.lsq_size,
            config.int_issue_queue_size, config.fp_issue_queue_size,
        )
        entry = self._schedules.get(key)
        if entry is not None and entry[0] >= count:
            self._record("schedule", hit=True)
            return entry[1]
        self._record("schedule", hit=False)
        schedule = build_trace_schedule(
            self.trace_arrays(profile, seed, count), config
        )
        self._schedules[key] = (count, schedule)
        return schedule

    # -- branch predictors ---------------------------------------------
    def branch_stream_view(self, profile: WorkloadProfile, seed: int):
        """A cursor over ``(profile, seed)``'s memoized branch stream.

        The first request pretrains a predictor (via
        :meth:`pretrained_predictor`, so the master cache is shared) and
        wraps it in a :class:`~repro.core.branch.BranchStream`; every
        request returns a fresh zero-cost
        :class:`~repro.core.branch.BranchStreamView`.  The view resolves
        branches through the shared stream, so K same-stream simulations
        replay the predictor once instead of cloning its tables K times.
        """
        from repro.core.branch import BranchStream

        key = (profile, seed)
        stream = self._branch_streams.get(key)
        if stream is None:
            self._record("branch", hit=False)
            stream = BranchStream(self.pretrained_predictor(profile, seed))
            self._branch_streams[key] = stream
        else:
            self._record("branch", hit=True)
        return stream.view()

    def pretrained_predictor(self, profile: WorkloadProfile, seed: int):
        """A freshly cloned, pretrained predictor for ``(profile, seed)``.

        The master copy is trained once and never simulated; every caller
        receives an independent clone, so one run's updates cannot leak
        into another.
        """
        from repro.core.branch import BranchPredictor
        from repro.isa.trace import TraceGenerator

        key = (profile, seed)
        master = self._predictors.get(key)
        if master is None:
            self._record("predictor", hit=False)
            master = BranchPredictor()
            TraceGenerator(profile, seed=seed).pretrain_predictor(master)
            self._predictors[key] = master
        else:
            self._record("predictor", hit=True)
        return master.clone()

    # -- thermal models ------------------------------------------------
    @staticmethod
    def _geometry_key(floorplan, config) -> tuple:
        blocks = tuple(
            (b.name, b.die, b.rect.x, b.rect.y, b.rect.width, b.rect.height)
            for b in floorplan.blocks
        )
        return (
            floorplan.num_dies,
            floorplan.die_width_mm,
            floorplan.die_height_mm,
            blocks,
            config,
        )

    def _grid_factory(self, **kwargs):
        """Build (or reuse) a grid solver keyed by its full geometry."""
        from repro.thermal.grid import GridThermalModel

        key = (
            tuple(kwargs["layers"]),
            kwargs["width_m"],
            kwargs["height_m"],
            kwargs["rows"],
            kwargs["cols"],
            kwargs["sink_r_k_mm2_per_w"],
            kwargs["secondary_r_k_mm2_per_w"],
            kwargs["ambient_c"],
        )
        grid = self._grids.get(key)
        if grid is None:
            self._record("grid", hit=False)
            grid = GridThermalModel(**kwargs)
            self._grids[key] = grid
        else:
            self._record("grid", hit=True)
        return grid

    def thermal_model(self, floorplan, config=None):
        """A :class:`ChipThermalModel` for ``floorplan``'s geometry.

        Cached by geometry, *not* power: callers must pass their block
        powers to ``solve`` (or use :meth:`solve_floorplan`).  The LU
        factorisation therefore happens once per stack geometry per
        process, however many power assignments are swept over it.
        """
        from repro.common.config import ThermalConfig
        from repro.thermal.hotspot import ChipThermalModel

        config = config or ThermalConfig()
        key = self._geometry_key(floorplan, config)
        model = self._thermal_models.get(key)
        if model is None:
            self._record("thermal", hit=False)
            model = ChipThermalModel(
                floorplan, config, grid_factory=self._grid_factory
            )
            self._thermal_models[key] = model
        else:
            self._record("thermal", hit=True)
        return model

    def solve_floorplan(self, floorplan, config=None, overrides=None):
        """Solve ``floorplan`` with its own powers on the cached model.

        Equivalent to ``ChipThermalModel(floorplan, config).solve(overrides)``
        but reuses the factorisation for any floorplan sharing the
        geometry; the power map (block powers and distributed wire power)
        is taken from the floorplan being solved, not the cached one, with
        ``overrides`` replacing individual block powers on top.
        """
        model = self.thermal_model(floorplan, config)
        powers = {b.name: b.power_w for b in floorplan.blocks}
        if overrides:
            powers.update(overrides)
        saved = model.floorplan.distributed_power_w
        model.floorplan.distributed_power_w = floorplan.distributed_power_w
        try:
            return model.solve(powers)
        finally:
            model.floorplan.distributed_power_w = saved


_GLOBAL_CACHE = ArtifactCache()


def get_cache() -> ArtifactCache:
    """This process's shared artifact cache."""
    return _GLOBAL_CACHE


def clear_cache() -> None:
    """Drop all artifacts from the process-wide cache."""
    _GLOBAL_CACHE.clear()
