"""Configuration dataclasses for every simulated subsystem.

The defaults reproduce Table 1 (SimpleScalar simulation parameters) and
Table 3 (thermal model parameters) of the paper.  Configs are frozen so a
config object can be shared between components without defensive copying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigError

__all__ = [
    "BranchPredictorConfig",
    "CacheGeometry",
    "LeadingCoreConfig",
    "CheckerCoreConfig",
    "QueueConfig",
    "DfsConfig",
    "NucaPolicy",
    "NucaConfig",
    "ChipModel",
    "ThermalConfig",
    "SystemConfig",
]


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Combined bimodal / 2-level predictor with BTB (Table 1)."""

    bimodal_entries: int = 16384
    level1_entries: int = 16384
    history_bits: int = 12
    level2_entries: int = 16384
    btb_sets: int = 16384
    btb_ways: int = 2
    mispredict_penalty_cycles: int = 12

    def __post_init__(self) -> None:
        for name in ("bimodal_entries", "level1_entries", "level2_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"{name} must be a positive power of two")


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache."""

    size_bytes: int = 32 * 1024
    ways: int = 2
    line_bytes: int = 64
    hit_latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                "cache size must be a multiple of ways * line size: "
                f"{self.size_bytes} vs {self.ways}x{self.line_bytes}"
            )
        sets = self.num_sets
        if sets & (sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {sets}")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class LeadingCoreConfig:
    """Out-of-order leading core (Table 1 defaults)."""

    fetch_width: int = 4
    dispatch_width: int = 4
    commit_width: int = 4
    rob_size: int = 80
    int_issue_queue_size: int = 20
    fp_issue_queue_size: int = 15
    lsq_size: int = 40
    int_alus: int = 4
    int_mults: int = 2
    fp_alus: int = 1
    fp_mults: int = 1
    l1_icache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(hit_latency_cycles=1)
    )
    l1_dcache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(hit_latency_cycles=2)
    )
    frequency_hz: float = 2.0e9
    memory_latency_cycles: int = 300

    def __post_init__(self) -> None:
        if self.rob_size <= 0:
            raise ConfigError("rob_size must be positive")
        if self.fetch_width <= 0 or self.commit_width <= 0:
            raise ConfigError("fetch/commit width must be positive")

    def scaled_frequency(self, factor: float) -> "LeadingCoreConfig":
        """A copy of this config with frequency multiplied by ``factor``."""
        return replace(self, frequency_hz=self.frequency_hz * factor)


@dataclass(frozen=True)
class QueueConfig:
    """Sizes of the inter-core queues (Section 2.1: slack of 200)."""

    slack_target: int = 200
    rvq_entries: int = 200
    lvq_entries: int = 80
    boq_entries: int = 40
    stb_entries: int = 40

    def __post_init__(self) -> None:
        if self.rvq_entries < self.slack_target:
            raise ConfigError(
                "RVQ must hold at least the target slack "
                f"({self.rvq_entries} < {self.slack_target})"
            )


@dataclass(frozen=True)
class DfsConfig:
    """Dynamic frequency scaling of the trailing core (Section 2.1).

    The checker's frequency is chosen from ``num_levels`` evenly spaced
    multipliers of the peak frequency, re-evaluated every
    ``interval_cycles`` leading-core cycles based on RVQ occupancy
    thresholds (expressed as fractions of RVQ capacity).
    """

    num_levels: int = 10
    interval_cycles: int = 1000
    low_occupancy_threshold: float = 0.15
    high_occupancy_threshold: float = 0.40
    # Scaling up reacts faster than scaling down: the less aggressive
    # heuristic the paper settles on (Section 4, Discussion) protects the
    # leading core's throughput at a small power cost.
    up_step: int = 2
    down_step: int = 1
    min_level: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_occupancy_threshold < self.high_occupancy_threshold <= 1.0:
            raise ConfigError("DFS thresholds must satisfy 0 <= low < high <= 1")
        if not 1 <= self.min_level <= self.num_levels:
            raise ConfigError("min_level must be within [1, num_levels]")

    def levels(self) -> list[float]:
        """The available frequency multipliers, ascending (e.g. 0.1 .. 1.0)."""
        return [i / self.num_levels for i in range(1, self.num_levels + 1)]


@dataclass(frozen=True)
class CheckerCoreConfig:
    """In-order trailing checker core (Section 2)."""

    issue_width: int = 4
    peak_frequency_hz: float = 2.0e9
    uses_register_value_prediction: bool = True
    queues: QueueConfig = field(default_factory=QueueConfig)
    dfs: DfsConfig = field(default_factory=DfsConfig)

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.peak_frequency_hz <= 0:
            raise ConfigError("peak_frequency_hz must be positive")


class NucaPolicy(enum.Enum):
    """How the NUCA L2 maps blocks to banks (Section 3.1)."""

    DISTRIBUTED_SETS = "distributed-sets"
    DISTRIBUTED_WAYS = "distributed-ways"


@dataclass(frozen=True)
class NucaConfig:
    """NUCA L2 cache: 1 MB banks on a grid, 4-cycle hops (Section 3.1)."""

    num_banks: int = 6
    bank_size_bytes: int = 1024 * 1024
    bank_ways: int = 1
    line_bytes: int = 64
    bank_access_cycles: int = 6
    hop_cycles: int = 4
    policy: NucaPolicy = NucaPolicy.DISTRIBUTED_SETS
    # Optional bank-conflict modelling: re-referencing a bank while its
    # previous access is still in flight queues behind it.  Off by default
    # (the paper's NUCA latencies are uncontended averages).
    model_contention: bool = False
    contention_window: int = 4

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ConfigError("num_banks must be positive")

    @property
    def total_size_bytes(self) -> int:
        """Total L2 capacity across banks."""
        return self.num_banks * self.bank_size_bytes

    @property
    def total_ways(self) -> int:
        """Total associativity when ways are distributed across banks."""
        return self.num_banks * self.bank_ways


class ChipModel(enum.Enum):
    """The four chip organizations evaluated in the paper."""

    TWO_D_A = "2d-a"          # single die, 6 MB L2, no checker
    TWO_D_2A = "2d-2a"        # single big die, 15 MB L2 + checker
    THREE_D_2A = "3d-2a"      # stacked: checker + 9 MB extra L2 on die 2
    THREE_D_CHECKER = "3d-checker"  # stacked: checker only on die 2

    @property
    def has_checker(self) -> bool:
        """Whether this model includes the trailing checker core."""
        return self is not ChipModel.TWO_D_A

    @property
    def is_3d(self) -> bool:
        """Whether this model stacks a second die."""
        return self in (ChipModel.THREE_D_2A, ChipModel.THREE_D_CHECKER)

    @property
    def l2_banks(self) -> int:
        """Number of 1 MB L2 banks in this model."""
        if self in (ChipModel.TWO_D_A, ChipModel.THREE_D_CHECKER):
            return 6
        return 15


@dataclass(frozen=True)
class ThermalConfig:
    """Thermal model parameters (Table 3)."""

    bulk_si_thickness_die1_m: float = 750e-6
    bulk_si_thickness_die2_m: float = 20e-6
    active_layer_thickness_m: float = 1e-6
    metal_layer_thickness_m: float = 12e-6
    d2d_via_thickness_m: float = 10e-6
    si_resistivity_mk_per_w: float = 0.01      # (m K)/W
    cu_resistivity_mk_per_w: float = 0.0833    # (m K)/W
    d2d_resistivity_mk_per_w: float = 0.0166   # (m K)/W
    grid_rows: int = 50
    grid_cols: int = 50
    ambient_c: float = 47.0
    # Package: convective resistance from the heat-sink side to ambient in
    # K·mm²/W (divide by die area for K/W) — a bigger die gets a bigger
    # sink, as the paper notes for the 2d-2a model (Section 3.1).
    heatsink_resistance_k_per_w_mm2: float = 1.5
    # Secondary (top-of-package) heat path; much weaker than the sink.
    secondary_resistance_k_per_w_mm2: float = 1500.0

    def __post_init__(self) -> None:
        if self.grid_rows <= 1 or self.grid_cols <= 1:
            raise ConfigError("thermal grid must be at least 2x2")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration of one simulated reliable processor."""

    chip: ChipModel = ChipModel.THREE_D_2A
    leading: LeadingCoreConfig = field(default_factory=LeadingCoreConfig)
    checker: CheckerCoreConfig = field(default_factory=CheckerCoreConfig)
    nuca: NucaConfig = field(default_factory=NucaConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    checker_power_w: float = 7.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.checker_power_w < 0:
            raise ConfigError("checker_power_w must be non-negative")

    @staticmethod
    def for_chip(chip: ChipModel, checker_power_w: float = 7.0, seed: int = 42) -> "SystemConfig":
        """Build the standard configuration for one of the paper's models.

        ``2d-a``/``3d-checker`` get a 6-bank L2; ``2d-2a``/``3d-2a`` get
        15 banks, matching Section 3.1.
        """
        nuca = NucaConfig(num_banks=chip.l2_banks)
        return SystemConfig(
            chip=chip, nuca=nuca, checker_power_w=checker_power_w, seed=seed
        )
