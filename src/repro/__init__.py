"""repro — reproduction of "Leveraging 3D Technology for Improved
Reliability" (Madan & Balasubramonian, MICRO 2007).

A from-scratch Python implementation of the paper's reliable processor —
an out-of-order leading core checked by a 3D-stacked in-order trailing
core — together with every substrate its evaluation needs: synthetic
SPEC2k-like workloads, a NUCA L2, Wattch-style power, a HotSpot-style 3D
thermal grid, interconnect and die-to-die via models, ITRS technology
scaling, and soft/timing-error models.

Quick start::

    from repro import simulate_rmt, ChipModel
    result = simulate_rmt("gzip", ChipModel.THREE_D_2A)
    print(result.leading.ipc, result.modal_frequency_fraction)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    DfsConfig,
    LeadingCoreConfig,
    NucaConfig,
    NucaPolicy,
    QueueConfig,
    SystemConfig,
    ThermalConfig,
)
from repro.core.functional import FunctionalRmt
from repro.core.rmt import RmtSimulator, RmtTimingResult
from repro.experiments.runner import (
    SimulationWindow,
    simulate_leading,
    simulate_rmt,
)
from repro.floorplan.layouts import CheckerPlacement, Floorplan, build_floorplan
from repro.presets import DesignPoint, load_preset, preset_names
from repro.thermal.hotspot import ChipThermalModel, solve_floorplan
from repro.workloads.profiles import SPEC2K_PROFILES, get_profile, spec2k_suite

__version__ = "1.0.0"

__all__ = [
    "CheckerCoreConfig",
    "ChipModel",
    "DfsConfig",
    "LeadingCoreConfig",
    "NucaConfig",
    "NucaPolicy",
    "QueueConfig",
    "SystemConfig",
    "ThermalConfig",
    "FunctionalRmt",
    "RmtSimulator",
    "RmtTimingResult",
    "SimulationWindow",
    "simulate_leading",
    "simulate_rmt",
    "CheckerPlacement",
    "Floorplan",
    "build_floorplan",
    "DesignPoint",
    "load_preset",
    "preset_names",
    "ChipThermalModel",
    "solve_floorplan",
    "SPEC2K_PROFILES",
    "get_profile",
    "spec2k_suite",
    "__version__",
]
