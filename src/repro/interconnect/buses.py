"""Inter-core bus requirements: Table 4 of the paper.

The leading core sends load values, branch outcomes and register
results+operands to the checker; the checker sends store values back.  The
per-cycle bandwidth — and hence the die-to-die via count in 3D — follows
from the core's issue widths.  With the Table 1 core (4-wide issue, 2-wide
load/store issue, 1 branch port): 128 + 1 + 128 + 768 = 1025 vias between
the cores, plus a 384-bit pillar for the upper-die L2 banks (64-bit
address + 256-bit data + 64-bit control).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BusSpec", "intercore_buses", "l2_pillar", "total_d2d_vias"]


@dataclass(frozen=True)
class BusSpec:
    """One inter-die bus: its width and the block its via pillar sits in."""

    name: str
    width_bits: int
    via_block: str   # floorplan block name where the pillar lands


def intercore_buses(
    load_issue_width: int = 2,
    store_issue_width: int = 2,
    branch_pred_ports: int = 1,
    issue_width: int = 4,
) -> list[BusSpec]:
    """The four leading↔checker buses of Table 4.

    Register values carry 192 bits per issued instruction: a 64-bit result
    plus two 64-bit input operands for register value prediction.
    """
    return [
        BusSpec("loads", load_issue_width * 64, "lsq"),
        BusSpec("branch_outcome", branch_pred_ports * 1, "bpred"),
        BusSpec("stores", store_issue_width * 64, "lsq"),
        BusSpec("register_values", issue_width * 192, "regfile"),
    ]


def l2_pillar() -> BusSpec:
    """The 384-bit pillar between the L2 controller and upper-die banks."""
    return BusSpec("l2_transfer", 64 + 256 + 64, "l2_ctl")


def total_d2d_vias(**kwargs) -> int:
    """Total die-to-die via count (1409 for the Table 1 core)."""
    return sum(b.width_bits for b in intercore_buses(**kwargs)) + l2_pillar().width_bits
