"""NUCA grid topology derived from floorplan geometry.

The NUCA model's per-bank hop counts (`repro.cache.nuca._BANK_HOPS`) are
calibrated tables reproducing the paper's average hit latencies.  This
module derives hop counts *from first principles*: build the bank-grid
graph from floorplan adjacency (banks sharing an edge are linked; the
controller attaches to the banks bordering it; upper-die banks hang off
the via pillar above the controller) and run shortest paths.  A test
asserts the two views agree, so the calibrated tables cannot silently
drift from the geometry that justifies them.
"""

from __future__ import annotations

import networkx as nx

from repro.floorplan.layouts import Floorplan
from repro.interconnect.wires import _adjacent

__all__ = ["bank_grid_graph", "derive_bank_hops", "average_hit_latency"]

_CTL = "l2_ctl"
_PILLAR = "l2_pillar"


def bank_grid_graph(plan: Floorplan) -> "nx.Graph":
    """The NUCA network graph of a floorplan.

    Nodes: the L2 controller, the via pillar (3D only), and every bank.
    Edges: geometric adjacency on each die, controller→adjacent lower
    banks, and the pillar linking the controller to the upper-die banks
    directly above it.
    """
    graph = nx.Graph()
    graph.add_node(_CTL)
    banks = [b for b in plan.blocks if b.name.startswith("bank")]
    ctl = plan.block(_CTL)
    for bank in banks:
        graph.add_node(bank.name)
    # Same-die adjacency.  Links also span the checker/buffer strip that
    # separates bank rows on the upper die (the wires route over it), so
    # banks facing each other across a small gap are neighbours too.
    max_gap_mm = 1.1
    for i, a in enumerate(banks):
        for b in banks[i + 1 :]:
            if a.die != b.die:
                continue
            if _adjacent(a.rect, b.rect) or _faces_across_gap(
                a.rect, b.rect, max_gap_mm
            ):
                graph.add_edge(a.name, b.name)
    # Controller attachment on die 0.
    for bank in banks:
        if bank.die == 0 and _adjacent(bank.rect, ctl.rect):
            graph.add_edge(_CTL, bank.name)
    # The inter-die pillar surfaces above the controller; it reaches the
    # upper-die banks whose footprint overlaps or borders the controller's.
    upper = [b for b in banks if b.die == 1]
    if upper:
        graph.add_node(_PILLAR)
        graph.add_edge(_CTL, _PILLAR)
        attached = False
        for bank in upper:
            if (
                bank.rect.intersection_area(ctl.rect) > 1e-9
                or _adjacent(bank.rect, ctl.rect)
            ):
                graph.add_edge(_PILLAR, bank.name)
                attached = True
        if not attached:
            # Fall back to the geometrically nearest upper bank.
            nearest = min(
                upper, key=lambda b: b.rect.manhattan_distance_to(ctl.rect)
            )
            graph.add_edge(_PILLAR, nearest.name)
    return graph


def _faces_across_gap(a, b, max_gap: float) -> bool:
    """Rectangles that overlap in x (or y) and face each other across a
    gap no wider than ``max_gap``."""
    overlap_x = min(a.x2, b.x2) - max(a.x, b.x)
    overlap_y = min(a.y2, b.y2) - max(a.y, b.y)
    gap_y = max(a.y, b.y) - min(a.y2, b.y2)
    gap_x = max(a.x, b.x) - min(a.x2, b.x2)
    return (overlap_x > 0 and 0 < gap_y <= max_gap) or (
        overlap_y > 0 and 0 < gap_x <= max_gap
    )


def derive_bank_hops(plan: Floorplan) -> dict[str, int]:
    """Hop count from the requesting core to every bank, by shortest path.

    The pillar edge is free (vertical vias add no grid hop); every
    horizontal link costs one hop; and one ingress hop gets the request
    from the core into the controller's router in the first place.
    """
    graph = bank_grid_graph(plan)
    weights = {
        (u, v): (0 if _PILLAR in (u, v) and _CTL in (u, v) else 1)
        for u, v in graph.edges
    }
    nx.set_edge_attributes(graph, {e: {"weight": w} for e, w in weights.items()})
    lengths = nx.single_source_dijkstra_path_length(graph, _CTL, weight="weight")
    ingress = 1
    return {
        name: int(dist) + ingress
        for name, dist in lengths.items()
        if name.startswith("bank")
    }


def average_hit_latency(
    plan: Floorplan, hop_cycles: int = 4, bank_access_cycles: int = 6
) -> float:
    """Mean L2 hit latency implied by the derived topology."""
    hops = derive_bank_hops(plan)
    if not hops:
        raise ValueError("floorplan has no banks")
    return sum(
        h * hop_cycles + bank_access_cycles for h in hops.values()
    ) / len(hops)
