"""Orion-lite NoC router model for the NUCA grid (Section 3.1).

The paper's routers are conventional 4-stage designs whose switch and
virtual-channel allocation stages run in parallel, giving three router
cycles plus one link cycle per hop; power and area come from Orion
(Table 2: 0.296 W, 0.22 mm²).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan.blocks import ROUTER_AREA_MM2, ROUTER_POWER_W

__all__ = ["RouterModel"]


@dataclass(frozen=True)
class RouterModel:
    """One grid router."""

    pipeline_stages: int = 4
    router_cycles_per_hop: int = 3   # switch+VC allocation run in parallel
    link_cycles_per_hop: int = 1
    peak_power_w: float = ROUTER_POWER_W
    area_mm2: float = ROUTER_AREA_MM2
    static_fraction: float = 0.35

    @property
    def hop_latency_cycles(self) -> int:
        """Total cycles per hop (4 in the paper's NUCA methodology)."""
        return self.router_cycles_per_hop + self.link_cycles_per_hop

    def power_w(self, flits_per_cycle: float = 1.0) -> float:
        """Router power at a given utilisation."""
        if not 0.0 <= flits_per_cycle <= 1.0:
            raise ValueError("utilisation must be in [0, 1]")
        static = self.peak_power_w * self.static_fraction
        dynamic = self.peak_power_w * (1.0 - self.static_fraction)
        return static + dynamic * flits_per_cycle
