"""Horizontal interconnect: lengths, metalization area, and power.

Wire lengths are measured on the floorplans (Manhattan distance between
block centres times a routing detour factor); metal area uses the 210 nm
top-level pitch at 65 nm; wire power uses the power-optimized global-wire
methodology of Cheng et al. [6], reduced to an effective per-millimetre
constant at 2 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import ChipModel
from repro.floorplan.layouts import Floorplan
from repro.interconnect.buses import BusSpec, intercore_buses, l2_pillar

__all__ = [
    "WIRE_PITCH_MM",
    "WIRE_POWER_W_PER_MM",
    "WireBudget",
    "intercore_wire_length_mm",
    "l2_wire_length_mm",
    "wire_budget",
]

# Top-level metal pitch at 65 nm (Section 3.4).
WIRE_PITCH_MM = 210e-6
# Effective power of a pipelined, power-optimized global wire per mm at
# 2 GHz (derived from [6]; calibrated so the 2d-a L2 interconnect
# dissipates the paper's 5.1 W).
WIRE_POWER_W_PER_MM = 5.0e-4
# Manhattan distances understate routed length; standard detour allowance.
ROUTING_DETOUR = 1.15
# Width of the link between the L2 controller and each bank (address +
# data + control, matching the Table 4 pillar width).
L2_LINK_BITS = 384


@dataclass(frozen=True)
class WireBudget:
    """Interconnect totals for one chip model."""

    chip: ChipModel
    intercore_length_mm: float
    l2_length_mm: float
    intercore_metal_area_mm2: float
    l2_metal_area_mm2: float
    intercore_power_w: float
    l2_power_w: float

    @property
    def total_length_mm(self) -> float:
        """All horizontal interconnect length."""
        return self.intercore_length_mm + self.l2_length_mm

    @property
    def total_metal_area_mm2(self) -> float:
        """All horizontal metal area."""
        return self.intercore_metal_area_mm2 + self.l2_metal_area_mm2

    @property
    def total_power_w(self) -> float:
        """All horizontal interconnect power (the 5.1/15.5/12.1 W figures)."""
        return self.intercore_power_w + self.l2_power_w


def _distance_mm(plan: Floorplan, a: str, b: str) -> float:
    return plan.block(a).rect.manhattan_distance_to(plan.block(b).rect) * ROUTING_DETOUR


def intercore_wire_length_mm(plan: Floorplan) -> float:
    """Total horizontal length of the leading↔checker buses.

    In 2D the wires run from each source unit to the checker across the
    die.  In 3D each bus rises on its via pillar (placed in the source
    unit) and only traverses the upper die horizontally to the checker —
    this is the 7490 mm → 4279 mm reduction of Section 3.4.
    """
    if not plan.chip.has_checker:
        return 0.0
    total = 0.0
    for bus in intercore_buses():
        # In both layouts the horizontal run is source-to-checker; in 3D
        # the checker is on die 2 but the pillar surfaces directly above
        # the source block, so the same block-centre distance applies,
        # measured on the (smaller) stacked die.
        total += bus.width_bits * _distance_mm(plan, bus.via_block, "checker")
    return total


def l2_wire_length_mm(plan: Floorplan) -> float:
    """Total horizontal length of the NUCA grid links.

    The NUCA network is a grid: adjacent banks share 384-bit links, and the
    controller attaches to the banks bordering it.  (Upper-die banks hang
    off the 384-bit via pillar above the controller, so no extra
    horizontal controller link is needed there beyond the bank grid.)
    """
    banks = [b for b in plan.blocks if b.name.startswith("bank")]
    ctl = plan.block("l2_ctl")
    total = 0.0
    seen: set[tuple[str, str]] = set()
    for i, a in enumerate(banks):
        for b in banks[i + 1 :]:
            if a.die != b.die:
                continue
            if _adjacent(a.rect, b.rect):
                key = (a.name, b.name)
                if key not in seen:
                    seen.add(key)
                    total += (
                        L2_LINK_BITS
                        * a.rect.manhattan_distance_to(b.rect)
                        * ROUTING_DETOUR
                    )
        # Controller attachment links (the controller sits on die 0; on the
        # upper die the pillar surfaces at the same x/y footprint).
        if _adjacent(a.rect, ctl.rect):
            total += (
                L2_LINK_BITS
                * a.rect.manhattan_distance_to(ctl.rect)
                * ROUTING_DETOUR
            )
    return total


def _adjacent(a, b) -> bool:
    """Whether two rectangles share an edge (tiled grid neighbours)."""
    eps = 1e-6
    share_x = a.x < b.x2 - eps and b.x < a.x2 - eps
    share_y = a.y < b.y2 - eps and b.y < a.y2 - eps
    touch_x = abs(a.x2 - b.x) < eps or abs(b.x2 - a.x) < eps
    touch_y = abs(a.y2 - b.y) < eps or abs(b.y2 - a.y) < eps
    return (share_x and touch_y) or (share_y and touch_x)


def wire_budget(plan: Floorplan) -> WireBudget:
    """Length / metal area / power of all horizontal interconnect."""
    intercore = intercore_wire_length_mm(plan)
    l2 = l2_wire_length_mm(plan)
    return WireBudget(
        chip=plan.chip,
        intercore_length_mm=intercore,
        l2_length_mm=l2,
        intercore_metal_area_mm2=intercore * WIRE_PITCH_MM,
        l2_metal_area_mm2=l2 * WIRE_PITCH_MM,
        intercore_power_w=intercore * WIRE_POWER_W_PER_MM,
        l2_power_w=l2 * WIRE_POWER_W_PER_MM,
    )
