"""Die-to-die via electrical model (Section 3.4).

State-of-the-art F2F integration gives d2d via lengths of 5-20 µm [9]; the
paper assumes 10 µm, a worst-case coupling capacitance of 0.594 fF/µm for
a via surrounded by eight neighbours, 5 µm width and 5 µm spacing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["D2dViaModel"]


@dataclass(frozen=True)
class D2dViaModel:
    """Power and area of die-to-die vias."""

    length_um: float = 10.0
    capacitance_f_per_um: float = 0.594e-15
    width_um: float = 5.0
    spacing_um: float = 5.0
    voltage_v: float = 1.0
    frequency_hz: float = 2.0e9

    @property
    def capacitance_f(self) -> float:
        """Worst-case capacitance of one via."""
        return self.capacitance_f_per_um * self.length_um

    def via_power_w(self, activity: float = 1.0) -> float:
        """Dynamic power of one via (the paper's worst case uses α = 1)."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        return activity * self.capacitance_f * self.voltage_v**2 * self.frequency_hz

    def total_power_w(self, num_vias: int, activity: float = 1.0) -> float:
        """Power of a pillar of ``num_vias`` (15.49 mW for all 1409)."""
        return num_vias * self.via_power_w(activity)

    def via_area_mm2(self) -> float:
        """Footprint of one via including its spacing allotment."""
        return (self.width_um + self.spacing_um) * self.width_um * 1e-6

    def total_area_mm2(self, num_vias: int) -> float:
        """Area of all vias (0.07 mm² for 1409 at 5 µm width/spacing)."""
        return num_vias * self.via_area_mm2()
