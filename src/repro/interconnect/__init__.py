"""Interconnect models: inter-die vias, buses, horizontal wires, NoC."""

from repro.interconnect.buses import (
    BusSpec,
    intercore_buses,
    l2_pillar,
    total_d2d_vias,
)
from repro.interconnect.noc import RouterModel
from repro.interconnect.topology import (
    average_hit_latency,
    bank_grid_graph,
    derive_bank_hops,
)
from repro.interconnect.vias import D2dViaModel
from repro.interconnect.wires import (
    WIRE_PITCH_MM,
    WIRE_POWER_W_PER_MM,
    WireBudget,
    intercore_wire_length_mm,
    l2_wire_length_mm,
    wire_budget,
)

__all__ = [
    "BusSpec",
    "intercore_buses",
    "l2_pillar",
    "total_d2d_vias",
    "RouterModel",
    "average_hit_latency",
    "bank_grid_graph",
    "derive_bank_hops",
    "D2dViaModel",
    "WIRE_PITCH_MM",
    "WIRE_POWER_W_PER_MM",
    "WireBudget",
    "intercore_wire_length_mm",
    "l2_wire_length_mm",
    "wire_budget",
]
