"""Dynamic timing-error model: slack versus variability (Sections 3.5/4).

Circuit delay in each pipeline stage is modelled as a Gaussian whose
spread comes from the ITRS circuit-performance variability (Table 6) plus
dynamic conditions (temperature, supply noise, coupling).  A dynamic
timing error occurs when the realised delay exceeds the cycle time; a
checker core running at a fraction of its peak frequency has a cycle that
is proportionally longer while the circuit delay is unchanged — the paper's
argument that the DFS-throttled checker enjoys large natural margins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.power.itrs import VARIABILITY_TABLE, relative_gate_delay

__all__ = ["TimingErrorModel", "timing_error_rate"]


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class TimingErrorModel:
    """Per-stage timing-error probability model for one process node.

    ``sigma_fraction`` is the standard deviation of stage delay as a
    fraction of nominal delay.  By default it derives from Table 6's
    circuit performance variability (treating the published +/- figure as
    a 3-sigma bound).
    """

    feature_nm: int = 65
    design_margin: float = 0.10       # nominal delay = (1-margin) x cycle
    sigma_fraction: float | None = None
    pipeline_stages: int = 12
    # Fraction of the ITRS variability that is *dynamic* (temperature,
    # supply noise, coupling); the static part is absorbed by the design
    # margin at timing closure.
    dynamic_variability_fraction: float = 0.2

    def sigma(self) -> float:
        """Delay sigma as a fraction of the nominal stage delay."""
        if self.sigma_fraction is not None:
            return self.sigma_fraction
        node = self.feature_nm if self.feature_nm != 90 else 80
        variability = VARIABILITY_TABLE[node].circuit_performance_variability
        return variability / 3.0 * self.dynamic_variability_fraction

    def nominal_delay_fraction(self, reference_nm: int | None = None) -> float:
        """Nominal stage delay as a fraction of the *peak* cycle time.

        If the circuit is implemented at an older node but must meet the
        same peak cycle as ``reference_nm``, the fraction exceeds 1 and the
        peak frequency must drop (Section 4's 2 GHz → 1.4 GHz).
        """
        base = 1.0 - self.design_margin
        if reference_nm is None or reference_nm == self.feature_nm:
            return base
        return base * relative_gate_delay(self.feature_nm, reference_nm)

    def stage_error_probability(self, frequency_fraction: float,
                                reference_nm: int | None = None) -> float:
        """P(stage delay > cycle) at ``frequency_fraction`` of peak."""
        if not 0.0 < frequency_fraction <= 1.0 + 1e-9:
            raise ValueError("frequency fraction must be in (0, 1]")
        cycle = 1.0 / frequency_fraction            # in units of peak cycle
        nominal = self.nominal_delay_fraction(reference_nm)
        z = (cycle - nominal) / (self.sigma() * nominal)
        return 1.0 - _phi(z)

    def error_rate_per_instruction(self, frequency_fraction: float,
                                   reference_nm: int | None = None) -> float:
        """P(at least one stage misses timing for one instruction)."""
        p = self.stage_error_probability(frequency_fraction, reference_nm)
        return 1.0 - (1.0 - p) ** self.pipeline_stages

    def slack_fraction(self, frequency_fraction: float,
                       reference_nm: int | None = None) -> float:
        """Fraction of the cycle left as slack at a frequency level.

        At 0.6x peak frequency the slack is ≈ 46% of the cycle — the
        "plenty of slack" observation of Section 3.5.
        """
        cycle = 1.0 / frequency_fraction
        nominal = self.nominal_delay_fraction(reference_nm)
        return max(0.0, (cycle - nominal) / cycle)


def timing_error_rate(
    frequency_fraction: float,
    feature_nm: int = 65,
    reference_nm: int | None = None,
) -> float:
    """Convenience wrapper: per-instruction timing-error probability."""
    model = TimingErrorModel(feature_nm=feature_nm)
    return model.error_rate_per_instruction(frequency_fraction, reference_nm)
