"""Error-rate models: soft errors, timing errors, checker resilience."""

from repro.reliability.margins import (
    CheckerResilience,
    checker_resilience,
    compare_checker_processes,
)
from repro.reliability.ser import (
    SER_PER_BIT_RELATIVE,
    SoftErrorModel,
    critical_charge_fc,
    mbu_probability,
    per_bit_ser,
    total_chip_ser,
)
from repro.reliability.timing import TimingErrorModel, timing_error_rate

__all__ = [
    "CheckerResilience",
    "checker_resilience",
    "compare_checker_processes",
    "SER_PER_BIT_RELATIVE",
    "SoftErrorModel",
    "critical_charge_fc",
    "mbu_probability",
    "per_bit_ser",
    "total_chip_ser",
    "TimingErrorModel",
    "timing_error_rate",
]
