"""Soft-error-rate models: Figures 8 and 9 of the paper.

Figure 8 (after Seifert et al. [33]) shows the per-bit SRAM soft error
rate from neutrons and alpha particles across process nodes: the per-bit
rate *decreases* slowly with scaling, but transistor density grows as
1/F², so the per-chip rate *increases* — the paper's argument for why an
older-process checker die is more error-resilient.

Figure 9 shows the probability that an upset is a multi-bit upset (MBU)
as a function of the cell's critical charge Q_crit: as Q_crit shrinks at
newer nodes, one particle strike increasingly flips several adjacent
bits, which ECC cannot always correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "SER_PER_BIT_RELATIVE",
    "per_bit_ser",
    "total_chip_ser",
    "critical_charge_fc",
    "mbu_probability",
    "SoftErrorModel",
]

# Per-bit SRAM SER relative to 180 nm (neutron + alpha, Figure 8 trend:
# roughly flat-to-declining per bit).
SER_PER_BIT_RELATIVE: dict[int, float] = {
    180: 1.00,
    130: 0.82,
    90: 0.68,
    65: 0.55,
    45: 0.46,
}

# Critical charge (fC) per SRAM cell: scales with node capacitance and
# supply voltage (Q ≈ C·V), normalised to typical published values.
_CRITICAL_CHARGE_FC: dict[int, float] = {
    180: 8.0,
    130: 4.5,
    90: 2.5,
    65: 1.5,
    45: 1.0,
}

# Shape constant of the MBU probability curve (Figure 9): the probability
# that an upset flips multiple bits rises steeply as Q_crit falls.
_MBU_Q0_FC = 1.8
_MBU_MAX = 0.35


def per_bit_ser(feature_nm: int) -> float:
    """Per-bit soft error rate relative to 180 nm."""
    try:
        return SER_PER_BIT_RELATIVE[feature_nm]
    except KeyError:
        raise KeyError(
            f"no SER data for {feature_nm} nm; available: "
            f"{sorted(SER_PER_BIT_RELATIVE)}"
        ) from None


def total_chip_ser(feature_nm: int, reference_nm: int = 180) -> float:
    """Chip-level SER relative to ``reference_nm`` at constant die area.

    Bit count grows as (reference/feature)², so the total rate rises even
    as the per-bit rate falls — the "Total SER" line of Figure 8.
    """
    density = (reference_nm / feature_nm) ** 2
    return per_bit_ser(feature_nm) / per_bit_ser(reference_nm) * density


def critical_charge_fc(feature_nm: int) -> float:
    """Critical charge of an SRAM cell at a node (fC)."""
    try:
        return _CRITICAL_CHARGE_FC[feature_nm]
    except KeyError:
        raise KeyError(f"no critical-charge data for {feature_nm} nm") from None


def mbu_probability(q_crit_fc: float) -> float:
    """Probability an upset is a multi-bit upset, given Q_crit (Figure 9).

    Exponential saturation: negligible at high critical charge, rising
    toward ``_MBU_MAX`` as Q_crit approaches zero.
    """
    if q_crit_fc < 0:
        raise ValueError("critical charge cannot be negative")
    return _MBU_MAX * math.exp(-q_crit_fc / _MBU_Q0_FC)


@dataclass(frozen=True)
class SoftErrorModel:
    """Per-structure soft-error rates for fault-injection campaigns.

    ``base_fit_per_mbit`` is the FIT rate (failures per 10⁹ hours) per
    megabit of unprotected SRAM at the reference node; everything else
    scales from the published curves.
    """

    feature_nm: int = 65
    base_fit_per_mbit: float = 1000.0
    reference_nm: int = 180

    def fit_per_mbit(self) -> float:
        """FIT per megabit at this node."""
        rel = per_bit_ser(self.feature_nm) / per_bit_ser(self.reference_nm)
        return self.base_fit_per_mbit * rel

    def upset_probability_per_cycle(
        self, bits: int, frequency_hz: float = 2.0e9
    ) -> float:
        """Probability of at least one upset in ``bits`` in one cycle."""
        fit = self.fit_per_mbit() * bits / 1e6
        upsets_per_second = fit / (1e9 * 3600.0)
        return min(1.0, upsets_per_second / frequency_hz)

    def mbu_fraction(self) -> float:
        """Fraction of upsets that are multi-bit at this node."""
        return mbu_probability(critical_charge_fc(self.feature_nm))
