"""Checker resilience analysis: combining DFS residency with error models.

Section 3.5 argues the throttled checker is naturally resilient: most of
its cycles run at a fraction of peak frequency, leaving large timing
slack.  Section 4 adds that an older process further reduces soft-error
and timing-error susceptibility.  This module computes the expected error
rates of a checker given its frequency-residency histogram (from the RMT
co-simulation) and compares process choices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reliability.ser import (
    critical_charge_fc,
    mbu_probability,
    per_bit_ser,
)
from repro.reliability.timing import TimingErrorModel

__all__ = ["CheckerResilience", "checker_resilience", "compare_checker_processes"]


@dataclass(frozen=True)
class CheckerResilience:
    """Expected error susceptibility of one checker design point."""

    feature_nm: int
    expected_timing_error_rate: float   # per instruction, residency-weighted
    mean_slack_fraction: float
    relative_soft_error_rate: float     # per bit, vs 180 nm
    mbu_fraction: float

    @property
    def uncorrectable_upset_rate(self) -> float:
        """Per-bit rate of upsets SECDED cannot correct (multi-bit).

        The decisive reliability metric for the ECC-protected trailing
        register file (Section 3.5): single-bit upsets are corrected, so
        only multi-bit upsets threaten recovery.  The older node wins here
        even though its raw per-bit rate is higher (Figure 8 vs Figure 9).
        """
        return self.relative_soft_error_rate * self.mbu_fraction


def checker_resilience(
    residency: dict[float, float],
    feature_nm: int = 65,
    reference_nm: int | None = None,
) -> CheckerResilience:
    """Evaluate a checker given its DFS frequency-residency histogram.

    ``residency`` maps frequency fractions to time fractions (Figure 7).
    ``reference_nm`` is the node whose peak cycle the design targets (the
    leading core's), for heterogeneous stacks.
    """
    model = TimingErrorModel(feature_nm=feature_nm)
    total = sum(residency.values())
    if total <= 0:
        raise ValueError("residency histogram is empty")
    err = 0.0
    slack = 0.0
    for fraction, weight in residency.items():
        w = weight / total
        err += w * model.error_rate_per_instruction(fraction, reference_nm)
        slack += w * model.slack_fraction(fraction, reference_nm)
    return CheckerResilience(
        feature_nm=feature_nm,
        expected_timing_error_rate=err,
        mean_slack_fraction=slack,
        relative_soft_error_rate=per_bit_ser(feature_nm),
        mbu_fraction=mbu_probability(critical_charge_fc(feature_nm)),
    )


def compare_checker_processes(
    residency: dict[float, float],
    old_nm: int = 90,
    new_nm: int = 65,
    peak_ratio_old: float = 0.7,
) -> dict[str, CheckerResilience]:
    """Same-node vs older-node checker (Section 4).

    The older-node checker's frequency levels are capped at
    ``peak_ratio_old`` of the leading core's peak (1.4 GHz under 2 GHz),
    so its residency histogram is re-normalised onto the reachable levels.
    """
    capped: dict[float, float] = {}
    for fraction, weight in residency.items():
        level = min(fraction, peak_ratio_old)
        capped[level] = capped.get(level, 0.0) + weight
    return {
        "same-node": checker_resilience(residency, feature_nm=new_nm),
        "older-node": checker_resilience(
            capped, feature_nm=old_nm, reference_nm=new_nm
        ),
    }
