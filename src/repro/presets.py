"""Named design points: the exact configurations the paper evaluates.

Each preset bundles a chip model, its powered floorplan, the simulation
configs, and a description, so downstream code can say
``load_preset("3d-2a-15w")`` instead of assembling the pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    LeadingCoreConfig,
    SystemConfig,
)
from repro.experiments.thermal import standard_floorplan
from repro.floorplan.layouts import Floorplan

__all__ = ["DesignPoint", "PRESETS", "load_preset", "preset_names"]


@dataclass(frozen=True)
class _PresetSpec:
    chip: ChipModel
    checker_power_w: float
    description: str
    checker_peak_ratio: float = 1.0
    upper_die_tech_nm: int = 65


PRESETS: dict[str, _PresetSpec] = {
    "2d-a": _PresetSpec(
        ChipModel.TWO_D_A, 0.0,
        "Unreliable baseline: single die, 6 MB L2, no checker.",
    ),
    "2d-2a": _PresetSpec(
        ChipModel.TWO_D_2A, 7.0,
        "Equal-transistor 2D chip: checker + 15 MB L2 on one big die.",
    ),
    "3d-2a-7w": _PresetSpec(
        ChipModel.THREE_D_2A, 7.0,
        "The proposal, optimistic checker: 7 W in-order core + 9 MB L2 "
        "snapped onto the 2d-a die.",
    ),
    "3d-2a-15w": _PresetSpec(
        ChipModel.THREE_D_2A, 15.0,
        "The proposal, pessimistic checker: 15 W in-order core.",
    ),
    "3d-checker": _PresetSpec(
        ChipModel.THREE_D_CHECKER, 7.0,
        "Stacked checker die with no extra cache (inactive silicon).",
    ),
    "hetero-90nm": _PresetSpec(
        ChipModel.THREE_D_2A, 23.7,
        "Section 4: the checker die in a 90 nm process — larger, more "
        "power, lower density, capped at 1.4 GHz, more error-resilient.",
        checker_peak_ratio=0.7,
        upper_die_tech_nm=90,
    ),
}


@dataclass
class DesignPoint:
    """A fully-assembled design point."""

    name: str
    description: str
    chip: ChipModel
    system: SystemConfig
    floorplan: Floorplan
    checker_peak_ratio: float = 1.0
    leading: LeadingCoreConfig = field(default_factory=LeadingCoreConfig)
    checker: CheckerCoreConfig = field(default_factory=CheckerCoreConfig)


def preset_names() -> list[str]:
    """Available preset names."""
    return list(PRESETS)


def load_preset(name: str) -> DesignPoint:
    """Assemble one of the paper's design points by name."""
    try:
        spec = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {preset_names()}"
        ) from None
    kwargs = {}
    if spec.upper_die_tech_nm != 65:
        kwargs["upper_die_tech_nm"] = spec.upper_die_tech_nm
    plan = standard_floorplan(
        spec.chip, checker_power_w=spec.checker_power_w, **kwargs
    )
    return DesignPoint(
        name=name,
        description=spec.description,
        chip=spec.chip,
        system=SystemConfig.for_chip(spec.chip, checker_power_w=spec.checker_power_w or 7.0),
        floorplan=plan,
        checker_peak_ratio=spec.checker_peak_ratio,
    )
