"""Timing model of the out-of-order leading core.

A one-pass dependence-driven scheduler: each dynamic instruction is assigned
fetch, issue, completion and commit cycles subject to

* fetch bandwidth and I-cache misses,
* branch mispredictions (front-end redirect at branch resolution plus the
  Table 1 penalty of 12 cycles),
* register dependences through a rename map,
* functional-unit and issue-bandwidth structural hazards,
* load latencies observed from the L1/NUCA-L2 hierarchy,
* ROB / LSQ occupancy and in-order commit bandwidth,
* an optional external *commit gate* used by the RMT harness to model
  RVQ/StB backpressure from the trailing core.

This style of scheduler tracks the cycle-by-cycle simulators it abstracts
closely for the quantities the paper's evaluation needs (relative IPC across
L2 organizations, commit-time streams for the checker co-simulation) at a
small fraction of the cost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.config import LeadingCoreConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor
from repro.core.memory import MemoryHierarchy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import EXECUTION_LATENCY, OpClass

__all__ = ["LeadingCoreTiming", "LeadingRunResult"]

# Front-end depth from fetch to dispatch (rename/decode stages).
_FRONT_END_DEPTH = 4
_PRUNE_PERIOD = 4096


@dataclass
class LeadingRunResult:
    """Summary of a leading-core timing run."""

    instructions: int
    cycles: int
    ipc: float
    branch_mispredict_rate: float
    l1d_miss_rate: float
    l2_misses_per_10k: float
    average_l2_hit_latency: float
    op_counts: dict[str, int]


class LeadingCoreTiming:
    """Incremental OoO timing model; feed instructions via :meth:`schedule`."""

    def __init__(
        self,
        config: LeadingCoreConfig,
        memory: MemoryHierarchy,
        predictor: BranchPredictor | None = None,
    ):
        self.config = config
        self.memory = memory
        self.predictor = predictor or BranchPredictor()
        self.stats = StatGroup("leading")

        self._fu_capacity = {
            OpClass.IALU: config.int_alus,
            OpClass.IMUL: config.int_mults,
            OpClass.FALU: config.fp_alus,
            OpClass.FMUL: config.fp_mults,
        }
        # Per-cycle structural usage maps, pruned periodically.
        self._issue_usage: dict[int, int] = {}
        self._fu_usage: dict[tuple[int, OpClass], int] = {}

        self._fetch_cycle = 0
        self._fetch_in_group = 0
        self._redirect_until = 0
        self._last_fetch_line = -1
        self._rename: dict[int, int] = {}  # reg -> completion cycle
        self._rob_commits: deque[int] = deque(maxlen=config.rob_size)
        self._lsq_commits: deque[int] = deque(maxlen=config.lsq_size)
        # Issue-queue occupancy: an IQ entry is held from dispatch until
        # issue, so dispatch stalls until the (i - iq_size)-th same-class
        # instruction has issued.
        self._int_issues: deque[int] = deque(maxlen=config.int_issue_queue_size)
        self._fp_issues: deque[int] = deque(maxlen=config.fp_issue_queue_size)
        self._last_commit_cycle = 0
        self._commits_in_cycle = 0
        self._scheduled = 0
        self._last_commit = 0
        self._op_counts: dict[str, int] = {c.value: 0 for c in OpClass}

    # ------------------------------------------------------------------
    def schedule(self, instr: Instruction, commit_gate: int = 0) -> int:
        """Schedule one instruction; returns its commit cycle.

        ``commit_gate`` is the earliest cycle the instruction may commit
        (RVQ/StB backpressure from the RMT harness); 0 means unconstrained.
        """
        cfg = self.config
        self._op_counts[instr.op.value] += 1

        # ---- fetch ----
        if self._fetch_cycle < self._redirect_until:
            self._fetch_cycle = self._redirect_until
            self._fetch_in_group = 0
        line = instr.pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            fetch_latency = self.memory.fetch_latency(instr.pc)
            if fetch_latency > cfg.l1_icache.hit_latency_cycles:
                self._fetch_cycle += fetch_latency
                self._fetch_in_group = 0
        if self._fetch_in_group >= cfg.fetch_width:
            self._fetch_cycle += 1
            self._fetch_in_group = 0
        self._fetch_in_group += 1
        fetch_cycle = self._fetch_cycle

        # ---- dispatch (ROB / LSQ / issue-queue availability) ----
        dispatch = fetch_cycle + _FRONT_END_DEPTH
        if len(self._rob_commits) == cfg.rob_size:
            dispatch = max(dispatch, self._rob_commits[0] + 1)
        if instr.op.is_memory and len(self._lsq_commits) == cfg.lsq_size:
            dispatch = max(dispatch, self._lsq_commits[0] + 1)
        issue_ring = self._fp_issues if instr.op.is_fp else self._int_issues
        if len(issue_ring) == issue_ring.maxlen:
            dispatch = max(dispatch, issue_ring[0] + 1)

        # ---- operand readiness ----
        ready = dispatch + 1
        if instr.src1 >= 0:
            ready = max(ready, self._rename.get(instr.src1, 0))
        if instr.src2 >= 0:
            ready = max(ready, self._rename.get(instr.src2, 0))

        # ---- issue (structural hazards) ----
        issue = self._find_issue_cycle(ready, instr.op)
        issue_ring.append(issue)

        # ---- execute ----
        if instr.is_load:
            latency = self.memory.load_latency(instr.address)
        else:
            latency = EXECUTION_LATENCY[instr.op]
        complete = issue + latency

        if instr.writes_register:
            self._rename[instr.dst] = complete

        # ---- branch resolution ----
        if instr.is_branch:
            mispredicted = self.predictor.update(instr.pc, instr.taken, instr.target)
            if mispredicted:
                self._redirect_until = (
                    complete + self.predictor.config.mispredict_penalty_cycles
                )

        # ---- in-order commit ----
        commit = max(complete + 1, self._last_commit_cycle, commit_gate)
        if commit == self._last_commit_cycle:
            if self._commits_in_cycle >= cfg.commit_width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit_cycle = commit

        self._rob_commits.append(commit)
        if instr.op.is_memory:
            self._lsq_commits.append(commit)
            if instr.is_store:
                self.memory.store_commit(instr.address)

        self._scheduled += 1
        self._last_commit = commit
        if self._scheduled % _PRUNE_PERIOD == 0:
            self._prune(issue)
        return commit

    # ------------------------------------------------------------------
    def _find_issue_cycle(self, earliest: int, op: OpClass) -> int:
        pool = (
            OpClass.IALU
            if op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH)
            else op
        )
        cap = self._fu_capacity[pool]
        width = self.config.dispatch_width
        cycle = earliest
        while True:
            if (
                self._issue_usage.get(cycle, 0) < width
                and self._fu_usage.get((cycle, pool), 0) < cap
            ):
                self._issue_usage[cycle] = self._issue_usage.get(cycle, 0) + 1
                key = (cycle, pool)
                self._fu_usage[key] = self._fu_usage.get(key, 0) + 1
                return cycle
            cycle += 1

    def _prune(self, horizon: int) -> None:
        floor = horizon - 4 * self.config.rob_size
        self._issue_usage = {
            c: n for c, n in self._issue_usage.items() if c >= floor
        }
        self._fu_usage = {
            (c, p): n for (c, p), n in self._fu_usage.items() if c >= floor
        }

    # ------------------------------------------------------------------
    def run(self, trace: list[Instruction], warmup: int = 0) -> LeadingRunResult:
        """Schedule a whole trace (no RMT backpressure) and summarise.

        The first ``warmup`` instructions train the caches and predictor but
        are excluded from the reported statistics (SimPoint-style
        measurement window).
        """
        for instr in trace[:warmup]:
            self.schedule(instr)
        if warmup:
            self.start_measurement()
        for instr in trace[warmup:]:
            self.schedule(instr)
        return self.result(len(trace) - warmup)

    def start_measurement(self) -> None:
        """Snapshot counters so subsequent results report deltas only."""
        self._baseline = {
            "cycles": self._last_commit,
            "l2_misses": self.memory.l2.misses,
            "l1d_hits": self.memory.l1d.hits,
            "l1d_misses": self.memory.l1d.misses,
            "bpred_lookups": self.predictor.lookups,
            "bpred_misses": self.predictor.mispredicts,
        }

    def result(self, instructions: int) -> LeadingRunResult:
        """Summary over the measurement window (everything scheduled since
        :meth:`start_measurement`, or since construction)."""
        base = getattr(self, "_baseline", None) or {
            "cycles": 0, "l2_misses": 0, "l1d_hits": 0,
            "l1d_misses": 0, "bpred_lookups": 0, "bpred_misses": 0,
        }
        cycles = max(1, self._last_commit - base["cycles"])
        l1d_hits = self.memory.l1d.hits - base["l1d_hits"]
        l1d_misses = self.memory.l1d.misses - base["l1d_misses"]
        l1d_total = l1d_hits + l1d_misses
        lookups = self.predictor.lookups - base["bpred_lookups"]
        mispredicts = self.predictor.mispredicts - base["bpred_misses"]
        l2_misses = self.memory.l2.misses - base["l2_misses"]
        return LeadingRunResult(
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles,
            branch_mispredict_rate=mispredicts / lookups if lookups else 0.0,
            l1d_miss_rate=l1d_misses / l1d_total if l1d_total else 0.0,
            l2_misses_per_10k=l2_misses * 10_000.0 / max(1, instructions),
            average_l2_hit_latency=self.memory.average_l2_hit_latency,
            op_counts=dict(self._op_counts),
        )

    @property
    def current_cycle(self) -> int:
        """The commit cycle of the most recently scheduled instruction."""
        return self._last_commit
