"""Timing model of the out-of-order leading core.

A one-pass dependence-driven scheduler: each dynamic instruction is assigned
fetch, issue, completion and commit cycles subject to

* fetch bandwidth and I-cache misses,
* branch mispredictions (front-end redirect at branch resolution plus the
  Table 1 penalty of 12 cycles),
* register dependences through a rename map,
* functional-unit and issue-bandwidth structural hazards,
* load latencies observed from the L1/NUCA-L2 hierarchy,
* ROB / LSQ occupancy and in-order commit bandwidth,
* an optional external *commit gate* used by the RMT harness to model
  RVQ/StB backpressure from the trailing core.

This style of scheduler tracks the cycle-by-cycle simulators it abstracts
closely for the quantities the paper's evaluation needs (relative IPC across
L2 organizations, commit-time streams for the checker co-simulation) at a
small fraction of the cost.

Two entry points share one state machine (:meth:`LeadingCoreTiming._advance`):
:meth:`~LeadingCoreTiming.schedule` feeds it one :class:`Instruction` at a
time, and the columnar batch path (:meth:`~LeadingCoreTiming.run_arrays` /
:meth:`~LeadingCoreTiming.prepare_window`) precomputes whole windows of
memory latencies, fetch-line breaks and mispredict flags as NumPy passes
first — legal because the cache and predictor access order is a pure
function of the trace order, independent of the cycle timing — then drives
the same state machine with plain ints.  Results are bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import repeat

import numpy as np

from repro.common.config import LeadingCoreConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor
from repro.core.memory import MemoryHierarchy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY_BY_CODE,
    OP_BRANCH,
    OP_BY_CODE,
    OP_CODE,
    OP_FALU,
    OP_FMUL,
    OP_LOAD,
    OP_STORE,
    POOL_BY_CODE,
    OpClass,
)
from repro.isa.soa import TraceArrays

__all__ = [
    "LeadingCoreTiming",
    "LeadingRunResult",
    "PreparedWindow",
    "TraceSchedule",
    "WindowStatics",
    "build_trace_schedule",
    "prepare_window_statics",
]

# Front-end depth from fetch to dispatch (rename/decode stages).
_FRONT_END_DEPTH = 4
_PRUNE_PERIOD = 4096

_POOL_ARR = np.array(POOL_BY_CODE, dtype=np.int64)
_LATENCY_ARR = np.array(EXECUTION_LATENCY_BY_CODE, dtype=np.int64)


@dataclass
class LeadingRunResult:
    """Summary of a leading-core timing run."""

    instructions: int
    cycles: int
    ipc: float
    branch_mispredict_rate: float
    l1d_miss_rate: float
    l2_misses_per_10k: float
    average_l2_hit_latency: float
    op_counts: dict[str, int]


@dataclass
class PreparedWindow:
    """Per-row columns for one batch-scheduled trace window.

    Produced by :meth:`LeadingCoreTiming.prepare_window`; every column is
    a NumPy array (one entry per row), kept as arrays end-to-end so
    downstream consumers — the RMT harness's windowed checker, the
    batched entry points — can slice them without round-trips.
    ``mispredicted`` is an int8 column: ``-1`` for non-branches (the
    object path's ``None``), ``0`` for correctly predicted branches,
    ``1`` for mispredicts.  Memory and predictor side effects have
    already been applied when this exists.
    """

    pool: np.ndarray
    is_mem: np.ndarray
    is_fp: np.ndarray
    writes: np.ndarray
    dst: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    fetch_add: np.ndarray
    latency: np.ndarray
    mispredicted: np.ndarray

    def __len__(self) -> int:
        return len(self.pool)

    def window_slice(self, lo: int, hi: int) -> "PreparedWindow":
        """Zero-copy view of rows ``[lo, hi)`` (kernel chunking)."""
        return PreparedWindow(
            self.pool[lo:hi], self.is_mem[lo:hi], self.is_fp[lo:hi],
            self.writes[lo:hi], self.dst[lo:hi], self.src1[lo:hi],
            self.src2[lo:hi], self.fetch_add[lo:hi], self.latency[lo:hi],
            self.mispredicted[lo:hi],
        )

    def rows(self):
        """Iterate rows as `_advance` argument tuples (sans commit gate).

        Columns convert to plain lists here, once per window: the
        scheduling state machine's integer arithmetic must touch Python
        ints, never NumPy scalars.  ``mispredicted`` converts back to the
        object path's ``None`` / ``bool`` values.
        """
        return zip(
            self.fetch_add.tolist(), self.pool.tolist(),
            self.is_mem.tolist(), self.is_fp.tolist(), self.writes.tolist(),
            self.dst.tolist(), self.src1.tolist(), self.src2.tolist(),
            self.latency.tolist(),
            [None if v < 0 else v == 1 for v in self.mispredicted.tolist()],
        )


@dataclass
class WindowStatics:
    """The simulation-independent half of a window's preparation.

    Everything :meth:`LeadingCoreTiming.prepare_window` computes that
    depends only on the trace rows ``[start, end)`` and the incoming
    fetch-line carry — never on any core's cache, predictor, or counter
    state.  Lockstep batches (:class:`repro.experiments.runner.SimBatch`)
    compute this once per window and share it across every simulation of
    the same stream; each core then finishes with
    :meth:`LeadingCoreTiming.prepare_from_statics`, which applies only
    the per-core state machines (memory hierarchy, branch predictor,
    op counters).
    """

    n: int
    prev_line: int
    last_line: int
    # Merged fetch/data event stream, in exact object-path order.
    event_kinds: list
    event_addrs: list
    sorted_rows: np.ndarray
    sorted_kinds: np.ndarray
    # Latency assembly inputs.
    is_load: np.ndarray
    base_latency: np.ndarray
    # Branch pre-pass inputs.
    branch_rows: np.ndarray
    branch_pcs: list
    branch_takens: list
    branch_targets: list
    # Op accounting and static columns.
    op_counts: list
    pool: np.ndarray
    is_mem: np.ndarray
    is_fp: np.ndarray
    writes: np.ndarray
    dst: np.ndarray
    src1: np.ndarray
    src2: np.ndarray


def prepare_window_statics(
    arrays: TraceArrays, start: int, end: int, prev_line: int
) -> WindowStatics:
    """Compute a window's simulation-independent prepare products.

    ``prev_line`` is the fetch-line carry entering the window
    (:attr:`LeadingCoreTiming._last_fetch_line`); it determines whether
    row 0 breaks the fetch line.  All fresh same-stream cores stepped at
    identical window boundaries share the same carry, which is what makes
    the whole product shareable.
    """
    ops = arrays.op[start:end]
    pc = arrays.pc[start:end]
    address = arrays.address[start:end]
    n = len(ops)
    if n == 0:
        zi = np.empty(0, dtype=np.int64)
        zb = np.empty(0, dtype=bool)
        return WindowStatics(
            0, prev_line, prev_line, [], [], zi, zi, zb, zi, zi, [], [],
            [], [0] * len(OP_BY_CODE), zi, zb, zb, zb, zi, zi, zi,
        )

    is_load = ops == OP_LOAD
    is_store = ops == OP_STORE
    is_branch = ops == OP_BRANCH
    is_mem = is_load | is_store

    # Fetch-line breaks (carrying the last line across windows).
    lines = pc >> 6
    prev_lines = np.concatenate([[prev_line], lines[:-1]])
    breaks = lines != prev_lines

    # One merged event stream keeps the hierarchy's access order
    # identical to the object path: fetch (key 2r) before data (2r+1).
    fetch_rows = np.nonzero(breaks)[0]
    mem_rows = np.nonzero(is_mem)[0]
    keys = np.concatenate([2 * fetch_rows, 2 * mem_rows + 1])
    kinds = np.concatenate(
        [
            np.zeros(fetch_rows.size, dtype=np.int64),
            np.where(is_store[mem_rows], 2, 1),
        ]
    )
    event_addrs = np.concatenate([pc[fetch_rows], address[mem_rows]])
    order = np.argsort(keys)  # keys are unique: plain sort is stable here
    sorted_kinds = kinds[order]

    branch_rows = np.nonzero(is_branch)[0]
    if branch_rows.size:
        branch_pcs = pc[branch_rows].tolist()
        branch_takens = arrays.taken[start:end][branch_rows].tolist()
        branch_targets = arrays.target[start:end][branch_rows].tolist()
    else:
        branch_pcs = branch_takens = branch_targets = []

    dst = arrays.dst[start:end]
    return WindowStatics(
        n=n,
        prev_line=prev_line,
        last_line=int(lines[-1]),
        event_kinds=sorted_kinds.tolist(),
        event_addrs=event_addrs[order].tolist(),
        sorted_rows=keys[order] >> 1,
        sorted_kinds=sorted_kinds,
        is_load=is_load,
        base_latency=_LATENCY_ARR[ops],
        branch_rows=branch_rows,
        branch_pcs=branch_pcs,
        branch_takens=branch_takens,
        branch_targets=branch_targets,
        op_counts=np.bincount(ops, minlength=len(OP_BY_CODE)).tolist(),
        pool=_POOL_ARR[ops],
        is_mem=is_mem,
        is_fp=(ops == OP_FALU) | (ops == OP_FMUL),
        writes=dst >= 0,
        dst=dst,
        src1=arrays.src1[start:end],
        src2=arrays.src2[start:end],
    )


@dataclass
class TraceSchedule:
    """Timing-independent positional indices for one whole trace.

    Everything the windowed issue/retire kernel needs that is a pure
    function of the *trace order* (never of any cycle time), computed
    once per (trace, core geometry) with vectorized NumPy passes:

    * ``cg`` — combined ROB/LSQ commit-gate row: the absolute row whose
      commit must precede row ``i``'s dispatch (``-1`` when ungated).
      ROB and LSQ gates fold into one index because commit cycles are
      monotone non-decreasing, so ``max(commit[j1], commit[j2]) ==
      commit[max(j1, j2)]``.
    * ``ig`` — issue-queue gate row: the ``(k - iq_size)``-th previous
      same-class (int/fp) row, whose *issue* gates dispatch.  Issue
      cycles are not monotone, so this stays a separate gather.
    * ``w1``/``w2`` — last-writer rows for each source operand (``-1``
      when the operand has no in-trace writer), replacing the rename
      map with a completion-time gather.
    * ``mem_rows`` / ``int_rows`` / ``fp_rows`` / ``writer_rows`` /
      ``writer_regs`` — the positional streams needed to rebuild the
      scalar state machine's deques and rename map when a kernel run
      hands back to :meth:`LeadingCoreTiming._advance`.
    """

    cg: list[int]
    ig: list[int]
    w1: list[int]
    w2: list[int]
    mem_rows: np.ndarray
    int_rows: np.ndarray
    fp_rows: np.ndarray
    writer_rows: np.ndarray
    writer_regs: np.ndarray


def build_trace_schedule(
    arrays: TraceArrays, config: LeadingCoreConfig
) -> TraceSchedule:
    """Precompute :class:`TraceSchedule` for ``arrays`` under ``config``.

    Depends only on the op/register columns and the queue geometry
    (``rob_size``, ``lsq_size``, issue-queue sizes) — cacheable per
    (trace, geometry) and shared across every simulation of that pair.
    """
    ops = arrays.op
    n = len(ops)
    idx = np.arange(n, dtype=np.int64)
    is_mem = (ops == OP_LOAD) | (ops == OP_STORE)
    is_fp = (ops == OP_FALU) | (ops == OP_FMUL)

    # ROB gate: the ring is full from row rob_size on; rob[0] is then the
    # commit of row i - rob_size.  LSQ likewise over memory rows only.
    cg = idx - config.rob_size
    mem_rows = np.flatnonzero(is_mem)
    if mem_rows.size > config.lsq_size:
        sel = mem_rows[config.lsq_size:]
        cand = mem_rows[: mem_rows.size - config.lsq_size]
        cg[sel] = np.maximum(cg[sel], cand)

    # Issue-queue gate: the (k - iq_size)-th previous same-class row.
    ig = np.full(n, -1, dtype=np.int64)
    fp_rows = np.flatnonzero(is_fp)
    int_rows = np.flatnonzero(~is_fp)
    for rows_, qsize in (
        (int_rows, config.int_issue_queue_size),
        (fp_rows, config.fp_issue_queue_size),
    ):
        if rows_.size > qsize:
            ig[rows_[qsize:]] = rows_[: rows_.size - qsize]

    # Last-writer rows per source operand via one keyed searchsorted:
    # writer keys (reg, row) sorted lexicographically collapse the
    # "latest write of reg r before row i" query to a binary search.
    dst = arrays.dst
    writer_rows = np.flatnonzero(dst >= 0)
    writer_regs = dst[writer_rows].astype(np.int64)
    stride = n + 1
    order = np.argsort(writer_regs, kind="stable")
    wrows_sorted = writer_rows[order]
    wkeys = writer_regs[order] * stride + wrows_sorted

    def last_writer(src: np.ndarray) -> np.ndarray:
        src = src.astype(np.int64)
        readers = np.flatnonzero(src >= 0)
        w = np.full(n, -1, dtype=np.int64)
        if readers.size:
            regs = src[readers]
            pos = np.searchsorted(wkeys, regs * stride + readers) - 1
            safe = np.maximum(pos, 0)
            hit = (pos >= 0) & (wkeys[safe] // stride == regs)
            w[readers[hit]] = wrows_sorted[safe[hit]]
        return w

    return TraceSchedule(
        cg=np.maximum(cg, -1).tolist(),
        ig=ig.tolist(),
        w1=last_writer(arrays.src1).tolist(),
        w2=last_writer(arrays.src2).tolist(),
        mem_rows=mem_rows,
        int_rows=int_rows,
        fp_rows=fp_rows,
        writer_rows=writer_rows,
        writer_regs=writer_regs,
    )


class _KernelState:
    """Mutable scalar carries + absolute cycle streams of one kernel run.

    ``commits`` / ``issues`` / ``completes`` are absolute (row 0 of the
    trace onward) plain-int lists: the scan's gate gathers index them by
    the :class:`TraceSchedule` rows, and the RMT harness shares
    ``commits`` directly as its commit-time stream.
    """

    __slots__ = (
        "schedule", "commits", "issues", "completes",
        "fetch", "group", "redirect", "lcc", "cic",
    )

    def __init__(self, schedule: TraceSchedule):
        self.schedule = schedule
        self.commits: list[int] = []
        self.issues: list[int] = []
        self.completes: list[int] = []
        self.fetch = 0
        self.group = 0
        self.redirect = 0
        self.lcc = 0   # last commit cycle
        self.cic = 0   # commits in that cycle


def _scan_window(
    ks: _KernelState,
    cg: list[int], ig: list[int], w1: list[int], w2: list[int],
    pool_l: list[int], lat_l: list[int], fa_l: list[int], mp_l: list[bool],
    gates,
    issue_usage: dict[int, int], fu_usage: dict[int, int],
    fresh_keys: list[int],
    width: int, caps: tuple[int, ...], commit_width: int,
    fetch_width: int, penalty: int,
    prune, countdown: int,
) -> None:
    """The issue/retire recurrence over one window, fully gate-resolved.

    Plain-int zip-driven tight loop (the `_consume_window_dep` idiom):
    every dependence is a precomputed :class:`TraceSchedule` index into
    the absolute ``commits``/``issues``/``completes`` streams, so each
    row is a handful of list gathers, the structural-hazard probe, and
    the commit-width counter — no deques, no rename map, no per-row
    NumPy, no per-row method call.  ``cg``/``ig``/``w1``/``w2`` are
    window-local slices holding *absolute* row values; ``gates`` is any
    per-row iterable of commit gates (``repeat(0)`` when the RMT harness
    is absent — a zero gate never binds).  ``prune`` fires every
    ``countdown`` rows at exactly the scalar path's cadence — prune
    timing is part of the bit-identity contract.
    """
    commits = ks.commits
    issues = ks.issues
    completes = ks.completes
    ap_c = commits.append
    ap_i = issues.append
    ap_m = completes.append
    fc = ks.fetch
    g = ks.group
    redirect = ks.redirect
    lcc = ks.lcc
    cic = ks.cic
    for fa, pool, lat, mp, k1, k2, kw1, kw2, gate in zip(
        fa_l, pool_l, lat_l, mp_l, cg, ig, w1, w2, gates
    ):
        # ---- fetch ----
        if fc < redirect:
            fc = redirect
            g = 0
        if fa:
            fc += fa
            g = 0
        if g >= fetch_width:
            fc += 1
            g = 0
        g += 1
        # ---- dispatch (ROB/LSQ fold into one commit gather; IQ gates
        # on the k-size-th previous same-class issue) ----
        d = fc + _FRONT_END_DEPTH
        if k1 >= 0:
            gd = commits[k1] + 1
            if gd > d:
                d = gd
        if k2 >= 0:
            gd = issues[k2] + 1
            if gd > d:
                d = gd
        # ---- operand readiness (last-writer completion gathers) ----
        r = d + 1
        if kw1 >= 0:
            t = completes[kw1]
            if t > r:
                r = t
        if kw2 >= 0:
            t = completes[kw2]
            if t > r:
                r = t
        # ---- issue (structural hazards) ----
        cap = caps[pool]
        c = r
        while True:
            iu = issue_usage.get(c, 0)
            if iu < width:
                fk = (c << 2) | pool
                fu = fu_usage.get(fk, 0)
                if fu < cap:
                    if iu == 0:
                        fresh_keys.append(c)
                    issue_usage[c] = iu + 1
                    fu_usage[fk] = fu + 1
                    break
            c += 1
        ap_i(c)
        comp = c + lat
        ap_m(comp)
        if mp:
            redirect = comp + penalty
        # ---- in-order commit ----
        cm = comp + 1
        if lcc > cm:
            cm = lcc
        if gate > cm:
            cm = gate
        if cm == lcc:
            if cic >= commit_width:
                cm += 1
                cic = 1
            else:
                cic += 1
        else:
            cic = 1
        lcc = cm
        ap_c(cm)
        countdown -= 1
        if countdown == 0:
            prune(c)
            countdown = _PRUNE_PERIOD
    ks.fetch = fc
    ks.group = g
    ks.redirect = redirect
    ks.lcc = lcc
    ks.cic = cic


class LeadingCoreTiming:
    """Incremental OoO timing model; feed instructions via :meth:`schedule`
    (object path) or whole traces via :meth:`run_arrays` (columnar path)."""

    def __init__(
        self,
        config: LeadingCoreConfig,
        memory: MemoryHierarchy,
        predictor: BranchPredictor | None = None,
    ):
        self.config = config
        self.memory = memory
        self.predictor = predictor or BranchPredictor()
        self.stats = StatGroup("leading")

        # Pool-code-indexed capacities used by the scheduling state machine.
        self._fu_cap_by_pool = (
            config.int_alus, config.int_mults, config.fp_alus, config.fp_mults,
        )
        self._mispredict_penalty = self.predictor.config.mispredict_penalty_cycles
        # Per-cycle structural usage maps, pruned periodically.  FU keys
        # combine cycle and pool into one int (``cycle << 2 | pool``) so
        # the hot loops never build tuples.  ``_fresh_usage_keys``
        # records each cycle key on first insertion; :meth:`_prune`
        # retires whole periods of them from a ring instead of
        # rebuilding the dicts.
        self._issue_usage: dict[int, int] = {}
        self._fu_usage: dict[int, int] = {}
        self._fresh_usage_keys: list[int] = []
        self._usage_key_ring: deque[list[int]] = deque()
        self._kernel: _KernelState | None = None

        self._fetch_cycle = 0
        self._fetch_in_group = 0
        self._redirect_until = 0
        self._last_fetch_line = -1
        self._rename: dict[int, int] = {}  # reg -> completion cycle
        self._rob_commits: deque[int] = deque(maxlen=config.rob_size)
        self._lsq_commits: deque[int] = deque(maxlen=config.lsq_size)
        # Issue-queue occupancy: an IQ entry is held from dispatch until
        # issue, so dispatch stalls until the (i - iq_size)-th same-class
        # instruction has issued.
        self._int_issues: deque[int] = deque(maxlen=config.int_issue_queue_size)
        self._fp_issues: deque[int] = deque(maxlen=config.fp_issue_queue_size)
        self._last_commit_cycle = 0
        self._commits_in_cycle = 0
        self._scheduled = 0
        self._last_commit = 0
        self._op_counts: dict[str, int] = {c.value: 0 for c in OpClass}

    # ------------------------------------------------------------------
    def schedule(self, instr: Instruction, commit_gate: int = 0) -> int:
        """Schedule one instruction; returns its commit cycle.

        ``commit_gate`` is the earliest cycle the instruction may commit
        (RVQ/StB backpressure from the RMT harness); 0 means unconstrained.
        """
        op = instr.op
        self._op_counts[op.value] += 1
        code = OP_CODE[op]

        # I-cache access on fetch-line change; the stall feeds _advance.
        fetch_add = 0
        line = instr.pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            fetch_latency = self.memory.fetch_latency(instr.pc)
            if fetch_latency > self.config.l1_icache.hit_latency_cycles:
                fetch_add = fetch_latency

        if code == OP_LOAD:
            latency = self.memory.load_latency(instr.address)
        else:
            latency = EXECUTION_LATENCY_BY_CODE[code]

        mispredicted = None
        if code == OP_BRANCH:
            mispredicted = self.predictor.update(
                instr.pc, instr.taken, instr.target
            )

        return self._advance(
            fetch_add,
            POOL_BY_CODE[code],
            code == OP_LOAD or code == OP_STORE,
            code == OP_FALU or code == OP_FMUL,
            instr.dst >= 0,
            instr.dst,
            instr.src1,
            instr.src2,
            latency,
            mispredicted,
            commit_gate,
            store_address=instr.address if code == OP_STORE else -1,
        )

    # ------------------------------------------------------------------
    def _advance(
        self,
        fetch_add: int,
        pool: int,
        is_mem: bool,
        is_fp: bool,
        writes: bool,
        dst: int,
        src1: int,
        src2: int,
        latency: int,
        mispredicted: bool | None,
        commit_gate: int = 0,
        store_address: int = -1,
    ) -> int:
        """The scheduling state machine: one instruction, already resolved.

        All memory/predictor lookups have happened by the time this runs
        (inline for :meth:`schedule`, in a window pre-pass for the columnar
        path); what remains is pure integer cycle arithmetic over the
        pipeline state.  ``fetch_add`` is the I-fetch stall in cycles (0 on
        an I-cache hit or a same-line fetch); ``store_address`` >= 0 asks
        this call to apply the store-commit cache access itself.
        """
        cfg = self.config

        # ---- fetch ----
        fetch_cycle = self._fetch_cycle
        if fetch_cycle < self._redirect_until:
            fetch_cycle = self._redirect_until
            self._fetch_in_group = 0
        if fetch_add:
            fetch_cycle += fetch_add
            self._fetch_in_group = 0
        if self._fetch_in_group >= cfg.fetch_width:
            fetch_cycle += 1
            self._fetch_in_group = 0
        self._fetch_in_group += 1
        self._fetch_cycle = fetch_cycle

        # ---- dispatch (ROB / LSQ / issue-queue availability) ----
        dispatch = fetch_cycle + _FRONT_END_DEPTH
        rob = self._rob_commits
        if len(rob) == cfg.rob_size:
            gated = rob[0] + 1
            if gated > dispatch:
                dispatch = gated
        if is_mem and len(self._lsq_commits) == cfg.lsq_size:
            gated = self._lsq_commits[0] + 1
            if gated > dispatch:
                dispatch = gated
        issue_ring = self._fp_issues if is_fp else self._int_issues
        if len(issue_ring) == issue_ring.maxlen:
            gated = issue_ring[0] + 1
            if gated > dispatch:
                dispatch = gated

        # ---- operand readiness ----
        ready = dispatch + 1
        rename = self._rename
        if src1 >= 0:
            t = rename.get(src1, 0)
            if t > ready:
                ready = t
        if src2 >= 0:
            t = rename.get(src2, 0)
            if t > ready:
                ready = t

        # ---- issue (structural hazards) ----
        cap = self._fu_cap_by_pool[pool]
        width = cfg.dispatch_width
        issue_usage = self._issue_usage
        fu_usage = self._fu_usage
        issue = ready
        while True:
            iu = issue_usage.get(issue, 0)
            if iu < width:
                key = (issue << 2) | pool
                fu = fu_usage.get(key, 0)
                if fu < cap:
                    if iu == 0:
                        self._fresh_usage_keys.append(issue)
                    issue_usage[issue] = iu + 1
                    fu_usage[key] = fu + 1
                    break
            issue += 1
        issue_ring.append(issue)

        # ---- execute ----
        complete = issue + latency
        if writes:
            rename[dst] = complete

        # ---- branch resolution ----
        if mispredicted:
            self._redirect_until = complete + self._mispredict_penalty

        # ---- in-order commit ----
        commit = complete + 1
        if self._last_commit_cycle > commit:
            commit = self._last_commit_cycle
        if commit_gate > commit:
            commit = commit_gate
        if commit == self._last_commit_cycle:
            if self._commits_in_cycle >= cfg.commit_width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit_cycle = commit

        rob.append(commit)
        if is_mem:
            self._lsq_commits.append(commit)
            if store_address >= 0:
                self.memory.store_commit(store_address)

        self._scheduled += 1
        self._last_commit = commit
        if self._scheduled % _PRUNE_PERIOD == 0:
            self._prune(issue)
        return commit

    # ------------------------------------------------------------------
    def prepare_window(
        self, arrays: TraceArrays, start: int, end: int
    ) -> PreparedWindow:
        """Resolve a trace window's per-row columns for batch scheduling.

        Applies every cache access and predictor update for rows
        ``[start, end)`` in exact trace order — legal to do ahead of the
        cycle arithmetic because those state machines see only the address
        and outcome streams, never the timing.  The event interleaving
        matches the object path: per row, the I-fetch access (on a line
        break) precedes the data access; stores touch L1D only.

        Split into a simulation-independent pre-pass
        (:func:`prepare_window_statics`) and the per-core completion
        (:meth:`prepare_from_statics`) so lockstep batches can compute
        the statics once per window and share them across K cores.
        """
        statics = prepare_window_statics(
            arrays, start, end, self._last_fetch_line
        )
        return self.prepare_from_statics(statics)

    def prepare_from_statics(self, statics: "WindowStatics") -> PreparedWindow:
        """Complete a window's columns against *this* core's state.

        Consumes a :class:`WindowStatics` whose ``prev_line`` matches
        this core's fetch-line carry (asserted): applies the shared
        event stream to this core's memory hierarchy, advances this
        core's predictor (or stream view) over the window's branches,
        and bumps the op counters.  Bit-identical to the fused
        :meth:`prepare_window` by construction — the statics are exactly
        the values the fused pass computed inline.
        """
        assert statics.prev_line == self._last_fetch_line, (
            "window statics were computed for a different fetch-line carry"
        )
        n = statics.n
        if n == 0:
            zi = np.empty(0, dtype=np.int64)
            zb = np.empty(0, dtype=bool)
            z8 = np.empty(0, dtype=np.int8)
            return PreparedWindow(zi, zb, zb, zb, zi, zi, zi, zi, zi, z8)
        self._last_fetch_line = statics.last_line

        latencies = np.array(
            self.memory.access_window(
                statics.event_kinds, statics.event_addrs
            ),
            dtype=np.int64,
        )
        sorted_rows = statics.sorted_rows
        sorted_kinds = statics.sorted_kinds

        fetch_lat = np.zeros(n, dtype=np.int64)
        fmask = sorted_kinds == 0
        fetch_lat[sorted_rows[fmask]] = latencies[fmask]
        i_hit = self.config.l1_icache.hit_latency_cycles
        fetch_add = np.where(fetch_lat > i_hit, fetch_lat, 0)

        load_lat = np.zeros(n, dtype=np.int64)
        lmask = sorted_kinds == 1
        load_lat[sorted_rows[lmask]] = latencies[lmask]
        latency = np.where(statics.is_load, load_lat, statics.base_latency)

        # Branch resolution pre-pass (predictor state is trace-ordered).
        mispredicted = np.full(n, -1, dtype=np.int8)
        if statics.branch_rows.size:
            flags = self.predictor.update_window(
                statics.branch_pcs, statics.branch_takens,
                statics.branch_targets,
            )
            mispredicted[statics.branch_rows] = np.asarray(
                flags, dtype=np.int8
            )

        for code, count in enumerate(statics.op_counts):
            if count:
                self._op_counts[OP_BY_CODE[code].value] += count

        return PreparedWindow(
            pool=statics.pool,
            is_mem=statics.is_mem,
            is_fp=statics.is_fp,
            writes=statics.writes,
            dst=statics.dst,
            src1=statics.src1,
            src2=statics.src2,
            fetch_add=fetch_add,
            latency=latency,
            mispredicted=mispredicted,
        )

    def run_arrays(
        self, arrays: TraceArrays, warmup: int = 0,
        schedule: TraceSchedule | None = None,
    ) -> LeadingRunResult:
        """Columnar counterpart of :meth:`run` — bit-identical results.

        Windowed at the warmup boundary so the measurement snapshot sees
        exactly the same cache/predictor state as the object path.  A
        fresh core takes the windowed issue/retire kernel; a core with
        prior scheduling history falls back to the scalar oracle
        (:meth:`_advance`), which remains the reference semantics.
        """
        if self.kernel_eligible():
            self.begin_kernel(
                schedule or build_trace_schedule(arrays, self.config)
            )
            if warmup:
                self.advance_window(self.prepare_window(arrays, 0, warmup), 0)
                self.start_measurement()
            if len(arrays) > warmup:
                prepared = self.prepare_window(arrays, warmup, len(arrays))
                self.advance_window(prepared, warmup)
            self.end_kernel()
        else:
            if warmup:
                self._run_window(arrays, 0, warmup)
                self.start_measurement()
            self._run_window(arrays, warmup, len(arrays))
        return self.result(len(arrays) - warmup)

    def _run_window(self, arrays: TraceArrays, start: int, end: int) -> None:
        if end <= start:
            return
        prepared = self.prepare_window(arrays, start, end)
        advance = self._advance
        for row in prepared.rows():
            advance(*row)

    # -- windowed issue/retire kernel ----------------------------------
    def kernel_eligible(self) -> bool:
        """True when the kernel may own this core's timing state.

        The kernel's gate indices are absolute trace rows, so it requires
        a core with no scheduling history (``_advance`` never ran) —
        exactly the state every simulation entry point constructs.
        """
        return self._scheduled == 0 and self._kernel is None

    def begin_kernel(self, schedule: TraceSchedule) -> None:
        """Enter kernel mode over a fresh core (see :meth:`kernel_eligible`)."""
        if not self.kernel_eligible():
            raise RuntimeError("kernel requires a freshly constructed core")
        self._kernel = _KernelState(schedule)

    def advance_window(
        self, prepared: PreparedWindow, start: int,
        gates: list[int] | None = None,
    ) -> None:
        """Kernel counterpart of the per-row `_advance` loop over a window.

        ``start`` is the absolute trace row of ``prepared``'s first row;
        ``gates`` (window-local, one per row) carries RMT commit gates.
        All columns convert to plain lists once, the schedule's gate and
        last-writer indices are sliced to the window, and
        :func:`_scan_window` closes every cycle in one fused pass.
        """
        ks = self._kernel
        n = len(prepared)
        if n == 0:
            return
        cfg = self.config
        sched = ks.schedule
        end = start + n
        _scan_window(
            ks,
            sched.cg[start:end], sched.ig[start:end],
            sched.w1[start:end], sched.w2[start:end],
            prepared.pool.tolist(), prepared.latency.tolist(),
            prepared.fetch_add.tolist(),
            (prepared.mispredicted == 1).tolist(),
            gates if gates is not None else repeat(0),
            self._issue_usage, self._fu_usage, self._fresh_usage_keys,
            cfg.dispatch_width, self._fu_cap_by_pool, cfg.commit_width,
            cfg.fetch_width, self._mispredict_penalty,
            self._prune, _PRUNE_PERIOD - self._scheduled % _PRUNE_PERIOD,
        )
        self._scheduled += n
        self._last_commit = ks.lcc

    def end_kernel(self) -> None:
        """Leave kernel mode, rebuilding the scalar state machine.

        After this, :meth:`_advance` (or another kernel run's results)
        observes exactly the state it would have reached row by row: the
        ROB/LSQ/issue rings, rename map, fetch carries and commit-width
        counter are reconstructed from the schedule's positional streams
        and the kernel's absolute cycle lists.
        """
        ks = self._kernel
        if ks is None:
            return
        self._kernel = None
        n = len(ks.commits)
        if n == 0:
            return
        cfg = self.config
        sched = ks.schedule
        commits = ks.commits
        issues = ks.issues
        self._fetch_cycle = ks.fetch
        self._fetch_in_group = ks.group
        self._redirect_until = ks.redirect
        self._last_commit_cycle = ks.lcc
        self._commits_in_cycle = ks.cic
        self._last_commit = commits[-1]
        self._rob_commits = deque(
            commits[max(0, n - cfg.rob_size):], maxlen=cfg.rob_size
        )
        mem = sched.mem_rows[sched.mem_rows < n][-cfg.lsq_size:]
        self._lsq_commits = deque(
            [commits[r] for r in mem.tolist()], maxlen=cfg.lsq_size
        )
        ints = sched.int_rows[sched.int_rows < n][-cfg.int_issue_queue_size:]
        self._int_issues = deque(
            [issues[r] for r in ints.tolist()],
            maxlen=cfg.int_issue_queue_size,
        )
        fps = sched.fp_rows[sched.fp_rows < n][-cfg.fp_issue_queue_size:]
        self._fp_issues = deque(
            [issues[r] for r in fps.tolist()],
            maxlen=cfg.fp_issue_queue_size,
        )
        live = sched.writer_rows < n
        completes = ks.completes
        self._rename = {
            reg: completes[row]
            for reg, row in zip(
                sched.writer_regs[live].tolist(),
                sched.writer_rows[live].tolist(),
            )
        }

    # ------------------------------------------------------------------
    def _prune(self, horizon: int) -> None:
        """Retire usage-map entries that can never be probed again.

        Keys older than the pruning horizon (4 ROB lifetimes behind the
        latest issue) are dead; instead of rebuilding both dicts, the
        keys recorded since the last prune rotate through a ring and the
        oldest period's dead keys are deleted in place.  Still-live keys
        (>= floor) are pushed back to re-check at the next prune, so the
        maps stay bounded by a few periods' worth of distinct cycles.
        """
        floor = horizon - 4 * self.config.rob_size
        ring = self._usage_key_ring
        # Copy-and-clear keeps the list's identity stable: the kernel
        # scan holds a local alias and keeps appending after a prune.
        fresh = self._fresh_usage_keys
        ring.append(fresh[:])
        fresh.clear()
        old = ring.popleft()
        issue_usage = self._issue_usage
        fu_usage = self._fu_usage
        survivors = []
        for c in old:
            if c >= floor:
                survivors.append(c)
                continue
            issue_usage.pop(c, None)
            base = c << 2
            fu_usage.pop(base, None)
            fu_usage.pop(base | 1, None)
            fu_usage.pop(base | 2, None)
            fu_usage.pop(base | 3, None)
        if survivors:
            ring.appendleft(survivors)

    # ------------------------------------------------------------------
    def run(
        self, trace, warmup: int = 0,
        schedule: TraceSchedule | None = None,
    ) -> LeadingRunResult:
        """Schedule a whole trace (no RMT backpressure) and summarise.

        The first ``warmup`` instructions train the caches and predictor but
        are excluded from the reported statistics (SimPoint-style
        measurement window).  Columnar traces take the batch path;
        ``schedule`` optionally supplies a precomputed (memoized)
        :class:`TraceSchedule` for the kernel.
        """
        if isinstance(trace, TraceArrays):
            return self.run_arrays(trace, warmup, schedule)
        for instr in trace[:warmup]:
            self.schedule(instr)
        if warmup:
            self.start_measurement()
        for instr in trace[warmup:]:
            self.schedule(instr)
        return self.result(len(trace) - warmup)

    def start_measurement(self) -> None:
        """Snapshot counters so subsequent results report deltas only."""
        self._baseline = {
            "cycles": self._last_commit,
            "l2_misses": self.memory.l2.misses,
            "l1d_hits": self.memory.l1d.hits,
            "l1d_misses": self.memory.l1d.misses,
            "bpred_lookups": self.predictor.lookups,
            "bpred_misses": self.predictor.mispredicts,
        }

    def result(self, instructions: int) -> LeadingRunResult:
        """Summary over the measurement window (everything scheduled since
        :meth:`start_measurement`, or since construction)."""
        base = getattr(self, "_baseline", None) or {
            "cycles": 0, "l2_misses": 0, "l1d_hits": 0,
            "l1d_misses": 0, "bpred_lookups": 0, "bpred_misses": 0,
        }
        cycles = max(1, self._last_commit - base["cycles"])
        l1d_hits = self.memory.l1d.hits - base["l1d_hits"]
        l1d_misses = self.memory.l1d.misses - base["l1d_misses"]
        l1d_total = l1d_hits + l1d_misses
        lookups = self.predictor.lookups - base["bpred_lookups"]
        mispredicts = self.predictor.mispredicts - base["bpred_misses"]
        l2_misses = self.memory.l2.misses - base["l2_misses"]
        return LeadingRunResult(
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles,
            branch_mispredict_rate=mispredicts / lookups if lookups else 0.0,
            l1d_miss_rate=l1d_misses / l1d_total if l1d_total else 0.0,
            l2_misses_per_10k=l2_misses * 10_000.0 / max(1, instructions),
            average_l2_hit_latency=self.memory.average_l2_hit_latency,
            op_counts=dict(self._op_counts),
        )

    @property
    def current_cycle(self) -> int:
        """The commit cycle of the most recently scheduled instruction."""
        return self._last_commit
