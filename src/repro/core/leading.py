"""Timing model of the out-of-order leading core.

A one-pass dependence-driven scheduler: each dynamic instruction is assigned
fetch, issue, completion and commit cycles subject to

* fetch bandwidth and I-cache misses,
* branch mispredictions (front-end redirect at branch resolution plus the
  Table 1 penalty of 12 cycles),
* register dependences through a rename map,
* functional-unit and issue-bandwidth structural hazards,
* load latencies observed from the L1/NUCA-L2 hierarchy,
* ROB / LSQ occupancy and in-order commit bandwidth,
* an optional external *commit gate* used by the RMT harness to model
  RVQ/StB backpressure from the trailing core.

This style of scheduler tracks the cycle-by-cycle simulators it abstracts
closely for the quantities the paper's evaluation needs (relative IPC across
L2 organizations, commit-time streams for the checker co-simulation) at a
small fraction of the cost.

Two entry points share one state machine (:meth:`LeadingCoreTiming._advance`):
:meth:`~LeadingCoreTiming.schedule` feeds it one :class:`Instruction` at a
time, and the columnar batch path (:meth:`~LeadingCoreTiming.run_arrays` /
:meth:`~LeadingCoreTiming.prepare_window`) precomputes whole windows of
memory latencies, fetch-line breaks and mispredict flags as NumPy passes
first — legal because the cache and predictor access order is a pure
function of the trace order, independent of the cycle timing — then drives
the same state machine with plain ints.  Results are bit-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.config import LeadingCoreConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor
from repro.core.memory import MemoryHierarchy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY_BY_CODE,
    OP_BRANCH,
    OP_BY_CODE,
    OP_CODE,
    OP_FALU,
    OP_FMUL,
    OP_LOAD,
    OP_STORE,
    POOL_BY_CODE,
    OpClass,
)
from repro.isa.soa import TraceArrays

__all__ = ["LeadingCoreTiming", "LeadingRunResult", "PreparedWindow"]

# Front-end depth from fetch to dispatch (rename/decode stages).
_FRONT_END_DEPTH = 4
_PRUNE_PERIOD = 4096

_POOL_ARR = np.array(POOL_BY_CODE, dtype=np.int64)
_LATENCY_ARR = np.array(EXECUTION_LATENCY_BY_CODE, dtype=np.int64)


@dataclass
class LeadingRunResult:
    """Summary of a leading-core timing run."""

    instructions: int
    cycles: int
    ipc: float
    branch_mispredict_rate: float
    l1d_miss_rate: float
    l2_misses_per_10k: float
    average_l2_hit_latency: float
    op_counts: dict[str, int]


@dataclass
class PreparedWindow:
    """Per-row columns for one batch-scheduled trace window.

    Produced by :meth:`LeadingCoreTiming.prepare_window`; every column is
    a NumPy array (one entry per row), kept as arrays end-to-end so
    downstream consumers — the RMT harness's windowed checker, the
    batched entry points — can slice them without round-trips.
    ``mispredicted`` is a plain list (None for non-branches).  Memory and
    predictor side effects have already been applied when this exists.
    """

    pool: np.ndarray
    is_mem: np.ndarray
    is_fp: np.ndarray
    writes: np.ndarray
    dst: np.ndarray
    src1: np.ndarray
    src2: np.ndarray
    fetch_add: np.ndarray
    latency: np.ndarray
    mispredicted: list[bool | None]

    def __len__(self) -> int:
        return len(self.pool)

    def rows(self):
        """Iterate rows as `_advance` argument tuples (sans commit gate).

        Columns convert to plain lists here, once per window: the
        scheduling state machine's integer arithmetic must touch Python
        ints, never NumPy scalars.
        """
        return zip(
            self.fetch_add.tolist(), self.pool.tolist(),
            self.is_mem.tolist(), self.is_fp.tolist(), self.writes.tolist(),
            self.dst.tolist(), self.src1.tolist(), self.src2.tolist(),
            self.latency.tolist(), self.mispredicted,
        )


class LeadingCoreTiming:
    """Incremental OoO timing model; feed instructions via :meth:`schedule`
    (object path) or whole traces via :meth:`run_arrays` (columnar path)."""

    def __init__(
        self,
        config: LeadingCoreConfig,
        memory: MemoryHierarchy,
        predictor: BranchPredictor | None = None,
    ):
        self.config = config
        self.memory = memory
        self.predictor = predictor or BranchPredictor()
        self.stats = StatGroup("leading")

        # Pool-code-indexed capacities used by the scheduling state machine.
        self._fu_cap_by_pool = (
            config.int_alus, config.int_mults, config.fp_alus, config.fp_mults,
        )
        self._mispredict_penalty = self.predictor.config.mispredict_penalty_cycles
        # Per-cycle structural usage maps, pruned periodically.
        self._issue_usage: dict[int, int] = {}
        self._fu_usage: dict[tuple[int, int], int] = {}

        self._fetch_cycle = 0
        self._fetch_in_group = 0
        self._redirect_until = 0
        self._last_fetch_line = -1
        self._rename: dict[int, int] = {}  # reg -> completion cycle
        self._rob_commits: deque[int] = deque(maxlen=config.rob_size)
        self._lsq_commits: deque[int] = deque(maxlen=config.lsq_size)
        # Issue-queue occupancy: an IQ entry is held from dispatch until
        # issue, so dispatch stalls until the (i - iq_size)-th same-class
        # instruction has issued.
        self._int_issues: deque[int] = deque(maxlen=config.int_issue_queue_size)
        self._fp_issues: deque[int] = deque(maxlen=config.fp_issue_queue_size)
        self._last_commit_cycle = 0
        self._commits_in_cycle = 0
        self._scheduled = 0
        self._last_commit = 0
        self._op_counts: dict[str, int] = {c.value: 0 for c in OpClass}

    # ------------------------------------------------------------------
    def schedule(self, instr: Instruction, commit_gate: int = 0) -> int:
        """Schedule one instruction; returns its commit cycle.

        ``commit_gate`` is the earliest cycle the instruction may commit
        (RVQ/StB backpressure from the RMT harness); 0 means unconstrained.
        """
        op = instr.op
        self._op_counts[op.value] += 1
        code = OP_CODE[op]

        # I-cache access on fetch-line change; the stall feeds _advance.
        fetch_add = 0
        line = instr.pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            fetch_latency = self.memory.fetch_latency(instr.pc)
            if fetch_latency > self.config.l1_icache.hit_latency_cycles:
                fetch_add = fetch_latency

        if code == OP_LOAD:
            latency = self.memory.load_latency(instr.address)
        else:
            latency = EXECUTION_LATENCY_BY_CODE[code]

        mispredicted = None
        if code == OP_BRANCH:
            mispredicted = self.predictor.update(
                instr.pc, instr.taken, instr.target
            )

        return self._advance(
            fetch_add,
            POOL_BY_CODE[code],
            code == OP_LOAD or code == OP_STORE,
            code == OP_FALU or code == OP_FMUL,
            instr.dst >= 0,
            instr.dst,
            instr.src1,
            instr.src2,
            latency,
            mispredicted,
            commit_gate,
            store_address=instr.address if code == OP_STORE else -1,
        )

    # ------------------------------------------------------------------
    def _advance(
        self,
        fetch_add: int,
        pool: int,
        is_mem: bool,
        is_fp: bool,
        writes: bool,
        dst: int,
        src1: int,
        src2: int,
        latency: int,
        mispredicted: bool | None,
        commit_gate: int = 0,
        store_address: int = -1,
    ) -> int:
        """The scheduling state machine: one instruction, already resolved.

        All memory/predictor lookups have happened by the time this runs
        (inline for :meth:`schedule`, in a window pre-pass for the columnar
        path); what remains is pure integer cycle arithmetic over the
        pipeline state.  ``fetch_add`` is the I-fetch stall in cycles (0 on
        an I-cache hit or a same-line fetch); ``store_address`` >= 0 asks
        this call to apply the store-commit cache access itself.
        """
        cfg = self.config

        # ---- fetch ----
        fetch_cycle = self._fetch_cycle
        if fetch_cycle < self._redirect_until:
            fetch_cycle = self._redirect_until
            self._fetch_in_group = 0
        if fetch_add:
            fetch_cycle += fetch_add
            self._fetch_in_group = 0
        if self._fetch_in_group >= cfg.fetch_width:
            fetch_cycle += 1
            self._fetch_in_group = 0
        self._fetch_in_group += 1
        self._fetch_cycle = fetch_cycle

        # ---- dispatch (ROB / LSQ / issue-queue availability) ----
        dispatch = fetch_cycle + _FRONT_END_DEPTH
        rob = self._rob_commits
        if len(rob) == cfg.rob_size:
            gated = rob[0] + 1
            if gated > dispatch:
                dispatch = gated
        if is_mem and len(self._lsq_commits) == cfg.lsq_size:
            gated = self._lsq_commits[0] + 1
            if gated > dispatch:
                dispatch = gated
        issue_ring = self._fp_issues if is_fp else self._int_issues
        if len(issue_ring) == issue_ring.maxlen:
            gated = issue_ring[0] + 1
            if gated > dispatch:
                dispatch = gated

        # ---- operand readiness ----
        ready = dispatch + 1
        rename = self._rename
        if src1 >= 0:
            t = rename.get(src1, 0)
            if t > ready:
                ready = t
        if src2 >= 0:
            t = rename.get(src2, 0)
            if t > ready:
                ready = t

        # ---- issue (structural hazards) ----
        cap = self._fu_cap_by_pool[pool]
        width = cfg.dispatch_width
        issue_usage = self._issue_usage
        fu_usage = self._fu_usage
        issue = ready
        while True:
            if (
                issue_usage.get(issue, 0) < width
                and fu_usage.get((issue, pool), 0) < cap
            ):
                issue_usage[issue] = issue_usage.get(issue, 0) + 1
                key = (issue, pool)
                fu_usage[key] = fu_usage.get(key, 0) + 1
                break
            issue += 1
        issue_ring.append(issue)

        # ---- execute ----
        complete = issue + latency
        if writes:
            rename[dst] = complete

        # ---- branch resolution ----
        if mispredicted:
            self._redirect_until = complete + self._mispredict_penalty

        # ---- in-order commit ----
        commit = complete + 1
        if self._last_commit_cycle > commit:
            commit = self._last_commit_cycle
        if commit_gate > commit:
            commit = commit_gate
        if commit == self._last_commit_cycle:
            if self._commits_in_cycle >= cfg.commit_width:
                commit += 1
                self._commits_in_cycle = 1
            else:
                self._commits_in_cycle += 1
        else:
            self._commits_in_cycle = 1
        self._last_commit_cycle = commit

        rob.append(commit)
        if is_mem:
            self._lsq_commits.append(commit)
            if store_address >= 0:
                self.memory.store_commit(store_address)

        self._scheduled += 1
        self._last_commit = commit
        if self._scheduled % _PRUNE_PERIOD == 0:
            self._prune(issue)
        return commit

    # ------------------------------------------------------------------
    def prepare_window(
        self, arrays: TraceArrays, start: int, end: int
    ) -> PreparedWindow:
        """Resolve a trace window's per-row columns for batch scheduling.

        Applies every cache access and predictor update for rows
        ``[start, end)`` in exact trace order — legal to do ahead of the
        cycle arithmetic because those state machines see only the address
        and outcome streams, never the timing.  The event interleaving
        matches the object path: per row, the I-fetch access (on a line
        break) precedes the data access; stores touch L1D only.
        """
        ops = arrays.op[start:end]
        pc = arrays.pc[start:end]
        address = arrays.address[start:end]
        n = len(ops)
        if n == 0:
            zi = np.empty(0, dtype=np.int64)
            zb = np.empty(0, dtype=bool)
            return PreparedWindow(zi, zb, zb, zb, zi, zi, zi, zi, zi, [])

        is_load = ops == OP_LOAD
        is_store = ops == OP_STORE
        is_branch = ops == OP_BRANCH
        is_mem = is_load | is_store

        # Fetch-line breaks (carrying the last line across windows).
        lines = pc >> 6
        prev_lines = np.concatenate([[self._last_fetch_line], lines[:-1]])
        breaks = lines != prev_lines
        self._last_fetch_line = int(lines[-1])

        # One merged event stream keeps the hierarchy's access order
        # identical to the object path: fetch (key 2r) before data (2r+1).
        fetch_rows = np.nonzero(breaks)[0]
        mem_rows = np.nonzero(is_mem)[0]
        keys = np.concatenate([2 * fetch_rows, 2 * mem_rows + 1])
        kinds = np.concatenate(
            [
                np.zeros(fetch_rows.size, dtype=np.int64),
                np.where(is_store[mem_rows], 2, 1),
            ]
        )
        event_addrs = np.concatenate([pc[fetch_rows], address[mem_rows]])
        order = np.argsort(keys)  # keys are unique: plain sort is stable here
        latencies = np.array(
            self.memory.access_window(
                kinds[order].tolist(), event_addrs[order].tolist()
            ),
            dtype=np.int64,
        )
        sorted_rows = keys[order] >> 1
        sorted_kinds = kinds[order]

        fetch_lat = np.zeros(n, dtype=np.int64)
        fmask = sorted_kinds == 0
        fetch_lat[sorted_rows[fmask]] = latencies[fmask]
        i_hit = self.config.l1_icache.hit_latency_cycles
        fetch_add = np.where(fetch_lat > i_hit, fetch_lat, 0)

        load_lat = np.zeros(n, dtype=np.int64)
        lmask = sorted_kinds == 1
        load_lat[sorted_rows[lmask]] = latencies[lmask]
        latency = np.where(is_load, load_lat, _LATENCY_ARR[ops])

        # Branch resolution pre-pass (predictor state is trace-ordered).
        branch_rows = np.nonzero(is_branch)[0]
        mispredicted: list[bool | None] = [None] * n
        if branch_rows.size:
            flags = self.predictor.update_window(
                pc[branch_rows].tolist(),
                arrays.taken[start:end][branch_rows].tolist(),
                arrays.target[start:end][branch_rows].tolist(),
            )
            for row, flag in zip(branch_rows.tolist(), flags):
                mispredicted[row] = flag

        for code, count in enumerate(np.bincount(ops, minlength=7).tolist()):
            if count:
                self._op_counts[OP_BY_CODE[code].value] += count

        dst = arrays.dst[start:end]
        return PreparedWindow(
            pool=_POOL_ARR[ops],
            is_mem=is_mem,
            is_fp=(ops == OP_FALU) | (ops == OP_FMUL),
            writes=dst >= 0,
            dst=dst,
            src1=arrays.src1[start:end],
            src2=arrays.src2[start:end],
            fetch_add=fetch_add,
            latency=latency,
            mispredicted=mispredicted,
        )

    def run_arrays(
        self, arrays: TraceArrays, warmup: int = 0
    ) -> LeadingRunResult:
        """Columnar counterpart of :meth:`run` — bit-identical results.

        Windowed at the warmup boundary so the measurement snapshot sees
        exactly the same cache/predictor state as the object path.
        """
        if warmup:
            self._run_window(arrays, 0, warmup)
            self.start_measurement()
        self._run_window(arrays, warmup, len(arrays))
        return self.result(len(arrays) - warmup)

    def _run_window(self, arrays: TraceArrays, start: int, end: int) -> None:
        if end <= start:
            return
        prepared = self.prepare_window(arrays, start, end)
        advance = self._advance
        for row in prepared.rows():
            advance(*row)

    # ------------------------------------------------------------------
    def _prune(self, horizon: int) -> None:
        floor = horizon - 4 * self.config.rob_size
        self._issue_usage = {
            c: n for c, n in self._issue_usage.items() if c >= floor
        }
        self._fu_usage = {
            (c, p): n for (c, p), n in self._fu_usage.items() if c >= floor
        }

    # ------------------------------------------------------------------
    def run(self, trace, warmup: int = 0) -> LeadingRunResult:
        """Schedule a whole trace (no RMT backpressure) and summarise.

        The first ``warmup`` instructions train the caches and predictor but
        are excluded from the reported statistics (SimPoint-style
        measurement window).  Columnar traces take the batch path.
        """
        if isinstance(trace, TraceArrays):
            return self.run_arrays(trace, warmup)
        for instr in trace[:warmup]:
            self.schedule(instr)
        if warmup:
            self.start_measurement()
        for instr in trace[warmup:]:
            self.schedule(instr)
        return self.result(len(trace) - warmup)

    def start_measurement(self) -> None:
        """Snapshot counters so subsequent results report deltas only."""
        self._baseline = {
            "cycles": self._last_commit,
            "l2_misses": self.memory.l2.misses,
            "l1d_hits": self.memory.l1d.hits,
            "l1d_misses": self.memory.l1d.misses,
            "bpred_lookups": self.predictor.lookups,
            "bpred_misses": self.predictor.mispredicts,
        }

    def result(self, instructions: int) -> LeadingRunResult:
        """Summary over the measurement window (everything scheduled since
        :meth:`start_measurement`, or since construction)."""
        base = getattr(self, "_baseline", None) or {
            "cycles": 0, "l2_misses": 0, "l1d_hits": 0,
            "l1d_misses": 0, "bpred_lookups": 0, "bpred_misses": 0,
        }
        cycles = max(1, self._last_commit - base["cycles"])
        l1d_hits = self.memory.l1d.hits - base["l1d_hits"]
        l1d_misses = self.memory.l1d.misses - base["l1d_misses"]
        l1d_total = l1d_hits + l1d_misses
        lookups = self.predictor.lookups - base["bpred_lookups"]
        mispredicts = self.predictor.mispredicts - base["bpred_misses"]
        l2_misses = self.memory.l2.misses - base["l2_misses"]
        return LeadingRunResult(
            instructions=instructions,
            cycles=cycles,
            ipc=instructions / cycles,
            branch_mispredict_rate=mispredicts / lookups if lookups else 0.0,
            l1d_miss_rate=l1d_misses / l1d_total if l1d_total else 0.0,
            l2_misses_per_10k=l2_misses * 10_000.0 / max(1, instructions),
            average_l2_hit_latency=self.memory.average_l2_hit_latency,
            op_counts=dict(self._op_counts),
        )

    @property
    def current_cycle(self) -> int:
        """The commit cycle of the most recently scheduled instruction."""
        return self._last_commit
