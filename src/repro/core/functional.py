"""Functional (value-domain) RMT execution with fault injection.

This engine runs the leading and trailing cores over the same trace at the
*value* level: every instruction computes a real 64-bit result, results and
operands flow through the RVQ/LVQ/BOQ/StB, and the trailing core performs
the actual comparison the paper's protocol prescribes.  Faults injected
anywhere in the datapath therefore propagate, get caught (or not) by the
checking process, and recovery restores state from the trailing core's
ECC-protected register file — mechanistically, not by assumption.

Timing is handled separately (:mod:`repro.core.rmt`); this module answers
"is the protocol correct and what is its fault coverage?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import QueueConfig
from repro.core.faults import (
    EccOutcome,
    Fault,
    FaultInjector,
    FaultSite,
    apply_bit_flips,
    secded_outcome,
)
from repro.core.queues import (
    BoundedQueue,
    BranchOutcomeEntry,
    LoadValueEntry,
    RegisterValueEntry,
    StoreBuffer,
    StoreBufferEntry,
)
from repro.isa.instruction import Instruction, compute_result, load_value_for_address
from repro.isa.opcodes import OpClass

__all__ = ["FunctionalRmt", "RmtRunResult"]

_NUM_REGS = 64


def _initial_regfile() -> list[int]:
    # Deterministic non-trivial initial architectural state.
    return [(0x243F6A8885A308D3 * (i + 1)) & ((1 << 64) - 1) for i in range(_NUM_REGS)]


@dataclass
class RmtRunResult:
    """Outcome of a functional RMT run."""

    instructions: int = 0
    mismatches_detected: int = 0
    recoveries: int = 0
    ecc_corrections: int = 0
    ecc_detections_uncorrectable: int = 0
    silent_corruptions: int = 0
    drained_stores: list[tuple[int, int]] = field(default_factory=list)
    final_trailing_regfile: list[int] = field(default_factory=list)

    @property
    def store_stream(self) -> list[tuple[int, int]]:
        """(address, value) pairs released to memory, in order."""
        return self.drained_stores


class FunctionalRmt:
    """Leading + trailing cores coupled through the RMT queues (Figure 1).

    The leading core executes and commits each instruction (possibly
    corrupted by injected faults), pushing results/operands into the RVQ,
    load values into the LVQ, branch outcomes into the BOQ and stores into
    the StB.  The trailing core pops each entry, re-executes the instruction
    with register value prediction, verifies the predicted operands against
    its own register file, and compares results.  On any disagreement it
    triggers recovery from its ECC-protected register file.
    """

    def __init__(
        self,
        queues: QueueConfig | None = None,
        injector: FaultInjector | None = None,
    ):
        self.queue_config = queues or QueueConfig()
        self.injector = injector
        qc = self.queue_config
        self.rvq: BoundedQueue[RegisterValueEntry] = BoundedQueue(qc.rvq_entries, "RVQ")
        self.lvq: BoundedQueue[LoadValueEntry] = BoundedQueue(qc.lvq_entries, "LVQ")
        self.boq: BoundedQueue[BranchOutcomeEntry] = BoundedQueue(qc.boq_entries, "BOQ")
        self.stb = StoreBuffer(qc.stb_entries)
        self.leading_regs = _initial_regfile()
        self.trailing_regs = _initial_regfile()
        self.result = RmtRunResult()

    # ------------------------------------------------------------------
    def run(self, trace: list[Instruction]) -> RmtRunResult:
        """Execute the whole trace through both cores; return the outcome.

        The functional model processes one instruction through both cores
        before the next (the slack only affects timing, which this engine
        does not model).
        """
        for instr in trace:
            self._step(instr)
        self.result.final_trailing_regfile = list(self.trailing_regs)
        return self.result

    # ------------------------------------------------------------------
    def _step(self, instr: Instruction) -> None:
        self.result.instructions += 1
        faults = (
            self.injector.faults_for(instr.seq, "leading") if self.injector else []
        )
        self._leading_execute(instr, faults)

        tfaults = (
            self.injector.faults_for(instr.seq, "trailing") if self.injector else []
        )
        self._trailing_check(instr, tfaults)

    # -- leading core ----------------------------------------------------
    def _leading_execute(self, instr: Instruction, faults: list[Fault]) -> None:
        regs = self.leading_regs
        op1 = regs[instr.src1] if instr.src1 >= 0 else 0
        op2 = regs[instr.src2] if instr.src2 >= 0 else 0

        if instr.is_load:
            value = load_value_for_address(instr.address)
            value = self._flip(faults, FaultSite.LVQ_VALUE, value, ecc=True)
            result = value
            # The whole load-value path (D-cache, LVQ, and the buses that
            # carry load values) is ECC-protected — the paper's first
            # fault-model condition — because it feeds both cores and a
            # common-source corruption would otherwise escape comparison.
            result = self._flip(faults, FaultSite.LEADING_RESULT, result, ecc=True)
        elif instr.is_store:
            result = op1  # the value being stored
            result = self._flip(faults, FaultSite.LEADING_RESULT, result)
        elif instr.is_branch:
            result = 0
        else:
            result = compute_result(instr.op, op1, op2)
            result = self._flip(faults, FaultSite.LEADING_RESULT, result)

        if instr.writes_register:
            regs[instr.dst] = result
            # An unprotected leading register may be struck after the write.
            regs[instr.dst] = self._flip(
                faults, FaultSite.LEADING_REGFILE, regs[instr.dst]
            )

        # Communicate to the trailer.  Operands ride the (unprotected) RVQ.
        sent_op1 = self._flip(faults, FaultSite.RVQ_OPERAND, op1)
        if instr.is_load:
            self._push_ready(self.lvq, LoadValueEntry(instr.seq, result))
        if instr.is_branch:
            self._push_ready(
                self.boq, BranchOutcomeEntry(instr.seq, instr.taken, instr.target)
            )
        if instr.is_store:
            value = self._flip(faults, FaultSite.STORE_VALUE, result)
            self._push_ready(
                self.stb, StoreBufferEntry(instr.seq, instr.address, value)
            )
        self._push_ready(
            self.rvq, RegisterValueEntry(instr.seq, result, sent_op1, op2)
        )

    def _push_ready(self, queue, entry) -> None:
        # The functional engine keeps queues drained instruction-by-
        # instruction, so a full queue indicates a protocol bug.
        queue.push(entry)

    # -- trailing core ----------------------------------------------------
    def _trailing_check(self, instr: Instruction, faults: list[Fault]) -> None:
        regs = self.trailing_regs
        entry = self.rvq.pop()

        # Register value prediction: use the operands from the RVQ, but
        # verify them against the trailer's own (checked) register file
        # before commit.  A corrupted operand is caught here.
        operands_ok = True
        if instr.src1 >= 0 and entry.operand1 != self._read_protected(instr.src1, faults):
            operands_ok = False
        if instr.src2 >= 0 and entry.operand2 != self._read_protected(instr.src2, faults):
            operands_ok = False

        if instr.is_load:
            lvq_entry = self.lvq.pop()
            value = lvq_entry.value
            # LVQ is ECC protected: single-bit corruption was corrected at
            # injection time (see _flip with ecc=True).
            trailing_result = value
        elif instr.is_store:
            trailing_result = regs[instr.src1] if instr.src1 >= 0 else 0
        elif instr.is_branch:
            self.boq.pop()
            trailing_result = 0
        else:
            trailing_result = compute_result(
                instr.op,
                self._read_protected(instr.src1, faults) if instr.src1 >= 0 else 0,
                self._read_protected(instr.src2, faults) if instr.src2 >= 0 else 0,
            )

        trailing_result = self._flip(faults, FaultSite.TRAILING_RESULT, trailing_result)

        agree = operands_ok and trailing_result == entry.result
        if instr.is_store:
            stb_ok = self.stb.verify_and_drain(trailing_result)
            agree = agree and stb_ok

        if agree:
            if instr.writes_register:
                regs[instr.dst] = trailing_result
            if instr.is_store:
                self.result.drained_stores.append((instr.address, trailing_result))
            return

        # Disagreement: detection + recovery from the trailer's regfile.
        self.result.mismatches_detected += 1
        self._recover(instr)

    def _read_protected(self, reg: int, faults: list[Fault]) -> int:
        """Read a trailing register through its ECC protection.

        Single-bit regfile faults are corrected; multi-bit faults are
        detected (triggering recovery upstream) but here we count them and
        return the corrupted value so the mismatch machinery fires.
        """
        value = self.trailing_regs[reg]
        strikes = [
            f for f in faults
            if f.site is FaultSite.TRAILING_REGFILE
        ]
        if not strikes:
            return value
        fault = strikes[0]
        outcome = secded_outcome(fault.num_bits)
        if outcome is EccOutcome.CORRECTED:
            self.result.ecc_corrections += 1
            return value
        if outcome is EccOutcome.DETECTED:
            self.result.ecc_detections_uncorrectable += 1
        faults.remove(fault)
        return apply_bit_flips(value, fault.bits)

    def _recover(self, instr: Instruction) -> None:
        """Re-execute ``instr`` from the trailer's checked register state."""
        self.result.recoveries += 1
        regs = self.trailing_regs
        op1 = regs[instr.src1] if instr.src1 >= 0 else 0
        op2 = regs[instr.src2] if instr.src2 >= 0 else 0
        if instr.is_load:
            correct = load_value_for_address(instr.address)
        elif instr.is_store:
            correct = op1
        elif instr.is_branch:
            correct = 0
        else:
            correct = compute_result(instr.op, op1, op2)
        if instr.writes_register:
            regs[instr.dst] = correct
        if instr.is_store:
            self.result.drained_stores.append((instr.address, correct))
        # The leading core restarts from the trailer's architectural state.
        self.leading_regs = list(regs)

    # ------------------------------------------------------------------
    def _flip(
        self, faults: list[Fault], site: FaultSite, value: int, ecc: bool = False
    ) -> int:
        """Apply any pending fault at ``site`` to ``value``.

        With ``ecc=True`` the word is SECDED protected: single-bit flips are
        corrected on the spot; double-bit flips are detected, and since the
        protected structures (LVQ, D-cache) can re-read the value from an
        ECC-protected backing store, detection recovers the original value
        (counted separately).  Only a 3+-bit flip would escape SECDED.
        """
        for fault in faults:
            if fault.site is site:
                faults.remove(fault)
                if ecc:
                    outcome = secded_outcome(fault.num_bits)
                    if outcome is EccOutcome.CORRECTED:
                        self.result.ecc_corrections += 1
                        return value
                    if outcome is EccOutcome.DETECTED:
                        self.result.ecc_detections_uncorrectable += 1
                        return value
                    self.result.silent_corruptions += 1
                return apply_bit_flips(value, fault.bits)
        return value


def golden_store_stream(trace: list[Instruction]) -> list[tuple[int, int]]:
    """The fault-free store stream for a trace (reference for coverage tests)."""
    rmt = FunctionalRmt()
    return rmt.run(trace).store_stream
