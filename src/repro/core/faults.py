"""Fault models: transient (soft) errors, dynamic timing errors, ECC.

The fault model follows Section 2 of the paper: single transient faults in
the datapath are detected by the register checking process; recovery relies
on the ECC-protected trailing register file, LVQ, and data cache.  Dynamic
timing errors are *correlated* — one violation makes violations in the next
few cycles far more likely — which is what motivates the paper's interest
in a checker that is itself error-resilient (Sections 3.5 and 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.rng import RngFactory

__all__ = [
    "FaultKind",
    "FaultSite",
    "Fault",
    "FaultInjector",
    "EccOutcome",
    "secded_outcome",
    "apply_bit_flips",
]


class FaultKind(enum.Enum):
    """Physical cause of a fault."""

    SOFT_ERROR = "soft"          # high-energy particle strike
    TIMING_ERROR = "timing"      # dynamic timing violation
    HARD_ERROR = "hard"          # permanent device failure


class FaultSite(enum.Enum):
    """Where in the datapath a fault lands."""

    LEADING_RESULT = "leading-result"      # leading core's computed result
    LEADING_REGFILE = "leading-regfile"    # a leading register (unprotected)
    RVQ_OPERAND = "rvq-operand"            # operand in flight to the trailer
    LVQ_VALUE = "lvq-value"                # load value in flight (ECC)
    TRAILING_RESULT = "trailing-result"    # trailer's computed result
    TRAILING_REGFILE = "trailing-regfile"  # trailer register (ECC)
    STORE_VALUE = "store-value"            # store value in the StB


@dataclass(frozen=True)
class Fault:
    """One injected fault: which instruction, where, and which bits flip."""

    seq: int
    kind: FaultKind
    site: FaultSite
    bits: tuple[int, ...]

    @property
    def num_bits(self) -> int:
        """Number of flipped bits."""
        return len(self.bits)


class EccOutcome(enum.Enum):
    """What SECDED ECC does with a corrupted word."""

    CLEAN = "clean"            # no flipped bits
    CORRECTED = "corrected"    # single-bit flip corrected
    DETECTED = "detected"      # double-bit flip detected, not correctable
    UNDETECTED = "undetected"  # >= 3 flips may escape SECDED


def secded_outcome(num_flipped_bits: int) -> EccOutcome:
    """SECDED behaviour as a function of the number of flipped bits."""
    if num_flipped_bits < 0:
        raise ValueError("bit count cannot be negative")
    if num_flipped_bits == 0:
        return EccOutcome.CLEAN
    if num_flipped_bits == 1:
        return EccOutcome.CORRECTED
    if num_flipped_bits == 2:
        return EccOutcome.DETECTED
    return EccOutcome.UNDETECTED


def apply_bit_flips(value: int, bits: tuple[int, ...]) -> int:
    """Flip the given bit positions (0-63) of a 64-bit value."""
    for bit in bits:
        value ^= 1 << (bit % 64)
    return value


@dataclass(frozen=True)
class FaultRates:
    """Per-instruction fault probabilities for one core."""

    soft_error: float = 0.0
    timing_error: float = 0.0
    timing_burst_factor: float = 50.0   # correlation multiplier inside a burst
    timing_burst_length: int = 4        # instructions a burst lasts
    multi_bit_fraction: float = 0.05    # faults that flip 2 bits instead of 1


class FaultInjector:
    """Draws faults to inject into an RMT run.

    Timing errors are correlated: after a timing error fires, the
    per-instruction probability is multiplied by ``timing_burst_factor``
    for the next ``timing_burst_length`` instructions, producing the
    multi-error bursts the paper worries about (Section 3.5).
    """

    _SITES_LEADING = (
        FaultSite.LEADING_RESULT,
        FaultSite.LEADING_REGFILE,
        FaultSite.RVQ_OPERAND,
        FaultSite.LVQ_VALUE,
        FaultSite.STORE_VALUE,
    )
    _SITES_TRAILING = (
        FaultSite.TRAILING_RESULT,
        FaultSite.TRAILING_REGFILE,
    )

    def __init__(
        self,
        leading: FaultRates = FaultRates(),
        trailing: FaultRates = FaultRates(),
        seed: int = 0,
    ):
        self.leading_rates = leading
        self.trailing_rates = trailing
        self._rng = RngFactory(seed).stream("fault-injector")
        self._burst_remaining = {"leading": 0, "trailing": 0}
        self.injected: list[Fault] = []

    def faults_for(self, seq: int, core: str) -> list[Fault]:
        """Faults striking instruction ``seq`` on ``core`` ('leading'/'trailing')."""
        rates = self.leading_rates if core == "leading" else self.trailing_rates
        sites = self._SITES_LEADING if core == "leading" else self._SITES_TRAILING
        rng = self._rng
        faults: list[Fault] = []

        if rates.soft_error > 0 and rng.random() < rates.soft_error:
            faults.append(self._make(seq, FaultKind.SOFT_ERROR, sites, rates))

        timing_p = rates.timing_error
        if self._burst_remaining[core] > 0:
            timing_p = min(1.0, timing_p * rates.timing_burst_factor)
            self._burst_remaining[core] -= 1
        if timing_p > 0 and rng.random() < timing_p:
            faults.append(self._make(seq, FaultKind.TIMING_ERROR, sites, rates))
            self._burst_remaining[core] = rates.timing_burst_length

        self.injected.extend(faults)
        return faults

    def _make(
        self,
        seq: int,
        kind: FaultKind,
        sites: tuple[FaultSite, ...],
        rates: FaultRates,
    ) -> Fault:
        rng = self._rng
        site = sites[int(rng.integers(0, len(sites)))]
        num_bits = 2 if rng.random() < rates.multi_bit_fraction else 1
        bits = tuple(
            int(b) for b in rng.choice(64, size=num_bits, replace=False)
        )
        return Fault(seq=seq, kind=kind, site=site, bits=bits)


def poisson_fault_schedule(
    rate_per_instruction: float, num_instructions: int, seed: int = 0
) -> np.ndarray:
    """Sequence numbers at which independent faults strike (sorted)."""
    rng = RngFactory(seed).stream("fault-schedule")
    strikes = rng.random(num_instructions) < rate_per_instruction
    return np.nonzero(strikes)[0]
