"""Inter-core FIFO queues of the RMT architecture (Figure 1).

* **RVQ** — register value queue: committed results (and, with register
  value prediction, the input operands) flow leading → trailing.
* **LVQ** — load value queue: committed load values flow leading →
  trailing so the trailer never reads the data cache.
* **BOQ** — branch outcome queue: branch outcomes used by the trailer as
  (unprotected) branch prediction hints.
* **StB** — store buffer: the leading core commits stores here; entries
  drain to memory only after the trailing core has checked them.

All queues are bounded; pushing a full queue or popping an empty one raises
(the timing simulators model the corresponding stalls instead of raising).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.common.errors import QueueEmptyError, QueueFullError

__all__ = [
    "BoundedQueue",
    "RegisterValueEntry",
    "LoadValueEntry",
    "BranchOutcomeEntry",
    "StoreBufferEntry",
    "StoreBuffer",
]

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """A bounded FIFO with occupancy accounting."""

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: deque[T] = deque()
        self.total_pushes = 0

    def push(self, item: T) -> None:
        """Append an item; raises :class:`QueueFullError` if full."""
        if self.is_full:
            raise QueueFullError(f"{self.name} is full (capacity {self.capacity})")
        self._items.append(item)
        self.total_pushes += 1

    def pop(self) -> T:
        """Remove and return the oldest item; raises if empty."""
        if not self._items:
            raise QueueEmptyError(f"{self.name} is empty")
        return self._items.popleft()

    def peek(self) -> T:
        """Return (without removing) the oldest item; raises if empty."""
        if not self._items:
            raise QueueEmptyError(f"{self.name} is empty")
        return self._items[0]

    @property
    def occupancy(self) -> int:
        """Number of items currently queued."""
        return len(self._items)

    @property
    def occupancy_fraction(self) -> float:
        """Occupancy as a fraction of capacity."""
        return len(self._items) / self.capacity

    @property
    def is_full(self) -> bool:
        """True when no more items can be pushed."""
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when no items are queued."""
        return not self._items

    def clear(self) -> None:
        """Drop all items (recovery flush)."""
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)


@dataclass(frozen=True)
class RegisterValueEntry:
    """One RVQ entry: the committed result plus the input operands (RVP)."""

    seq: int
    result: int
    operand1: int
    operand2: int


@dataclass(frozen=True)
class LoadValueEntry:
    """One LVQ entry: the value a committed load observed."""

    seq: int
    value: int


@dataclass(frozen=True)
class BranchOutcomeEntry:
    """One BOQ entry: outcome and target of a committed branch."""

    seq: int
    taken: bool
    target: int


@dataclass(frozen=True)
class StoreBufferEntry:
    """One StB entry: a store awaiting verification before memory commit."""

    seq: int
    address: int
    value: int


class StoreBuffer(BoundedQueue[StoreBufferEntry]):
    """The leading core's store buffer.

    The leading core pushes committed stores; the trailing core supplies its
    own store values for comparison, and only verified entries drain to
    memory.
    """

    def __init__(self, capacity: int):
        super().__init__(capacity, name="StB")
        self.drained: list[StoreBufferEntry] = []
        self.mismatches = 0

    def verify_and_drain(self, trailing_value: int) -> bool:
        """Compare the oldest entry against the trailer's value and drain it.

        Returns True if the values agreed (the store is released to memory);
        on disagreement the entry is dropped and counted — recovery will
        re-execute the store.
        """
        entry = self.pop()
        if entry.value == trailing_value:
            self.drained.append(entry)
            return True
        self.mismatches += 1
        return False
