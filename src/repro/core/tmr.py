"""Triple modular redundancy: the paper's fallback for weak checkers.

Section 4 observes that if the checker is *equally* likely to err as the
leading core, recovery needs an ECC-protected checker register file "and
possibly even a third core to implement triple modular redundancy".  This
module implements that third configuration at the value level: three
redundant executions vote per instruction, and the majority wins without
any rollback.

It exists to quantify the trade the paper is making: TMR recovers from
any single-core error with zero recovery latency, but costs a third
execution's power — which is exactly why the paper prefers one *more
reliable* (older-process, throttled) checker instead.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.faults import FaultInjector, FaultSite, apply_bit_flips
from repro.isa.instruction import Instruction, compute_result, load_value_for_address

__all__ = ["TmrResult", "TmrSystem"]

_NUM_REGS = 64
_MASK64 = (1 << 64) - 1


def _initial_regfile() -> list[int]:
    return [(0x243F6A8885A308D3 * (i + 1)) & _MASK64 for i in range(_NUM_REGS)]


@dataclass
class TmrResult:
    """Outcome of a TMR run."""

    instructions: int = 0
    votes_unanimous: int = 0
    votes_majority: int = 0          # one replica outvoted (error masked)
    votes_split: int = 0             # no majority: unrecoverable by voting
    drained_stores: list[tuple[int, int]] = field(default_factory=list)

    @property
    def masked_errors(self) -> int:
        """Errors silently outvoted — TMR's zero-latency 'recovery'."""
        return self.votes_majority

    @property
    def store_stream(self) -> list[tuple[int, int]]:
        """(address, value) pairs committed by the voter."""
        return self.drained_stores


class TmrSystem:
    """Three redundant cores with per-instruction majority voting.

    Each replica executes every instruction against its own register
    file; an optional fault injector corrupts replica results (replica 0
    uses the injector's 'leading' rates, replicas 1 and 2 the 'trailing'
    rates).  The voted result becomes every replica's architectural state,
    so a single corrupted replica is healed at the next write.
    """

    def __init__(self, injector: FaultInjector | None = None):
        self.injector = injector
        self.regfiles = [_initial_regfile() for _ in range(3)]
        self.result = TmrResult()

    # ------------------------------------------------------------------
    def run(self, trace: list[Instruction]) -> TmrResult:
        """Execute and vote the whole trace."""
        for instr in trace:
            self._step(instr)
        return self.result

    def _replica_result(self, replica: int, instr: Instruction) -> int:
        regs = self.regfiles[replica]
        op1 = regs[instr.src1] if instr.src1 >= 0 else 0
        op2 = regs[instr.src2] if instr.src2 >= 0 else 0
        if instr.is_load:
            return load_value_for_address(instr.address)
        if instr.is_store:
            return op1
        if instr.is_branch:
            return 0
        return compute_result(instr.op, op1, op2)

    def _step(self, instr: Instruction) -> None:
        self.result.instructions += 1
        values = []
        for replica in range(3):
            value = self._replica_result(replica, instr)
            if self.injector is not None:
                rates = "leading" if replica == 0 else "trailing"
                for fault in self.injector.faults_for(instr.seq, rates):
                    # Any datapath fault manifests as a corrupted result.
                    if fault.site is not FaultSite.TRAILING_REGFILE:
                        value = apply_bit_flips(value, fault.bits)
            values.append(value)

        counts = Counter(values)
        winner, support = counts.most_common(1)[0]
        if support == 3:
            self.result.votes_unanimous += 1
        elif support == 2:
            self.result.votes_majority += 1
        else:
            # No majority: fall back to replica 0 and count the failure.
            self.result.votes_split += 1
            winner = values[0]

        if instr.writes_register:
            for regs in self.regfiles:
                regs[instr.dst] = winner
        if instr.is_store:
            self.result.drained_stores.append((instr.address, winner))
