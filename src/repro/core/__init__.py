"""The paper's reliable processor: leading core, checker core, RMT coupling."""

from repro.core.branch import BranchPredictor
from repro.core.checker import InOrderCheckerTiming
from repro.core.dfs import DfsController
from repro.core.faults import (
    EccOutcome,
    Fault,
    FaultInjector,
    FaultKind,
    FaultRates,
    FaultSite,
    apply_bit_flips,
    secded_outcome,
)
from repro.core.functional import FunctionalRmt, RmtRunResult, golden_store_stream
from repro.core.leading import LeadingCoreTiming, LeadingRunResult
from repro.core.memory import MemoryHierarchy
from repro.core.queues import (
    BoundedQueue,
    BranchOutcomeEntry,
    LoadValueEntry,
    RegisterValueEntry,
    StoreBuffer,
    StoreBufferEntry,
)
from repro.core.rmt import RmtSimulator, RmtTimingResult

__all__ = [
    "BranchPredictor",
    "InOrderCheckerTiming",
    "DfsController",
    "EccOutcome",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultRates",
    "FaultSite",
    "apply_bit_flips",
    "secded_outcome",
    "FunctionalRmt",
    "RmtRunResult",
    "golden_store_stream",
    "LeadingCoreTiming",
    "LeadingRunResult",
    "MemoryHierarchy",
    "BoundedQueue",
    "BranchOutcomeEntry",
    "LoadValueEntry",
    "RegisterValueEntry",
    "StoreBuffer",
    "StoreBufferEntry",
    "RmtSimulator",
    "RmtTimingResult",
]
