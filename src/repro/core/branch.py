"""Combined bimodal / 2-level branch predictor with BTB (Table 1).

The leading core uses this predictor; the trailing checker core instead
receives perfect branch outcomes through the branch outcome queue (BOQ).
"""

from __future__ import annotations

from repro.common.config import BranchPredictorConfig
from repro.common.stats import StatGroup

__all__ = ["BranchPredictor", "BranchStream", "BranchStreamView"]

_TAKEN_THRESHOLD = 2  # 2-bit counters: 0,1 predict not-taken; 2,3 taken


class BranchPredictor:
    """McFarling-style combined predictor: bimodal + gshare-like 2-level.

    A chooser table of 2-bit counters selects, per branch, whichever
    component has been more accurate.  A branch-target buffer provides
    targets for predicted-taken branches; a BTB miss on a taken branch is
    counted as a misprediction (the front end cannot redirect).
    """

    def __init__(self, config: BranchPredictorConfig | None = None, name: str = "bpred"):
        self.config = config or BranchPredictorConfig()
        cfg = self.config
        self._bimodal = [1] * cfg.bimodal_entries
        self._pht = [1] * cfg.level2_entries
        self._chooser = [1] * cfg.bimodal_entries  # start slightly favouring bimodal
        self._history = 0
        self._history_mask = (1 << cfg.history_bits) - 1
        # BTB: tag store, sets x ways.  Stored sparsely (set index ->
        # resident ways) — a trace touches a few hundred of the 16K sets,
        # so the dict keeps :meth:`clone` proportional to the footprint
        # instead of the geometry.
        self._btb: dict[int, list[tuple[int, int]]] = {}
        self.stats = StatGroup(name)
        self._lookups = self.stats.counter("lookups")
        self._mispredicts = self.stats.counter("mispredicts")

    # ------------------------------------------------------------------
    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.bimodal_entries

    def _pht_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.config.level2_entries

    def _btb_set(self, pc: int) -> int:
        return (pc >> 2) % self.config.btb_sets

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> tuple[bool, int | None]:
        """Predict (direction, target) for the branch at ``pc``.

        ``target`` is None on a BTB miss.  Does not update any state; call
        :meth:`update` with the actual outcome afterwards.
        """
        bimodal_taken = self._bimodal[self._bimodal_index(pc)] >= _TAKEN_THRESHOLD
        pht_taken = self._pht[self._pht_index(pc)] >= _TAKEN_THRESHOLD
        use_pht = self._chooser[self._bimodal_index(pc)] >= _TAKEN_THRESHOLD
        taken = pht_taken if use_pht else bimodal_taken
        target = None
        if taken:
            ways = self._btb.get(self._btb_set(pc))
            if ways:
                for tag, tgt in ways:
                    if tag == pc:
                        target = tgt
                        break
        return taken, target

    def update(self, pc: int, taken: bool, target: int) -> bool:
        """Record the real outcome; returns True if it was mispredicted.

        A misprediction is a wrong direction, or a taken branch whose
        target was absent from the BTB.
        """
        self._lookups.increment()
        predicted_taken, predicted_target = self.predict(pc)
        mispredicted = predicted_taken != taken or (
            taken and predicted_target != target
        )
        if mispredicted:
            self._mispredicts.increment()

        bi = self._bimodal_index(pc)
        ph = self._pht_index(pc)
        bimodal_correct = (self._bimodal[bi] >= _TAKEN_THRESHOLD) == taken
        pht_correct = (self._pht[ph] >= _TAKEN_THRESHOLD) == taken
        if pht_correct != bimodal_correct:
            self._chooser[bi] = _saturate(self._chooser[bi], pht_correct)
        self._bimodal[bi] = _saturate(self._bimodal[bi], taken)
        self._pht[ph] = _saturate(self._pht[ph], taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

        if taken:
            index = self._btb_set(pc)
            ways = self._btb.get(index)
            if ways is None:
                ways = self._btb[index] = []
            for i, (tag, _) in enumerate(ways):
                if tag == pc:
                    del ways[i]
                    break
            ways.append((pc, target))
            if len(ways) > self.config.btb_ways:
                del ways[0]
        return mispredicted

    def update_window(self, pcs, takens, targets) -> list[bool]:
        """Resolve a window of branches in trace order.

        Batch form of :meth:`update` for the columnar pipeline: the bound
        method is hoisted once per window instead of looked up per branch.
        State evolution and misprediction flags are identical to calling
        :meth:`update` row by row.
        """
        update = self.update
        return [
            update(pc, taken, target)
            for pc, taken, target in zip(pcs, takens, targets)
        ]

    def clone(self) -> "BranchPredictor":
        """An independent copy with identical tables, history, and stats.

        Lets a pretrained predictor be cached and handed out repeatedly
        (see :mod:`repro.common.memo`): the clone behaves exactly like the
        original from this state on, but updates to either never affect
        the other.
        """
        other = BranchPredictor(self.config, name=self.stats.name)
        other._bimodal = list(self._bimodal)
        other._pht = list(self._pht)
        other._chooser = list(self._chooser)
        other._history = self._history
        other._btb = {s: list(ways) for s, ways in self._btb.items()}
        other._lookups.value = self._lookups.value
        other._mispredicts.value = self._mispredicts.value
        return other

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        """Number of resolved branches."""
        return self._lookups.value

    @property
    def mispredicts(self) -> int:
        """Number of mispredictions."""
        return self._mispredicts.value

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches mispredicted (0.0 if none resolved)."""
        total = self._lookups.value
        return self._mispredicts.value / total if total else 0.0


class BranchStream:
    """Memoized resolution of one predictor over one branch stream.

    For a fixed ``(workload, seed)`` the branch sequence reaching the
    predictor is identical in every simulation, so the misprediction
    flags — and the lookup/mispredict counts at any prefix — are a pure
    function of the prefix length.  The stream owns one real
    :class:`BranchPredictor` (typically a pretrained clone), replays each
    branch through it exactly once on first demand, and records the
    flags; :meth:`view` hands out cheap cursors that consume the memoized
    prefix instead of cloning and re-updating 16K-entry tables per
    simulation.  Bit-identical to the clone-per-sim pattern by
    construction: the flags come from the same :meth:`BranchPredictor.update`
    calls a clone would make.
    """

    __slots__ = ("predictor", "flags", "cum_mispredicts",
                 "base_lookups", "base_mispredicts")

    def __init__(self, predictor: BranchPredictor):
        self.predictor = predictor
        self.flags: list[bool] = []
        # cum_mispredicts[i] = mispredicts among the first i flags.
        self.cum_mispredicts: list[int] = [0]
        self.base_lookups = predictor.lookups
        self.base_mispredicts = predictor.mispredicts

    def view(self) -> "BranchStreamView":
        """A fresh cursor positioned at the start of the stream."""
        return BranchStreamView(self)

    def extend(self, pcs, takens, targets) -> None:
        """Resolve further branches (those past the memoized prefix)."""
        new = self.predictor.update_window(pcs, takens, targets)
        self.flags.extend(new)
        cum = self.cum_mispredicts
        total = cum[-1]
        for flag in new:
            total += flag
            cum.append(total)


class BranchStreamView:
    """One simulation's read cursor over a :class:`BranchStream`.

    Duck-types the slice of the :class:`BranchPredictor` interface the
    scheduling paths use — ``config``, ``update_window`` / ``update``,
    and the ``lookups`` / ``mispredicts`` counters — while sharing the
    underlying memoized stream.  Both update forms require the caller to
    present the stream's branches *in order* (which every trace-driven
    scheduling path does by construction).  Deliberately does *not*
    expose ``predict``: a caller needing free-form out-of-order probes
    must take a real clone, since mutating the shared predictor out of
    stream order would corrupt every other view.
    """

    __slots__ = ("_stream", "_cursor")

    def __init__(self, stream: BranchStream):
        self._stream = stream
        self._cursor = 0

    @property
    def config(self) -> BranchPredictorConfig:
        """The underlying predictor's configuration."""
        return self._stream.predictor.config

    def update_window(self, pcs, takens, targets) -> list[bool]:
        """The next window's mispredict flags, memoized stream-wide.

        Every view must present the stream's branches in order (windows
        may be sliced differently between views); only the not-yet-seen
        suffix reaches the real predictor.
        """
        stream = self._stream
        cursor = self._cursor
        count = len(pcs)
        resolved = len(stream.flags)
        if cursor + count > resolved:
            skip = resolved - cursor  # head of this window already known
            stream.extend(pcs[skip:], takens[skip:], targets[skip:])
        self._cursor = cursor + count
        return stream.flags[cursor:self._cursor]

    def update(self, pc: int, taken: bool, target: int) -> bool:
        """Resolve the stream's next branch (per-row object path)."""
        return self.update_window((pc,), (taken,), (target,))[0]

    @property
    def lookups(self) -> int:
        """Resolved branches, as the equivalent clone would count them."""
        return self._stream.base_lookups + self._cursor

    @property
    def mispredicts(self) -> int:
        """Mispredictions, as the equivalent clone would count them."""
        return (
            self._stream.base_mispredicts
            + self._stream.cum_mispredicts[self._cursor]
        )

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches mispredicted (0.0 if none resolved)."""
        total = self.lookups
        return self.mispredicts / total if total else 0.0


def _saturate(counter: int, up: bool) -> int:
    if up:
        return min(3, counter + 1)
    return max(0, counter - 1)
