"""Dynamic frequency scaling controller for the trailing core.

Implements the heuristic of Section 2.1 (after [19]): every interval the
controller samples RVQ occupancy; if the queue is filling (the trailer is
falling behind) the frequency steps up one level, if it is draining the
frequency steps down.  Frequency changes take effect in a single cycle
(Montecito-style DFS), so the model applies them instantaneously at
interval boundaries.

The controller records residency per level — the data behind Figure 7.
"""

from __future__ import annotations

from repro.common.config import DfsConfig
from repro.common.stats import Histogram

__all__ = ["DfsController"]


class DfsController:
    """Occupancy-threshold DFS over a discrete set of frequency levels."""

    def __init__(self, config: DfsConfig | None = None, max_level_index: int | None = None):
        self.config = config or DfsConfig()
        self._levels = self.config.levels()
        # An older-process checker caps its peak frequency (Section 4):
        # max_level_index limits how far up the controller may scale.
        if max_level_index is None:
            max_level_index = len(self._levels) - 1
        if not 0 <= max_level_index < len(self._levels):
            raise ValueError("max_level_index out of range")
        self._max_index = max_level_index
        self._min_index = self.config.min_level - 1
        self._index = self._max_index  # start at peak; DFS relaxes downward
        self.residency = Histogram("frequency-residency", list(self._levels))
        self.throttle_ups = 0
        self.throttle_downs = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> float:
        """Current frequency as a fraction of the peak (e.g. 0.6)."""
        return self._levels[self._index]

    @property
    def levels(self) -> list[float]:
        """All available frequency fractions, ascending."""
        return list(self._levels)

    def update(self, rvq_occupancy_fraction: float) -> float:
        """One interval boundary: adjust the level, record residency.

        Returns the new frequency fraction.
        """
        cfg = self.config
        if rvq_occupancy_fraction > cfg.high_occupancy_threshold:
            if self._index < self._max_index:
                self._index = min(self._max_index, self._index + cfg.up_step)
                self.throttle_ups += 1
        elif rvq_occupancy_fraction < cfg.low_occupancy_threshold:
            if self._index > self._min_index:
                self._index = max(self._min_index, self._index - cfg.down_step)
                self.throttle_downs += 1
        self.residency.add(self._levels[self._index])
        return self.level

    # ------------------------------------------------------------------
    def mean_frequency_fraction(self) -> float:
        """Interval-weighted mean frequency fraction (Section 4: ~0.63)."""
        return self.residency.mean()

    def modal_frequency_fraction(self) -> float:
        """The most common frequency fraction (Figure 7: 0.6)."""
        return self.residency.mode()

    def residency_fractions(self) -> dict[float, float]:
        """Fraction of intervals spent at each level (Figure 7's bars)."""
        return dict(zip(self.residency.bins, self.residency.fractions()))
