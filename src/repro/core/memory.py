"""The leading core's memory hierarchy: L1 I/D caches over the NUCA L2.

The trailing checker core never accesses the data hierarchy — it receives
load values through the LVQ (Section 2) — so this hierarchy belongs to the
leading core alone.  Stores are committed to the store buffer and written
to the hierarchy only after checking (write-through here, since the tag-only
caches carry no data).
"""

from __future__ import annotations

import numpy as np

from repro.cache.nuca import NucaCache, bank_hops_for_model
from repro.cache.sram import SetAssociativeCache
from repro.common.config import ChipModel, LeadingCoreConfig, NucaConfig

__all__ = ["MemoryHierarchy"]


class MemoryHierarchy:
    """L1 instruction + data caches backed by the shared NUCA L2."""

    def __init__(
        self,
        core_config: LeadingCoreConfig,
        nuca_config: NucaConfig,
        chip: ChipModel = ChipModel.TWO_D_A,
    ):
        self.core_config = core_config
        self.chip = chip
        self.l1i = SetAssociativeCache(core_config.l1_icache, name="l1i")
        self.l1d = SetAssociativeCache(core_config.l1_dcache, name="l1d")
        self.l2 = NucaCache(
            nuca_config,
            bank_hops=bank_hops_for_model(chip),
            memory_latency_cycles=core_config.memory_latency_cycles,
        )

    # ------------------------------------------------------------------
    def fetch_latency(self, pc: int) -> int:
        """Instruction fetch latency in cycles for the line holding ``pc``."""
        if self.l1i.access(pc):
            return self.core_config.l1_icache.hit_latency_cycles
        result = self.l2.access(pc | (1 << 40))  # I-space disjoint from D-space
        return self.core_config.l1_icache.hit_latency_cycles + result.latency_cycles

    def load_latency(self, address: int) -> int:
        """Data load latency in cycles (L1 hit, or L1 miss + L2 access)."""
        if self.l1d.access(address):
            return self.core_config.l1_dcache.hit_latency_cycles
        result = self.l2.access(address)
        return self.core_config.l1_dcache.hit_latency_cycles + result.latency_cycles

    def store_commit(self, address: int) -> None:
        """Install a committed (checked) store into the hierarchy."""
        self.l1d.access(address)

    FETCH, LOAD, STORE = 0, 1, 2  # access_window event kinds

    def access_window(self, kinds: list[int], addresses: list[int]) -> list[int]:
        """Apply a trace-ordered batch of hierarchy accesses.

        ``kinds[i]`` selects :meth:`fetch_latency` (``FETCH``),
        :meth:`load_latency` (``LOAD``) or :meth:`store_commit` (``STORE``)
        for ``addresses[i]``; returns the per-event latency (0 for stores).
        The L1 probe (LRU lookup-and-fill) is inlined over the caches'
        set lists and the hit/miss counters are bulk-incremented once at
        the end — state evolution and counter totals are identical to
        issuing :meth:`SetAssociativeCache.access` per event, which is
        what lets the columnar scheduler pre-resolve a whole window's
        memory behaviour.  Only L1 misses (rare) pay a method call into
        the NUCA L2.
        """
        l1i = self.l1i
        l1d = self.l1d
        d_sets = l1d._sets
        d_off = l1d._offset_bits
        d_num = l1d._num_sets
        d_ways = l1d.geometry.ways
        i_sets = l1i._sets
        i_off = l1i._offset_bits
        i_num = l1i._num_sets
        i_ways = l1i.geometry.ways
        l2_access = self.l2.access
        i_hit = self.core_config.l1_icache.hit_latency_cycles
        d_hit = self.core_config.l1_dcache.hit_latency_cycles
        d_hits = d_misses = i_hits = i_misses = 0
        out: list[int] = []
        append = out.append
        for kind, address in zip(kinds, addresses):
            if kind == 1:
                line = address >> d_off
                ways = d_sets[line % d_num]
                try:
                    ways.remove(line)
                except ValueError:
                    d_misses += 1
                    ways.append(line)
                    if len(ways) > d_ways:
                        del ways[0]
                    append(d_hit + l2_access(address).latency_cycles)
                else:
                    d_hits += 1
                    ways.append(line)  # move to MRU
                    append(d_hit)
            elif kind == 0:
                line = address >> i_off
                ways = i_sets[line % i_num]
                try:
                    ways.remove(line)
                except ValueError:
                    i_misses += 1
                    ways.append(line)
                    if len(ways) > i_ways:
                        del ways[0]
                    append(
                        i_hit + l2_access(address | (1 << 40)).latency_cycles
                    )
                else:
                    i_hits += 1
                    ways.append(line)
                    append(i_hit)
            else:
                line = address >> d_off
                ways = d_sets[line % d_num]
                try:
                    ways.remove(line)
                except ValueError:
                    d_misses += 1
                    ways.append(line)
                    if len(ways) > d_ways:
                        del ways[0]
                else:
                    d_hits += 1
                    ways.append(line)
                append(0)
        if d_hits:
            l1d._hits.increment(d_hits)
        if d_misses:
            l1d._misses.increment(d_misses)
        if i_hits:
            l1i._hits.increment(i_hits)
        if i_misses:
            l1i._misses.increment(i_misses)
        return out

    # ------------------------------------------------------------------
    def preload_profile(self, profile) -> None:
        """Pre-install a workload's resident working set (SimPoint-style warm
        state): hot region into L1D+L2, warm and xl regions into L2, code
        into L1I.  Install order (xl, warm, hot) leaves the hottest lines in
        the LRU positions that survive when capacity is insufficient.

        Uses the caches' bulk ``preload_lines`` fast path (all regions are
        disjoint, so the lines are distinct and every access misses); falls
        back to the per-address loop whenever a cache declines.  The pure
        install plans (sort/unique/position math) are memoized per
        ``(profile, cache config)`` via :mod:`repro.common.memo` — a sweep
        rebuilds the hierarchy for every simulation, but the plan for a
        given profile and geometry never changes.
        """
        from repro.common.memo import get_cache

        cache = get_cache()
        line = self.l1d.geometry.line_bytes
        l2_addrs = np.concatenate(
            [
                np.arange(base, base + size, line, dtype=np.int64)
                for base, size in (
                    (0x2000_0000, profile.xl_bytes if profile.p_xl > 0 else 0),
                    (0x1000_0000, profile.warm_bytes),
                    (0x0000_0000, profile.hot_bytes),
                )
            ]
        )
        hot_addrs = np.arange(0, profile.hot_bytes, line, dtype=np.int64)
        code_addrs = np.arange(
            0, profile.code_bytes, self.l1i.geometry.line_bytes, dtype=np.int64
        )
        # All-or-nothing: only take the fast path when every cache is
        # empty, so a failure cannot leave the hierarchy half-installed.
        fast = (
            self.l2.resident_lines() == 0
            and self.l1d.resident_lines() == 0
            and self.l1i.resident_lines() == 0
            and self.l2.preload_lines(
                l2_addrs,
                plan=cache.preload_plan(
                    ("preload-l2", profile, self.l2.config),
                    lambda: self.l2.preload_plan(l2_addrs),
                ),
            )
        )
        if fast:
            self.l1d.preload_lines(
                hot_addrs,
                plan=cache.preload_plan(
                    ("preload-l1d", profile, self.l1d.geometry),
                    lambda: self.l1d.preload_plan(hot_addrs),
                ),
            )
            self.l1i.preload_lines(
                code_addrs,
                plan=cache.preload_plan(
                    ("preload-l1i", profile, self.l1i.geometry),
                    lambda: self.l1i.preload_plan(code_addrs),
                ),
            )
        else:
            self._preload_profile_reference(profile)
        # Preloading must not pollute the measured statistics.
        self.l1i.stats.reset()
        self.l1d.stats.reset()
        self.l2.stats.reset()

    def _preload_profile_reference(self, profile) -> None:
        """Per-address preload loop — the semantics `preload_lines`
        reproduces, and the fallback when its preconditions fail (warm
        caches, duplicate lines, or L2 contention modelling)."""
        line = self.l1d.geometry.line_bytes
        for base, size in (
            (0x2000_0000, profile.xl_bytes if profile.p_xl > 0 else 0),
            (0x1000_0000, profile.warm_bytes),
            (0x0000_0000, profile.hot_bytes),
        ):
            for addr in range(base, base + size, line):
                self.l2.access(addr)
        for addr in range(0, profile.hot_bytes, line):
            self.l1d.access(addr)
        for pc in range(0, profile.code_bytes, self.l1i.geometry.line_bytes):
            self.l1i.access(pc)

    def l2_misses_per_10k(self, instructions: int) -> float:
        """L2 misses per 10k instructions (the Section 3.3 metric)."""
        return self.l2.misses_per_10k(instructions)

    @property
    def average_l2_hit_latency(self) -> float:
        """Mean L2 hit latency observed so far (cycles)."""
        return self.l2.average_hit_latency
