"""RMT co-simulation: leading core + trailing checker + DFS, in time.

The two cores execute the same dynamic instruction stream separated by a
slack (Section 2).  The leading core commits into the RVQ/LVQ/BOQ/StB; the
trailing core consumes entries at its own (DFS-scaled) frequency; when any
queue fills, the leading core's commit stalls (backpressure).  The DFS
controller samples RVQ occupancy every interval and adjusts the trailing
frequency, producing the residency histogram of Figure 7.

All four bounded queues gate the leading core exactly as the sized
structures of Section 2.1 would (200-entry RVQ, 80-entry LVQ, 40-entry BOQ,
40-entry StB).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.common.config import CheckerCoreConfig, LeadingCoreConfig
from repro.core.branch import BranchPredictor
from repro.core.checker import InOrderCheckerTiming
from repro.core.dfs import DfsController
from repro.core.leading import (
    LeadingCoreTiming,
    LeadingRunResult,
    TraceSchedule,
    build_trace_schedule,
)
from repro.core.memory import MemoryHierarchy
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY_BY_CODE,
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    POOL_BY_CODE,
)
from repro.isa.soa import TraceArrays
from repro.obs.metrics import FRACTION_EDGES, get_registry
from repro.obs.tracing import span

__all__ = ["RmtSimulator", "RmtTimingResult"]

_POOL_ARR = np.array(POOL_BY_CODE, dtype=np.int64)
_LATENCY_ARR = np.array(EXECUTION_LATENCY_BY_CODE, dtype=np.int64)
# Queue binding codes used by the vectorized gate pre-pass.
_BINDINGS = ("rvq", "lvq", "stb", "boq")


@dataclass
class RmtTimingResult:
    """Timing outcome of an RMT co-simulation."""

    leading: LeadingRunResult
    frequency_residency: dict[float, float]
    mean_frequency_fraction: float
    modal_frequency_fraction: float
    mean_rvq_occupancy_fraction: float
    backpressure_commits: int
    checker_instructions: int

    def mean_checker_frequency_hz(self, peak_hz: float) -> float:
        """Average absolute checker frequency for a given peak."""
        return self.mean_frequency_fraction * peak_hz

    def checker_energy_ratio(self, leakage_fraction: float = 0.25) -> float:
        """Checker energy relative to running pinned at peak frequency.

        DFS scales the dynamic share linearly with frequency while leakage
        persists — this is the power saving Section 2.1's throttling buys.
        """
        if not 0.0 <= leakage_fraction <= 1.0:
            raise ValueError("leakage fraction must be in [0, 1]")
        dynamic = 1.0 - leakage_fraction
        return leakage_fraction + dynamic * self.mean_frequency_fraction


class RmtSimulator:
    """Co-simulates the reliable processor's two cores over one trace."""

    def __init__(
        self,
        leading_config: LeadingCoreConfig,
        checker_config: CheckerCoreConfig,
        memory: MemoryHierarchy,
        predictor: BranchPredictor | None = None,
        transfer_latency_cycles: int = 1,
        checker_peak_ratio: float = 1.0,
    ):
        """``transfer_latency_cycles`` models the inter-core interconnect
        (≈1 cycle over 3D vias, ≈4 cycles over 2D global wires).

        ``checker_peak_ratio`` caps the checker's peak frequency as a
        fraction of the leading core's — e.g. 0.7 for the 1.4 GHz ceiling of
        a 90 nm checker under a 2 GHz leading core (Section 4).
        """
        self.leading_config = leading_config
        self.checker_config = checker_config
        self.leading = LeadingCoreTiming(leading_config, memory, predictor)
        levels = checker_config.dfs.levels()
        max_index = max(
            i for i, lvl in enumerate(levels) if lvl <= checker_peak_ratio + 1e-9
        )
        self.dfs = DfsController(checker_config.dfs, max_level_index=max_index)
        self.checker = InOrderCheckerTiming(
            checker_config, frequency_ratio=self.dfs.level
        )
        self.transfer_latency = transfer_latency_cycles

        qc = checker_config.queues
        self._rvq_capacity = qc.rvq_entries
        self._lvq_capacity = qc.lvq_entries
        self._boq_capacity = qc.boq_entries
        self._stb_capacity = qc.stb_entries

        self._commit_times: list[int] = []
        self._consume_times: list[float] = []
        self._trace: list[Instruction] | TraceArrays = []
        self._consume_row = self._consume_row_object
        self._next_consume = 0
        self._load_indices: list[int] = []
        self._store_indices: list[int] = []
        self._branch_indices: list[int] = []
        self._next_boundary = float(checker_config.dfs.interval_cycles)
        self._boundary_commit_ptr = 0
        self._boundary_consume_ptr = 0
        self._occupancy_samples: list[float] = []
        self.backpressure_commits = 0
        # Which bounded queue gated each backpressured commit (plain dict
        # bumps in the hot path; published to the metrics registry once
        # per run).
        self.queue_stalls = {"rvq": 0, "lvq": 0, "stb": 0, "boq": 0}

    # ------------------------------------------------------------------
    def run(
        self, trace, warmup: int = 0,
        schedule: TraceSchedule | None = None,
    ) -> RmtTimingResult:
        """Co-simulate the full trace and return the timing summary.

        The first ``warmup`` instructions flow through both cores but are
        excluded from the reported leading-core statistics.  Columnar
        traces take the batch path; ``schedule`` optionally supplies a
        precomputed (memoized) :class:`~repro.core.leading.TraceSchedule`
        for the windowed kernel.
        """
        if isinstance(trace, TraceArrays):
            return self.run_arrays(trace, warmup, schedule)
        self._trace = trace
        self._consume_row = self._consume_row_object
        for i, instr in enumerate(trace):
            if i == warmup and warmup:
                self.leading.start_measurement()
            gate = self._gate_for(
                i, instr.is_load, instr.is_store, instr.is_branch
            )
            commit = self.leading.schedule(instr, commit_gate=gate)
            self._commit_times.append(commit)
            if instr.is_load:
                self._load_indices.append(i)
            elif instr.is_store:
                self._store_indices.append(i)
            elif instr.is_branch:
                self._branch_indices.append(i)
        self._consume_until(len(trace) - 1)
        return self._result(len(trace) - warmup)

    def run_arrays(
        self, arrays: TraceArrays, warmup: int = 0,
        schedule: TraceSchedule | None = None,
    ) -> RmtTimingResult:
        """Columnar co-simulation — bit-identical to :meth:`run`.

        The leading core's memory/predictor behaviour is pre-resolved per
        window (:meth:`LeadingCoreTiming.prepare_window`, split at the
        warmup boundary so the measurement snapshot is unchanged); the
        checker consumes whole windows of precomputed integer columns at
        once (:meth:`_drain_to`), and the queue-gating recurrence is
        reduced to a table lookup by a vectorized pre-pass
        (:meth:`_precompute_gates`).  A fresh simulator takes the
        windowed issue/retire kernel (:meth:`_run_arrays_kernel`); the
        per-row scalar loop below is retained as the oracle.
        """
        self._trace = arrays
        ops = arrays.op
        # Checker columns stay NumPy arrays end-to-end: consume_window
        # slices them per window, and the rare boundary-row fallback
        # indexes them directly.
        self._cw_pool = _POOL_ARR[ops]
        self._cw_latency = _LATENCY_ARR[ops]
        self._cw_src1 = arrays.src1
        self._cw_src2 = arrays.src2
        self._cw_dst = arrays.dst
        self._consume_row = self._consume_row_columnar
        needed_arr, binding_arr = self._precompute_gates(ops)

        if (
            self.leading.kernel_eligible()
            and not self._commit_times
            and not self._consume_times
        ):
            return self._run_arrays_kernel(
                arrays, warmup, needed_arr, binding_arr, schedule
            )

        needed_list = needed_arr.tolist()
        binding_list = binding_arr.tolist()
        n = len(arrays)
        leading = self.leading
        advance = leading._advance
        commit_times = self._commit_times
        consume_times = self._consume_times
        queue_stalls = self.queue_stalls
        ceil = math.ceil
        i = 0
        for start, end in ((0, min(warmup, n)), (min(warmup, n), n)):
            if start == end:
                continue
            if start == warmup and warmup:
                leading.start_measurement()
            prepared = leading.prepare_window(arrays, start, end)
            for row in prepared.rows():
                needed = needed_list[i]
                if needed >= 0:
                    if needed >= len(consume_times):
                        self._drain_to(needed)
                    gate = ceil(consume_times[needed])
                    if gate > leading._last_commit:
                        self.backpressure_commits += 1
                        queue_stalls[_BINDINGS[binding_list[i]]] += 1
                    commit = advance(*row, gate)
                else:
                    commit = advance(*row)
                commit_times.append(commit)
                i += 1
        self._drain_to(n - 1)
        return self._result(n - warmup)

    def _run_arrays_kernel(
        self,
        arrays: TraceArrays,
        warmup: int,
        needed_arr: np.ndarray,
        binding_arr: np.ndarray,
        schedule: TraceSchedule | None,
    ) -> RmtTimingResult:
        """Windowed-kernel co-simulation, chunked at checker drains.

        A thin composition of the batch-stepping lifecycle
        (:meth:`begin_windows` / :meth:`advance_window` /
        :meth:`end_windows`) so a solo run and a lockstep-batched run
        execute the identical code path window for window.
        """
        n = len(arrays)
        self._begin_windows(arrays, needed_arr, binding_arr, schedule)
        w = min(warmup, n)
        for start, end in ((0, w), (w, n)):
            if start == end:
                continue
            if start == warmup and warmup:
                self.leading.start_measurement()
            self.advance_window(
                self.leading.prepare_window(arrays, start, end), start
            )
        return self.end_windows(n - warmup)

    # -- lockstep batch stepping ---------------------------------------
    def begin_windows(
        self, arrays: TraceArrays, schedule: TraceSchedule | None = None
    ) -> None:
        """Enter windowed-kernel mode for external (lockstep) stepping.

        Requires a fresh simulator over a columnar trace — the same
        precondition as the kernel fast path in :meth:`run_arrays`.  The
        caller then drives :meth:`advance_window` once per trace window
        (preparing each window itself, e.g. via shared
        :class:`~repro.core.leading.WindowStatics`) and finishes with
        :meth:`end_windows`.
        """
        if not (
            self.leading.kernel_eligible()
            and not self._commit_times
            and not self._consume_times
        ):
            raise RuntimeError(
                "windowed stepping requires a fresh simulator"
            )
        needed_arr, binding_arr = self._precompute_gates(arrays.op)
        self._begin_windows(arrays, needed_arr, binding_arr, schedule)

    def _begin_windows(
        self,
        arrays: TraceArrays,
        needed_arr: np.ndarray,
        binding_arr: np.ndarray,
        schedule: TraceSchedule | None,
    ) -> None:
        self._trace = arrays
        ops = arrays.op
        self._cw_pool = _POOL_ARR[ops]
        self._cw_latency = _LATENCY_ARR[ops]
        self._cw_src1 = arrays.src1
        self._cw_src2 = arrays.src2
        self._cw_dst = arrays.dst
        self._consume_row = self._consume_row_columnar
        if schedule is None:
            schedule = build_trace_schedule(arrays, self.leading_config)
        self.leading.begin_kernel(schedule)
        # The leading kernel's absolute commit list is shared as this
        # harness's commit stream — no per-row copying in either
        # direction.
        self._commit_times = self.leading._kernel.commits
        self._kw_needed_arr = needed_arr
        self._kw_needed_list = needed_arr.tolist()
        self._kw_needed_max = np.maximum.accumulate(needed_arr)
        self._kw_binding_arr = binding_arr

    def advance_window(self, prepared, start: int) -> None:
        """Co-simulate one prepared window, chunked at checker drains.

        The scalar loop drains the checker exactly when a row's gating
        entry is beyond the consume stream (``needed >= len(consume)``),
        so those rows — found by a searchsorted over the running max of
        ``needed`` — are the only sound chunk boundaries: between two of
        them every gate is a plain gather over already-final consume
        times, and draining at the boundary sees the exact same
        commit/consume prefixes as the scalar schedule (DFS occupancy
        sampling included).
        """
        leading = self.leading
        ks = leading._kernel
        consume_times = self._consume_times
        queue_stalls = self.queue_stalls
        needed_arr = self._kw_needed_arr
        needed_list = self._kw_needed_list
        needed_max = self._kw_needed_max
        binding_arr = self._kw_binding_arr
        ceil = math.ceil
        end = start + len(prepared)
        i0 = start
        while i0 < end:
            if needed_list[i0] >= len(consume_times):
                self._drain_to(needed_list[i0])
            avail = len(consume_times)
            i1 = min(
                int(np.searchsorted(needed_max, avail, side="left")), end
            )
            gates = [
                0 if k < 0 else ceil(consume_times[k])
                for k in needed_list[i0:i1]
            ]
            leading.advance_window(
                prepared.window_slice(i0 - start, i1 - start), i0, gates
            )
            # Stall attribution, identical to the scalar per-row
            # check: gate > the previous row's commit.
            chunk_needed = needed_arr[i0:i1]
            gated = chunk_needed >= 0
            if gated.any():
                prev = np.empty(i1 - i0, dtype=np.int64)
                prev[0] = ks.commits[i0 - 1] if i0 else 0
                prev[1:] = ks.commits[i0:i1 - 1]
                stalled = gated & (np.asarray(gates, dtype=np.int64) > prev)
                count = int(np.count_nonzero(stalled))
                if count:
                    self.backpressure_commits += count
                    for b, c in enumerate(
                        np.bincount(
                            binding_arr[i0:i1][stalled], minlength=4
                        ).tolist()
                    ):
                        if c:
                            queue_stalls[_BINDINGS[b]] += c
            i0 = i1

    def end_windows(self, instructions: int) -> RmtTimingResult:
        """Finish a windowed run: drain the checker, leave kernel mode."""
        self._drain_to(len(self._trace) - 1)
        self.leading.end_kernel()
        return self._result(instructions)

    def _precompute_gates(
        self, ops: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorize the queue-gating recurrence's *candidate* indices.

        For each row ``i`` the gating entry — the earlier row whose
        check-commit must precede row ``i``'s commit — is a pure
        positional recurrence over the class masks (the k-th previous
        same-class row), independent of any timing.  Only the consume
        *times* are runtime-dependent, so the per-row work in
        :meth:`run_arrays` reduces to a list lookup.  Returns
        ``(needed, binding)`` arrays; ``needed[i] < 0`` means row ``i``
        is ungated and ``binding[i]`` indexes ``_BINDINGS`` for stall
        attribution.
        """
        n = len(ops)
        # RVQ: every instruction occupies one entry (negative = ungated).
        needed = np.arange(-self._rvq_capacity, n - self._rvq_capacity)
        binding = np.zeros(n, dtype=np.int8)
        for code, capacity, bcode in (
            (OP_LOAD, self._lvq_capacity, 1),
            (OP_STORE, self._stb_capacity, 2),
            (OP_BRANCH, self._boq_capacity, 3),
        ):
            pos = np.flatnonzero(ops == code)
            if len(pos) > capacity:
                sel = pos[capacity:]
                cand = pos[: len(pos) - capacity]
                win = cand > needed[sel]
                needed[sel] = np.where(win, cand, needed[sel])
                binding[sel[win]] = bcode
        return needed, binding

    def _drain_to(self, index: int) -> None:
        """Consume every RVQ entry up to ``index``, extending eagerly.

        Committed rows whose arrival precedes the next DFS boundary are
        consumed as one :meth:`InOrderCheckerTiming.consume_window` batch
        — the frequency ratio cannot change inside such a window.  A row
        whose arrival crosses the boundary falls back to the scalar
        oracle step, which fires the boundary (and any ratio change)
        first.  Eager extension past ``index`` is safe: consumption order
        and per-row arrivals are exactly those of the lazy schedule, so
        the published consume times are identical, and DFS occupancy
        sampling sees identical commit/consume prefixes because
        boundary-crossing rows are never consumed early.
        """
        commit_times = self._commit_times
        consume_times = self._consume_times
        transfer = self.transfer_latency
        checker = self.checker
        while self._next_consume <= index:
            k = self._next_consume
            j = bisect_left(commit_times, self._next_boundary - transfer, k) - 1
            if j >= k:
                avail = np.asarray(commit_times[k:j + 1], dtype=np.float64)
                avail += transfer
                with span("rmt.consume_window"):
                    done = checker.consume_window(
                        self._cw_pool[k:j + 1],
                        self._cw_src1[k:j + 1],
                        self._cw_src2[k:j + 1],
                        self._cw_dst[k:j + 1],
                        self._cw_latency[k:j + 1],
                        avail,
                    )
                consume_times.extend(done.tolist())
                self._next_consume = j + 1
            else:
                available = commit_times[k] + transfer
                self._process_boundaries(available)
                consume_times.append(self._consume_row(k, available))
                self._next_consume += 1

    # ------------------------------------------------------------------
    def _commit_gate(self, i: int, instr: Instruction) -> int:
        """Earliest commit cycle for instruction ``i`` given queue space."""
        return self._gate_for(i, instr.is_load, instr.is_store, instr.is_branch)

    def _gate_for(
        self, i: int, is_load: bool, is_store: bool, is_branch: bool
    ) -> int:
        """The queue-occupancy gating recurrence, on plain class flags."""
        needed = -1
        binding = "rvq"
        # RVQ: every instruction occupies one entry.
        if i >= self._rvq_capacity:
            needed = i - self._rvq_capacity
        # LVQ / BOQ / StB: per-class occupancy.
        if is_load and len(self._load_indices) >= self._lvq_capacity:
            cand = self._load_indices[len(self._load_indices) - self._lvq_capacity]
            if cand > needed:
                needed, binding = cand, "lvq"
        elif is_store and len(self._store_indices) >= self._stb_capacity:
            cand = self._store_indices[len(self._store_indices) - self._stb_capacity]
            if cand > needed:
                needed, binding = cand, "stb"
        elif is_branch and len(self._branch_indices) >= self._boq_capacity:
            cand = self._branch_indices[len(self._branch_indices) - self._boq_capacity]
            if cand > needed:
                needed, binding = cand, "boq"
        if needed < 0:
            return 0
        self._consume_until(needed)
        gate = self._consume_times[needed]
        gate_cycle = int(math.ceil(gate))
        if gate_cycle > self.leading.current_cycle:
            self.backpressure_commits += 1
            self.queue_stalls[binding] += 1
        return gate_cycle

    def _consume_until(self, index: int) -> None:
        """Run the checker over all instructions up to ``index`` inclusive."""
        consume_row = self._consume_row
        while self._next_consume <= index:
            k = self._next_consume
            available = self._commit_times[k] + self.transfer_latency
            self._process_boundaries(available)
            self._consume_times.append(consume_row(k, available))
            self._next_consume += 1

    def _consume_row_object(self, k: int, available: float) -> float:
        return self.checker.consume(self._trace[k], available)

    def _consume_row_columnar(self, k: int, available: float) -> float:
        return self.checker.consume_op(
            int(self._cw_pool[k]),
            int(self._cw_src1[k]),
            int(self._cw_src2[k]),
            int(self._cw_dst[k]),
            int(self._cw_latency[k]),
            available,
        )

    def _process_boundaries(self, up_to_time: float) -> None:
        """Apply DFS interval boundaries that have passed."""
        while self._next_boundary <= up_to_time:
            b = self._next_boundary
            # Both streams are monotone non-decreasing, so advancing each
            # pointer past every entry <= b is a bisect from the pointer.
            self._boundary_commit_ptr = bisect_right(
                self._commit_times, b, self._boundary_commit_ptr
            )
            self._boundary_consume_ptr = bisect_right(
                self._consume_times, b, self._boundary_consume_ptr
            )
            occupancy = self._boundary_commit_ptr - self._boundary_consume_ptr
            fraction = max(0.0, min(1.0, occupancy / self._rvq_capacity))
            self._occupancy_samples.append(fraction)
            ratio = self.dfs.update(fraction)
            self.checker.set_frequency_ratio(ratio)
            self._next_boundary += self.checker_config.dfs.interval_cycles

    # ------------------------------------------------------------------
    def _result(self, instructions: int) -> RmtTimingResult:
        mean_occ = (
            sum(self._occupancy_samples) / len(self._occupancy_samples)
            if self._occupancy_samples
            else 0.0
        )
        self._publish_metrics(mean_occ)
        return RmtTimingResult(
            leading=self.leading.result(instructions),
            frequency_residency=self.dfs.residency_fractions(),
            mean_frequency_fraction=self.dfs.mean_frequency_fraction(),
            modal_frequency_fraction=self.dfs.modal_frequency_fraction(),
            mean_rvq_occupancy_fraction=mean_occ,
            backpressure_commits=self.backpressure_commits,
            checker_instructions=self.checker.consumed,
        )

    def _publish_metrics(self, mean_occupancy: float) -> None:
        """Push this co-simulation's totals into the metrics registry.

        Runs once, at the end of :meth:`run` — the hot loops only bump
        plain attributes, and the registry sees aggregates.
        """
        m = get_registry()
        m.counter("rmt.simulations").inc()
        m.counter("rmt.backpressure_commits").inc(self.backpressure_commits)
        for queue, stalls in self.queue_stalls.items():
            m.counter(f"rmt.stalls.{queue}").inc(stalls)
        m.counter("rmt.checker_instructions").inc(self.checker.consumed)
        windows = self.checker.windows_consumed
        if windows:
            m.counter("rmt.consume_windows").inc(windows)
            m.counter("rmt.consume_window_rows").inc(
                self.checker.window_rows_consumed
            )
            m.gauge("rmt.mean_consume_window_rows_max").set(
                self.checker.window_rows_consumed / windows
            )
        m.counter("dfs.transitions_up").inc(self.dfs.throttle_ups)
        m.counter("dfs.transitions_down").inc(self.dfs.throttle_downs)
        m.gauge("rmt.mean_rvq_occupancy_max").set(mean_occupancy)
        residency = m.histogram("dfs.residency", FRACTION_EDGES)
        for level, count in zip(self.dfs.residency.bins, self.dfs.residency.counts):
            if count:
                residency.observe(level, count)
        occupancy = m.histogram("rmt.rvq_occupancy", FRACTION_EDGES)
        for sample in self._occupancy_samples:
            occupancy.observe(sample)
