"""Timing model of the in-order trailing checker core.

With register value prediction (RVP) the checker's instructions never stall
on data dependences: operands arrive with the RVQ entry, so throughput is
bounded only by fetch/issue bandwidth and functional units (Section 2.1).
Without RVP the model honours in-order dependence stalls, which is what
makes the paper's case for RVP measurable.

The checker runs at a frequency that is a fraction of the leading core's;
all times exchanged with the RMT harness are expressed in *leading-core
cycles* so the two clock domains compose (GALS-style, Section 2.1).
"""

from __future__ import annotations

from repro.common.config import CheckerCoreConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY,
    EXECUTION_LATENCY_BY_CODE,
    OP_CODE,
    POOL_BY_CODE,
    OpClass,
)

__all__ = ["InOrderCheckerTiming"]

# Checker FU capacities per pool code [IALU, IMUL, FALU, FMUL].
_FU_CAP_BY_POOL = (4, 2, 1, 1)


class InOrderCheckerTiming:
    """Incremental in-order consumption model for the trailing core."""

    def __init__(self, config: CheckerCoreConfig, frequency_ratio: float = 1.0):
        self.config = config
        self._fu_capacity = {
            OpClass.IALU: 4,
            OpClass.IMUL: 2,
            OpClass.FALU: 1,
            OpClass.FMUL: 1,
        }
        self.set_frequency_ratio(frequency_ratio)
        self._cycle_start = 0.0   # leading-cycle time of the current trailing cycle
        self._slots_used = 0
        self._fu_used: dict[int, int] = {}  # pool code -> slots this cycle
        self._reg_ready: dict[int, float] = {}
        self._consumed = 0
        self._last_done = 0.0

    # ------------------------------------------------------------------
    def set_frequency_ratio(self, ratio: float) -> None:
        """Set the trailing/leading frequency ratio (0 < ratio <= 1).

        The change takes effect at the *next* trailing clock edge: the
        cycle already in progress completes under the old clock (a faster
        clock must not retroactively shorten work already scheduled).
        """
        if not 0.0 < ratio <= 1.0 + 1e-9:
            raise ValueError(f"frequency ratio must be in (0, 1], got {ratio}")
        if getattr(self, "_slots_used", 0) > 0:
            self._new_cycle(self._cycle_start + self._cycle_len)
        self._ratio = ratio
        self._cycle_len = 1.0 / ratio  # leading cycles per trailing cycle

    @property
    def frequency_ratio(self) -> float:
        """Current trailing/leading frequency ratio."""
        return self._ratio

    # ------------------------------------------------------------------
    def consume(self, instr: Instruction, available_time: float) -> float:
        """Check instruction ``instr`` whose RVQ entry arrives at
        ``available_time`` (leading cycles); returns the check-commit time.
        """
        code = OP_CODE[instr.op]
        return self.consume_op(
            POOL_BY_CODE[code],
            instr.src1,
            instr.src2,
            instr.dst,
            EXECUTION_LATENCY_BY_CODE[code],
            available_time,
        )

    def consume_op(
        self,
        pool: int,
        src1: int,
        src2: int,
        dst: int,
        latency: int,
        available_time: float,
    ) -> float:
        """Check one instruction given its resolved integer fields.

        The columnar RMT path calls this directly with precomputed pool
        codes and latencies; :meth:`consume` is the object adapter.
        """
        earliest = available_time
        if not self.config.uses_register_value_prediction:
            reg_ready = self._reg_ready
            if src1 >= 0:
                t = reg_ready.get(src1, 0.0)
                if t > earliest:
                    earliest = t
            if src2 >= 0:
                t = reg_ready.get(src2, 0.0)
                if t > earliest:
                    earliest = t

        if earliest >= self._cycle_start + self._cycle_len:
            # The trailer idles until the entry arrives; start a new cycle.
            self._new_cycle(earliest)
        while (
            self._slots_used >= self.config.issue_width
            or self._fu_used.get(pool, 0) >= _FU_CAP_BY_POOL[pool]
        ):
            self._new_cycle(self._cycle_start + self._cycle_len)
        self._slots_used += 1
        self._fu_used[pool] = self._fu_used.get(pool, 0) + 1

        done = self._cycle_start + self._cycle_len
        # Check-commit times are monotone by construction; guard against
        # any residual clock-domain boundary effect.
        if done < self._last_done:
            done = self._last_done
        self._last_done = done
        if dst >= 0 and not self.config.uses_register_value_prediction:
            self._reg_ready[dst] = done + (latency - 1) * self._cycle_len
        self._consumed += 1
        return done

    def _new_cycle(self, start: float) -> None:
        self._cycle_start = start
        self._slots_used = 0
        self._fu_used = {}

    @staticmethod
    def _pool(op: OpClass) -> OpClass:
        if op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
            return OpClass.IALU
        return op

    # ------------------------------------------------------------------
    @property
    def consumed(self) -> int:
        """Number of instructions checked so far."""
        return self._consumed

    def peak_throughput_per_trailing_cycle(self, op_mix: dict[OpClass, float]) -> float:
        """Upper-bound instructions per trailing cycle for a given op mix.

        The binding constraint is either issue width or the most contended
        functional-unit pool.
        """
        width = float(self.config.issue_width)
        bound = width
        pool_demand: dict[OpClass, float] = {}
        for op, frac in op_mix.items():
            pool = self._pool(op)
            pool_demand[pool] = pool_demand.get(pool, 0.0) + frac
        for pool, demand in pool_demand.items():
            if demand > 0:
                bound = min(bound, self._fu_capacity[pool] / demand)
        return min(width, bound)
