"""Timing model of the in-order trailing checker core.

With register value prediction (RVP) the checker's instructions never stall
on data dependences: operands arrive with the RVQ entry, so throughput is
bounded only by fetch/issue bandwidth and functional units (Section 2.1).
Without RVP the model honours in-order dependence stalls, which is what
makes the paper's case for RVP measurable.

The checker runs at a frequency that is a fraction of the leading core's;
all times exchanged with the RMT harness are expressed in *leading-core
cycles* so the two clock domains compose (GALS-style, Section 2.1).
"""

from __future__ import annotations

import numpy as np

from repro.common.config import CheckerCoreConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    EXECUTION_LATENCY_BY_CODE,
    OP_CODE,
    POOL_BY_CODE,
    OpClass,
)

__all__ = ["InOrderCheckerTiming"]

# Checker FU capacities per pool code [IALU, IMUL, FALU, FMUL]; the single
# source of truth for both the scalar and windowed consume paths (memory
# and branch ops check through the IALU pool, see POOL_BY_CODE).
_FU_CAP_BY_POOL = (4, 2, 1, 1)

_NUM_POOLS = len(_FU_CAP_BY_POOL)


class InOrderCheckerTiming:
    """Incremental in-order consumption model for the trailing core."""

    def __init__(self, config: CheckerCoreConfig, frequency_ratio: float = 1.0):
        self.config = config
        self.set_frequency_ratio(frequency_ratio)
        self._cycle_start = 0.0   # leading-cycle time of the current trailing cycle
        self._slots_used = 0
        self._fu_used: dict[int, int] = {}  # pool code -> slots this cycle
        # Register-ready times indexed by architectural register (grown on
        # demand); a flat list so the non-RVP window loop does no dict
        # lookups in its hot path.
        self._reg_ready: list[float] = [0.0] * 64
        self._consumed = 0
        self._last_done = 0.0
        # Windowed-consume accounting (published by the RMT harness).
        self.windows_consumed = 0
        self.window_rows_consumed = 0

    # ------------------------------------------------------------------
    def set_frequency_ratio(self, ratio: float) -> None:
        """Set the trailing/leading frequency ratio (0 < ratio <= 1).

        The change takes effect at the *next* trailing clock edge: the
        cycle already in progress completes under the old clock (a faster
        clock must not retroactively shorten work already scheduled).
        """
        if not 0.0 < ratio <= 1.0 + 1e-9:
            raise ValueError(f"frequency ratio must be in (0, 1], got {ratio}")
        if getattr(self, "_slots_used", 0) > 0:
            self._new_cycle(self._cycle_start + self._cycle_len)
        self._ratio = ratio
        self._cycle_len = 1.0 / ratio  # leading cycles per trailing cycle

    @property
    def frequency_ratio(self) -> float:
        """Current trailing/leading frequency ratio."""
        return self._ratio

    # ------------------------------------------------------------------
    def consume(self, instr: Instruction, available_time: float) -> float:
        """Check instruction ``instr`` whose RVQ entry arrives at
        ``available_time`` (leading cycles); returns the check-commit time.
        """
        code = OP_CODE[instr.op]
        return self.consume_op(
            POOL_BY_CODE[code],
            instr.src1,
            instr.src2,
            instr.dst,
            EXECUTION_LATENCY_BY_CODE[code],
            available_time,
        )

    def consume_op(
        self,
        pool: int,
        src1: int,
        src2: int,
        dst: int,
        latency: int,
        available_time: float,
    ) -> float:
        """Check one instruction given its resolved integer fields.

        The columnar RMT path calls this directly with precomputed pool
        codes and latencies; :meth:`consume` is the object adapter.
        """
        earliest = available_time
        if not self.config.uses_register_value_prediction:
            reg_ready = self._reg_ready
            known = len(reg_ready)
            if 0 <= src1 < known:
                t = reg_ready[src1]
                if t > earliest:
                    earliest = t
            if 0 <= src2 < known:
                t = reg_ready[src2]
                if t > earliest:
                    earliest = t

        if earliest >= self._cycle_start + self._cycle_len:
            # The trailer idles until the entry arrives; start a new cycle.
            self._new_cycle(earliest)
        while (
            self._slots_used >= self.config.issue_width
            or self._fu_used.get(pool, 0) >= _FU_CAP_BY_POOL[pool]
        ):
            self._new_cycle(self._cycle_start + self._cycle_len)
        self._slots_used += 1
        self._fu_used[pool] = self._fu_used.get(pool, 0) + 1

        done = self._cycle_start + self._cycle_len
        # Check-commit times are monotone by construction; guard against
        # any residual clock-domain boundary effect.
        if done < self._last_done:
            done = self._last_done
        self._last_done = done
        if dst >= 0 and not self.config.uses_register_value_prediction:
            self._write_reg_ready(dst, done + (latency - 1) * self._cycle_len)
        self._consumed += 1
        return done

    def _write_reg_ready(self, dst: int, ready: float) -> None:
        reg_ready = self._reg_ready
        if dst >= len(reg_ready):
            reg_ready.extend([0.0] * (dst + 1 - len(reg_ready)))
        reg_ready[dst] = ready

    # ------------------------------------------------------------------
    def consume_window(
        self,
        pool,
        src1,
        src2,
        dst,
        latency,
        available,
    ) -> np.ndarray:
        """Consume a whole run of RVQ entries in one pass.

        Bit-identical to calling :meth:`consume_op` once per row (the
        scalar path remains the oracle).  Every row of the window shares
        the current frequency ratio — the RMT harness splits windows at
        DFS interval boundaries, where :meth:`set_frequency_ratio` may
        change the trailing clock.

        ``available`` must be non-decreasing (check-commit arrival order),
        which holds because leading-core commit times are monotone.  With
        RVP there are no dependence stalls, so the check-commit times are
        a slot/FU-counting scan over the arrival times: idle runs — rows
        whose arrival gap exceeds one trailing cycle — are resolved by a
        single vectorized pass, and only densely packed stretches fall
        back to a tight integer loop.  Without RVP the dependence wakeups
        serialize the scan, which runs as one tight loop over precomputed
        integer columns (no dict lookups, no per-row attribute chasing).

        Returns the per-row check-commit times as a float64 array.
        """
        n = len(available)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if self.config.uses_register_value_prediction:
            out = self._consume_window_rvp(pool, available)
        else:
            out = self._consume_window_dep(
                pool, src1, src2, dst, latency, available
            )
        self._consumed += n
        self.windows_consumed += 1
        self.window_rows_consumed += n
        return out

    def _consume_window_rvp(self, pool, available) -> np.ndarray:
        """The RVP slot/FU-counting scan (no dependence stalls).

        Rows split into *idle runs* and *packed stretches*.  A row whose
        arrival lands at or beyond the end of the current trailing cycle
        opens a fresh cycle at its own arrival ("jump"); consecutive jumps
        (arrival gap >= one trailing cycle) form an idle run whose
        check-commit times are simply ``arrival + cycle_len`` — assigned
        as one vector slice.  Rows that land inside the current cycle pack
        greedily under the issue-width/FU caps in a tight local loop.
        """
        a = np.asarray(available, dtype=np.float64)
        n = len(a)
        length = self._cycle_len
        width = self.config.issue_width
        caps = _FU_CAP_BY_POOL
        cycle = self._cycle_start
        slots = self._slots_used
        fu = [self._fu_used.get(p, 0) for p in range(_NUM_POOLS)]

        # chain[j-1]: had row j-1 opened a cycle at its own arrival, row j
        # would too.  Idle runs extend while the chain holds.
        chain_break = np.flatnonzero(a[1:] < a[:-1] + length)
        out = np.empty(n, dtype=np.float64)
        pool_list = None
        a_list = None
        i = 0
        while i < n:
            if a[i] >= cycle + length:
                # Idle run [i..end]: each row opens its own cycle.
                k = np.searchsorted(chain_break, i, side="left")
                end = int(chain_break[k]) if k < len(chain_break) else n - 1
                np.add(a[i:end + 1], length, out=out[i:end + 1])
                cycle = float(a[end])
                slots = 1
                fu = [0] * _NUM_POOLS
                fu[int(pool[end])] = 1
                i = end + 1
            else:
                # Packed stretch: tight loop until a row jumps again.
                if a_list is None:
                    a_list = a.tolist()
                    pool_list = (
                        pool.tolist() if hasattr(pool, "tolist") else list(pool)
                    )
                while i < n:
                    arrival = a_list[i]
                    if arrival >= cycle + length:
                        break
                    p = pool_list[i]
                    if slots >= width or fu[p] >= caps[p]:
                        cycle += length
                        slots = 0
                        fu = [0] * _NUM_POOLS
                    slots += 1
                    fu[p] += 1
                    out[i] = cycle + length
                    i += 1

        # ``cycle`` never decreases within a window, so the check-commit
        # times are non-decreasing and the scalar path's per-row
        # ``last_done`` guard reduces to one elementwise max against the
        # carried value.
        np.maximum(out, self._last_done, out=out)
        self._last_done = float(out[-1])
        self._cycle_start = cycle
        self._slots_used = slots
        self._fu_used = {p: c for p, c in enumerate(fu) if c}
        return out

    def _consume_window_dep(
        self, pool, src1, src2, dst, latency, available
    ) -> np.ndarray:
        """The non-RVP scan: in-order dependence stalls serialize rows,
        so this is one tight loop over plain integer/float columns."""
        a_list = np.asarray(available, dtype=np.float64).tolist()
        as_list = (
            lambda c: c.tolist() if hasattr(c, "tolist") else list(c)
        )
        pool_list = as_list(pool)
        src1_list = as_list(src1)
        src2_list = as_list(src2)
        dst_list = as_list(dst)
        latency_list = as_list(latency)

        length = self._cycle_len
        width = self.config.issue_width
        caps = _FU_CAP_BY_POOL
        cycle = self._cycle_start
        slots = self._slots_used
        fu = [self._fu_used.get(p, 0) for p in range(_NUM_POOLS)]
        last_done = self._last_done
        reg_ready = self._reg_ready
        known = len(reg_ready)
        max_dst = max(dst_list)
        if max_dst >= known:
            reg_ready.extend([0.0] * (max_dst + 1 - known))
            known = len(reg_ready)

        out = []
        append = out.append
        for i, earliest in enumerate(a_list):
            r = src1_list[i]
            if 0 <= r < known:
                t = reg_ready[r]
                if t > earliest:
                    earliest = t
            r = src2_list[i]
            if 0 <= r < known:
                t = reg_ready[r]
                if t > earliest:
                    earliest = t
            if earliest >= cycle + length:
                cycle = earliest
                slots = 0
                fu = [0] * _NUM_POOLS
            p = pool_list[i]
            if slots >= width or fu[p] >= caps[p]:
                cycle += length
                slots = 0
                fu = [0] * _NUM_POOLS
            slots += 1
            fu[p] += 1
            done = cycle + length
            if done < last_done:
                done = last_done
            last_done = done
            r = dst_list[i]
            if r >= 0:
                reg_ready[r] = done + (latency_list[i] - 1) * length
            append(done)

        self._last_done = last_done
        self._cycle_start = cycle
        self._slots_used = slots
        self._fu_used = {p: c for p, c in enumerate(fu) if c}
        return np.array(out, dtype=np.float64)

    def _new_cycle(self, start: float) -> None:
        self._cycle_start = start
        self._slots_used = 0
        self._fu_used = {}

    # ------------------------------------------------------------------
    @property
    def consumed(self) -> int:
        """Number of instructions checked so far."""
        return self._consumed

    def peak_throughput_per_trailing_cycle(self, op_mix: dict[OpClass, float]) -> float:
        """Upper-bound instructions per trailing cycle for a given op mix.

        The binding constraint is either issue width or the most contended
        functional-unit pool.
        """
        width = float(self.config.issue_width)
        bound = width
        pool_demand: dict[int, float] = {}
        for op, frac in op_mix.items():
            pool = POOL_BY_CODE[OP_CODE[op]]
            pool_demand[pool] = pool_demand.get(pool, 0.0) + frac
        for pool, demand in pool_demand.items():
            if demand > 0:
                bound = min(bound, _FU_CAP_BY_POOL[pool] / demand)
        return min(width, bound)
