"""Die floorplans: block definitions and per-chip-model layouts."""

from repro.floorplan.blocks import (
    Block,
    BlockKind,
    CHECKER_CORE_AREA_MM2,
    L2_BANK_AREA_MM2,
    L2_BANK_DYNAMIC_W_PER_ACCESS,
    L2_BANK_STATIC_W,
    LEADING_CORE_AREA_MM2,
    LEADING_CORE_POWER_W,
    ROUTER_AREA_MM2,
    ROUTER_POWER_W,
    leading_core_blocks,
    leading_core_unit_fractions,
)
from repro.floorplan.layouts import CheckerPlacement, Floorplan, build_floorplan

__all__ = [
    "Block",
    "BlockKind",
    "CHECKER_CORE_AREA_MM2",
    "L2_BANK_AREA_MM2",
    "L2_BANK_DYNAMIC_W_PER_ACCESS",
    "L2_BANK_STATIC_W",
    "LEADING_CORE_AREA_MM2",
    "LEADING_CORE_POWER_W",
    "ROUTER_AREA_MM2",
    "ROUTER_POWER_W",
    "leading_core_blocks",
    "leading_core_unit_fractions",
    "CheckerPlacement",
    "Floorplan",
    "build_floorplan",
]
