"""Die floorplans for the paper's four chip models (Figure 3).

* ``2d-a``   — single 7.25×7.25 mm die: leading core strip, L2 controller
  strip, six 5 mm² L2 banks.
* ``2d-2a``  — single 10.3×10.15 mm die: leading core + checker + fifteen
  banks (twice the total area, larger heat sink).
* ``3d-2a``  — two stacked 7.25×7.25 mm dies: die 1 is the 2d-a die, die 2
  carries the checker core plus nine extra banks.
* ``3d-checker`` — die 2 carries only the checker (rest inactive silicon).

Variants reproduce the paper's design-space probes: checker moved to the
die corner (−1.5 °C), upper die cache replaced by inactive silicon
(−2 °C / −1 °C), and checker power density doubled (+19 °C scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import ChipModel
from repro.common.errors import FloorplanError
from repro.common.geometry import Rect
from repro.floorplan.blocks import (
    Block,
    BlockKind,
    L2_BANK_STATIC_W,
    LEADING_CORE_POWER_W,
    ROUTER_POWER_W,
    leading_core_blocks,
)

__all__ = ["Floorplan", "build_floorplan", "CheckerPlacement"]


class CheckerPlacement:
    """Where the checker core sits on the upper die."""

    DEFAULT = "default"   # top-centre strip, near die 1's L2 banks
    CORNER = "corner"     # top corner (longer inter-core wires, cooler)


@dataclass
class Floorplan:
    """A set of placed blocks over one or two dies.

    ``distributed_power_w`` holds per-die power that is spread uniformly
    over the die rather than belonging to any block — the long horizontal
    interconnect of Section 3.4 dissipates this way.
    """

    chip: ChipModel
    die_width_mm: float
    die_height_mm: float
    num_dies: int
    blocks: list[Block] = field(default_factory=list)
    distributed_power_w: dict[int, float] = field(default_factory=dict)

    def die_blocks(self, die: int) -> list[Block]:
        """Blocks on one die."""
        return [b for b in self.blocks if b.die == die]

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block named {name!r}")

    def total_power_w(self, die: int | None = None) -> float:
        """Total power of one die (or the whole stack), wires included."""
        block_power = sum(
            b.power_w for b in self.blocks if die is None or b.die == die
        )
        if die is None:
            return block_power + sum(self.distributed_power_w.values())
        return block_power + self.distributed_power_w.get(die, 0.0)

    @property
    def die_area_mm2(self) -> float:
        """Area of one die in mm²."""
        return self.die_width_mm * self.die_height_mm

    def validate(self) -> None:
        """Raise :class:`FloorplanError` on overlap or out-of-die blocks."""
        bounds = Rect(0, 0, self.die_width_mm, self.die_height_mm)
        eps = 1e-6
        outer = Rect(-eps, -eps, self.die_width_mm + 2 * eps, self.die_height_mm + 2 * eps)
        for die in range(self.num_dies):
            placed = self.die_blocks(die)
            for i, a in enumerate(placed):
                if not outer.contains(a.rect):
                    raise FloorplanError(f"{a.name} extends outside die {die}")
                for b in placed[i + 1 :]:
                    if a.rect.intersection_area(b.rect) > 1e-9:
                        raise FloorplanError(
                            f"{a.name} overlaps {b.name} on die {die}"
                        )
        del bounds

    def scaled_power(self, factor: float) -> "Floorplan":
        """A copy with every block's power multiplied by ``factor``.

        Used for the constant-thermal-constraint analysis, where voltage and
        frequency scale together (P ∝ V²f ≈ f³ over the narrow range used).
        """
        return Floorplan(
            chip=self.chip,
            die_width_mm=self.die_width_mm,
            die_height_mm=self.die_height_mm,
            num_dies=self.num_dies,
            blocks=[b.with_power(b.power_w * factor) for b in self.blocks],
            distributed_power_w={
                die: p * factor for die, p in self.distributed_power_w.items()
            },
        )


# Geometry constants (mm), chosen so block areas match Table 2.
_SMALL_DIE = 7.25          # 2d-a and both 3D dies: 52.6 mm²
_BIG_DIE_W = 10.30         # 2d-2a: 104.5 mm²
_BIG_DIE_H = 10.16
_CORE_STRIP_H = 2.703      # 19.6 mm² over a 7.25 mm wide die
_CTL_STRIP_H = 0.414       # 3 mm² controller/router strip
_BANK_W = _SMALL_DIE / 3.0  # 2.4167
_BANK_H = 2.0665           # 5.0 mm² banks


def _bank(name: str, x: float, y: float, die: int, power: float) -> Block:
    return Block(name, BlockKind.L2_BANK, Rect(x, y, _BANK_W, _BANK_H), die, power)


def build_floorplan(
    chip: ChipModel,
    checker_power_w: float = 7.0,
    leading_power_w: float = LEADING_CORE_POWER_W,
    bank_powers_w: list[float] | float | None = None,
    wire_power_w: float = 0.0,
    checker_placement: str = CheckerPlacement.DEFAULT,
    upper_die_cache: bool = True,
    checker_area_scale: float = 1.0,
    upper_die_tech_nm: int = 65,
) -> Floorplan:
    """Build the powered floorplan for one chip model.

    ``bank_powers_w`` is either one number for every bank or a per-bank
    list (lower-die banks first); None uses the bank's static power plus a
    nominal dynamic share.  ``wire_power_w`` (Section 3.4 interconnect
    power) is spread uniformly over the dies.  ``checker_area_scale``
    shrinks the checker block at constant power to raise its power density
    (the pessimistic +19 °C scenario).  ``upper_die_tech_nm`` selects a
    heterogeneous upper die (Section 4): at 90 nm the same die area holds
    the larger checker plus five (instead of nine) 1 MB banks.
    """
    num_banks = chip.l2_banks
    if chip is ChipModel.THREE_D_2A and upper_die_tech_nm != 65:
        from repro.cache.cacti import CactiModel, logic_area_scale
        from repro.floorplan.blocks import CHECKER_CORE_AREA_MM2

        bank_area = CactiModel().estimate_bank(tech_nm=upper_die_tech_nm).area_mm2
        checker_area = CHECKER_CORE_AREA_MM2 * logic_area_scale(upper_die_tech_nm)
        die_area = _SMALL_DIE * _SMALL_DIE
        num_banks = 6 + max(0, int((die_area - checker_area) // bank_area))
    if bank_powers_w is None:
        bank_powers_w = L2_BANK_STATIC_W + 0.05
    if isinstance(bank_powers_w, (int, float)):
        bank_powers_w = [float(bank_powers_w)] * num_banks
    if len(bank_powers_w) != num_banks:
        raise FloorplanError(
            f"{chip.value} needs {num_banks} bank powers, got {len(bank_powers_w)}"
        )
    if chip is ChipModel.TWO_D_A:
        plan = _small_base_die(leading_power_w, bank_powers_w, ChipModel.TWO_D_A)
        plan.distributed_power_w = {0: wire_power_w}
    elif chip is ChipModel.TWO_D_2A:
        plan = _big_die(
            leading_power_w, checker_power_w, bank_powers_w, checker_area_scale
        )
        plan.distributed_power_w = {0: wire_power_w}
    else:
        plan = _small_base_die(leading_power_w, bank_powers_w[:6], chip)
        if chip is ChipModel.THREE_D_2A and upper_die_tech_nm != 65:
            _add_hetero_upper_die(
                plan,
                checker_power_w=checker_power_w,
                bank_powers_w=bank_powers_w[6:],
                bank_area_mm2=bank_area,
                checker_area_mm2=checker_area,
            )
        else:
            _add_upper_die(
                plan,
                checker_power_w=checker_power_w,
                bank_powers_w=bank_powers_w[6:],
                with_cache=upper_die_cache and chip is ChipModel.THREE_D_2A,
                placement=checker_placement,
                checker_area_scale=checker_area_scale,
            )
        # The inter-core buses live on the upper die's metal; the NUCA wires
        # split roughly with the bank count (6 of 15 below, 9 above).
        plan.distributed_power_w = {0: 0.4 * wire_power_w, 1: 0.6 * wire_power_w}
    plan.validate()
    return plan


def _small_base_die(
    leading_power_w: float,
    bank_powers_w: list[float],
    chip: ChipModel,
) -> Floorplan:
    plan = Floorplan(chip, _SMALL_DIE, _SMALL_DIE, 1 if not chip.is_3d else 2)
    plan.blocks.extend(
        leading_core_blocks(0.0, 0.0, _SMALL_DIE, _CORE_STRIP_H, leading_power_w)
    )
    routers = 6 * ROUTER_POWER_W
    plan.blocks.append(
        Block(
            "l2_ctl",
            BlockKind.L2_CONTROL,
            Rect(0.0, _CORE_STRIP_H, _SMALL_DIE, _CTL_STRIP_H),
            0,
            routers,
        )
    )
    y0 = _CORE_STRIP_H + _CTL_STRIP_H
    for i in range(6):
        row, col = divmod(i, 3)
        plan.blocks.append(
            _bank(f"bank{i}", col * _BANK_W, y0 + row * _BANK_H, 0, bank_powers_w[i])
        )
    return plan


def _big_die(
    leading_power_w: float,
    checker_power_w: float,
    bank_powers_w: list[float],
    checker_area_scale: float,
) -> Floorplan:
    plan = Floorplan(ChipModel.TWO_D_2A, _BIG_DIE_W, _BIG_DIE_H, 1)
    strip_h = 2.485
    core_w = 19.6 / strip_h
    plan.blocks.extend(
        leading_core_blocks(0.0, 0.0, core_w, strip_h, leading_power_w)
    )
    checker_w = 5.0 * checker_area_scale / strip_h
    plan.blocks.append(
        Block(
            "checker",
            BlockKind.CHECKER,
            Rect(core_w, 0.0, checker_w, strip_h),
            0,
            checker_power_w,
        )
    )
    plan.blocks.append(
        Block(
            "buffers",
            BlockKind.BUFFERS,
            Rect(core_w + checker_w, 0.0, _BIG_DIE_W - core_w - checker_w, strip_h),
            0,
            0.2,
        )
    )
    ctl_h = 0.388
    plan.blocks.append(
        Block(
            "l2_ctl",
            BlockKind.L2_CONTROL,
            Rect(0.0, strip_h, _BIG_DIE_W, ctl_h),
            0,
            15 * ROUTER_POWER_W,
        )
    )
    bank_w = _BIG_DIE_W / 5.0
    bank_h = 5.0 / bank_w
    y0 = strip_h + ctl_h
    for i in range(15):
        row, col = divmod(i, 5)
        plan.blocks.append(
            Block(
                f"bank{i}",
                BlockKind.L2_BANK,
                Rect(col * bank_w, y0 + row * bank_h, bank_w, bank_h),
                0,
                bank_powers_w[i],
            )
        )
    return plan


def _add_upper_die(
    plan: Floorplan,
    checker_power_w: float,
    bank_powers_w: list[float],
    with_cache: bool,
    placement: str,
    checker_area_scale: float,
) -> None:
    """Upper die of the 3D models (Figure 3b).

    Bank row 0 sits directly above the (hot) leading core — "L2 cache banks
    above the hottest units" — and the checker strip sits just above the
    leading core's upper edge (its L1 D-cache and the L2 controller), so
    the inter-core buffers land close to the leading core's cache
    structures with short horizontal runs from the via pillars.  The
    CORNER placement trades longer inter-core wires for a cooler spot in
    the top bank row's corner; the displaced bank takes the central strip.
    """
    # Three full bank rows plus a strip band between rows 1 and 2 for the
    # checker and inter-core buffers.  Bank row 0 sits directly above the
    # (hot) leading core — "L2 cache banks above the hottest units" — and
    # the checker strip sits above die 1's L2 banks, with the buffers
    # beside it, close above the leading core's cache structures and the
    # via pillars.  CORNER slides the checker to the band's end (longer
    # inter-core wires, slightly cooler).
    strip_y = 2 * _BANK_H             # 4.133
    strip_h = _SMALL_DIE - 3 * _BANK_H  # 1.0505
    rows_y = [0.0, _BANK_H, strip_y + strip_h]
    if placement not in (CheckerPlacement.DEFAULT, CheckerPlacement.CORNER):
        raise FloorplanError(f"unknown checker placement {placement!r}")

    checker_w = 5.0 * checker_area_scale / strip_h
    if placement == CheckerPlacement.CORNER:
        checker_x = _SMALL_DIE - checker_w
    else:
        checker_x = (_SMALL_DIE - checker_w) / 2.0
    plan.blocks.append(
        Block(
            "checker",
            BlockKind.CHECKER,
            Rect(checker_x, strip_y, checker_w, strip_h),
            1,
            checker_power_w,
        )
    )

    if with_cache:
        for i in range(9):
            row, col = divmod(i, 3)
            plan.blocks.append(
                _bank(
                    f"bank{6 + i}", col * _BANK_W, rows_y[row], 1, bank_powers_w[i]
                )
            )
    else:
        for row_i, y in enumerate(rows_y):
            plan.blocks.append(
                Block(
                    f"inactive_row{row_i}",
                    BlockKind.INACTIVE,
                    Rect(0.0, y, _SMALL_DIE, _BANK_H),
                    1,
                    0.0,
                )
            )

    _add_strip_buffers(plan, strip_y, strip_h)


def _add_hetero_upper_die(
    plan: Floorplan,
    checker_power_w: float,
    bank_powers_w: list[float],
    bank_area_mm2: float,
    checker_area_mm2: float,
) -> None:
    """Upper die in an older process (Section 4).

    The die is tiled with full-width strips: 90 nm banks (~8.3 mm², SRAM
    scaling) and the 90 nm checker (~9.6 mm², logic scaling).  The checker
    strip sits above die 1's L2 bank region; full-width strips keep the
    blocks as spread out as the 65 nm layout's, so the checker's lower
    power density translates into the paper's temperature reduction.
    """
    bank_h = bank_area_mm2 / _SMALL_DIE
    checker_h = checker_area_mm2 / _SMALL_DIE
    bank_i = 0
    y = 0.0
    placed_checker = False
    while bank_i < len(bank_powers_w) or not placed_checker:
        if not placed_checker and y >= 3.4:
            rect = Rect(0.0, y, _SMALL_DIE, checker_h)
            plan.blocks.append(
                Block("checker", BlockKind.CHECKER, rect, 1, checker_power_w)
            )
            y += checker_h
            placed_checker = True
        elif bank_i < len(bank_powers_w):
            rect = Rect(0.0, y, _SMALL_DIE, bank_h)
            plan.blocks.append(
                Block(
                    f"bank{6 + bank_i}",
                    BlockKind.L2_BANK,
                    rect,
                    1,
                    bank_powers_w[bank_i],
                )
            )
            bank_i += 1
            y += bank_h
        else:
            break
    if y < _SMALL_DIE - 0.02:
        plan.blocks.append(
            Block(
                "buffers",
                BlockKind.BUFFERS,
                Rect(0.0, y, _SMALL_DIE, _SMALL_DIE - y),
                1,
                0.2,
            )
        )


def _add_strip_buffers(plan: Floorplan, strip_y: float, strip_h: float) -> None:
    # Inter-core queue buffers flank whatever occupies the top strip (or
    # fill it when it is empty).
    taken = [b.rect for b in plan.blocks if b.die == 1 and b.rect.y == strip_y]
    if not taken:
        plan.blocks.append(
            Block(
                "buffers",
                BlockKind.BUFFERS,
                Rect(0.0, strip_y, _SMALL_DIE, strip_h),
                1,
                0.2,
            )
        )
        return
    left_edge = min(r.x for r in taken)
    right_edge = max(r.x2 for r in taken)
    if left_edge > 0.05:
        plan.blocks.append(
            Block(
                "buffers",
                BlockKind.BUFFERS,
                Rect(0.0, strip_y, left_edge, strip_h),
                1,
                0.2,
            )
        )
    if right_edge < _SMALL_DIE - 0.05:
        plan.blocks.append(
            Block(
                "buffers_r",
                BlockKind.BUFFERS,
                Rect(right_edge, strip_y, _SMALL_DIE - right_edge, strip_h),
                1,
                0.1,
            )
        )
