"""Block-level floorplan primitives and the EV7-like leading core.

Areas follow Table 2 of the paper (leading core 19.6 mm², in-order checker
and 1 MB L2 bank 5 mm² each at 65 nm); the leading core's internal split is
modelled loosely on the Alpha EV7 floorplan scaled with non-ideal factors,
as the paper describes (Section 3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.common.errors import FloorplanError
from repro.common.geometry import Rect

__all__ = [
    "BlockKind",
    "Block",
    "LEADING_CORE_AREA_MM2",
    "CHECKER_CORE_AREA_MM2",
    "L2_BANK_AREA_MM2",
    "ROUTER_AREA_MM2",
    "LEADING_CORE_POWER_W",
    "L2_BANK_DYNAMIC_W_PER_ACCESS",
    "L2_BANK_STATIC_W",
    "ROUTER_POWER_W",
    "leading_core_unit_fractions",
    "leading_core_blocks",
]

# Table 2 of the paper.
LEADING_CORE_AREA_MM2 = 19.6
CHECKER_CORE_AREA_MM2 = 5.0
L2_BANK_AREA_MM2 = 5.0
ROUTER_AREA_MM2 = 0.22
LEADING_CORE_POWER_W = 35.0
L2_BANK_DYNAMIC_W_PER_ACCESS = 0.732
L2_BANK_STATIC_W = 0.376
ROUTER_POWER_W = 0.296


class BlockKind(enum.Enum):
    """Functional class of a floorplan block."""

    CORE_UNIT = "core-unit"        # a unit inside the leading core
    CHECKER = "checker"
    L2_BANK = "l2-bank"
    L2_CONTROL = "l2-control"      # controller, tag array, routers
    BUFFERS = "buffers"            # RVQ/LVQ/BOQ/StB landing area
    INACTIVE = "inactive"          # unpowered silicon


@dataclass(frozen=True)
class Block:
    """One rectangle of silicon with a name, a kind, a die, and a power."""

    name: str
    kind: BlockKind
    rect: Rect            # millimetres
    die: int = 0          # 0 = bottom die (next to heat sink), 1 = stacked die
    power_w: float = 0.0

    @property
    def area_mm2(self) -> float:
        """Block area in mm²."""
        return self.rect.area

    @property
    def power_density_w_mm2(self) -> float:
        """Power density in W/mm²."""
        return self.power_w / self.rect.area if self.rect.area else 0.0

    def with_power(self, power_w: float) -> "Block":
        """A copy of this block dissipating ``power_w``."""
        return replace(self, power_w=power_w)


# EV7-like unit split of the leading core: (name, area fraction, fraction of
# the core's dynamic power).  The register file and integer execution units
# are the densest, hottest blocks, which drives the thermal results.
_LEADING_UNITS: list[tuple[str, float, float]] = [
    ("icache", 0.13, 0.085),
    ("bpred", 0.06, 0.05),
    ("rename", 0.09, 0.08),
    ("rob", 0.075, 0.095),
    ("regfile", 0.062, 0.13),
    ("int_exec", 0.12, 0.175),
    ("fp_exec", 0.125, 0.12),
    ("lsq", 0.08, 0.065),
    ("dcache", 0.168, 0.13),
    ("clock_other", 0.09, 0.07),
]

assert abs(sum(a for _, a, _ in _LEADING_UNITS) - 1.0) < 1e-9
assert abs(sum(p for _, _, p in _LEADING_UNITS) - 1.0) < 1e-9


def leading_core_unit_fractions() -> list[tuple[str, float, float]]:
    """(name, area fraction, power fraction) of each leading-core unit."""
    return list(_LEADING_UNITS)


def leading_core_blocks(
    origin_x_mm: float,
    origin_y_mm: float,
    width_mm: float,
    height_mm: float,
    total_power_w: float = LEADING_CORE_POWER_W,
    die: int = 0,
) -> list[Block]:
    """Lay the leading core's units out inside the given rectangle.

    Units are packed in two horizontal rows (front end + memory in one,
    execution in the other), preserving each unit's area fraction, so the
    hot execution cluster sits together the way it does on the EV7.
    """
    if width_mm <= 0 or height_mm <= 0:
        raise FloorplanError("leading core rectangle must have positive size")
    row1 = ["icache", "bpred", "rename", "rob", "clock_other"]
    row2 = ["int_exec", "regfile", "fp_exec", "lsq", "dcache"]
    fractions = {name: (area, power) for name, area, power in _LEADING_UNITS}
    row1_area = sum(fractions[n][0] for n in row1)
    blocks: list[Block] = []
    for row_names, y0, h_frac in (
        (row1, origin_y_mm, row1_area),
        (row2, origin_y_mm + row1_area * height_mm, 1.0 - row1_area),
    ):
        row_height = h_frac * height_mm
        row_area_frac = sum(fractions[n][0] for n in row_names)
        x = origin_x_mm
        for name in row_names:
            area_frac, power_frac = fractions[name]
            w = width_mm * (area_frac / row_area_frac)
            blocks.append(
                Block(
                    name=name,
                    kind=BlockKind.CORE_UNIT,
                    rect=Rect(x, y0, w, row_height),
                    die=die,
                    power_w=total_power_w * power_frac,
                )
            )
            x += w
    return blocks
