"""Pipeline-depth power model (Table 5, after Srinivasan et al. [38]).

Deep pipelining a fixed amount of logic (here to create per-stage timing
slack, not frequency) inserts latches: the logic is ~90 FO4 deep, each
stage spends ``latch_overhead`` FO4 on the latch, and the latch/clock
power grows superlinearly with stage count.  The paper's published Table 5
values (dynamic 1 / 1.65 / 1.76 / 3.45 and leakage 0.3 / 0.32 / 0.36 /
0.53 at 18 / 14 / 10 / 6 FO4) are kept as the reference data; the
analytical model below reproduces their trend and is exposed for
sensitivity studies at other depths.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PUBLISHED_TABLE5",
    "PipelinePowerModel",
    "PipelinePowerEntry",
]


@dataclass(frozen=True)
class PipelinePowerEntry:
    """One row of Table 5: relative power at a pipeline depth."""

    fo4_per_stage: int
    dynamic_relative: float
    leakage_relative: float

    @property
    def total_relative(self) -> float:
        """Total power relative to the 18 FO4 baseline's dynamic power."""
        return self.dynamic_relative + self.leakage_relative


# Table 5 of the paper, exactly as published.
PUBLISHED_TABLE5: dict[int, PipelinePowerEntry] = {
    18: PipelinePowerEntry(18, 1.00, 0.30),
    14: PipelinePowerEntry(14, 1.65, 0.32),
    10: PipelinePowerEntry(10, 1.76, 0.36),
    6: PipelinePowerEntry(6, 3.45, 0.53),
}


class PipelinePowerModel:
    """Analytical Srinivasan-style latch-growth model.

    Power components relative to the 18 FO4 baseline dynamic power:

    * logic dynamic power — constant (same work per instruction),
    * latch + clock dynamic power — grows as ``stages**gamma``,
    * logic leakage — constant,
    * latch leakage — proportional to latch count.

    ``stages`` is the number of pipeline stages needed to fit
    ``total_logic_fo4`` of logic when each stage loses ``latch_overhead``
    FO4 to the latch: ``stages = logic / (fo4 - latch_overhead)``.
    """

    def __init__(
        self,
        total_logic_fo4: float = 90.0,
        latch_overhead_fo4: float = 3.0,
        latch_power_fraction: float = 0.30,
        latch_growth_exponent: float = 1.6,
        leakage_baseline: float = 0.30,
        latch_leakage_fraction: float = 0.25,
    ):
        if latch_overhead_fo4 >= total_logic_fo4:
            raise ValueError("latch overhead cannot exceed total logic depth")
        self.total_logic_fo4 = total_logic_fo4
        self.latch_overhead_fo4 = latch_overhead_fo4
        self.latch_power_fraction = latch_power_fraction
        self.latch_growth_exponent = latch_growth_exponent
        self.leakage_baseline = leakage_baseline
        self.latch_leakage_fraction = latch_leakage_fraction
        self._base_stages = self.stages(18)

    def stages(self, fo4_per_stage: float) -> float:
        """Pipeline stages needed at the given per-stage cycle depth."""
        useful = fo4_per_stage - self.latch_overhead_fo4
        if useful <= 0:
            raise ValueError(
                f"{fo4_per_stage} FO4 leaves no room for logic after the latch"
            )
        return self.total_logic_fo4 / useful

    def dynamic_relative(self, fo4_per_stage: float) -> float:
        """Dynamic power relative to the 18 FO4 baseline."""
        growth = (self.stages(fo4_per_stage) / self._base_stages) ** (
            self.latch_growth_exponent
        )
        return (1.0 - self.latch_power_fraction) + self.latch_power_fraction * growth

    def leakage_relative(self, fo4_per_stage: float) -> float:
        """Leakage relative to the 18 FO4 baseline's *dynamic* power."""
        growth = self.stages(fo4_per_stage) / self._base_stages
        logic = self.leakage_baseline * (1.0 - self.latch_leakage_fraction)
        latch = self.leakage_baseline * self.latch_leakage_fraction * growth
        return logic + latch

    def total_relative(self, fo4_per_stage: float) -> float:
        """Total (dynamic + leakage) relative power."""
        return self.dynamic_relative(fo4_per_stage) + self.leakage_relative(
            fo4_per_stage
        )

    def table(self, depths: tuple[int, ...] = (18, 14, 10, 6)) -> list[PipelinePowerEntry]:
        """Model-predicted entries at the paper's four depths."""
        return [
            PipelinePowerEntry(
                d,
                round(self.dynamic_relative(d), 2),
                round(self.leakage_relative(d), 2),
            )
            for d in depths
        ]
