"""ITRS 2005 device data used by the paper (Tables 6 and 7).

Table 7 gives per-node supply voltage, gate length, switching capacitance
per micron, and sub-threshold leakage current per micron.  Table 8 of the
paper derives relative dynamic and leakage power across nodes from these;
:func:`dynamic_power_ratio` and :func:`leakage_power_ratio` reproduce that
derivation:

* dynamic power  ∝  C_per_um × L_gate × V²   (total switched capacitance
  scales with gate length at constant transistor count)
* leakage power  ∝  I_off_per_um × L_gate × V

The derived 90/65 and 90/45 ratios match Table 8 exactly; for 65/45 leakage
the paper reports 0.99 where the formula gives 1.09 (the paper likely used
slightly different width assumptions) — the benchmark harness prints both.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TechNode",
    "TECH_NODES",
    "VariabilityEntry",
    "VARIABILITY_TABLE",
    "dynamic_power_ratio",
    "leakage_power_ratio",
    "relative_gate_delay",
    "PUBLISHED_TABLE8",
]


@dataclass(frozen=True)
class TechNode:
    """One row of Table 7: ITRS device characteristics for a process node."""

    feature_nm: int
    voltage_v: float
    gate_length_nm: float
    capacitance_f_per_um: float
    leakage_ua_per_um: float


# Table 7 of the paper (ITRS 2005 data).
TECH_NODES: dict[int, TechNode] = {
    90: TechNode(90, 1.2, 37.0, 8.79e-16, 0.05),
    65: TechNode(65, 1.1, 25.0, 6.99e-16, 0.20),
    45: TechNode(45, 1.0, 18.0, 8.28e-16, 0.28),
}


@dataclass(frozen=True)
class VariabilityEntry:
    """One row of Table 6: projected +/- variability at a process node."""

    feature_nm: int
    vth_variability: float                 # threshold voltage
    circuit_performance_variability: float
    circuit_power_variability: float


# Table 6 of the paper (ITRS projections, +/- fraction of nominal).
VARIABILITY_TABLE: dict[int, VariabilityEntry] = {
    80: VariabilityEntry(80, 0.26, 0.41, 0.55),
    65: VariabilityEntry(65, 0.33, 0.45, 0.56),
    45: VariabilityEntry(45, 0.42, 0.50, 0.58),
    32: VariabilityEntry(32, 0.58, 0.57, 0.59),
}


def _node(feature_nm: int) -> TechNode:
    try:
        return TECH_NODES[feature_nm]
    except KeyError:
        raise KeyError(
            f"no ITRS data for {feature_nm} nm; available: {sorted(TECH_NODES)}"
        ) from None


def dynamic_power_ratio(old_nm: int, new_nm: int) -> float:
    """Dynamic power of a core in ``old_nm`` relative to ``new_nm``.

    Same design, same clock frequency, constant transistor count:
    P_dyn ∝ C_per_um × L_gate × V².
    """
    old, new = _node(old_nm), _node(new_nm)
    old_p = old.capacitance_f_per_um * old.gate_length_nm * old.voltage_v**2
    new_p = new.capacitance_f_per_um * new.gate_length_nm * new.voltage_v**2
    return old_p / new_p


def leakage_power_ratio(old_nm: int, new_nm: int) -> float:
    """Leakage power of a core in ``old_nm`` relative to ``new_nm``.

    P_leak ∝ I_off_per_um × L_gate × V.
    """
    old, new = _node(old_nm), _node(new_nm)
    old_p = old.leakage_ua_per_um * old.gate_length_nm * old.voltage_v
    new_p = new.leakage_ua_per_um * new.gate_length_nm * new.voltage_v
    return old_p / new_p


def relative_gate_delay(old_nm: int, new_nm: int) -> float:
    """Circuit delay in ``old_nm`` relative to ``new_nm``.

    The paper states a 500 ps pipeline stage at 65 nm takes 714 ps at 90 nm,
    i.e. delay scales with the drawn feature size (714/500 ≈ 90/65 ≈ 1.43
    with a small rounding the paper applies).  We model delay ∝ gate length
    / voltage headroom and normalise so that 90-vs-65 gives exactly the
    paper's 714/500.
    """
    old, new = _node(old_nm), _node(new_nm)
    raw = (old.gate_length_nm / old.voltage_v) / (
        new.gate_length_nm / new.voltage_v
    )
    anchor_raw = (37.0 / 1.2) / (25.0 / 1.1)
    anchor_published = 714.0 / 500.0
    return raw * (anchor_published / anchor_raw)


# Table 8 as published, for benchmark comparison output:
# (old_nm, new_nm) -> (dynamic_ratio, leakage_ratio)
PUBLISHED_TABLE8: dict[tuple[int, int], tuple[float, float]] = {
    (90, 65): (2.21, 0.40),
    (90, 45): (3.14, 0.44),
    (65, 45): (1.41, 0.99),
}
