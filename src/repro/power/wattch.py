"""Wattch-style activity-based power model at 65 nm / 2 GHz / 1 V.

Follows the paper's methodology (Section 3.1): Wattch's aggressive clock
gating model ``cc3`` — an idle unit still dissipates a *turn-off factor* of
0.2 of its gated power to account for 65 nm leakage — with per-unit peak
powers anchored so the SPEC2k suite average matches Table 2's 35 W for the
leading core.  Unit activities come from the timing simulator's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.floorplan.blocks import (
    L2_BANK_DYNAMIC_W_PER_ACCESS,
    L2_BANK_STATIC_W,
    LEADING_CORE_POWER_W,
    ROUTER_POWER_W,
    leading_core_unit_fractions,
)
from repro.isa.opcodes import OpClass

if TYPE_CHECKING:  # avoid a circular import; only needed for annotations
    from repro.core.leading import LeadingRunResult

__all__ = [
    "TURN_OFF_FACTOR",
    "CorePowerBreakdown",
    "CorePowerModel",
    "l2_bank_power_w",
    "router_power_w",
    "rmt_power_overhead",
]

# Wattch cc3 with the paper's 65 nm leakage adjustment.
TURN_OFF_FACTOR = 0.2

# Peak (fully-active) leading-core power such that the suite-average
# activity produces Table 2's 35 W average.
_PEAK_CORE_POWER_W = 52.0
_REFERENCE_IPC = 4.0  # fully-active reference: the machine width


@dataclass
class CorePowerBreakdown:
    """Per-unit power of the leading core for one workload."""

    total_w: float
    per_unit_w: dict[str, float]


class CorePowerModel:
    """Maps a timing run's activity statistics to per-unit core power."""

    def __init__(self, peak_power_w: float = _PEAK_CORE_POWER_W):
        self.peak_power_w = peak_power_w
        self._units = leading_core_unit_fractions()

    # ------------------------------------------------------------------
    def unit_activities(self, result: "LeadingRunResult") -> dict[str, float]:
        """Activity factor (0..1) of each core unit for a finished run."""
        counts = result.op_counts
        cycles = max(1, result.cycles)
        ipc = result.ipc

        def rate(*ops: OpClass) -> float:
            return sum(counts.get(op.value, 0) for op in ops) / cycles

        generic = min(1.0, ipc / _REFERENCE_IPC)
        mem_rate = min(1.0, rate(OpClass.LOAD, OpClass.STORE) / 2.0)
        fp_rate = min(1.0, rate(OpClass.FALU, OpClass.FMUL) / 2.0)
        int_rate = min(1.0, rate(OpClass.IALU, OpClass.IMUL) / 4.0)
        branch_rate = min(1.0, rate(OpClass.BRANCH))
        return {
            "icache": generic,
            "bpred": min(1.0, 4.0 * branch_rate),
            "rename": generic,
            "rob": generic,
            "regfile": generic,
            "int_exec": int_rate,
            "fp_exec": fp_rate,
            "lsq": mem_rate,
            "dcache": mem_rate,
            "clock_other": 1.0,  # the clock tree never gates fully
        }

    def core_power(self, result: "LeadingRunResult") -> CorePowerBreakdown:
        """Total and per-unit leading core power for one workload run."""
        activities = self.unit_activities(result)
        per_unit: dict[str, float] = {}
        for name, _area, power_frac in self._units:
            peak = self.peak_power_w * power_frac
            activity = activities[name]
            per_unit[name] = peak * (
                TURN_OFF_FACTOR + (1.0 - TURN_OFF_FACTOR) * activity
            )
        return CorePowerBreakdown(sum(per_unit.values()), per_unit)

    def checker_power(
        self,
        nominal_power_w: float,
        frequency_fraction: float,
        leakage_fraction: float = 0.25,
    ) -> float:
        """Checker core power under DFS.

        Dynamic power scales linearly with frequency (Section 2.1, DFS);
        leakage does not.  ``nominal_power_w`` is the power at peak
        frequency (the 7 W / 15 W design points).
        """
        dynamic = nominal_power_w * (1.0 - leakage_fraction)
        leakage = nominal_power_w * leakage_fraction
        return leakage + dynamic * frequency_fraction


def l2_bank_power_w(accesses: int, cycles: int) -> float:
    """One L2 bank's power: static plus access-rate-scaled dynamic (Table 2)."""
    if cycles <= 0:
        return L2_BANK_STATIC_W
    rate = min(1.0, accesses / cycles)
    return L2_BANK_STATIC_W + L2_BANK_DYNAMIC_W_PER_ACCESS * rate


def router_power_w(num_routers: int) -> float:
    """Total NoC router power (Table 2: 0.296 W per router)."""
    return num_routers * ROUTER_POWER_W


def rmt_power_overhead(
    leading_power_w: float,
    checker_power_w: float,
    interconnect_power_w: float = 1.8,
) -> float:
    """Fractional power overhead of redundant multi-threading.

    The Figure 1 summary cites less than 10% overhead for an efficient
    checker; this helper computes the ratio for any operating point.
    """
    if leading_power_w <= 0:
        raise ValueError("leading power must be positive")
    return (checker_power_w + interconnect_power_w) / leading_power_w
