"""Power models: Wattch-lite cores, ITRS technology scaling, pipelining."""

from repro.power.itrs import (
    PUBLISHED_TABLE8,
    TECH_NODES,
    VARIABILITY_TABLE,
    TechNode,
    VariabilityEntry,
    dynamic_power_ratio,
    leakage_power_ratio,
    relative_gate_delay,
)
from repro.power.pipeline import (
    PUBLISHED_TABLE5,
    PipelinePowerEntry,
    PipelinePowerModel,
)
from repro.power.wattch import (
    TURN_OFF_FACTOR,
    CorePowerModel,
    l2_bank_power_w,
    rmt_power_overhead,
    router_power_w,
)

__all__ = [
    "PUBLISHED_TABLE8",
    "TECH_NODES",
    "VARIABILITY_TABLE",
    "TechNode",
    "VariabilityEntry",
    "dynamic_power_ratio",
    "leakage_power_ratio",
    "relative_gate_delay",
    "PUBLISHED_TABLE5",
    "PipelinePowerEntry",
    "PipelinePowerModel",
    "TURN_OFF_FACTOR",
    "CorePowerModel",
    "l2_bank_power_w",
    "rmt_power_overhead",
    "router_power_w",
]
