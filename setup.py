"""Setuptools shim (the environment lacks the `wheel` package, so editable
installs need the legacy `setup.py develop` path via --no-use-pep517)."""

from setuptools import setup

setup()
