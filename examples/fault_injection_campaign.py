#!/usr/bin/env python
"""Fault-injection campaign over the RMT checking protocol (Section 2).

Sweeps soft-error and dynamic-timing-error rates over the functional RMT
engine and audits detection, ECC behaviour, recovery, and architectural
safety (the committed store stream must match a fault-free golden run).

    python examples/fault_injection_campaign.py
"""

from repro.core.faults import FaultInjector, FaultRates
from repro.core.functional import FunctionalRmt
from repro.isa.trace import generate_trace
from repro.workloads import get_profile


def campaign(trace, golden_stream, soft_rate, timing_rate, seed):
    injector = FaultInjector(
        leading=FaultRates(soft_error=soft_rate, timing_error=timing_rate),
        trailing=FaultRates(soft_error=soft_rate / 2, timing_error=timing_rate / 2),
        seed=seed,
    )
    result = FunctionalRmt(injector=injector).run(trace)
    return injector, result, result.store_stream == golden_stream


def main() -> None:
    profile = get_profile("vpr")
    instructions = 30_000
    trace = generate_trace(profile, instructions, seed=42)
    golden = FunctionalRmt().run(trace).store_stream
    print(f"workload: {profile.name}, {instructions} instructions, "
          f"{len(golden)} committed stores\n")

    header = (
        f"{'soft rate':>10} {'timing rate':>12} {'faults':>7} {'detected':>9} "
        f"{'ECC fix':>8} {'ECC det':>8} {'recovered':>10} {'safe':>5}"
    )
    print(header)
    print("-" * len(header))
    for soft, timing in [
        (1e-4, 0.0),
        (0.0, 1e-4),
        (1e-4, 1e-4),
        (1e-3, 1e-3),
        (5e-3, 5e-3),
    ]:
        injector, result, safe = campaign(trace, golden, soft, timing, seed=11)
        print(
            f"{soft:>10.0e} {timing:>12.0e} {len(injector.injected):>7} "
            f"{result.mismatches_detected:>9} {result.ecc_corrections:>8} "
            f"{result.ecc_detections_uncorrectable:>8} {result.recoveries:>10} "
            f"{'yes' if safe else 'NO':>5}"
        )

    print(
        "\nEvery campaign must end architecturally safe: any single datapath"
        "\nfault is caught by the register-value comparison (or corrected by"
        "\nECC on the protected structures) and recovery re-executes from the"
        "\ntrailing core's checked register file."
    )


if __name__ == "__main__":
    main()
