#!/usr/bin/env python
"""Visualize the 3D stack: floorplans and the temperature field.

Renders both dies of the 3d-2a chip as labelled tile maps, then solves
the thermal model and shows each active layer's temperature as an ASCII
heatmap — the hot leading-core strip, the cooler cache, and the checker's
footprint on the upper die are all visible.

    python examples/thermal_map.py [checker_power_w]
"""

import sys

from repro.common.config import ChipModel
from repro.experiments.thermal import standard_floorplan
from repro.thermal import ChipThermalModel
from repro.viz import floorplan_map, heatmap


def main() -> None:
    checker_power = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=checker_power)

    for die, label in ((0, "die 1 (heat-sink side): leading core + 6 MB L2"),
                       (1, "die 2 (stacked): checker + 9 MB L2")):
        print(f"=== {label} ===")
        print(floorplan_map(plan, die=die, width=58, height=16))
        print()

    solved = ChipThermalModel(plan).solve()
    print(f"peak: {solved.peak_c:.1f} C at {solved.hottest_block()}  "
          f"(checker at {checker_power:.0f} W)\n")
    for layer, label in (("active_1", "die 1 active layer"),
                         ("active_2", "die 2 active layer")):
        grid = solved.layer_grids[layer]
        print(f"--- {label}: {grid.max():.1f} C peak ---")
        # Flip so the map matches the floorplan orientation (y upward).
        print(heatmap(grid[::-1], width=58, height=16))
        print()


if __name__ == "__main__":
    main()
