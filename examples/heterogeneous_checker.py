#!/usr/bin/env python
"""The heterogeneous (older-process) checker die of Section 4.

Walks through every consequence of building the checker die at 90 nm
under a 65 nm leading die: power, area, temperature, the 1.4 GHz
frequency ceiling, and error resilience.

    python examples/heterogeneous_checker.py
"""

from repro.experiments.hetero import checker_power_at_node, section4_heterogeneous
from repro.experiments.runner import SimulationWindow
from repro.workloads import get_profile


def main() -> None:
    window = SimulationWindow(warmup=6000, measured=20_000)
    benchmarks = [get_profile(n) for n in ("gzip", "mcf", "mesa", "swim")]
    result = section4_heterogeneous(window=window, benchmarks=benchmarks)

    print("=== power ===")
    print(f"checker core      : {result.checker_power_65nm_w:.1f} W @ 65nm "
          f"-> {result.checker_power_90nm_w:.1f} W @ 90nm "
          f"(paper: 14.5 -> 23.7 W)")
    print(f"  at the 1.4 GHz DFS cap the 90nm checker draws "
          f"{checker_power_at_node(result.checker_power_65nm_w, 90, 0.7):.1f} W")
    print(f"upper-die cache   : {result.upper_cache_banks_65nm} banks "
          f"({result.upper_cache_power_65nm_w:.1f} W) -> "
          f"{result.upper_cache_banks_90nm} banks "
          f"({result.upper_cache_power_90nm_w:.1f} W)  (paper: 9 -> 5 banks)")
    print(f"checker-die total : {result.checker_die_delta_w:+.1f} W "
          f"(paper: +6.9 W)")

    print("\n=== area & temperature ===")
    print(f"90nm checker area : {result.checker_area_90nm_mm2:.1f} mm2 "
          f"(65nm: 5.0) -> power density falls")
    print(f"chip peak         : {result.peak_temp_homogeneous_c:.1f} C (homo) vs "
          f"{result.peak_temp_hetero_c:.1f} C (hetero), "
          f"delta {result.peak_temp_hetero_c - result.peak_temp_homogeneous_c:+.1f} C "
          f"(paper: up to -4 C)")
    print(f"checker block     : {result.checker_temp_homogeneous_c:.1f} C -> "
          f"{result.checker_temp_hetero_c:.1f} C")

    print("\n=== frequency ===")
    print(f"90nm peak clock   : {2 * result.peak_frequency_ratio:.1f} GHz "
          f"(a 500 ps 65nm stage takes 714 ps at 90nm)")
    print(f"checker needs avg : {result.mean_required_frequency_ghz:.2f} GHz "
          f"(paper: 1.26 GHz) -> the cap rarely binds")
    print(f"leading slowdown  : {result.leading_slowdown:.1%} (paper: ~3%)")
    print(f"90nm L2 bank      : {result.bank_access_cycles_65nm} -> "
          f"{result.bank_access_cycles_90nm} cycles per access")

    print("\n=== error resilience ===")
    print(f"timing error rate : {result.timing_error_rate_65nm:.2e} (65nm) vs "
          f"{result.timing_error_rate_90nm:.2e} (90nm at its capped levels)")
    print(f"uncorrectable SER : 90nm/65nm ratio {result.soft_error_rate_ratio:.2f} "
          f"(multi-bit upsets are what defeat ECC)")

    print("\n=== the closing trade (paper Section 6) ===")
    print(f"temperature increase vs 2d-a : {result.temp_increase_homo_c:+.1f} C homo "
          f"vs {result.temp_increase_hetero_c:+.1f} C hetero (paper: +7 vs +3)")
    print(f"constrained performance loss : {result.constraint_loss_homo:.1%} homo "
          f"vs {result.constraint_loss_hetero:.1%} hetero (paper: 8% vs 4%)")
    print("\nConclusion: the older-process checker die costs power but "
          "lowers hot-block density and error rates — roughly halving the "
          "reliability overhead on both axes.")


if __name__ == "__main__":
    main()
