#!/usr/bin/env python
"""Thermal transient of snapping on the checker die.

Simulates the time trajectory of the 3d-2a chip's temperature when a
workload phase raises the checker from idle to its full 15 W (the DTM
scenario the paper's Discussion paragraph sketches): how fast the chip
approaches the trigger, and what steady-state throttle DTM settles at.

    python examples/thermal_transient.py
"""

import numpy as np

from repro.common.config import ChipModel, ThermalConfig
from repro.experiments.thermal import standard_floorplan
from repro.thermal import ChipThermalModel, DtmController, TransientThermalModel


def power_maps_for(model: ChipThermalModel, checker_power: float):
    cfg = model.config
    maps = {
        "active_1": np.zeros((cfg.grid_rows, cfg.grid_cols)),
        "active_2": np.zeros((cfg.grid_rows, cfg.grid_cols)),
    }
    layer_of = {0: "active_1", 1: "active_2"}
    for block in model.floorplan.blocks:
        power = checker_power if block.name == "checker" else block.power_w
        if power <= 0:
            continue
        die, idx, frac = model._block_cells[block.name]
        np.add.at(maps[layer_of[die]].ravel(), idx, power * frac)
    n_cells = cfg.grid_rows * cfg.grid_cols
    for die, power in model.floorplan.distributed_power_w.items():
        maps[layer_of[die]] += power / n_cells
    return maps


def main() -> None:
    plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0)
    model = ChipThermalModel(plan, ThermalConfig())
    transient = TransientThermalModel(model.grid, timestep_s=1e-3)

    idle = power_maps_for(model, checker_power=15.0 * 0.32)   # leakage only
    busy = power_maps_for(model, checker_power=15.0)

    print("phase 1: checker idle (leakage only), 50 ms")
    state, peaks = transient.run(idle, duration_s=0.05)
    print(f"  peak settles at {peaks[-1]:.1f} C")

    print("phase 2: checker goes busy (15 W), 100 ms")
    state, peaks = transient.run(busy, duration_s=0.1, state=state)
    for t_ms in (1, 5, 10, 25, 50, 100):
        step = min(len(peaks) - 1, t_ms - 1)
        print(f"  t = {t_ms:3d} ms : peak {peaks[step]:.1f} C")
    steady = model.solve().peak_c
    print(f"  steady state would be {steady:.1f} C")

    print("\nDTM steady state for an 84 C trigger:")
    controller = DtmController(plan, trigger_c=84.0)
    result = controller.steady_state()
    if result.emergency:
        print(f"  throttle to {result.frequency_fraction:.2f}x frequency "
              f"(peak {result.throttled_peak_c:.1f} C, "
              f"up to {result.performance_cost:.0%} performance cost)")
    else:
        print("  no emergency: full speed fits the trigger")


if __name__ == "__main__":
    main()
