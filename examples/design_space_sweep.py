#!/usr/bin/env python
"""Thermal design-space exploration of the 3D checker (Sections 3.2-3.3).

Sweeps checker power over the three chip organizations, evaluates the
paper's design-space probes (inactive upper die, corner placement,
doubled power density), and finds the thermally-equivalent frequency for
the constant-thermal-constraint analysis.

    python examples/design_space_sweep.py
"""

from repro.common.config import ChipModel
from repro.experiments.thermal import (
    fig4_thermal_sweep,
    standard_floorplan,
    thermal_variants,
)
from repro.experiments.thermal_constraint import thermally_equivalent_frequency
from repro.thermal import ChipThermalModel


def main() -> None:
    print("=== checker power sweep (Figure 4) ===")
    print(f"{'checker':>8} {'2d-2a':>8} {'3d-2a':>8} {'2d-a':>8} {'3d delta':>9}")
    for row in fig4_thermal_sweep():
        print(
            f"{row.checker_power_w:>7.0f}W {row.temp_2d_2a_c:>7.1f}C "
            f"{row.temp_3d_2a_c:>7.1f}C {row.temp_2d_a_c:>7.1f}C "
            f"{row.delta_3d_vs_2da:>+8.1f}C"
        )

    print("\n=== design-space probes (deltas vs standard 3d-2a) ===")
    for power in (7.0, 15.0):
        variants = thermal_variants(power)
        print(
            f"{power:4.0f}W checker: inactive upper die {variants['inactive_top']:+.1f} C, "
            f"corner {variants['corner']:+.1f} C, "
            f"double density {variants['double_density']:+.1f} C"
        )

    print("\n=== constant thermal constraint (Section 3.3) ===")
    for power in (7.0, 15.0):
        ratio = thermally_equivalent_frequency(power)
        print(
            f"{power:4.0f}W checker: the 3D chip matches 2d-a thermals at "
            f"{2 * ratio:.2f} GHz ({1 - ratio:.1%} frequency reduction)"
        )

    print("\n=== where does the heat go? (3d-2a, 7 W checker) ===")
    plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
    solved = ChipThermalModel(plan).solve()
    hottest = sorted(
        solved.block_peak_c.items(), key=lambda kv: kv[1], reverse=True
    )[:8]
    for name, temp in hottest:
        block = plan.block(name)
        print(
            f"  {name:12s} die{block.die}  {block.power_w:5.2f} W over "
            f"{block.area_mm2:5.2f} mm2  -> {temp:.1f} C"
        )


if __name__ == "__main__":
    main()
