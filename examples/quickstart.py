#!/usr/bin/env python
"""Quickstart: simulate the 3D reliable processor on one benchmark.

Runs the RMT co-simulation (out-of-order leading core + 3D-stacked
in-order checker with register value prediction and DFS) on a synthetic
SPEC2k-like workload, then solves the stacked chip's thermal model.

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import ChipModel, SimulationWindow, simulate_leading, simulate_rmt
from repro.experiments.thermal import standard_floorplan
from repro.thermal import ChipThermalModel
from repro.workloads import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    profile = get_profile(benchmark)
    window = SimulationWindow(warmup=8000, measured=30_000)

    print(f"=== {benchmark}: RMT co-simulation on the 3d-2a chip ===")
    result = simulate_rmt(profile, ChipModel.THREE_D_2A, window=window)
    baseline = simulate_leading(profile, ChipModel.TWO_D_A, window=window)

    lead = result.leading
    print(f"leading core IPC        : {lead.ipc:.2f} "
          f"(2d-a baseline: {baseline.ipc:.2f})")
    print(f"branch mispredict rate  : {lead.branch_mispredict_rate:.1%}")
    print(f"L2 misses / 10k instrs  : {lead.l2_misses_per_10k:.2f}")
    print(f"avg L2 hit latency      : {lead.average_l2_hit_latency:.1f} cycles")
    print()
    print(f"checker mean frequency  : {result.mean_frequency_fraction:.2f}x peak "
          f"({result.mean_checker_frequency_hz(2e9) / 1e9:.2f} GHz)")
    print(f"checker modal frequency : {result.modal_frequency_fraction:.1f}x "
          f"(the paper's Figure 7 mode is 0.6x)")
    print("frequency residency     :")
    for level, frac in result.frequency_residency.items():
        if frac > 0:
            print(f"   {level:.1f}x : {'#' * int(60 * frac)} {frac:.1%}")
    print(f"leader commits stalled by checker: {result.backpressure_commits} "
          f"of {lead.instructions + window.warmup}")

    print()
    print("=== thermal impact of snapping on the checker die ===")
    base_t = ChipThermalModel(standard_floorplan(ChipModel.TWO_D_A)).solve()
    for power in (7.0, 15.0):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=power)
        solved = ChipThermalModel(plan).solve()
        print(f"{power:4.0f} W checker: peak {solved.peak_c:.1f} C "
              f"({solved.peak_c - base_t.peak_c:+.1f} vs 2d-a baseline "
              f"{base_t.peak_c:.1f} C), hottest block: {solved.hottest_block()}")


if __name__ == "__main__":
    main()
