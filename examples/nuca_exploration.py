#!/usr/bin/env python
"""NUCA L2 exploration: policies, capacities, and hit latencies.

Reproduces the Section 3.3 cache analysis: the 6 MB vs 15 MB miss rates,
the 18 vs 22 cycle average hit latencies, and the distributed-sets vs
distributed-ways policy comparison.

    python examples/nuca_exploration.py
"""

from repro.common.config import ChipModel, NucaPolicy
from repro.experiments.runner import SimulationWindow, simulate_leading
from repro.workloads import spec2k_suite

WINDOW = SimulationWindow(warmup=6000, measured=20_000)


def main() -> None:
    print("=== per-benchmark L2 behaviour: 6 MB (2d-a) vs 15 MB (2d-2a) ===")
    print(f"{'benchmark':>10} {'IPC 6MB':>8} {'IPC 15MB':>9} "
          f"{'m/10k 6MB':>10} {'m/10k 15MB':>11} {'hit lat':>12}")
    total6 = total15 = 0.0
    for profile in spec2k_suite():
        small = simulate_leading(profile, ChipModel.TWO_D_A, window=WINDOW)
        big = simulate_leading(profile, ChipModel.TWO_D_2A, window=WINDOW)
        total6 += small.l2_misses_per_10k
        total15 += big.l2_misses_per_10k
        print(
            f"{profile.name:>10} {small.ipc:>8.2f} {big.ipc:>9.2f} "
            f"{small.l2_misses_per_10k:>10.2f} {big.l2_misses_per_10k:>11.2f} "
            f"{small.average_l2_hit_latency:>5.1f}->{big.average_l2_hit_latency:<5.1f}"
        )
    print(
        f"\nsuite average misses/10k: {total6 / 19:.2f} -> {total15 / 19:.2f} "
        f"(paper: 1.43 -> 1.25)"
    )

    print("\n=== NUCA policy: distributed sets vs distributed ways (3d-2a) ===")
    subset = [p for p in spec2k_suite() if p.name in
              ("gzip", "mcf", "mesa", "eon", "swim", "vortex")]
    for profile in subset:
        sets_run = simulate_leading(
            profile, ChipModel.THREE_D_2A, window=WINDOW,
            policy=NucaPolicy.DISTRIBUTED_SETS,
        )
        ways_run = simulate_leading(
            profile, ChipModel.THREE_D_2A, window=WINDOW,
            policy=NucaPolicy.DISTRIBUTED_WAYS,
        )
        print(
            f"{profile.name:>10}: sets IPC {sets_run.ipc:.2f} "
            f"(hit {sets_run.average_l2_hit_latency:.1f} cyc)  "
            f"ways IPC {ways_run.ipc:.2f} "
            f"(hit {ways_run.average_l2_hit_latency:.1f} cyc)"
        )
    print("\nThe way policy's migration pulls re-referenced blocks next to "
          "the controller;\nthe paper finds it < 2% apart from the simpler "
          "set policy, which the rest of\nthe evaluation therefore uses.")


if __name__ == "__main__":
    main()
