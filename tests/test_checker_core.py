"""The in-order checker timing model."""

import pytest

from repro.common.config import CheckerCoreConfig
from repro.core.checker import InOrderCheckerTiming
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass


def alu(seq, dst=None, src=30):
    return Instruction(seq, OpClass.IALU, dst=dst if dst is not None else seq % 28,
                       src1=src, src2=30)


class TestBandwidth:
    def test_full_speed_consumes_width_per_cycle(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=1.0)
        times = [checker.consume(alu(i), 0.0) for i in range(40)]
        # 4-wide: 40 instructions need 10 trailing cycles.
        assert times[-1] <= 11.0

    def test_half_speed_doubles_time(self):
        fast = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=1.0)
        slow = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=0.5)
        t_fast = [fast.consume(alu(i), 0.0) for i in range(40)][-1]
        t_slow = [slow.consume(alu(i), 0.0) for i in range(40)][-1]
        assert t_slow == pytest.approx(2 * t_fast, rel=0.2)

    def test_fp_units_limit_throughput(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=1.0)
        fmuls = [
            Instruction(i, OpClass.FMUL, dst=32 + i % 28, src1=62, src2=62)
            for i in range(20)
        ]
        done = [checker.consume(i, 0.0) for i in fmuls]
        assert done[-1] >= 20.0  # one FMUL unit -> one per trailing cycle


class TestAvailability:
    def test_waits_for_rvq_entry(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=1.0)
        done = checker.consume(alu(0), available_time=100.0)
        assert done >= 100.0

    def test_in_order_non_decreasing(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=0.7)
        times = [checker.consume(alu(i), float(i)) for i in range(200)]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestRvp:
    def test_rvp_removes_dependence_stalls(self):
        chained = []
        for i in range(200):
            src = (i - 1) % 28 if i else 30
            chained.append(Instruction(i, OpClass.IMUL, dst=i % 28, src1=src, src2=30))

        with_rvp = InOrderCheckerTiming(
            CheckerCoreConfig(uses_register_value_prediction=True),
            frequency_ratio=1.0,
        )
        without = InOrderCheckerTiming(
            CheckerCoreConfig(uses_register_value_prediction=False),
            frequency_ratio=1.0,
        )
        t_rvp = [with_rvp.consume(i, 0.0) for i in chained][-1]
        t_plain = [without.consume(i, 0.0) for i in chained][-1]
        # IMUL latency 7: the chain serializes without RVP.
        assert t_plain > 3 * t_rvp


class TestFrequencyControl:
    def test_invalid_ratio_rejected(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig())
        with pytest.raises(ValueError):
            checker.set_frequency_ratio(0.0)
        with pytest.raises(ValueError):
            checker.set_frequency_ratio(1.5)

    def test_ratio_change_takes_effect(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig(), frequency_ratio=1.0)
        checker.set_frequency_ratio(0.25)
        assert checker.frequency_ratio == 0.25

    def test_consumed_counter(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig())
        for i in range(7):
            checker.consume(alu(i), 0.0)
        assert checker.consumed == 7


class TestPeakThroughput:
    def test_bound_respects_issue_width(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig())
        mix = {OpClass.IALU: 1.0}
        assert checker.peak_throughput_per_trailing_cycle(mix) == pytest.approx(4.0)

    def test_bound_respects_fp_contention(self):
        checker = InOrderCheckerTiming(CheckerCoreConfig())
        mix = {OpClass.FALU: 0.5, OpClass.IALU: 0.5}
        # One FP ALU serving 50% of the stream caps throughput at 2.
        assert checker.peak_throughput_per_trailing_cycle(mix) == pytest.approx(2.0)
