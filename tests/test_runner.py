"""The experiment runner plumbing."""

import pytest

from repro.common.config import ChipModel, LeadingCoreConfig, NucaPolicy
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    SimulationWindow,
    build_memory,
    simulate_leading,
    simulate_rmt,
)
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=1000, measured=4000)


class TestWindow:
    def test_total(self):
        assert SimulationWindow(1000, 4000).total == 5000

    def test_default_window(self):
        assert DEFAULT_WINDOW.measured >= 10_000


class TestBuildMemory:
    def test_bank_count_follows_chip(self):
        assert build_memory(ChipModel.TWO_D_A).l2.config.num_banks == 6
        assert build_memory(ChipModel.THREE_D_2A).l2.config.num_banks == 15

    def test_policy_passthrough(self):
        memory = build_memory(ChipModel.TWO_D_A, policy=NucaPolicy.DISTRIBUTED_WAYS)
        assert memory.l2.config.policy is NucaPolicy.DISTRIBUTED_WAYS


class TestSimulateLeading:
    def test_accepts_profile_or_name(self):
        by_name = simulate_leading("gzip", window=TINY)
        by_profile = simulate_leading(get_profile("gzip"), window=TINY)
        assert by_name.ipc == by_profile.ipc

    def test_seed_determinism(self):
        a = simulate_leading("gzip", window=TINY, seed=5)
        b = simulate_leading("gzip", window=TINY, seed=5)
        assert a.ipc == b.ipc

    def test_seed_sensitivity(self):
        a = simulate_leading("gzip", window=TINY, seed=5)
        b = simulate_leading("gzip", window=TINY, seed=6)
        assert a.ipc != b.ipc

    def test_custom_core_config(self):
        narrow = LeadingCoreConfig(rob_size=8, lsq_size=8)
        wide = simulate_leading("gzip", window=TINY)
        small = simulate_leading("gzip", window=TINY, leading=narrow)
        assert small.ipc < wide.ipc

    def test_bigger_cache_never_misses_more(self):
        small = simulate_leading("mcf", window=TINY, chip=ChipModel.TWO_D_A)
        big = simulate_leading("mcf", window=TINY, chip=ChipModel.TWO_D_2A)
        assert big.l2_misses_per_10k <= small.l2_misses_per_10k + 0.5


class TestSimulateRmt:
    def test_transfer_latency_follows_chip(self):
        # Indirect check: both run fine and count all instructions.
        for chip in (ChipModel.TWO_D_2A, ChipModel.THREE_D_2A):
            result = simulate_rmt("gzip", chip, window=TINY)
            assert result.checker_instructions == TINY.total

    def test_checker_peak_cap(self):
        result = simulate_rmt("mesa", window=TINY, checker_peak_ratio=0.5)
        levels = [l for l, f in result.frequency_residency.items() if f > 0]
        assert max(levels) <= 0.5 + 1e-9
