"""The RMT co-simulation: slack, DFS, backpressure."""

import pytest

from repro.common.config import (
    CheckerCoreConfig,
    ChipModel,
    DfsConfig,
    LeadingCoreConfig,
    NucaConfig,
    QueueConfig,
)
from repro.core.memory import MemoryHierarchy
from repro.core.rmt import RmtSimulator
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import get_profile


def simulate(benchmark="gzip", n=20_000, checker=None, peak_ratio=1.0, seed=3):
    profile = get_profile(benchmark)
    leading = LeadingCoreConfig()
    memory = MemoryHierarchy(leading, NucaConfig(num_banks=6), ChipModel.TWO_D_A)
    memory.preload_profile(profile)
    generator = TraceGenerator(profile, seed=seed)
    simulator = RmtSimulator(
        leading_config=leading,
        checker_config=checker or CheckerCoreConfig(),
        memory=memory,
        transfer_latency_cycles=1,
        checker_peak_ratio=peak_ratio,
    )
    return simulator, simulator.run(generator.generate(n))


@pytest.fixture(scope="module")
def gzip_run():
    return simulate()


class TestBasics:
    def test_checker_consumes_everything(self, gzip_run):
        _, result = gzip_run
        assert result.checker_instructions == 20_000

    def test_leading_ipc_reasonable(self, gzip_run):
        _, result = gzip_run
        assert 0.5 < result.leading.ipc < 4.0

    def test_residency_sums_to_one(self, gzip_run):
        _, result = gzip_run
        assert sum(result.frequency_residency.values()) == pytest.approx(1.0)

    def test_mean_frequency_below_peak(self, gzip_run):
        _, result = gzip_run
        assert 0.1 <= result.mean_frequency_fraction < 1.0

    def test_mean_checker_frequency_hz(self, gzip_run):
        _, result = gzip_run
        expected = result.mean_frequency_fraction * 2.0e9
        assert result.mean_checker_frequency_hz(2.0e9) == pytest.approx(expected)

    def test_checker_energy_ratio(self, gzip_run):
        _, result = gzip_run
        ratio = result.checker_energy_ratio()
        # DFS throttling saves real energy, bounded by the leakage floor.
        assert 0.25 <= ratio < 1.0
        assert ratio == pytest.approx(
            0.25 + 0.75 * result.mean_frequency_fraction
        )
        with pytest.raises(ValueError):
            result.checker_energy_ratio(leakage_fraction=2.0)


class TestSlackInvariant:
    def test_consumption_never_precedes_commit(self, gzip_run):
        simulator, _ = gzip_run
        for commit, consume in zip(
            simulator._commit_times, simulator._consume_times
        ):
            assert consume >= commit

    def test_queue_occupancy_bounded_by_capacity(self, gzip_run):
        """No more than rvq_entries instructions sit between the cores."""
        simulator, _ = gzip_run
        capacity = simulator.checker_config.queues.rvq_entries
        commits = simulator._commit_times
        consumes = simulator._consume_times
        for i in range(capacity, len(commits)):
            # Entry i needed a slot: the (i-capacity)-th must be consumed.
            assert commits[i] >= consumes[i - capacity] - 1e-9


class TestDfsBehaviour:
    def test_low_ilp_workload_runs_checker_slower(self):
        _, mcf = simulate("mcf")
        _, mesa = simulate("mesa")
        assert (
            mcf.mean_frequency_fraction < mesa.mean_frequency_fraction
        )

    def test_peak_cap_respected(self):
        _, result = simulate(peak_ratio=0.7)
        assert max(
            level for level, frac in result.frequency_residency.items() if frac > 0
        ) <= 0.7 + 1e-9

    def test_capped_checker_still_keeps_up(self):
        _, capped = simulate(peak_ratio=0.7)
        _, free = simulate(peak_ratio=1.0)
        loss = 1.0 - capped.leading.ipc / free.leading.ipc
        assert loss < 0.10  # Section 4: only a minor slowdown (~3%)


class TestBackpressure:
    def test_tiny_queues_raise_backpressure(self):
        small = CheckerCoreConfig(
            queues=QueueConfig(
                slack_target=16, rvq_entries=16, lvq_entries=8,
                boq_entries=8, stb_entries=8,
            )
        )
        _, throttled = simulate(checker=small)
        _, free = simulate()
        assert throttled.backpressure_commits > free.backpressure_commits

    def test_slow_capped_checker_stalls_the_leader(self):
        small = CheckerCoreConfig(
            queues=QueueConfig(
                slack_target=16, rvq_entries=16, lvq_entries=8,
                boq_entries=8, stb_entries=8,
            )
        )
        _, throttled = simulate(checker=small, peak_ratio=0.3)
        _, free = simulate()
        assert throttled.leading.ipc < free.leading.ipc * 0.95

    def test_backpressure_negligible_with_paper_sizes(self, gzip_run):
        _, result = gzip_run
        assert result.backpressure_commits / 20_000 < 0.2


class TestDeterminism:
    def test_same_seed_same_result(self):
        _, a = simulate(seed=9)
        _, b = simulate(seed=9)
        assert a.leading.ipc == b.leading.ipc
        assert a.frequency_residency == b.frequency_residency
