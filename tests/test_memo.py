"""The artifact cache: hits avoid regeneration, consumers cannot corrupt."""

import dataclasses

import pytest

from repro.common import memo
from repro.common.config import ChipModel, ThermalConfig
from repro.experiments.runner import SimulationWindow, simulate_leading
from repro.experiments.thermal import standard_floorplan
from repro.isa.trace import TraceGenerator
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=1000, measured=3000)
GZIP = get_profile("gzip")


@pytest.fixture(autouse=True)
def _fresh_cache():
    memo.clear_cache()
    yield
    memo.clear_cache()


class TestTraceCache:
    def test_hit_skips_generation(self, monkeypatch):
        cache = memo.get_cache()
        cache.trace(GZIP, 42, 500)
        calls = []
        original = TraceGenerator.generate_arrays
        monkeypatch.setattr(
            TraceGenerator, "generate_arrays",
            lambda self, n: calls.append(n) or original(self, n),
        )
        cache.trace(GZIP, 42, 500)      # exact hit
        cache.trace(GZIP, 42, 300)      # prefix hit
        assert calls == []
        assert cache.stats["trace"].hits == 2
        assert cache.stats["trace"].misses == 1

    def test_extension_matches_fresh_generation(self):
        cache = memo.get_cache()
        short = cache.trace(GZIP, 42, 500)
        extended = cache.trace(GZIP, 42, 1200)
        fresh = tuple(TraceGenerator(GZIP, seed=42).generate(1200))
        assert extended[:500] == short
        assert [
            (i.op, i.address, i.taken, i.target) for i in extended
        ] == [(i.op, i.address, i.taken, i.target) for i in fresh]

    def test_returns_immutable_tuple(self):
        trace = memo.get_cache().trace(GZIP, 42, 100)
        assert isinstance(trace, tuple)

    def test_distinct_seeds_distinct_streams(self):
        cache = memo.get_cache()
        a = cache.trace(GZIP, 42, 200)
        b = cache.trace(GZIP, 43, 200)
        assert a != b

    def test_lru_eviction(self):
        cache = memo.ArtifactCache(max_trace_entries=2)
        for name in ("gzip", "mcf", "mesa"):
            cache.trace(get_profile(name), 42, 100)
        cache.trace(get_profile("mesa"), 42, 100)   # still resident
        cache.trace(get_profile("gzip"), 42, 100)   # evicted -> regenerated
        assert cache.stats["trace"].hits == 1
        assert cache.stats["trace"].misses == 4


class TestPredictorCache:
    def test_clones_are_independent(self):
        cache = memo.get_cache()
        first = cache.pretrained_predictor(GZIP, 42)
        snapshot = (
            list(first._bimodal), list(first._pht), first._history,
            first.lookups,
        )
        # Mutate the first clone heavily; the master must be unaffected.
        for _ in range(200):
            first.update(0x4000_0000, taken=True, target=0x4000_1000)
        second = cache.pretrained_predictor(GZIP, 42)
        assert (
            list(second._bimodal), list(second._pht), second._history,
            second.lookups,
        ) == snapshot
        assert first.lookups == snapshot[3] + 200
        assert cache.stats["predictor"].hits == 1
        assert cache.stats["predictor"].misses == 1

    def test_clone_matches_fresh_pretraining(self):
        cached = memo.get_cache().pretrained_predictor(GZIP, 42)
        from repro.core.branch import BranchPredictor

        fresh = BranchPredictor()
        TraceGenerator(GZIP, seed=42).pretrain_predictor(fresh)
        assert cached._bimodal == fresh._bimodal
        assert cached._pht == fresh._pht
        assert cached._chooser == fresh._chooser
        assert cached._history == fresh._history


class TestSimulationReuse:
    def test_warm_cache_is_bit_identical(self):
        cold = simulate_leading("gzip", ChipModel.TWO_D_A, window=TINY)
        warm = simulate_leading("gzip", ChipModel.TWO_D_A, window=TINY)
        assert dataclasses.asdict(cold) == dataclasses.asdict(warm)

    def test_memory_hierarchy_never_shared(self):
        from repro.experiments.runner import _prepare
        from repro.common.config import NucaPolicy

        _p, _l, mem_a, _pred_a, _t, _s = _prepare(
            "gzip", ChipModel.TWO_D_A, TINY, 42,
            NucaPolicy.DISTRIBUTED_SETS, None,
        )
        _p, _l, mem_b, _pred_b, _t, _s = _prepare(
            "gzip", ChipModel.TWO_D_A, TINY, 42,
            NucaPolicy.DISTRIBUTED_SETS, None,
        )
        assert mem_a is not mem_b
        assert _pred_a is not _pred_b


class TestThermalCache:
    def test_factorisation_reused_across_powers(self):
        cache = memo.get_cache()
        thermal = ThermalConfig()
        plan7 = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        plan15 = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0)
        t7 = cache.solve_floorplan(plan7, thermal).peak_c
        t15 = cache.solve_floorplan(plan15, thermal).peak_c
        assert cache.stats["thermal"].misses == 1
        assert cache.stats["thermal"].hits == 1
        assert t15 > t7

    def test_cached_solve_matches_direct_model(self):
        from repro.thermal.hotspot import ChipThermalModel

        thermal = ThermalConfig()
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=15.0)
        direct = ChipThermalModel(plan, thermal).solve()
        cached = memo.get_cache().solve_floorplan(plan, thermal)
        assert cached.peak_c == pytest.approx(direct.peak_c, abs=1e-9)

    def test_overrides_do_not_stick(self):
        cache = memo.get_cache()
        thermal = ThermalConfig()
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        base = cache.solve_floorplan(plan, thermal).peak_c
        hot = cache.solve_floorplan(
            plan, thermal, overrides={"checker": 25.0}
        ).peak_c
        again = cache.solve_floorplan(plan, thermal).peak_c
        assert hot > base
        assert again == pytest.approx(base, abs=1e-12)

    def test_clear_cache(self):
        cache = memo.get_cache()
        cache.trace(GZIP, 42, 100)
        cache.pretrained_predictor(GZIP, 42)
        memo.clear_cache()
        assert cache.stats["trace"].requests == 0
        assert cache.stats["predictor"].requests == 0
