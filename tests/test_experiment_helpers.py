"""Helpers in the experiment drivers: floorplans, hetero power, rows."""

import pytest

from repro.common.config import ChipModel
from repro.experiments.hetero import CHECKER_LEAKAGE_FRACTION, checker_power_at_node
from repro.experiments.thermal import Fig4Row, standard_floorplan
from repro.interconnect.wires import wire_budget


class TestStandardFloorplan:
    def test_wire_power_matches_own_budget(self):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        budget = wire_budget(plan)
        assert sum(plan.distributed_power_w.values()) == pytest.approx(
            budget.total_power_w, rel=1e-6
        )

    def test_checker_power_applied(self):
        plan = standard_floorplan(ChipModel.THREE_D_2A, checker_power_w=12.5)
        assert plan.block("checker").power_w == 12.5

    def test_scalar_bank_power(self):
        plan = standard_floorplan(ChipModel.TWO_D_A, bank_powers_w=0.5)
        for b in plan.blocks:
            if b.name.startswith("bank"):
                assert b.power_w == pytest.approx(0.5)


class TestCheckerPowerAtNode:
    def test_paper_anchor(self):
        """14.5 W at 65 nm -> ~23.7 W at 90 nm (Section 4)."""
        assert checker_power_at_node(14.5, 90) == pytest.approx(23.7, abs=0.8)

    def test_same_node_is_identity(self):
        assert checker_power_at_node(14.5, 65) == pytest.approx(14.5)

    def test_dfs_throttling_reduces_dynamic_only(self):
        full = checker_power_at_node(14.5, 90, frequency_fraction=1.0)
        capped = checker_power_at_node(14.5, 90, frequency_fraction=0.7)
        leak = 14.5 * CHECKER_LEAKAGE_FRACTION * 0.4  # 90 nm leakage part
        assert capped < full
        assert capped > leak  # never below the leakage floor

    def test_leakage_fraction_bounds(self):
        assert 0.0 < CHECKER_LEAKAGE_FRACTION < 1.0


class TestFig4Row:
    def test_deltas(self):
        row = Fig4Row(
            checker_power_w=7.0, temp_2d_2a_c=79.0, temp_3d_2a_c=84.5,
            temp_2d_a_c=80.0,
        )
        assert row.delta_3d_vs_2da == pytest.approx(4.5)
        assert row.delta_3d_vs_2d2a == pytest.approx(5.5)
