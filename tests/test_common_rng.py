"""Deterministic RNG streams."""

import numpy as np

from repro.common.rng import RngFactory, derive_seed


def test_same_name_same_stream():
    factory = RngFactory(seed=42)
    a = factory.stream("x").random(10)
    b = factory.stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_different_streams():
    factory = RngFactory(seed=42)
    a = factory.stream("x").random(10)
    b = factory.stream("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_different_streams():
    a = RngFactory(seed=1).stream("x").random(10)
    b = RngFactory(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_child_factories_are_independent():
    factory = RngFactory(seed=7)
    a = factory.child("c1").stream("s").random(5)
    b = factory.child("c2").stream("s").random(5)
    assert not np.array_equal(a, b)


def test_child_is_deterministic():
    a = RngFactory(seed=7).child("c").stream("s").random(5)
    b = RngFactory(seed=7).child("c").stream("s").random(5)
    assert np.array_equal(a, b)


def test_derive_seed_range():
    for name in ("a", "b", "some/long/name"):
        seed = derive_seed(123, name)
        assert 0 <= seed < 2**63


def test_derive_seed_sensitivity():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_seed_property():
    assert RngFactory(seed=9).seed == 9
