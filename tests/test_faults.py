"""Fault models, SECDED outcomes, the injector."""

import pytest

from repro.core.faults import (
    EccOutcome,
    FaultInjector,
    FaultKind,
    FaultRates,
    FaultSite,
    apply_bit_flips,
    poisson_fault_schedule,
    secded_outcome,
)


class TestSecded:
    def test_outcomes(self):
        assert secded_outcome(0) is EccOutcome.CLEAN
        assert secded_outcome(1) is EccOutcome.CORRECTED
        assert secded_outcome(2) is EccOutcome.DETECTED
        assert secded_outcome(3) is EccOutcome.UNDETECTED

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            secded_outcome(-1)


class TestBitFlips:
    def test_single_flip(self):
        assert apply_bit_flips(0, (3,)) == 8

    def test_double_flip_is_involution(self):
        value = 0xDEADBEEF
        flipped = apply_bit_flips(value, (5, 17))
        assert flipped != value
        assert apply_bit_flips(flipped, (5, 17)) == value

    def test_bit_positions_wrap_mod_64(self):
        assert apply_bit_flips(0, (64,)) == 1


class TestFaultInjector:
    def test_no_rates_no_faults(self):
        injector = FaultInjector(seed=1)
        for seq in range(1000):
            assert injector.faults_for(seq, "leading") == []

    def test_rates_produce_faults(self):
        injector = FaultInjector(
            leading=FaultRates(soft_error=0.01), seed=1
        )
        total = sum(len(injector.faults_for(s, "leading")) for s in range(10_000))
        assert 40 < total < 250

    def test_leading_faults_use_leading_sites(self):
        injector = FaultInjector(leading=FaultRates(soft_error=0.05), seed=2)
        sites = set()
        for seq in range(5000):
            for fault in injector.faults_for(seq, "leading"):
                sites.add(fault.site)
        assert sites <= set(FaultInjector._SITES_LEADING)
        assert len(sites) >= 3

    def test_trailing_faults_use_trailing_sites(self):
        injector = FaultInjector(trailing=FaultRates(soft_error=0.05), seed=2)
        sites = set()
        for seq in range(5000):
            for fault in injector.faults_for(seq, "trailing"):
                sites.add(fault.site)
        assert sites <= {FaultSite.TRAILING_RESULT, FaultSite.TRAILING_REGFILE}

    def test_timing_errors_are_bursty(self):
        injector = FaultInjector(
            leading=FaultRates(
                timing_error=0.002, timing_burst_factor=100.0,
                timing_burst_length=4,
            ),
            seed=3,
        )
        seqs = []
        for seq in range(100_000):
            for fault in injector.faults_for(seq, "leading"):
                if fault.kind is FaultKind.TIMING_ERROR:
                    seqs.append(seq)
        assert len(seqs) > 100
        gaps = [b - a for a, b in zip(seqs, seqs[1:])]
        burst_gaps = sum(1 for g in gaps if g <= 4)
        # With correlation, adjacent errors are far more common than the
        # base rate alone would produce.
        assert burst_gaps / len(gaps) > 0.2

    def test_multi_bit_fraction(self):
        injector = FaultInjector(
            leading=FaultRates(soft_error=0.05, multi_bit_fraction=0.5), seed=4
        )
        for seq in range(3000):
            injector.faults_for(seq, "leading")
        sizes = [f.num_bits for f in injector.injected]
        assert set(sizes) == {1, 2}

    def test_deterministic(self):
        def run(seed):
            injector = FaultInjector(leading=FaultRates(soft_error=0.01), seed=seed)
            for seq in range(2000):
                injector.faults_for(seq, "leading")
            return [(f.seq, f.site, f.bits) for f in injector.injected]

        assert run(7) == run(7)
        assert run(7) != run(8)


def test_poisson_schedule():
    schedule = poisson_fault_schedule(0.01, 10_000, seed=1)
    assert len(schedule) > 0
    assert all(0 <= s < 10_000 for s in schedule)
    assert list(schedule) == sorted(schedule)
