"""Floorplans: block areas, layout validity, model variants."""

import pytest

from repro.common.config import ChipModel
from repro.common.errors import FloorplanError
from repro.floorplan.blocks import (
    Block,
    BlockKind,
    LEADING_CORE_AREA_MM2,
    leading_core_blocks,
    leading_core_unit_fractions,
)
from repro.floorplan.layouts import CheckerPlacement, build_floorplan
from repro.common.geometry import Rect


class TestLeadingCoreBlocks:
    def test_fractions_sum_to_one(self):
        units = leading_core_unit_fractions()
        assert sum(a for _, a, _ in units) == pytest.approx(1.0)
        assert sum(p for _, _, p in units) == pytest.approx(1.0)

    def test_total_area_preserved(self):
        blocks = leading_core_blocks(0, 0, 7.25, LEADING_CORE_AREA_MM2 / 7.25)
        assert sum(b.area_mm2 for b in blocks) == pytest.approx(
            LEADING_CORE_AREA_MM2, rel=1e-6
        )

    def test_total_power_preserved(self):
        blocks = leading_core_blocks(0, 0, 7.25, 2.7, total_power_w=35.0)
        assert sum(b.power_w for b in blocks) == pytest.approx(35.0)

    def test_units_do_not_overlap(self):
        blocks = leading_core_blocks(0, 0, 7.25, 2.7)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert a.rect.intersection_area(b.rect) < 1e-9

    def test_regfile_is_among_densest(self):
        blocks = leading_core_blocks(0, 0, 7.25, 2.7, total_power_w=35.0)
        densities = {b.name: b.power_density_w_mm2 for b in blocks}
        assert densities["regfile"] == max(densities.values())

    def test_invalid_rectangle_rejected(self):
        with pytest.raises(FloorplanError):
            leading_core_blocks(0, 0, -1.0, 2.7)


class TestBlock:
    def test_power_density(self):
        b = Block("x", BlockKind.CHECKER, Rect(0, 0, 2, 2.5), power_w=15.0)
        assert b.power_density_w_mm2 == pytest.approx(3.0)

    def test_with_power(self):
        b = Block("x", BlockKind.CHECKER, Rect(0, 0, 1, 1))
        assert b.with_power(7.0).power_w == 7.0
        assert b.power_w == 0.0  # original untouched


@pytest.mark.parametrize("chip", list(ChipModel), ids=lambda c: c.value)
def test_every_model_validates(chip):
    plan = build_floorplan(chip, checker_power_w=7.0)
    plan.validate()


class TestModelStructure:
    def test_2da_has_no_checker(self):
        plan = build_floorplan(ChipModel.TWO_D_A)
        with pytest.raises(KeyError):
            plan.block("checker")

    def test_bank_counts(self):
        for chip in ChipModel:
            plan = build_floorplan(chip, checker_power_w=7.0)
            banks = [b for b in plan.blocks if b.name.startswith("bank")]
            expected = chip.l2_banks
            if chip is ChipModel.THREE_D_CHECKER:
                expected = 6  # no cache on the upper die
            assert len(banks) == expected

    def test_3d_has_two_dies(self):
        plan = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        assert plan.num_dies == 2
        assert plan.die_blocks(1)

    def test_2d_2a_is_twice_the_area(self):
        small = build_floorplan(ChipModel.TWO_D_A)
        big = build_floorplan(ChipModel.TWO_D_2A, checker_power_w=7.0)
        assert big.die_area_mm2 == pytest.approx(2 * small.die_area_mm2, rel=0.02)

    def test_checker_area_is_5mm2(self):
        for chip in (ChipModel.TWO_D_2A, ChipModel.THREE_D_2A):
            plan = build_floorplan(chip, checker_power_w=7.0)
            assert plan.block("checker").area_mm2 == pytest.approx(5.0, rel=0.01)

    def test_bank_area_is_5mm2(self):
        plan = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        for b in plan.blocks:
            if b.name.startswith("bank"):
                assert b.area_mm2 == pytest.approx(5.0, rel=0.01)

    def test_upper_die_banks_cover_the_core(self):
        """Bank row 0 of die 2 lies above the leading core (Section 3.1)."""
        plan = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        core_blocks = [b for b in plan.die_blocks(0) if b.kind is BlockKind.CORE_UNIT]
        upper_banks = [b for b in plan.die_blocks(1) if b.name.startswith("bank")]
        covered = 0.0
        for core in core_blocks:
            covered += sum(core.rect.intersection_area(b.rect) for b in upper_banks)
        total_core = sum(b.area_mm2 for b in core_blocks)
        assert covered / total_core > 0.6

    def test_checker_not_above_the_core(self):
        plan = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        checker = plan.block("checker")
        core_blocks = [b for b in plan.die_blocks(0) if b.kind is BlockKind.CORE_UNIT]
        overlap = sum(checker.rect.intersection_area(b.rect) for b in core_blocks)
        assert overlap < 1e-9


class TestVariants:
    def test_corner_moves_the_checker(self):
        default = build_floorplan(ChipModel.THREE_D_2A, checker_power_w=7.0)
        corner = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=7.0,
            checker_placement=CheckerPlacement.CORNER,
        )
        assert corner.block("checker").rect.x > default.block("checker").rect.x

    def test_inactive_upper_die(self):
        plan = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=7.0, upper_die_cache=False
        )
        upper = plan.die_blocks(1)
        assert not any(b.name.startswith("bank") for b in upper)
        assert any(b.kind is BlockKind.INACTIVE for b in upper)

    def test_double_density_halves_area(self):
        plan = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=15.0, checker_area_scale=0.5
        )
        assert plan.block("checker").area_mm2 == pytest.approx(2.5, rel=0.01)

    def test_unknown_placement_rejected(self):
        with pytest.raises(FloorplanError):
            build_floorplan(
                ChipModel.THREE_D_2A, checker_power_w=7.0,
                checker_placement="middle-out",
            )

    def test_hetero_upper_die(self):
        plan = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=23.7, upper_die_tech_nm=90
        )
        upper_banks = [
            b for b in plan.die_blocks(1) if b.name.startswith("bank")
        ]
        assert len(upper_banks) == 5
        checker = plan.block("checker")
        assert checker.area_mm2 == pytest.approx(5.0 * (90 / 65) ** 2, rel=0.01)


class TestPower:
    def test_total_power_sums_blocks_and_wires(self):
        plan = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=7.0, wire_power_w=12.0
        )
        blocks = sum(b.power_w for b in plan.blocks)
        assert plan.total_power_w() == pytest.approx(blocks + 12.0)

    def test_per_die_power_split(self):
        plan = build_floorplan(
            ChipModel.THREE_D_2A, checker_power_w=7.0, wire_power_w=10.0
        )
        assert plan.total_power_w(0) + plan.total_power_w(1) == pytest.approx(
            plan.total_power_w()
        )

    def test_scaled_power(self):
        plan = build_floorplan(ChipModel.TWO_D_A, wire_power_w=5.0)
        scaled = plan.scaled_power(0.5)
        assert scaled.total_power_w() == pytest.approx(0.5 * plan.total_power_w())

    def test_bad_bank_power_count_rejected(self):
        with pytest.raises(FloorplanError):
            build_floorplan(ChipModel.TWO_D_A, bank_powers_w=[0.4] * 3)
