"""Bounded inter-core queues and the store buffer."""

import pytest

from repro.common.errors import QueueEmptyError, QueueFullError
from repro.core.queues import (
    BoundedQueue,
    BranchOutcomeEntry,
    LoadValueEntry,
    RegisterValueEntry,
    StoreBuffer,
    StoreBufferEntry,
)


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(3)
        for i in range(3):
            q.push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_push_full_raises(self):
        q = BoundedQueue(1)
        q.push("a")
        with pytest.raises(QueueFullError):
            q.push("b")

    def test_pop_empty_raises(self):
        with pytest.raises(QueueEmptyError):
            BoundedQueue(1).pop()

    def test_peek(self):
        q = BoundedQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert q.occupancy == 1  # peek does not remove
        with pytest.raises(QueueEmptyError):
            BoundedQueue(1).peek()

    def test_occupancy_fraction(self):
        q = BoundedQueue(4)
        q.push(1)
        q.push(2)
        assert q.occupancy_fraction == pytest.approx(0.5)

    def test_flags(self):
        q = BoundedQueue(1)
        assert q.is_empty and not q.is_full
        q.push(1)
        assert q.is_full and not q.is_empty

    def test_clear(self):
        q = BoundedQueue(2)
        q.push(1)
        q.clear()
        assert q.is_empty
        assert q.total_pushes == 1  # statistics survive the flush

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_iteration(self):
        q = BoundedQueue(3)
        for i in range(3):
            q.push(i)
        assert list(q) == [0, 1, 2]
        assert len(q) == 3


class TestEntryTypes:
    def test_register_value_entry(self):
        e = RegisterValueEntry(seq=1, result=2, operand1=3, operand2=4)
        assert (e.seq, e.result, e.operand1, e.operand2) == (1, 2, 3, 4)

    def test_load_value_entry(self):
        assert LoadValueEntry(5, 99).value == 99

    def test_branch_outcome_entry(self):
        e = BranchOutcomeEntry(7, True, 0x40)
        assert e.taken and e.target == 0x40

    def test_entries_are_frozen(self):
        with pytest.raises(Exception):
            LoadValueEntry(1, 2).value = 3


class TestStoreBuffer:
    def test_verified_store_drains(self):
        stb = StoreBuffer(4)
        stb.push(StoreBufferEntry(0, 0x100, 42))
        assert stb.verify_and_drain(42)
        assert stb.drained[0].value == 42
        assert stb.mismatches == 0

    def test_mismatch_is_dropped_and_counted(self):
        stb = StoreBuffer(4)
        stb.push(StoreBufferEntry(0, 0x100, 42))
        assert not stb.verify_and_drain(43)
        assert stb.drained == []
        assert stb.mismatches == 1

    def test_drain_order(self):
        stb = StoreBuffer(4)
        stb.push(StoreBufferEntry(0, 0x0, 1))
        stb.push(StoreBufferEntry(1, 0x8, 2))
        stb.verify_and_drain(1)
        stb.verify_and_drain(2)
        assert [e.value for e in stb.drained] == [1, 2]
