"""Named design-point presets."""

import pytest

from repro.common.config import ChipModel
from repro.presets import load_preset, preset_names
from repro.thermal import ChipThermalModel


def test_all_presets_load():
    for name in preset_names():
        point = load_preset(name)
        assert point.name == name
        assert point.description
        point.floorplan.validate()


def test_unknown_preset():
    with pytest.raises(KeyError):
        load_preset("4d-chip")


def test_baseline_has_no_checker():
    point = load_preset("2d-a")
    assert point.chip is ChipModel.TWO_D_A
    with pytest.raises(KeyError):
        point.floorplan.block("checker")


def test_pessimistic_checker_power():
    point = load_preset("3d-2a-15w")
    assert point.floorplan.block("checker").power_w == 15.0


def test_hetero_preset():
    point = load_preset("hetero-90nm")
    assert point.checker_peak_ratio == 0.7
    banks = [
        b for b in point.floorplan.die_blocks(1) if b.name.startswith("bank")
    ]
    assert len(banks) == 5
    assert point.floorplan.block("checker").area_mm2 > 9.0


def test_presets_are_thermally_solvable():
    for name in ("2d-a", "3d-2a-7w"):
        point = load_preset(name)
        result = ChipThermalModel(point.floorplan).solve()
        assert 60.0 < result.peak_c < 110.0


def test_preset_ordering_matches_paper():
    """3d-2a is hotter than 2d-a; 15 W hotter than 7 W."""
    peaks = {
        name: ChipThermalModel(load_preset(name).floorplan).solve().peak_c
        for name in ("2d-a", "3d-2a-7w", "3d-2a-15w")
    }
    assert peaks["2d-a"] < peaks["3d-2a-7w"] <= peaks["3d-2a-15w"]
