"""Derived NUCA topology vs the calibrated hop tables."""

import pytest

from repro.cache.nuca import bank_hops_for_model
from repro.common.config import ChipModel
from repro.floorplan.layouts import build_floorplan
from repro.interconnect.topology import (
    average_hit_latency,
    bank_grid_graph,
    derive_bank_hops,
)


@pytest.fixture(scope="module")
def plans():
    return {
        chip: build_floorplan(chip, checker_power_w=7.0)
        for chip in ChipModel
    }


def test_graph_is_connected(plans):
    import networkx as nx

    for chip, plan in plans.items():
        graph = bank_grid_graph(plan)
        assert nx.is_connected(graph), chip


def test_every_bank_reachable(plans):
    for chip, plan in plans.items():
        hops = derive_bank_hops(plan)
        banks = [b.name for b in plan.blocks if b.name.startswith("bank")]
        assert set(hops) == set(banks)
        assert all(h >= 1 for h in hops.values())


def test_derived_average_matches_calibrated_2da(plans):
    """The hand-calibrated table (18-cycle average) must agree with the
    latency the floorplan geometry implies, within a cycle or two."""
    derived = average_hit_latency(plans[ChipModel.TWO_D_A])
    table = bank_hops_for_model(ChipModel.TWO_D_A)
    calibrated = sum(h * 4 + 6 for h in table) / len(table)
    assert derived == pytest.approx(calibrated, abs=3.0)


def test_derived_average_orderings(plans):
    """2d-2a is farther on average than 2d-a; 3d-2a lands between them,
    close to 2d-a (Section 3.3's observation)."""
    lat = {
        chip: average_hit_latency(plan)
        for chip, plan in plans.items()
        if chip is not ChipModel.THREE_D_CHECKER
    }
    assert lat[ChipModel.TWO_D_A] < lat[ChipModel.TWO_D_2A]
    assert lat[ChipModel.TWO_D_A] <= lat[ChipModel.THREE_D_2A] <= lat[ChipModel.TWO_D_2A]


def test_upper_die_banks_use_the_pillar(plans):
    hops = derive_bank_hops(plans[ChipModel.THREE_D_2A])
    plan = plans[ChipModel.THREE_D_2A]
    upper = [b.name for b in plan.blocks if b.die == 1 and b.name.startswith("bank")]
    # Upper banks start right at the pillar: their minimum hop distance is
    # comparable to the lower die's closest banks.
    assert min(hops[name] for name in upper) <= 2
