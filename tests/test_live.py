"""Live sweep telemetry: streaming stats, scraping, tracing, profiling.

Covers the :class:`LiveStats` fold algebra (order independence,
bit-identical final merge on every backend), the Prometheus exposition
endpoint (syntax, scrape during a running sweep), the Chrome trace
export (round-trip, per-worker monotonic non-overlap), the opt-in
profiler collapse, the JSONL event follower (torn-line discipline,
follower-side folds) and the ``repro tail`` / ``repro top`` commands.
"""

import json
import random
import re
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.common.errors import ConfigError
from repro.experiments import engine
from repro.experiments.engine import run_sweep
from repro.experiments.executors import set_default_executor
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.obs import events, metrics
from repro.obs import export as export_mod
from repro.obs import live as live_mod
from repro.obs import profile as profile_mod
from repro.obs.export import TaskTrace, chrome_trace, write_chrome_trace
from repro.obs.live import (
    EventFollower,
    LiveStats,
    fold_event,
    format_event,
    render_prometheus,
    resolve_events_path,
    resolve_metrics_port,
)
from repro.obs.metrics import MetricsSnapshot
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)


@pytest.fixture(autouse=True)
def _clean_live():
    """Pristine live-telemetry state (and engine defaults) per test."""
    metrics.reset()
    engine.clear_timings()
    live_mod._LISTENERS.clear()
    live_mod._ACTIVE = None
    live_mod.stop_metrics_server()
    export_mod.set_collector(None)
    profile_mod.set_accumulator(None)
    yield
    metrics.set_enabled(True)
    metrics.reset()
    engine.clear_timings()
    engine.set_default_jobs(None)
    set_default_executor(None)
    live_mod._LISTENERS.clear()
    live_mod._ACTIVE = None
    live_mod.stop_metrics_server()
    export_mod.set_collector(None)
    profile_mod.set_accumulator(None)
    events.set_sink(None)


def _noop_listener(kind, stats):
    pass


def _snapshot(counter: int, gauge: float, values=()) -> MetricsSnapshot:
    snap = MetricsSnapshot()
    snap.counters["live.test"] = counter
    snap.gauges["live.g"] = gauge
    edges = (1.0, 5.0)
    counts = [0, 0, 0]
    for v in values:
        for i, edge in enumerate(edges):
            if v <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    snap.histograms["live.h"] = (edges, counts)
    return snap


# -- module-level worker fns (must pickle into pool/socket workers) ----

def _bump_live(x):
    m = metrics.get_registry()
    m.counter("livetest.calls").inc()
    m.gauge("livetest.peak").set(float(x))
    m.histogram("livetest.values", (2.0, 5.0)).observe(min(x, 9))
    return x + 1


# ---------------------------------------------------------------------
class TestLiveStatsFold:
    def test_fold_order_independent(self):
        outcomes = [
            (i, i % 5 != 4, 0.01 * i, _snapshot(i, float(i), values=(i,)))
            for i in range(12)
        ]
        a = LiveStats("sweep", len(outcomes))
        b = LiveStats("sweep", len(outcomes))
        shuffled = list(outcomes)
        random.Random(7).shuffle(shuffled)
        for i, ok, wall, snap in outcomes:
            a.fold_task(i, ok, wall, snap)
        for i, ok, wall, snap in shuffled:
            b.fold_task(i, ok, wall, snap)
        assert a.counters == b.counters
        assert a.gauges == b.gauges
        assert a.histograms == b.histograms
        assert a.tasks_done == b.tasks_done == 12
        assert a.failures == b.failures
        # The final merge replays index order, so it is identical too —
        # not just equal-as-dicts but the same float bits.
        assert a.merged_metrics().as_dict() == b.merged_metrics().as_dict()

    def test_fold_task_accounting(self):
        stats = LiveStats("s", 4)
        stats.fold_task(0, True, 0.5, None, worker="w1", retries=2,
                        timeouts=1)
        stats.fold_task(1, False, 0.0, None, worker="w1")
        stats.fold_task(2, True, 0.25, None, resumed=True)
        assert stats.tasks_done == 3
        assert stats.tasks_ok == 2
        assert stats.failures == 1
        assert stats.resumed == 1
        assert stats.retries == 2
        assert stats.timeouts == 1
        assert stats.task_wall_s == pytest.approx(0.75)
        assert stats.workers["w1"].tasks_done == 2
        # Resumed tasks do not enter the rate window (they were not
        # completed now); live completions do.
        assert len(stats._window) == 2

    def test_worker_lifecycle_and_counters(self):
        stats = LiveStats("s", 2)
        stats.chunk_started(3, "w7")
        assert stats.workers["w7"].inflight_chunk == 3
        stats.worker_lost("w7", "heartbeat lost")
        assert stats.lost_workers == 1
        assert stats.workers["w7"].lost == "heartbeat lost"
        assert stats.workers["w7"].inflight_chunk is None
        stats.requeued()
        stats.lease_expired()
        stats.note_duplicate()
        assert (stats.requeues, stats.lease_expiries,
                stats.duplicate_results) == (1, 1, 1)

    def test_fold_heartbeat_updates_health(self):
        stats = LiveStats("s", 2)
        stats.fold_heartbeat({
            "w1": {"worker": "w1", "age_s": 0.4, "inflight_chunk": 9},
            "w2": {"worker": "w2", "age_s": 0.0, "inflight_chunk": None},
        })
        assert stats.workers["w1"].age_s == pytest.approx(0.4)
        assert stats.workers["w1"].inflight_chunk == 9
        assert stats.workers["w2"].inflight_chunk is None

    def test_rate_and_eta(self):
        stats = LiveStats("s", 10)
        assert stats.rate() == 0.0
        assert stats.eta_s() is None        # no completions yet
        for i in range(5):
            stats.fold_task(i, True, 0.0, None)
        assert stats.rate() > 0.0
        assert stats.eta_s() is not None
        for i in range(5, 10):
            stats.fold_task(i, True, 0.0, None)
        assert stats.eta_s() == 0.0         # nothing remaining

    def test_as_row_shape(self):
        stats = LiveStats("fig6", 8, run_id="run-1", backend="socket",
                          jobs=2)
        stats.fold_task(0, True, 0.1, None, worker="w0")
        row = stats.as_row()
        for key in ("label", "run_id", "backend", "jobs", "tasks_total",
                    "tasks_done", "failures", "rate_per_s", "eta_s",
                    "elapsed_s", "finished", "workers"):
            assert key in row
        assert row["workers"][0]["worker"] == "w0"
        assert json.loads(json.dumps(row)) == row   # JSON-serializable

    def test_listener_exceptions_are_swallowed(self):
        def boom(kind, stats):
            raise RuntimeError("render crashed")

        live_mod.add_listener(boom)
        stats = live_mod.sweep_begin("s", 1)
        stats.fold_task(0, True, 0.0, None)     # must not raise
        live_mod.sweep_end(stats)
        assert stats.finished


# ---------------------------------------------------------------------
class TestSweepBeginGating:
    def test_inactive_without_consumers(self):
        assert not live_mod.telemetry_active()
        assert live_mod.sweep_begin("s", 4) is None

    def test_listener_activates(self):
        seen = []
        live_mod.add_listener(lambda kind, stats: seen.append(kind))
        stats = live_mod.sweep_begin("s", 4)
        assert stats is not None
        assert live_mod.current() is stats
        assert seen == ["begin"]

    def test_metrics_server_activates(self):
        live_mod.start_metrics_server(0)
        assert live_mod.telemetry_active()
        assert live_mod.sweep_begin("s", 4) is not None

    def test_obs_off_disables_live(self):
        live_mod.add_listener(_noop_listener)
        metrics.set_enabled(False)
        assert live_mod.sweep_begin("s", 4) is None

    def test_engine_skips_live_when_inactive(self):
        _, timing = run_sweep(_bump_live, [1, 2, 3], jobs=1, label="quiet")
        assert live_mod.current() is None
        assert timing.tasks == 3


# ---------------------------------------------------------------------
class TestBackendBitIdentity:
    """The determinism contract: live totals == post-hoc merged metrics."""

    @pytest.mark.parametrize("backend,jobs", [
        ("inline", 1), ("local", 2), ("socket", 2),
    ])
    def test_live_merge_bit_identical(self, backend, jobs):
        live_mod.add_listener(_noop_listener)
        results, timing = run_sweep(
            _bump_live, list(range(8)), jobs=jobs, label=f"bit-{backend}",
            executor=backend,
        )
        assert results == [x + 1 for x in range(8)]
        stats = live_mod.current()
        assert stats is not None and stats.finished
        assert stats.tasks_done == stats.tasks_ok == 8
        assert timing.metrics is not None
        assert stats.merged_metrics().as_dict() == timing.metrics.as_dict()
        # The incremental fold agrees with the merged snapshot on the
        # commutative instruments too.
        assert stats.counters["livetest.calls"] == \
            timing.metrics.counters["livetest.calls"]
        assert stats.histograms["livetest.values"][1] == \
            list(timing.metrics.histograms["livetest.values"][1])

    def test_worker_attribution_socket(self):
        live_mod.add_listener(_noop_listener)
        run_sweep(_bump_live, list(range(6)), jobs=2, label="attr",
                  executor="socket", chunksize=1)
        stats = live_mod.current()
        assert sum(h.tasks_done for h in stats.workers.values()) == 6
        assert all(not h.lost for h in stats.workers.values())


# ---------------------------------------------------------------------
_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{[a-zA-Z0-9_]+=\"[^\"]*\""        # first label
    r"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"   # more labels
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$"
)


def _assert_valid_exposition(body: str) -> None:
    for line in body.rstrip("\n").split("\n"):
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ",
                            line), line
        else:
            assert _EXPOSITION_LINE.match(line), line


class TestPrometheus:
    def test_render_without_active_sweep(self):
        body = render_prometheus()
        assert "repro_up 1" in body
        assert "repro_run_sweeps_total" in body
        _assert_valid_exposition(body)

    def test_render_with_active_sweep(self):
        live_mod.add_listener(_noop_listener)
        stats = live_mod.sweep_begin("fig6", 8, run_id="run-x",
                                     backend="socket", jobs=2)
        stats.fold_task(0, True, 0.1, _snapshot(3, 1.5, values=(0.5, 9.0)),
                        worker="w0")
        stats.fold_heartbeat(
            {"w0": {"worker": "w0", "age_s": 0.2, "inflight_chunk": 1}})
        body = render_prometheus()
        _assert_valid_exposition(body)
        assert ('repro_sweep_tasks_done{sweep="fig6",run_id="run-x",'
                'backend="socket"} 1') in body
        assert 'worker="w0"' in body
        assert "repro_metric_live_test_total" in body
        # Histogram: cumulative buckets, +Inf, and _count agree.
        assert 'repro_metric_live_h_bucket' in body
        inf = re.search(r'repro_metric_live_h_bucket\{.*le="\+Inf"\} (\d+)',
                        body)
        count = re.search(r"repro_metric_live_h_count\{.*\} (\d+)", body)
        assert inf.group(1) == count.group(1) == "2"

    def test_eta_renders_nan_when_unknown(self):
        live_mod.add_listener(_noop_listener)
        live_mod.sweep_begin("s", 4)
        body = render_prometheus()
        assert re.search(r"repro_sweep_eta_seconds\{.*\} NaN", body)
        _assert_valid_exposition(body)

    def test_scrape_during_running_sweep(self):
        """A live fig6 is scrapeable mid-run with valid exposition."""
        server = live_mod.start_metrics_server(0)
        done = threading.Event()

        def run():
            try:
                fig6_performance(window=TINY,
                                 benchmarks=[get_profile("gzip")])
            finally:
                done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        body = ""
        deadline = time.monotonic() + 30.0
        try:
            while time.monotonic() < deadline:
                with urllib.request.urlopen(server.url, timeout=5) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"].startswith(
                        "text/plain")
                    body = resp.read().decode("utf-8")
                if "repro_sweep_tasks_done" in body:
                    break
                time.sleep(0.01)
        finally:
            thread.join(timeout=60)
        assert done.is_set()
        assert "repro_sweep_tasks_done" in body
        _assert_valid_exposition(body)
        # After the sweep the stats stay scrapeable, now complete.
        final = render_prometheus()
        stats = live_mod.current()
        assert stats.finished
        assert "repro_sweep_tasks_done{" in final

    def test_resolve_metrics_port(self, monkeypatch):
        monkeypatch.delenv(live_mod.METRICS_PORT_ENV_VAR, raising=False)
        assert resolve_metrics_port(None) is None
        assert resolve_metrics_port(9109) == 9109
        assert resolve_metrics_port(0) == 0
        monkeypatch.setenv(live_mod.METRICS_PORT_ENV_VAR, "7070")
        assert resolve_metrics_port(None) == 7070
        assert resolve_metrics_port(1234) == 1234   # arg beats env
        monkeypatch.setenv(live_mod.METRICS_PORT_ENV_VAR, "lots")
        with pytest.raises(ConfigError):
            resolve_metrics_port(None)

    def test_endpoint_404_off_path(self):
        server = live_mod.start_metrics_server(0)
        url = f"http://{server.host}:{server.port}/nope"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=5)
        assert err.value.code == 404


# ---------------------------------------------------------------------
class TestChromeTrace:
    def _records(self):
        spans = {
            "name": "task", "count": 1, "wall_s": 0.3, "cpu_s": 0.2,
            "children": {
                "sim": {"name": "sim", "count": 2, "wall_s": 0.2,
                        "cpu_s": 0.15, "children": {}},
                "merge": {"name": "merge", "count": 1, "wall_s": 0.05,
                          "cpu_s": 0.04, "children": {}},
            },
        }
        t0 = 1_700_000_000.0
        return [
            TaskTrace("fig6", 0, "gzip@1000", 0, "w0", 101, t0, 0.4,
                      spans=spans, run_id="run-z"),
            # Same worker, overlapping start (clock jitter): must clamp.
            TaskTrace("fig6", 1, "gzip@2000", 0, "w0", 101, t0 + 0.3, 0.4),
            TaskTrace("fig6", 2, "mcf@1000", 1, "w1", 102, t0 + 0.1, 0.2),
        ]

    def test_round_trip_and_structure(self, tmp_path):
        out = write_chrome_trace(tmp_path / "trace.json", self._records(),
                                 run_id="run-z")
        data = json.loads(out.read_text())
        events_ = data["traceEvents"]
        assert data["otherData"]["tasks"] == 3
        assert data["otherData"]["workers"] == 2
        tasks = [e for e in events_ if e.get("cat") == "task"]
        assert len(tasks) == 3
        # Metadata names every worker process.
        meta = {e["args"]["name"] for e in events_
                if e["name"] == "process_name"}
        assert meta == {"worker w0", "worker w1"}
        # Trace context rides on every task event.
        for e in tasks:
            assert e["args"]["run_id"] == "run-z"
            assert "chunk_id" in e["args"] and "task_key" in e["args"]

    def test_rows_are_monotonic_non_overlapping(self):
        data = chrome_trace(self._records())
        rows: dict = {}
        for e in data["traceEvents"]:
            if e.get("cat") != "task":
                continue
            rows.setdefault((e["pid"], e["tid"]), []).append(e)
        assert len(rows) == 2
        for row in rows.values():
            row.sort(key=lambda e: e["ts"])
            prev_end = 0.0
            for e in row:
                assert e["ts"] >= prev_end      # clamped, never overlaps
                assert e["dur"] > 0.0
                prev_end = e["ts"] + e["dur"]

    def test_span_events_nest_inside_task(self):
        data = chrome_trace(self._records())
        task = next(e for e in data["traceEvents"]
                    if e["name"] == "fig6[0]")
        spans = [e for e in data["traceEvents"]
                 if e["name"] in ("sim", "merge")]
        assert len(spans) == 2
        for e in spans:
            assert e["ts"] >= task["ts"]
            assert e["ts"] + e["dur"] <= task["ts"] + task["dur"] + 0.01
            assert e["args"]["count"] >= 1

    def test_root_span_dict_normalized(self):
        trace = TaskTrace("s", 0, "k", 0, "w", 1, 0.0, 1.0, spans={
            "name": "task", "count": 1, "wall_s": 1.0, "cpu_s": 1.0,
            "children": {"leaf": {"name": "leaf", "count": 1,
                                  "wall_s": 0.5, "cpu_s": 0.5,
                                  "children": {}}},
        })
        assert set(trace.spans) == {"leaf"}

    def test_empty_records(self):
        data = chrome_trace([], run_id="r")
        assert data["traceEvents"] == []
        assert data["otherData"]["run_id"] == "r"


# ---------------------------------------------------------------------
def _profiled_workload():
    total = 0
    for i in range(50):
        total += len(str(i ** 3))
    return total


class TestProfile:
    def test_enabled_requires_env_and_obs(self, monkeypatch):
        monkeypatch.delenv(profile_mod.PROFILE_ENV_VAR, raising=False)
        assert not profile_mod.enabled()
        monkeypatch.setenv(profile_mod.PROFILE_ENV_VAR, "1")
        assert profile_mod.enabled()
        metrics.set_enabled(False)          # kill switch outranks it
        assert not profile_mod.enabled()

    def test_collapse_produces_stacks(self):
        prof = profile_mod.start_profile()
        _profiled_workload()
        stacks = profile_mod.collapse(prof)
        assert stacks
        assert all(s > 0.0 for s in stacks.values())
        # Two-level format: bare roots or caller;callee pairs.
        assert all(stack.count(";") <= 1 for stack in stacks)

    def test_accumulator_folds_and_writes(self, tmp_path):
        acc = profile_mod.ProfileAccumulator()
        acc.fold({"a;b": 0.25, "c": 0.5})
        acc.fold({"a;b": 0.25, "tiny": 1e-9})
        assert acc.tasks == 2
        out = acc.write_collapsed(tmp_path / "p.collapsed")
        lines = out.read_text().splitlines()
        assert "a;b 500000" in lines
        assert "c 500000" in lines
        assert not any(line.startswith("tiny") for line in lines)
        for line in lines:                  # flamegraph.pl format
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0

    def test_profile_flows_through_sweep(self, monkeypatch):
        monkeypatch.setenv(profile_mod.PROFILE_ENV_VAR, "1")
        acc = profile_mod.ProfileAccumulator()
        profile_mod.set_accumulator(acc)
        run_sweep(_bump_live, [1, 2, 3], jobs=1, label="profiled")
        assert acc.tasks == 3
        assert acc.stacks


# ---------------------------------------------------------------------
class TestEventFollower:
    def test_torn_trailing_line_buffered(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_bytes(b'{"event": "a"}\n{"event": "b"')
        follower = EventFollower(path)
        assert [r["event"] for r in follower.poll()] == ["a"]
        with path.open("ab") as fh:        # the writer finishes the line
            fh.write(b'}\n')
        assert [r["event"] for r in follower.poll()] == ["b"]
        assert follower.skipped == 0

    def test_corrupt_complete_lines_counted(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_bytes(b'not json\n{"event": "ok"}\n[1, 2]\n')
        follower = EventFollower(path)
        assert [r["event"] for r in follower.poll()] == ["ok"]
        assert follower.skipped == 2

    def test_missing_file_is_quietly_empty(self, tmp_path):
        follower = EventFollower(tmp_path / "later.jsonl")
        assert follower.poll() == []

    def test_resolve_events_path(self, tmp_path):
        f = tmp_path / "direct.jsonl"
        f.write_text("")
        assert resolve_events_path(f) == f
        old = tmp_path / "runs" / "old.jsonl"
        old.parent.mkdir()
        old.write_text("")
        new = tmp_path / "runs" / "new.jsonl"
        new.write_text("")
        import os
        os.utime(old, (1, 1))
        assert resolve_events_path(tmp_path / "runs") == new
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigError):
            resolve_events_path(empty)

    def test_fold_event_reconstruction(self):
        now = time.time()
        stats = None
        stats = fold_event(stats, {
            "event": "sweep_begin", "ts": now, "label": "fig6",
            "tasks": 4, "run_id": "r", "executor": "socket", "jobs": 2,
        })
        assert stats.tasks_total == 4 and stats.backend == "socket"
        stats = fold_event(stats, {"event": "task_done", "ts": now,
                                   "wall_s": 0.5, "worker": "w0"})
        stats = fold_event(stats, {"event": "task_failed", "ts": now})
        stats = fold_event(stats, {"event": "worker_lost", "ts": now,
                                   "worker": "w0", "reason": "crash"})
        stats = fold_event(stats, {"event": "chunk_requeued", "ts": now})
        stats = fold_event(stats, {"event": "lease_expired", "ts": now})
        stats = fold_event(stats, {"event": "sweep", "ts": now})
        assert stats.tasks_done == 2 and stats.tasks_ok == 1
        assert stats.failures == 1
        assert stats.workers["w0"].lost == "crash"
        assert stats.requeues == 1 and stats.lease_expiries == 1
        assert stats.finished

    def test_fold_event_before_begin_and_passthrough(self):
        assert fold_event(None, {"event": "task_done"}) is None
        stats = LiveStats("s", 1)
        same = fold_event(stats, {"event": "manifest"})
        assert same is stats and stats.tasks_done == 0

    def test_backlog_replay_does_not_spike_rate(self):
        # Replayed events keep their own timestamps in the rate window,
        # so a follower reading a backlog reports the rate the run
        # actually achieved — not thousands/s from stamping them "now".
        stats = LiveStats("s", 100)
        start = time.time() - 10.0          # a 10s-old, 5s-long run
        for i in range(50):
            stats = fold_event(stats, {"event": "task_done",
                                       "ts": start + i * 0.1,
                                       "wall_s": 0.1})
        assert stats.tasks_done == 50
        assert stats.rate() < 20.0          # ~64/10s window, not 50/ms
        # An hour-old run has aged out of the horizon entirely.
        ancient = LiveStats("s", 100)
        for i in range(50):
            ancient = fold_event(ancient, {"event": "task_done",
                                           "ts": time.time() - 3600 + i,
                                           "wall_s": 0.1})
        assert ancient.rate() == 0.0

    def test_format_event(self):
        line = format_event({"event": "task_done", "ts": 1700000000.0,
                             "label": "fig6", "task_index": 3,
                             "worker": "w1", "wall_s": 0.25})
        assert "task_done" in line
        assert "label=fig6" in line
        assert "task_index=3" in line
        assert "worker=w1" in line
        assert re.match(r"^\d\d:\d\d:\d\d ", line)


# ---------------------------------------------------------------------
class TestEventSinkFlush:
    def test_lines_visible_immediately(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        events.set_sink(path)
        events.emit("probe", run_id="r1")
        # Per-line flush: a concurrent follower sees the event without
        # the sink being closed first.
        follower = EventFollower(path)
        assert [r["event"] for r in follower.poll()] == ["probe"]
        events.set_sink(None)

    def test_fsync_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv(events.FSYNC_ENV_VAR, "1")
        path = tmp_path / "ev.jsonl"
        events.set_sink(path)
        events.emit("durable", run_id="r1")
        assert '"durable"' in path.read_text()
        events.set_sink(None)


# ---------------------------------------------------------------------
class TestCliTailTop:
    def _write_run(self, tmp_path) -> Path:
        path = tmp_path / "ev.jsonl"
        now = time.time()
        records = [
            {"event": "sweep_begin", "ts": now, "run_id": "run-t",
             "label": "fig6", "tasks": 2, "executor": "socket", "jobs": 2},
            {"event": "task_done", "ts": now, "run_id": "run-t",
             "label": "fig6", "task_index": 0, "wall_s": 0.5,
             "worker": "w0"},
            {"event": "task_done", "ts": now, "run_id": "run-t",
             "label": "fig6", "task_index": 1, "wall_s": 0.4,
             "worker": "w1"},
            {"event": "sweep", "ts": now, "run_id": "run-t",
             "label": "fig6", "tasks": 2},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_tail_prints_backlog(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep_begin" in out
        assert "task_done" in out
        assert "worker=w0" in out

    def test_tail_follow_exits_when_idle(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["tail", str(path), "--follow", "--interval", "0.05",
                     "--exit-idle-s", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "task_done" in out
        assert "exiting" in out

    def test_top_once_renders_dashboard(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "fig6 · socket · jobs=2" in out
        assert "2/2" in out
        assert "done" in out

    def test_top_reports_empty_stream(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        path.write_text("")
        assert main(["top", str(path), "--once"]) == 0
        assert "no sweep events" in capsys.readouterr().out


class TestCliLiveSweep:
    def test_fig6_live_with_telemetry_exports(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace = tmp_path / "trace.json"
        ev = tmp_path / "ev.jsonl"
        code = main([
            "fig6", "--benchmarks", "gzip", "--window", "1500",
            "--jobs", "1", "--executor", "inline",
            "--progress", "live", "--metrics-port", "0",
            "--trace-export", str(trace), "--trace-out", str(ev),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving metrics at http://127.0.0.1:" in out
        assert "wrote trace" in out
        data = json.loads(trace.read_text())
        tasks = [e for e in data["traceEvents"] if e.get("cat") == "task"]
        assert len(tasks) == 4              # gzip x 4 window configs
        follower = EventFollower(ev)
        kinds = [r["event"] for r in follower.poll()]
        assert "sweep_begin" in kinds and "task_done" in kinds
        # The CLI tears its consumers down afterwards.
        assert live_mod.get_metrics_server() is None
        assert export_mod.get_collector() is None

    def test_profile_flag_writes_collapsed(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv(profile_mod.PROFILE_ENV_VAR, raising=False)
        prof = tmp_path / "prof.collapsed"
        code = main([
            "fig6", "--benchmarks", "gzip", "--window", "1500",
            "--jobs", "1", "--executor", "inline",
            "--profile", str(prof),
        ])
        assert code == 0
        assert "wrote profile" in capsys.readouterr().out
        lines = prof.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
        # The env knob is restored afterwards.
        import os
        assert profile_mod.PROFILE_ENV_VAR not in os.environ
