"""The command-line interface."""

import json
import os
import time

import pytest

from repro import cli
from repro.cli import build_parser, main
from repro.common import memo
from repro.common.tables import format_table
from repro.experiments import engine


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "gzip", "--chip", "2d-a", "--window", "5000"]
        )
        assert args.benchmark == "gzip"
        assert args.chip == "2d-a"
        assert args.window == 5000

    def test_bad_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gzip", "--chip", "4d"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "hetero" in out and "gzip" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "1409" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        assert "2.21" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "per-bit" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "Qcrit" in capsys.readouterr().out

    def test_vias(self, capsys):
        assert main(["vias"]) == 0
        assert "mW" in capsys.readouterr().out

    def test_wires(self, capsys):
        assert main(["wires"]) == 0
        assert "3d-2a" in capsys.readouterr().out

    def test_coverage(self, capsys):
        assert main(["coverage"]) == 0
        assert "arch. safe   : True" in capsys.readouterr().out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "gzip", "--window", "4000"]) == 0
        out = capsys.readouterr().out
        assert "leading IPC" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        assert "3.45" in capsys.readouterr().out

    def test_table6_and_7(self, capsys):
        assert main(["table6"]) == 0
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "Vth" in out and "Lgate" in out

    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "hetero-90nm" in out and "3d-2a-7w" in out

    def test_thermalmap(self, capsys):
        assert main(["thermalmap", "--chip", "2d-a"]) == 0
        out = capsys.readouterr().out
        assert "chip peak" in out
        assert "floorplan" in out

    def test_report(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path), "--window", "3000"]) == 0
        assert (tmp_path / "results.json").exists()


class TestResilience:
    def test_parser_accepts_resilience_flags(self):
        args = build_parser().parse_args([
            "fig6", "--retries", "2", "--task-timeout", "1.5",
            "--no-fail-fast", "--checkpoint", "--resume", "run-1",
            "--chaos", "kill:0.1,seed:3",
        ])
        assert args.retries == 2
        assert args.task_timeout == 1.5
        assert args.fail_fast is False
        assert args.checkpoint == ".repro/checkpoints"
        assert args.resume == "run-1"
        assert args.chaos == "kill:0.1,seed:3"

    def test_checkpoint_accepts_explicit_dir(self, tmp_path):
        args = build_parser().parse_args(
            ["list", "--checkpoint", str(tmp_path / "ck")]
        )
        assert args.checkpoint == str(tmp_path / "ck")

    def test_env_knobs_reach_sweeps_without_flags(self, capsys, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "2")
        monkeypatch.setenv(engine.TASK_TIMEOUT_ENV_VAR, "9.0")
        seen = {}

        def _capture(_args):
            seen["policy"] = engine.resolve_policy(None)

        monkeypatch.setitem(cli._COMMANDS, "vias", _capture)
        assert main(["vias"]) == 0
        assert seen["policy"].max_retries == 2
        assert seen["policy"].timeout_s == 9.0

    def test_cli_flags_outrank_env_knobs_fieldwise(self, capsys, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "2")
        monkeypatch.setenv(engine.TASK_TIMEOUT_ENV_VAR, "9.0")
        seen = {}

        def _capture(_args):
            seen["policy"] = engine.resolve_policy(None)

        monkeypatch.setitem(cli._COMMANDS, "vias", _capture)
        assert main(["vias", "--task-timeout", "2.5"]) == 0
        assert seen["policy"].timeout_s == 2.5     # flag wins its field
        assert seen["policy"].max_retries == 2     # env keeps the other

    def test_bad_env_knob_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "many")
        assert main(["vias", "--task-timeout", "2.5"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_repro_error_exits_2(self, capsys):
        assert main(["list", "--jobs", "0"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_bad_chaos_spec_exits_2(self, capsys):
        assert main(["list", "--chaos", "explode:1"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_executor_flag_sets_process_default(self, capsys, monkeypatch):
        seen = {}

        def _capture(_args):
            seen["backend"] = engine.resolve_executor(None, 4)

        monkeypatch.setitem(cli._COMMANDS, "vias", _capture)
        assert main(["vias", "--executor", "socket"]) == 0
        assert seen["backend"] == "socket"
        # Restored on exit: auto selection again picks the pool.
        assert engine.resolve_executor(None, 4) == "local"

    def test_executor_flag_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vias", "--executor", "carrier"])

    def test_manifest_records_executor(self, tmp_path, capsys, monkeypatch):
        manifest_path = tmp_path / "m.json"
        monkeypatch.setitem(cli._COMMANDS, "vias", lambda _args: None)
        assert main([
            "vias", "--executor", "inline", "--metrics", str(manifest_path),
        ]) == 0
        assert json.loads(manifest_path.read_text())["executor"] == "inline"

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        def _interrupt(_args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "vias", _interrupt)
        assert main(["vias"]) == 130
        assert "interrupted" in capsys.readouterr().out

    def test_interrupt_with_checkpoint_prints_resume_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        def _interrupt(_args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "vias", _interrupt)
        assert main(
            ["vias", "--checkpoint", str(tmp_path / "ck")]
        ) == 130
        assert "--resume" in capsys.readouterr().out

    def test_checkpoint_resume_end_to_end(self, tmp_path, capsys):
        """A checkpointed fig6 run resumed under its run id re-executes
        nothing and reproduces the manifest metrics exactly."""
        ck = tmp_path / "ck"
        m1 = tmp_path / "m1.json"
        m2 = tmp_path / "m2.json"
        memo.clear_cache()
        engine.clear_timings()
        assert main([
            "fig6", "--benchmarks", "gzip", "--window", "2000",
            "--jobs", "1", "--checkpoint", str(ck), "--metrics", str(m1),
        ]) == 0
        manifest1 = json.loads(m1.read_text())
        run_id = manifest1["run_id"]
        assert manifest1["sweeps"][0]["resumed_tasks"] == 0
        # A real resume happens in a fresh process; clear the in-process
        # sweep registry so the two runs' accounting stays apart.
        engine.clear_timings()
        memo.clear_cache()
        assert main([
            "fig6", "--benchmarks", "gzip", "--window", "2000",
            "--jobs", "1", "--checkpoint", str(ck),
            "--resume", run_id, "--metrics", str(m2),
        ]) == 0
        manifest2 = json.loads(m2.read_text())
        assert manifest2["run_id"] == run_id
        sweep = manifest2["sweeps"][0]
        assert sweep["tasks"] == 4
        assert sweep["resumed_tasks"] == 4
        assert manifest2["metrics"] == manifest1["metrics"]


class TestGcCommand:
    def test_gc_removes_stale_runs(self, tmp_path, capsys):
        root = tmp_path / "ck"
        fresh = root / "run-fresh"
        fresh.mkdir(parents=True)
        (fresh / "sweep.jsonl").write_text("x" * 10)
        stale = root / "run-stale"
        stale.mkdir()
        (stale / "sweep.jsonl").write_text("y" * 10)
        stamp = time.time() - 30 * 86400
        os.utime(stale / "sweep.jsonl", (stamp, stamp))
        os.utime(stale, (stamp, stamp))
        assert main(
            ["gc", "--dir", str(root), "--max-age-days", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "removed run-stale" in out
        assert not stale.exists()
        assert fresh.exists()

    def test_gc_dry_run_deletes_nothing(self, tmp_path, capsys):
        root = tmp_path / "ck"
        run = root / "run-a"
        run.mkdir(parents=True)
        (run / "sweep.jsonl").write_text("x")
        assert main(
            ["gc", "--dir", str(root), "--keep-last", "0", "--dry-run"]
        ) == 0
        assert "would remove run-a" in capsys.readouterr().out
        assert run.exists()

    def test_gc_without_policy_exits_2(self, tmp_path, capsys):
        assert main(["gc", "--dir", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().out


def test_format_table_alignment():
    text = format_table("T", ["a", "bb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert lines[0] == "=== T ==="
    assert lines[1].startswith("a")
    assert "333" in lines[3]
