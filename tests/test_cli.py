"""The command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.common.tables import format_table


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "gzip", "--chip", "2d-a", "--window", "5000"]
        )
        assert args.benchmark == "gzip"
        assert args.chip == "2d-a"
        assert args.window == 5000

    def test_bad_chip_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gzip", "--chip", "4d"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "hetero" in out and "gzip" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "1409" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        assert "2.21" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        assert "per-bit" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        assert "Qcrit" in capsys.readouterr().out

    def test_vias(self, capsys):
        assert main(["vias"]) == 0
        assert "mW" in capsys.readouterr().out

    def test_wires(self, capsys):
        assert main(["wires"]) == 0
        assert "3d-2a" in capsys.readouterr().out

    def test_coverage(self, capsys):
        assert main(["coverage"]) == 0
        assert "arch. safe   : True" in capsys.readouterr().out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "gzip", "--window", "4000"]) == 0
        out = capsys.readouterr().out
        assert "leading IPC" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        assert "3.45" in capsys.readouterr().out

    def test_table6_and_7(self, capsys):
        assert main(["table6"]) == 0
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "Vth" in out and "Lgate" in out

    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "hetero-90nm" in out and "3d-2a-7w" in out

    def test_thermalmap(self, capsys):
        assert main(["thermalmap", "--chip", "2d-a"]) == 0
        out = capsys.readouterr().out
        assert "chip peak" in out
        assert "floorplan" in out

    def test_report(self, tmp_path, capsys):
        assert main(["report", "--out", str(tmp_path), "--window", "3000"]) == 0
        assert (tmp_path / "results.json").exists()


def test_format_table_alignment():
    text = format_table("T", ["a", "bb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert lines[0] == "=== T ==="
    assert lines[1].startswith("a")
    assert "333" in lines[3]
