"""Failure paths of the fault-tolerant sweep engine.

Covers the resilience policy (retries, timeouts, fail-fast vs. collect),
broken-pool recovery and serial degradation, checkpoint resume, and the
chaos hook — including the acceptance criterion that a chaos-disturbed
parallel fig6 sweep is bit-identical to an undisturbed serial one.
"""

import dataclasses
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import memo
from repro.common.errors import (
    ConfigError,
    SweepAbortedError,
    TaskError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.experiments import chaos as chaos_mod
from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments import engine
from repro.experiments.chaos import ChaosPolicy
from repro.experiments.engine import TaskPolicy, run_sweep
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.obs import events, metrics
from repro.obs.tracing import span_structure
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)


@pytest.fixture(autouse=True)
def _clean_engine():
    engine.clear_timings()
    engine.set_default_policy(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)
    yield
    engine.clear_timings()
    engine.set_default_policy(None)
    chaos_mod.set_chaos(None)
    checkpoint_mod.set_checkpoint_dir(None)


# -- module-level worker functions (must pickle into pool workers) ------

def _double(x):
    return x * 2


def _fail_even(x):
    if x % 2 == 0:
        raise ValueError(f"even task {x}")
    return x * 10


def _flaky_once(item):
    # Fails the first attempt, succeeds afterwards; the marker file makes
    # the flakiness visible across process boundaries.
    value, marker = item
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError(f"transient failure for {value}")
    return value * 2


def _hang_once(item):
    value, marker = item
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        time.sleep(30.0)
    return value + 1


def _hang(x):
    time.sleep(30.0)
    return x


def _stubborn_even(x):
    # Even tasks swallow every interrupt — including the engine's
    # in-worker SIGALRM — and keep sleeping; only the controller-side
    # deadline backstop can end them.
    if x % 2 == 0:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                time.sleep(0.5)
            except BaseException:
                pass
    return x * 2


def _swallow_first_alarm(x):
    # Swallows exactly one in-process alarm, then keeps sleeping.  Only
    # the repeating interval timer (which re-fires every period) can end
    # it; a one-shot alarm would leave it sleeping for 30s.
    try:
        time.sleep(30.0)
    except BaseException:
        time.sleep(30.0)
    return x


def _record_call(item):
    value, marker = item
    with open(marker, "a") as fh:
        fh.write("x")
    return value * 3


def _fail_unless_marker(item):
    value, marker = item
    if not Path(marker).exists():
        raise RuntimeError(f"no marker yet for {value}")
    return value * 7


def _crash_in_worker(x):
    # Dies hard in any pool worker; completes in the main process, so a
    # degraded-to-serial sweep can finish.
    if multiprocessing.current_process().name != "MainProcess":
        os._exit(13)
    return x * 3


def _bump_delta(x):
    m = metrics.get_registry()
    m.counter("failtest.calls").inc()
    m.histogram("failtest.values", (2.0, 5.0)).observe(min(x, 9))
    return x + 1


# ---------------------------------------------------------------------
class TestTaskPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TaskPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            TaskPolicy(timeout_s=0.0)
        with pytest.raises(ConfigError):
            TaskPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigError):
            TaskPolicy(max_pool_rebuilds=-2)

    def test_backoff_deterministic_jitter(self):
        policy = TaskPolicy(backoff_s=0.1, max_backoff_s=10.0)
        first = policy.backoff(3, 1)
        assert first == policy.backoff(3, 1)       # reproducible
        assert first != policy.backoff(4, 1)       # decorrelated by index
        assert 0.1 <= first <= 0.15                # base .. base * 1.5
        assert policy.backoff(3, 4) > policy.backoff(3, 1)  # exponential
        assert policy.backoff(3, 40) <= 10.0 * 1.5          # capped
        assert TaskPolicy().backoff(3, 1) == 0.0


class TestChaosPolicy:
    def test_parse_round_trip(self):
        policy = ChaosPolicy.parse(
            "worker-kill:0.1,task-fail:0.05,task-delay:0.2:0.5,seed:7"
        )
        assert policy.kill_p == 0.1
        assert policy.fail_p == 0.05
        assert policy.delay_p == 0.2
        assert policy.delay_s == 0.5
        assert policy.seed == 7

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ChaosPolicy.parse("explode:0.5")
        with pytest.raises(ConfigError):
            ChaosPolicy.parse("task-fail")
        with pytest.raises(ConfigError):
            ChaosPolicy.parse("task-fail:lots")
        with pytest.raises(ConfigError):
            ChaosPolicy(fail_p=1.5)

    def test_only_first_attempts_are_disturbed(self):
        policy = ChaosPolicy(fail_p=1.0, kill_p=1.0)
        assert policy.fails(0, 0) and policy.kills(0, 0)
        assert not policy.fails(0, 1) and not policy.kills(0, 1)

    def test_env_var_and_override(self, monkeypatch):
        monkeypatch.setenv(chaos_mod.CHAOS_ENV_VAR, "task-fail:0.25")
        assert chaos_mod.current_chaos().fail_p == 0.25
        chaos_mod.set_chaos(ChaosPolicy(fail_p=0.75))
        assert chaos_mod.current_chaos().fail_p == 0.75
        chaos_mod.set_chaos(None)
        monkeypatch.delenv(chaos_mod.CHAOS_ENV_VAR)
        assert chaos_mod.current_chaos() is None

    def test_serial_inject_skips_kills(self):
        # In-process execution must never kill the interpreter.
        ChaosPolicy(kill_p=1.0).inject(0, 0, in_worker=False)


class TestEnvPolicy:
    def test_unset_env_yields_no_policy(self, monkeypatch):
        monkeypatch.delenv(engine.RETRIES_ENV_VAR, raising=False)
        monkeypatch.delenv(engine.TASK_TIMEOUT_ENV_VAR, raising=False)
        assert engine.policy_from_env() is None

    def test_env_knobs_override_base_fields(self, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "2")
        monkeypatch.setenv(engine.TASK_TIMEOUT_ENV_VAR, "1.5")
        policy = engine.policy_from_env()
        assert policy.max_retries == 2
        assert policy.timeout_s == 1.5
        assert policy.fail_fast is True            # untouched base field

    def test_bad_env_values_raise_config_error(self, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "two")
        with pytest.raises(ConfigError):
            engine.policy_from_env()
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "1")
        monkeypatch.setenv(engine.TASK_TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ConfigError):
            engine.policy_from_env()

    def test_explicit_and_default_outrank_env(self, monkeypatch):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "5")
        assert engine.resolve_policy(TaskPolicy(max_retries=1)).max_retries == 1
        engine.set_default_policy(TaskPolicy(max_retries=3))
        assert engine.resolve_policy(None).max_retries == 3
        engine.set_default_policy(None)
        assert engine.resolve_policy(None).max_retries == 5

    def test_env_retries_drive_sweep(self, monkeypatch, tmp_path):
        monkeypatch.setenv(engine.RETRIES_ENV_VAR, "2")
        items = [(4, str(tmp_path / "marker"))]
        results, timing = run_sweep(_flaky_once, items, jobs=1)
        assert results == [8]
        assert timing.retries == 1

    def test_env_timeout_drives_sweep(self, monkeypatch):
        monkeypatch.setenv(engine.TASK_TIMEOUT_ENV_VAR, "0.2")
        with pytest.raises(SweepAbortedError) as excinfo:
            run_sweep(_hang, [1], jobs=1)
        assert isinstance(excinfo.value.failures[0], TaskTimeoutError)


class TestCheckpointGc:
    @staticmethod
    def _make_run(root, name, age_s=0.0, payload=b"x" * 100):
        run = root / name
        run.mkdir(parents=True)
        path = run / "sweep.jsonl"
        path.write_bytes(payload)
        if age_s:
            stamp = time.time() - age_s
            os.utime(path, (stamp, stamp))
            os.utime(run, (stamp, stamp))
        return run

    def test_requires_a_retention_policy(self, tmp_path):
        with pytest.raises(ConfigError):
            checkpoint_mod.gc_checkpoints(tmp_path)
        with pytest.raises(ConfigError):
            checkpoint_mod.gc_checkpoints(tmp_path, keep_last=-1)

    def test_keep_last_removes_least_recent(self, tmp_path):
        for i, age in enumerate([300.0, 200.0, 100.0]):
            self._make_run(tmp_path, f"run-{i}", age_s=age)
        report = checkpoint_mod.gc_checkpoints(tmp_path, keep_last=2)
        assert report.removed == ["run-0"]
        assert sorted(report.kept) == ["run-1", "run-2"]
        assert not (tmp_path / "run-0").exists()
        assert (tmp_path / "run-2").exists()

    def test_max_age_and_dry_run(self, tmp_path):
        self._make_run(tmp_path, "old", age_s=10 * 86400.0)
        self._make_run(tmp_path, "new")
        dry = checkpoint_mod.gc_checkpoints(
            tmp_path, max_age_days=7, dry_run=True
        )
        assert dry.removed == ["old"] and dry.kept == ["new"]
        assert dry.reclaimed_bytes == 100
        assert (tmp_path / "old").exists()      # dry run deletes nothing
        real = checkpoint_mod.gc_checkpoints(tmp_path, max_age_days=7)
        assert real.removed == ["old"]
        assert not (tmp_path / "old").exists()
        assert (tmp_path / "new").exists()

    def test_missing_root_is_an_empty_report(self, tmp_path):
        report = checkpoint_mod.gc_checkpoints(tmp_path / "nope", keep_last=1)
        assert report.removed == [] and report.kept == []


# ---------------------------------------------------------------------
class TestRetries:
    def test_retry_then_succeed_serial(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(3)]
        results, timing = run_sweep(
            _flaky_once, items, jobs=1, policy=TaskPolicy(max_retries=2),
        )
        assert results == [0, 2, 4]
        assert timing.retries == 3
        assert timing.failures == 0

    def test_retry_then_succeed_pool(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(4)]
        results, timing = run_sweep(
            _flaky_once, items, jobs=2, chunksize=1,
            policy=TaskPolicy(max_retries=1),
        )
        assert results == [0, 2, 4, 6]
        assert timing.retries == 4
        assert timing.failures == 0

    def test_fail_fast_raises_sweep_aborted(self):
        with pytest.raises(SweepAbortedError) as excinfo:
            run_sweep(_fail_even, [1, 3, 4], jobs=1)
        error = excinfo.value
        assert error.label == "sweep"
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert isinstance(failure, TaskError)
        assert failure.task_index == 2
        assert failure.attempts == 1
        assert "ValueError" in failure.worker_traceback
        assert isinstance(error.__cause__, TaskError)

    def test_collect_errors_returns_none_slots(self):
        results, timing = run_sweep(
            _fail_even, [0, 1, 2, 3], jobs=1,
            policy=TaskPolicy(fail_fast=False, max_retries=1),
        )
        assert results == [None, 10, None, 30]
        assert timing.failures == 2
        assert timing.retries == 2       # each failing task retried once
        assert timing.tasks == 4

    def test_default_policy_hook(self):
        engine.set_default_policy(TaskPolicy(fail_fast=False))
        results, timing = run_sweep(_fail_even, [2, 5], jobs=1)
        assert results == [None, 50]
        assert timing.failures == 1


class TestTimeouts:
    def test_timeout_kills_and_retry_recovers_serial(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(2)]
        results, timing = run_sweep(
            _hang_once, items, jobs=1,
            policy=TaskPolicy(timeout_s=0.4, max_retries=1),
        )
        assert results == [1, 2]
        assert timing.timeouts == 2
        assert timing.retries == 2
        assert timing.failures == 0

    def test_timeout_kills_and_retry_recovers_pool(self, tmp_path):
        items = [(i, str(tmp_path / f"m{i}")) for i in range(2)]
        results, timing = run_sweep(
            _hang_once, items, jobs=2, chunksize=1,
            policy=TaskPolicy(timeout_s=0.4, max_retries=1),
        )
        assert results == [1, 2]
        assert timing.timeouts == 2

    def test_timeout_without_retries_aborts(self):
        with pytest.raises(SweepAbortedError) as excinfo:
            run_sweep(_hang, [1], jobs=1, policy=TaskPolicy(timeout_s=0.2))
        failure = excinfo.value.failures[0]
        assert isinstance(failure, TaskTimeoutError)
        assert failure.timeout_s == 0.2

    def test_swallowed_alarm_rearms_in_process(self):
        # A task that catches the first _TaskTimeout must still die: the
        # deadline timer repeats at the timeout interval, so the second
        # firing lands inside the task's recovery sleep.  With a one-shot
        # timer this would hang for the worker's full 30s sleep.
        start = time.monotonic()
        with pytest.raises(SweepAbortedError) as excinfo:
            run_sweep(
                _swallow_first_alarm, [5], jobs=1,
                policy=TaskPolicy(timeout_s=0.2),
            )
        assert isinstance(excinfo.value.failures[0], TaskTimeoutError)
        assert time.monotonic() - start < 10.0


class TestControllerDeadline:
    def test_stubborn_task_cannot_hang_the_sweep(self):
        # The stubborn task swallows the in-worker alarm; the wave-level
        # deadline must end it while the healthy task's result survives.
        results, timing = run_sweep(
            _stubborn_even, [0, 3], jobs=2, chunksize=1,
            policy=TaskPolicy(timeout_s=0.3, fail_fast=False),
        )
        assert results == [None, 6]
        assert timing.timeouts >= 1
        assert timing.failures == 1

    def test_stubborn_task_aborts_under_fail_fast(self):
        # Two tasks so the sweep actually takes the pooled path (a lone
        # task is clamped to jobs=1 and runs in-process).
        with pytest.raises(SweepAbortedError) as excinfo:
            run_sweep(
                _stubborn_even, [0, 1], jobs=2, chunksize=1,
                policy=TaskPolicy(timeout_s=0.3),
            )
        failure = excinfo.value.failures[0]
        assert isinstance(failure, TaskTimeoutError)
        assert "controller deadline" in str(failure)


class TestPoolRecovery:
    def test_chaos_kill_rebuilds_pool(self):
        results, timing = run_sweep(
            _double, [1, 2, 3, 4], jobs=2, chunksize=1,
            chaos=ChaosPolicy(kill_p=1.0),
        )
        assert results == [2, 4, 6, 8]
        assert timing.pool_rebuilds >= 1
        assert not timing.degraded
        assert timing.failures == 0

    def test_repeated_crashes_degrade_to_serial(self):
        results, timing = run_sweep(
            _crash_in_worker, [1, 2, 3], jobs=2, chunksize=1,
            policy=TaskPolicy(max_pool_rebuilds=2),
        )
        assert results == [3, 6, 9]
        assert timing.pool_rebuilds == 3
        assert timing.degraded

    def test_degradation_disabled_raises(self):
        with pytest.raises(WorkerCrashError) as excinfo:
            run_sweep(
                _crash_in_worker, [1, 2], jobs=2, chunksize=1,
                policy=TaskPolicy(max_pool_rebuilds=0, degrade_serial=False),
            )
        assert excinfo.value.rebuilds == 1


# ---------------------------------------------------------------------
class TestCheckpointResume:
    def test_full_restore_skips_execution(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        events.begin_run("ckpt-full")
        items = [(i, str(tmp_path / f"calls-{i}")) for i in range(6)]
        first, t1 = run_sweep(_record_call, items, jobs=1, chunksize=1,
                              label="ck")
        assert t1.resumed_tasks == 0
        second, t2 = run_sweep(_record_call, items, jobs=1, chunksize=1,
                               label="ck")
        assert second == first == [0, 3, 6, 9, 12, 15]
        assert t2.resumed_tasks == 6
        # Not a single task re-executed on resume.
        for _value, marker in items:
            assert Path(marker).read_text() == "x"

    def test_partial_restore_is_chunk_granular(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        run_id = events.begin_run("ckpt-partial")
        items = [(i, str(tmp_path / f"calls-{i}")) for i in range(6)]
        run_sweep(_record_call, items, jobs=1, chunksize=2, label="ck")
        ckpt_file = tmp_path / "ck" / run_id / "ck.jsonl"
        lines = ckpt_file.read_text().splitlines()
        assert len(lines) == 6
        # Keep chunk 0 whole and chunk 1 half-finished: the half chunk
        # must re-run whole, chunk 2 was never checkpointed.
        ckpt_file.write_text("\n".join(lines[:3]) + "\n")
        for _value, marker in items:
            Path(marker).unlink()
        results, timing = run_sweep(_record_call, items, jobs=1,
                                    chunksize=2, label="ck")
        assert results == [0, 3, 6, 9, 12, 15]
        assert timing.resumed_tasks == 2
        assert not (tmp_path / "calls-0").exists()   # restored, not re-run
        assert not (tmp_path / "calls-1").exists()
        for i in (2, 3, 4, 5):                        # re-executed
            assert (tmp_path / f"calls-{i}").read_text() == "x"

    def test_aborted_sweep_leaves_resumable_checkpoint(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        events.begin_run("ckpt-abort")
        marker = tmp_path / "now-present"
        items = [(i, str(marker)) for i in range(4)]
        good, bad = items[:3], items[3]
        with pytest.raises(SweepAbortedError):
            # Tasks 0-2 use a pre-made marker and succeed; task 3 uses a
            # missing one and aborts the sweep.
            marker.write_text("ready")
            run_sweep(
                _fail_unless_marker,
                good + [(99, str(tmp_path / "missing"))],
                jobs=1, chunksize=1, label="ab",
            )
        (tmp_path / "missing").write_text("ready")
        results, timing = run_sweep(
            _fail_unless_marker,
            good + [(99, str(tmp_path / "missing"))],
            jobs=1, chunksize=1, label="ab",
        )
        assert results == [0, 7, 14, 693]
        assert timing.resumed_tasks == 3

    def test_fig6_interrupted_at_k_matches_uninterrupted(self, tmp_path):
        """The acceptance criterion: resume produces identical results
        and merged metrics, re-running only the missing tasks."""
        benchmarks = [get_profile(n) for n in ("gzip", "mcf")]

        memo.clear_cache()
        clean_run = events.begin_run("fig6-clean")
        clean = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=1)
        clean_metrics = engine.run_metrics(clean_run)

        # A checkpointed run, then an "interruption" simulated by
        # keeping only the first chunk (one benchmark, k=4 tasks).
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        full_run = events.begin_run("fig6-full")
        memo.clear_cache()
        fig6_performance(window=TINY, benchmarks=benchmarks, jobs=1)
        full_file = tmp_path / "ck" / full_run / "fig6_performance.jsonl"
        lines = full_file.read_text().splitlines()
        assert len(lines) == 8
        resumed_run = "fig6-resumed"
        resumed_file = (
            tmp_path / "ck" / resumed_run / "fig6_performance.jsonl"
        )
        resumed_file.parent.mkdir(parents=True)
        resumed_file.write_text("\n".join(lines[:4]) + "\n")

        events.begin_run("fig6-resume", run_id=resumed_run)
        memo.clear_cache()
        resumed = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=1)
        timing = engine.timings(resumed_run)[-1]
        resumed_metrics = engine.run_metrics(resumed_run)

        assert timing.resumed_tasks == 4
        assert [dataclasses.asdict(r) for r in resumed] == [
            dataclasses.asdict(r) for r in clean
        ]
        assert resumed_metrics.counters == clean_metrics.counters
        assert resumed_metrics.histograms == clean_metrics.histograms
        assert resumed_metrics.gauges == clean_metrics.gauges
        assert span_structure(resumed_metrics.spans) == span_structure(
            clean_metrics.spans
        )

    def test_torn_final_line_is_ignored(self, tmp_path):
        checkpoint_mod.set_checkpoint_dir(tmp_path / "ck")
        run_id = events.begin_run("ckpt-torn")
        items = [(i, str(tmp_path / f"calls-{i}")) for i in range(2)]
        run_sweep(_record_call, items, jobs=1, chunksize=1, label="torn")
        ckpt_file = tmp_path / "ck" / run_id / "torn.jsonl"
        lines = ckpt_file.read_text().splitlines()
        ckpt_file.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        results, timing = run_sweep(_record_call, items, jobs=1,
                                    chunksize=1, label="torn")
        assert results == [0, 3]
        assert timing.resumed_tasks == 1


# ---------------------------------------------------------------------
class TestChaosDeterminism:
    def test_chaos_fail_retries_are_bit_identical(self):
        clean, clean_t = run_sweep(_bump_delta, list(range(8)), jobs=1,
                                   record=False)
        noisy, noisy_t = run_sweep(
            _bump_delta, list(range(8)), jobs=1, record=False,
            policy=TaskPolicy(max_retries=1),
            chaos=ChaosPolicy(fail_p=0.6, seed=3),
        )
        assert noisy == clean
        assert noisy_t.retries > 0
        assert noisy_t.metrics.counters == clean_t.metrics.counters
        assert noisy_t.metrics.histograms == clean_t.metrics.histograms

    def test_fig6_chaos_parallel_matches_undisturbed_serial(self):
        """The acceptance criterion: ~10% worker kills plus failing
        first attempts leave results and merged metrics bit-identical
        to an undisturbed jobs=1 run."""
        benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
        n_tasks = len(benchmarks) * 4
        seed = next(
            s for s in range(500)
            if any(ChaosPolicy(kill_p=0.1, seed=s).kills(i, 0)
                   for i in range(n_tasks))
            and any(ChaosPolicy(fail_p=0.3, seed=s).fails(i, 0)
                    for i in range(n_tasks))
        )
        chaos = ChaosPolicy(kill_p=0.1, fail_p=0.3, seed=seed)

        memo.clear_cache()
        clean_run = events.begin_run("fig6-serial-clean")
        clean = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=1)
        clean_metrics = engine.run_metrics(clean_run)

        memo.clear_cache()
        chaos_mod.set_chaos(chaos)
        engine.set_default_policy(TaskPolicy(max_retries=2))
        noisy_run = events.begin_run("fig6-parallel-chaos")
        noisy = fig6_performance(window=TINY, benchmarks=benchmarks, jobs=2)
        noisy_metrics = engine.run_metrics(noisy_run)
        timing = engine.timings(noisy_run)[-1]

        assert timing.pool_rebuilds >= 1       # a kill actually fired
        assert timing.retries >= 1             # a fail actually fired
        assert timing.failures == 0
        assert [dataclasses.asdict(r) for r in noisy] == [
            dataclasses.asdict(r) for r in clean
        ]
        assert noisy_metrics.counters == clean_metrics.counters
        assert noisy_metrics.histograms == clean_metrics.histograms
        assert noisy_metrics.gauges == clean_metrics.gauges
        assert span_structure(noisy_metrics.spans) == span_structure(
            clean_metrics.spans
        )


@settings(
    max_examples=20,
    deadline=None,
    # The autouse engine-reset fixture runs once per test, not per
    # example; the test passes policy/chaos explicitly, so that is fine.
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    values=st.lists(st.integers(0, 9), min_size=1, max_size=10),
    fail_p=st.floats(0.0, 1.0),
    seed=st.integers(0, 50),
)
def test_merged_metrics_invariant_under_injected_retries(values, fail_p, seed):
    """Property: whatever failures chaos injects, retried sweeps merge to
    exactly the metrics of an undisturbed run."""
    clean, clean_t = run_sweep(_bump_delta, values, jobs=1, record=False)
    noisy, noisy_t = run_sweep(
        _bump_delta, values, jobs=1, record=False,
        policy=TaskPolicy(max_retries=1),
        chaos=ChaosPolicy(fail_p=fail_p, seed=seed),
    )
    assert noisy == clean
    assert noisy_t.metrics.counters == clean_t.metrics.counters
    assert noisy_t.metrics.histograms == clean_t.metrics.histograms


# ---------------------------------------------------------------------
class TestEmptyAndEvents:
    def test_empty_sweep_not_recorded_and_no_event(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        events.set_sink(sink)
        try:
            results, timing = run_sweep(_double, [], jobs=4, label="void")
        finally:
            events.set_sink(None)
        assert results == []
        assert timing.empty
        assert engine.timings() == []
        recorded = [json.loads(line) for line in
                    sink.read_text().splitlines()]
        assert not [r for r in recorded if r["event"] == "sweep"]

    def test_failure_events_emitted(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        events.set_sink(sink)
        try:
            run_sweep(
                _fail_even, [2, 3], jobs=1, label="lossy",
                policy=TaskPolicy(fail_fast=False),
            )
        finally:
            events.set_sink(None)
        recorded = [json.loads(line) for line in
                    sink.read_text().splitlines()]
        failed = [r for r in recorded if r["event"] == "task_failed"]
        assert len(failed) == 1
        assert failed[0]["task_index"] == 0
        assert failed[0]["error_kind"] == "error"
        sweep = [r for r in recorded if r["event"] == "sweep"][-1]
        assert sweep["failures"] == 1

    def test_timing_summary_carries_resilience_columns(self):
        run_sweep(
            _fail_even, [2, 3], jobs=1, label="lossy",
            policy=TaskPolicy(fail_fast=False),
        )
        row = engine.timing_summary()[-1]
        assert row["failures"] == 1
        assert row["retries"] == 0
        assert row["pool_rebuilds"] == 0
        assert row["degraded"] is False
