"""Thermal layer materials and stack construction."""

import pytest

from repro.common.config import ThermalConfig
from repro.thermal.materials import (
    SINK_PLATE,
    SPREADER,
    Layer,
    stack_for_2d,
    stack_for_3d,
)


def test_layer_conductivity_inverse():
    layer = Layer("x", 1e-3, 0.01)
    assert layer.conductivity_w_per_mk == pytest.approx(100.0)


def test_package_layers_are_copper():
    assert SPREADER.conductivity_w_per_mk == pytest.approx(400.0)
    assert SINK_PLATE.conductivity_w_per_mk == pytest.approx(400.0)


def test_package_layers_spread_laterally():
    assert SPREADER.lateral_scale > 1.0
    assert SINK_PLATE.lateral_scale > SPREADER.lateral_scale


def test_thick_layers_are_subdivided():
    layers = stack_for_2d(ThermalConfig())
    bulk = [l for l in layers if l.name.startswith("bulk_si_1")]
    plate = [l for l in layers if l.name.startswith("sink_plate")]
    assert len(bulk) >= 4
    assert len(plate) >= 3


def test_subdivision_preserves_total_thickness():
    cfg = ThermalConfig()
    layers = stack_for_3d(cfg)
    bulk_total = sum(
        l.thickness_m for l in layers if l.name.startswith("bulk_si_1")
    )
    assert bulk_total == pytest.approx(cfg.bulk_si_thickness_die1_m)


def test_3d_stack_is_superset_of_2d():
    cfg = ThermalConfig()
    names_2d = {l.name for l in stack_for_2d(cfg)}
    names_3d = {l.name for l in stack_for_3d(cfg)}
    assert names_2d <= names_3d
    assert {"d2d_via", "metal_2", "active_2", "bulk_si_2"} <= names_3d


def test_layer_names_unique():
    for stack in (stack_for_2d(ThermalConfig()), stack_for_3d(ThermalConfig())):
        names = [l.name for l in stack]
        assert len(names) == len(set(names))


def test_sink_side_ordering():
    """The sink plate must be first (heat sink at the bottom, Figure 2b)."""
    layers = stack_for_3d(ThermalConfig())
    assert layers[0].name.startswith("sink_plate")
    assert layers[-1].name == "bulk_si_2"
