"""The observability layer: metrics, spans, events, logs, determinism."""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.common import memo
from repro.experiments import engine
from repro.experiments.engine import parallel_map, run_sweep
from repro.experiments.perf import fig6_performance
from repro.experiments.runner import SimulationWindow
from repro.obs import events, log, metrics, tracing
from repro.obs.metrics import (
    FRACTION_EDGES,
    BucketHistogram,
    MetricsSnapshot,
    get_registry,
    merge_snapshots,
)
from repro.obs.tracing import (
    flatten_spans,
    merge_span_dicts,
    span,
    span_structure,
)
from repro.workloads.profiles import get_profile

TINY = SimulationWindow(warmup=2000, measured=6000)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with a pristine registry and timings."""
    metrics.reset()
    engine.clear_timings()
    yield
    metrics.set_enabled(True)
    metrics.reset()
    engine.clear_timings()
    engine.set_default_jobs(None)
    events.set_sink(None)


# ---------------------------------------------------------------------
class TestInstruments:
    def test_counter_increments(self):
        c = get_registry().counter("t.c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert get_registry().counter("t.c") is c

    def test_gauge_keeps_last_value(self):
        g = get_registry().gauge("t.g")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_histogram_buckets_and_overflow(self):
        h = BucketHistogram((1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            BucketHistogram(())
        with pytest.raises(ValueError):
            BucketHistogram((2.0, 1.0))

    def test_histogram_edge_conflict_detected(self):
        get_registry().histogram("t.h", (1.0, 2.0))
        with pytest.raises(ValueError):
            get_registry().histogram("t.h", (3.0,))

    def test_fraction_edges_are_deciles(self):
        assert FRACTION_EDGES[0] == pytest.approx(0.1)
        assert FRACTION_EDGES[-1] == pytest.approx(1.0)
        assert len(FRACTION_EDGES) == 10


class TestSnapshots:
    def test_merge_semantics(self):
        a = MetricsSnapshot(
            counters={"c": 2}, gauges={"g": 0.5},
            histograms={"h": ((1.0,), (1, 0))},
        )
        b = MetricsSnapshot(
            counters={"c": 3, "d": 1}, gauges={"g": 0.2, "g2": 1.0},
            histograms={"h": ((1.0,), (0, 2))},
        )
        merged = a.merge(b)
        assert merged.counters == {"c": 5, "d": 1}
        assert merged.gauges == {"g": 0.5, "g2": 1.0}
        assert merged.histograms["h"] == ((1.0,), (1, 2))
        # Commutative: the other order gives the same result.
        swapped = b.merge(a)
        assert merged.counters == swapped.counters
        assert merged.gauges == swapped.gauges
        assert merged.histograms == swapped.histograms

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsSnapshot(histograms={"h": ((1.0,), (0, 1))})
        b = MetricsSnapshot(histograms={"h": ((2.0,), (1, 0))})
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_snapshots_skips_none(self):
        merged = merge_snapshots([None, MetricsSnapshot(counters={"c": 1})])
        assert merged.counters == {"c": 1}
        assert merge_snapshots([]).empty

    def test_as_dict_is_json_ready(self):
        get_registry().counter("t.c").inc()
        get_registry().histogram("t.h", (1.0,)).observe(0.5)
        snap = get_registry().snapshot()
        text = json.dumps(snap.as_dict())
        assert "t.c" in text and "t.h" in text


class TestSpans:
    def test_nesting_builds_tree(self):
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        tree = tracing.current_tree().to_dict()
        outer = tree["children"]["outer"]
        assert outer["count"] == 1
        assert outer["children"]["inner"]["count"] == 2
        assert outer["wall_s"] >= 0.0

    def test_structure_strips_timings(self):
        with span("a"):
            pass
        structure = span_structure(tracing.current_tree().to_dict())
        assert structure == {
            "name": "root", "count": 0,
            "children": {"a": {"name": "a", "count": 1, "children": {}}},
        }

    def test_flatten_paths(self):
        with span("a"):
            with span("b"):
                pass
        rows = flatten_spans(tracing.current_tree().to_dict())
        assert [r[0] for r in rows] == ["a", "a.b"]

    def test_merge_span_dicts(self):
        with span("a"):
            pass
        first = tracing.current_tree().to_dict()
        tracing.reset()
        with span("a"):
            pass
        with span("b"):
            pass
        merged = merge_span_dicts(first, tracing.current_tree().to_dict())
        assert merged["children"]["a"]["count"] == 2
        assert merged["children"]["b"]["count"] == 1
        assert merge_span_dicts(None, None) is None


class TestTaskScoping:
    def test_delta_excludes_prior_state(self):
        get_registry().counter("t.pre").inc(10)
        mark = get_registry().begin_task()
        get_registry().counter("t.pre").inc(2)
        get_registry().counter("t.new").inc()
        snap = get_registry().end_task(mark)
        assert snap.counters == {"t.pre": 2, "t.new": 1}

    def test_zero_deltas_dropped(self):
        get_registry().counter("t.quiet").inc()
        mark = get_registry().begin_task()
        snap = get_registry().end_task(mark)
        assert snap.counters == {}
        assert snap.spans is None

    def test_task_spans_isolated(self):
        with span("process.level"):
            pass
        mark = get_registry().begin_task()
        with span("task.level"):
            pass
        snap = get_registry().end_task(mark)
        assert list(snap.spans["children"]) == ["task.level"]
        process_tree = tracing.current_tree().to_dict()
        assert list(process_tree["children"]) == ["process.level"]

    def test_unbalanced_task_frames_unwound(self):
        mark = get_registry().begin_task()
        tracing.push_root()  # as if a task died without popping
        snap = get_registry().end_task(mark)
        assert tracing.frame_depth() == 1
        assert snap is not None


class TestDisabled:
    def test_runtime_toggle(self):
        metrics.set_enabled(False)
        c = get_registry().counter("t.off")
        c.inc()
        assert c.value == 0
        assert get_registry().begin_task() is None
        assert get_registry().end_task(None).empty
        with span("t.off.span"):
            pass
        metrics.set_enabled(True)
        assert tracing.current_tree().to_dict()["children"] == {}

    def test_env_switch_in_fresh_process(self):
        code = (
            "from repro.obs import metrics, tracing\n"
            "assert not metrics.enabled()\n"
            "assert not tracing.enabled()\n"
            "c = metrics.get_registry().counter('x')\n"
            "c.inc(); assert c.value == 0\n"
            "assert metrics.get_registry().begin_task() is None\n"
        )
        env = dict(os.environ)
        env["REPRO_OBS"] = "off"
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, timeout=60
        )


# ---------------------------------------------------------------------
def _bump(x: int) -> int:
    # Module-level so it pickles into pool workers.
    m = get_registry()
    m.counter("test.bumps").inc()
    m.histogram("test.values", (1.0, 3.0)).observe(x)
    with span("test.work"):
        pass
    return x * 2


class TestEngineIntegration:
    def test_sweep_collects_merged_metrics(self):
        _results, timing = run_sweep(_bump, range(5), jobs=1, label="bumps")
        assert timing.metrics.counters["test.bumps"] == 5
        assert timing.metrics.histograms["test.values"][1] == (2, 2, 1)
        assert timing.run_id == events.current_run_id()

    def test_parallel_metrics_match_serial(self):
        _r, serial = run_sweep(_bump, range(8), jobs=1, record=False)
        _r, parallel = run_sweep(
            _bump, range(8), jobs=2, chunksize=2, record=False
        )
        assert serial.metrics.counters == parallel.metrics.counters
        assert serial.metrics.histograms == parallel.metrics.histograms
        assert span_structure(serial.metrics.spans) == span_structure(
            parallel.metrics.spans
        )

    def test_timings_scoped_by_run_id(self):
        run1 = events.begin_run("first")
        parallel_map(_bump, range(3), jobs=1, label="one")
        run2 = events.begin_run("second")
        parallel_map(_bump, range(2), jobs=1, label="two")
        assert [t.label for t in engine.timings(run1)] == ["one"]
        assert [t.label for t in engine.timings(run2)] == ["two"]
        assert [t.label for t in engine.timings()] == ["one", "two"]
        assert engine.run_metrics(run2).counters["test.bumps"] == 2
        summary = engine.timing_summary(run2, include_metrics=True)
        assert summary[0]["metrics"]["counters"]["test.bumps"] == 2
        assert "metrics" not in engine.timing_summary(run2)[0]

    def test_default_jobs_outranks_env(self, monkeypatch):
        monkeypatch.setenv(engine.JOBS_ENV_VAR, "7")
        engine.set_default_jobs(3)
        assert engine.resolve_jobs() == 3
        assert engine.resolve_jobs(2) == 2
        engine.set_default_jobs(None)
        assert engine.resolve_jobs() == 7

    def test_default_jobs_validated(self):
        with pytest.raises(Exception):
            engine.set_default_jobs(0)


class TestSimulationDeterminism:
    """Acceptance: a sweep's merged metrics are worker-count independent."""

    def _fig6_metrics(self, benchmarks, jobs):
        memo.clear_cache()
        metrics.reset()
        run_id = events.begin_run(f"fig6-jobs{jobs}")
        fig6_performance(window=TINY, benchmarks=benchmarks, jobs=jobs)
        return engine.run_metrics(run_id)

    def test_fig6_metrics_parallel_matches_serial(self):
        benchmarks = [get_profile(n) for n in ("gzip", "mcf")]
        serial = self._fig6_metrics(benchmarks, jobs=1)
        parallel = self._fig6_metrics(benchmarks, jobs=2)
        assert serial.counters == parallel.counters
        assert serial.histograms == parallel.histograms
        assert serial.gauges == parallel.gauges
        assert span_structure(serial.spans) == span_structure(parallel.spans)
        # The instrumentation actually saw the simulations.
        assert serial.counters["sim.instructions_retired"] > 0
        assert serial.counters["rmt.simulations"] == len(benchmarks) * 3
        assert serial.counters["memo.trace.hits"] > 0
        assert "sim.leading" in serial.spans["children"]


# ---------------------------------------------------------------------
class TestEvents:
    def test_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events.set_sink(path)
        events.emit("unit_test", detail=1)
        events.set_sink(None)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["event"] == "unit_test"
        assert records[-1]["detail"] == 1

    def test_emit_without_sink_is_noop(self):
        events.emit("nothing_listens")

    def test_run_ids_are_unique(self):
        assert events.begin_run("a") != events.begin_run("b")

    def test_config_hash_stable(self):
        payload = {"seed": 42, "window": 1000}
        assert events.config_hash(payload) == events.config_hash(
            {"window": 1000, "seed": 42}
        )
        assert events.config_hash(payload) != events.config_hash({"seed": 43})

    def test_build_manifest_fields(self):
        manifest = events.build_manifest(
            command="x", seed=1, window=2, jobs=3,
            metrics={"counters": {}}, sweeps=[],
        )
        for key in ("run_id", "git_sha", "config_hash", "created_unix"):
            assert key in manifest
        assert manifest["command"] == "x"


class TestCliManifest:
    def _run(self, tmp_path, jobs):
        memo.clear_cache()
        metrics.reset()
        manifest_path = tmp_path / f"manifest-j{jobs}.json"
        trace_path = tmp_path / f"events-j{jobs}.jsonl"
        code = main([
            "fig6", "--window", "2000", "--benchmarks", "gzip,mcf",
            "--jobs", str(jobs),
            "--metrics", str(manifest_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        return json.loads(manifest_path.read_text()), trace_path

    def test_manifest_identical_across_worker_counts(self, tmp_path, capsys):
        serial, _ = self._run(tmp_path, jobs=1)
        parallel, trace_path = self._run(tmp_path, jobs=2)
        assert serial["metrics"]["counters"] == parallel["metrics"]["counters"]
        assert (
            serial["metrics"]["histograms"]
            == parallel["metrics"]["histograms"]
        )
        assert span_structure(serial["metrics"]["spans"]) == span_structure(
            parallel["metrics"]["spans"]
        )
        assert serial["jobs"] == 1 and parallel["jobs"] == 2
        assert serial["command"] == "fig6"
        assert serial["run_id"] != parallel["run_id"]
        assert [s["label"] for s in serial["sweeps"]] == ["fig6_performance"]
        kinds = [
            json.loads(line)["event"]
            for line in trace_path.read_text().splitlines()
        ]
        assert kinds[0] == "run_begin"
        assert "sweep" in kinds and kinds[-1] == "manifest"
        out = capsys.readouterr().out
        assert "Figure 6" in out and "wrote run manifest" in out


class TestLogging:
    def test_quiet_suppresses_tables(self, capsys):
        assert main(["table8", "-q"]) == 0
        assert capsys.readouterr().out == ""
        assert main(["table8"]) == 0
        assert "2.21" in capsys.readouterr().out

    def test_logger_hierarchy(self):
        assert log.get_logger().name == "repro"
        assert log.get_logger("cli").name == "repro.cli"

    def test_reconfigure_replaces_handler(self):
        logger = log.configure(0)
        first = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        logger = log.configure(1)
        second = [h for h in logger.handlers if getattr(h, "_repro_obs_handler", False)]
        assert len(second) == 1
        assert first[0] is not second[0]

    def test_ensure_configured_idempotent(self):
        logger = log.ensure_configured()
        count = len(logger.handlers)
        log.ensure_configured()
        assert len(logger.handlers) == count


class TestSweepTimingCompat:
    def test_keyword_construction_still_works(self):
        timing = engine.SweepTiming(
            label="x", jobs=2, task_wall_s=[1.0, 1.0], wall_s=1.0
        )
        assert timing.speedup == pytest.approx(2.0)
        assert timing.run_id == ""
        assert timing.metrics is None
        # Degenerate wall clocks report a huge-but-finite ratio now, not
        # a misleading 1.0 (rendered as "—" by format_timing_summary).
        assert dataclasses.replace(timing, wall_s=0.0).speedup > 1e6
